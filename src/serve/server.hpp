#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/service.hpp"

namespace hlp::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via Server::port()
  /// Concurrent connections admitted; beyond it the accept loop answers one
  /// "shed" line and closes. 0 = unlimited.
  int max_connections = 64;
  /// Bound on shutdown(): after this many seconds of graceful drain the
  /// server escalates — in-flight kernels are cancelled through their
  /// CancelTokens, waiters abandoned with "cancelled" responses, and any
  /// connection that still will not exit is force-closed. 0 preserves the
  /// legacy unbounded graceful drain (every in-flight request completes).
  double drain_deadline_seconds = 0.0;
  ServiceOptions service;
};

/// Blocking-socket TCP front end for Service: one OS thread per admitted
/// connection, line-delimited JSON in both directions, one response per
/// request in order.
///
/// All reads run under short poll() timeouts so every thread observes the
/// drain flag within ~50 ms. shutdown() is the graceful path: close the
/// listener (new connections refused), mark the service draining (new
/// estimates answered "draining"), let requests already being processed
/// finish and their responses flush, then join every connection thread.
/// With drain_deadline_seconds > 0 the drain is bounded (DESIGN.md §9):
/// cancel in-flight kernels cooperatively up front, and on expiry abort
/// the remaining waiters ("cancelled" responses) and force-close the
/// sockets of any connection still stuck, so shutdown() returns even when
/// a kernel ignores its CancelToken.
class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  /// Bind + listen + spawn the accept thread. Throws std::runtime_error
  /// with the socket-call name and errno text on failure.
  void start();

  /// Graceful drain as described above. Idempotent.
  void shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }
  Service& service() { return service_; }

 private:
  void accept_loop();
  void connection_loop(int fd, std::uint64_t conn_id);
  void reap_finished();

  ServerOptions opts_;
  Service service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::unordered_map<std::uint64_t, std::thread> conns_;
  /// Live sockets by connection id; a connection thread removes (and
  /// closes) its own entry on exit, so a force-close during escalated
  /// shutdown can never hit a recycled fd number.
  std::unordered_map<std::uint64_t, int> conn_fds_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_conn_id_ = 0;
  std::atomic<int> active_conns_{0};
};

}  // namespace hlp::serve
