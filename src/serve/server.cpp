#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/protocol.hpp"

namespace hlp::serve {

namespace {

[[noreturn]] void throw_errno(const char* call) {
  const int err = errno;
  throw std::runtime_error(std::string("serve: ") + call + " failed: " +
                           std::strerror(err));
}

/// Write the whole buffer, tolerating short writes and EINTR. Returns
/// false when the peer is gone (EPIPE/ECONNRESET).
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string line) {
  line.push_back('\n');
  return write_all(fd, line.data(), line.size());
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service) {}

Server::~Server() { shutdown(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bad bind address '" + opts_.bind_address +
                             "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("serve: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("serve: listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::uint64_t id : finished_) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        done.push_back(std::move(it->second));
        conns_.erase(it);
      }
    }
    finished_.clear();
  }
  for (auto& t : done) t.join();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    reap_finished();
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (opts_.max_connections > 0 &&
        active_conns_.load(std::memory_order_acquire) >=
            opts_.max_connections) {
      // Admission control at the connection level: answer once, close.
      write_line(fd, make_error_response({}, "shed",
                                         "connection limit reached"));
      ::close(fd);
      continue;
    }
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(conn_mu_);
    const std::uint64_t id = next_conn_id_++;
    conn_fds_.emplace(id, fd);
    conns_.emplace(id,
                   std::thread([this, fd, id] { connection_loop(fd, id); }));
  }
}

void Server::connection_loop(int fd, std::uint64_t conn_id) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Serve every complete line already buffered, then poll for more.
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buf.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (!write_line(fd, service_.handle_line(line))) {
        open = false;
        break;
      }
    }
    buf.erase(0, start);
    if (!open) break;

    if (buf.size() > kMaxLineBytes) {
      // No newline within the frame limit: there is no way to find the
      // next record boundary, so answer once and hang up.
      write_line(fd, make_error_response({}, "malformed",
                                         "line exceeds frame limit"));
      break;
    }
    if (service_.draining()) break;  // all buffered requests are answered

    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;  // timeout: re-check the drain flag
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  {
    // Close under conn_mu_ and drop the registry entry in the same step:
    // once the fd number is back in the kernel's pool, no force-close can
    // reach it through a stale registry.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(conn_id);
    ::close(fd);
    finished_.push_back(conn_id);
  }
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  service_.begin_drain();
  const double grace = opts_.drain_deadline_seconds;
  if (grace > 0.0) {
    // Bounded drain: ask every in-flight kernel to stop now, so
    // well-behaved ones answer "cancelled" well inside the grace period.
    service_.cancel_inflight();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (grace > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(grace));
    while (active_conns_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (active_conns_.load(std::memory_order_acquire) > 0) {
      // Escalate: abandon the remaining kernel waits ("cancelled"
      // responses), give those responses a moment to flush, then cut the
      // sockets of whatever still refuses to exit. The connection threads
      // see recv() fail and leave; orphaned workers finish against the
      // still-alive Service and are discarded.
      service_.abort_pending();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
  }
  // Join every connection thread: each one finishes the request it is
  // processing (and any already-buffered lines), flushes responses, and
  // exits at its next drain-flag check.
  while (true) {
    std::unordered_map<std::uint64_t, std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns.swap(conns_);
      finished_.clear();
    }
    if (conns.empty()) break;
    for (auto& [id, t] : conns) {
      if (t.joinable()) t.join();
    }
  }
}

}  // namespace hlp::serve
