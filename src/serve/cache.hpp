#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace hlp::serve {

/// Aggregate cache counters (monotone except entries/bytes, which track the
/// current working set).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Sharded, byte-accounted LRU map from canonical cache keys to serialized
/// response bodies.
///
/// Keys are opaque strings (the service derives them from content
/// fingerprints — see DESIGN.md §9); the full key string is stored and
/// compared on lookup, the FNV hash only picks the shard, so hash
/// collisions cost a probe, never a wrong answer.
///
/// The byte budget is split evenly across shards and charged per entry as
/// key + value + a fixed bookkeeping overhead. Inserting over a full shard
/// evicts that shard's least-recently-used entries; an entry larger than a
/// whole shard is refused rather than thrashing the shard empty.
class ResultCache {
 public:
  /// `capacity_bytes` = 0 disables caching (every lookup misses, inserts
  /// are dropped). `shards` is clamped to at least 1.
  explicit ResultCache(std::size_t capacity_bytes, std::size_t shards = 8);

  /// On hit, copies the cached value into `value_out`, promotes the entry
  /// to most-recently-used, and returns true.
  bool lookup(std::string_view key, std::string& value_out);

  /// Inserts or refreshes `key`. A racing duplicate insert (two
  /// single-flight generations of the same key) just overwrites with an
  /// identical value.
  void insert(std::string_view key, std::string value);

  CacheStats stats() const;

  /// Accounting charge per entry beyond the key/value payload (list + map
  /// node bookkeeping, amortized). Exposed so tests can size byte caps.
  static constexpr std::size_t kEntryOverhead = 64;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::string_view key);

  std::size_t shard_cap_;
  std::unique_ptr<Shard[]> shards_;
  std::size_t n_shards_;
};

}  // namespace hlp::serve
