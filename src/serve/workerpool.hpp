#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace hlp::serve {

/// Supervised worker pool behind a bounded FIFO queue — the execution side
/// of the serve tier's bulkhead (DESIGN.md §9, supervision in §11).
/// Connection threads submit kernel tasks (optionally carrying the
/// request's wall deadline) and wait on a per-task latch; only `workers`
/// kernels run at once and at most `queue_limit` wait, so a burst of slow
/// estimates turns into explicit shed decisions at try_submit instead of an
/// unbounded pile of busy OS threads.
///
/// Supervision: a kernel that wedges non-cooperatively (never reaches a
/// meter checkpoint, or blocks on a sandbox child the parent is about to
/// SIGKILL) used to burn its worker thread forever — `busy()` looked loaded
/// with no distinguishing signal and pool capacity silently shrank to
/// zero. The pool now runs a supervisor thread that polls the slots: a
/// task still busy past `deadline + supersede_grace` has its slot marked
/// *superseded* and a replacement thread spawned, restoring capacity
/// immediately (`respawns()` counts these, exactly one per wedged task).
/// The superseded thread is not killed — it exits on its own when its task
/// finally returns (sandboxed tasks always do: the child is SIGKILLed at
/// the wall deadline) and is then reaped by the supervisor. `wedged()`
/// counts busy-past-deadline slots that have not been superseded yet — the
/// load signal admission control folds into shed/retry-after decisions.
///
/// Tasks must not throw (the service wraps every kernel in its own
/// classification catch); a throwing task would terminate the process.
class WorkerPool {
 public:
  using Clock = std::chrono::steady_clock;

  /// Spawns the workers immediately. `workers` is clamped to at least 1;
  /// `queue_limit` = 0 means unbounded.
  WorkerPool(int workers, std::size_t queue_limit);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Returns false — without blocking — when the queue is
  /// at queue_limit or the pool is stopping; the caller sheds. `deadline`
  /// (default: none) is the task's wall deadline: past it the slot counts
  /// as wedged, and past it plus the supersede grace the supervisor
  /// replaces the slot's thread.
  bool try_submit(std::function<void()> fn,
                  Clock::time_point deadline = Clock::time_point{});

  /// Tasks queued but not yet started (load signal for admission control).
  std::size_t queue_depth() const;
  /// Tasks currently executing (including wedged and superseded ones).
  int busy() const;
  /// Busy slots past their task deadline and not yet superseded: capacity
  /// that exists on paper but is not serving the queue right now.
  int wedged() const;
  /// Threads currently serving the queue (the supervisor holds this at
  /// `workers()`: every superseded slot gets a replacement).
  int live() const;
  /// Replacement threads spawned by the supervisor — one per wedged task.
  std::uint64_t respawns() const;
  int workers() const { return target_; }

  /// Stop accepting work, *run* everything still queued (each queued task
  /// has a waiter that must be answered — dropping it would lose a
  /// response), then join every thread, including superseded ones (their
  /// tasks are deadline-bounded: a sandboxed wedge dies with its child's
  /// wall SIGKILL, an in-process stall fault has a bounded duration).
  /// Idempotent; called by ~WorkerPool.
  void stop();

  /// How long past its deadline a busy task runs before the supervisor
  /// supersedes its thread. Long enough that the normal deadline path (the
  /// waiter answering `deadline-exceeded`, the sandbox reaping its child)
  /// wins the race in the common case.
  static constexpr std::chrono::milliseconds kSupersedeGrace{100};
  static constexpr std::chrono::milliseconds kSupervisePeriod{20};

 private:
  /// One worker thread's slot. Slots live in a deque (stable addresses)
  /// and are never destroyed until stop(); a superseded slot keeps its
  /// thread object until the supervisor reaps it.
  struct Slot {
    std::thread thr;
    bool busy = false;
    bool has_deadline = false;
    Clock::time_point deadline{};
    bool superseded = false;  ///< supervisor replaced this thread
    bool retired = false;     ///< superseded thread finished; joinable now
  };
  struct Task {
    std::function<void()> fn;
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  void worker_loop(Slot* self);
  void supervise_loop();
  void spawn_slot_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable supervise_cv_;
  std::deque<Task> queue_;
  std::deque<Slot> slots_;
  std::size_t queue_limit_;
  int target_;
  int busy_ = 0;
  int live_ = 0;
  std::uint64_t respawns_ = 0;
  bool stopping_ = false;
  std::thread supervisor_;
};

}  // namespace hlp::serve
