#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hlp::serve {

/// Fixed-size worker pool behind a bounded FIFO queue — the execution side
/// of the serve tier's bulkhead (DESIGN.md §9). Connection threads submit
/// kernel tasks and wait on a per-task latch; only `workers` kernels run at
/// once and at most `queue_limit` wait, so a burst of slow estimates turns
/// into explicit shed decisions at try_submit instead of an unbounded pile
/// of busy OS threads.
///
/// Tasks must not throw (the service wraps every kernel in its own
/// classification catch); a throwing task would terminate the process.
class WorkerPool {
 public:
  /// Spawns the workers immediately. `workers` is clamped to at least 1;
  /// `queue_limit` = 0 means unbounded.
  WorkerPool(int workers, std::size_t queue_limit);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Returns false — without blocking — when the queue is
  /// at queue_limit or the pool is stopping; the caller sheds.
  bool try_submit(std::function<void()> fn);

  /// Tasks queued but not yet started (load signal for admission control).
  std::size_t queue_depth() const;
  /// Tasks currently executing.
  int busy() const;
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Stop accepting work, *run* everything still queued (each queued task
  /// has a waiter that must be answered — dropping it would lose a
  /// response), then join the workers. Idempotent; called by ~WorkerPool.
  void stop();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t queue_limit_;
  int busy_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hlp::serve
