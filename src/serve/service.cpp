#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "fsm/benchmarks.hpp"
#include "fsm/stg.hpp"
#include "util/json.hpp"

namespace hlp::serve {

namespace {

void append_hex16(std::string& out, std::uint64_t v) {
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  }
  out.append(buf, 16);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

/// Splice the caller's id into an id-less response body. Response writers
/// put "id" immediately after the "ok" field, so the insertion point is
/// fixed by whether the body starts {"ok":true or {"ok":false.
std::string attach_id(const std::string& idless, std::string_view id) {
  if (id.empty()) return idless;
  const std::size_t split = idless.compare(0, 10, "{\"ok\":true") == 0 ? 10 : 11;
  std::string out = idless.substr(0, split);
  util::append_field(out, "id", id);
  out.append(idless, split, std::string::npos);
  return out;
}

std::size_t clamp_cap(std::size_t requested, std::size_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0) return ceiling;
  return std::min(requested, ceiling);
}

}  // namespace

void LatencyHistogram::record(std::uint64_t us) {
  int idx = std::bit_width(us);
  if (idx >= kBuckets) idx = kBuckets - 1;
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      // Upper bound of bucket i: largest value with bit width i.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return (std::uint64_t{1} << (kBuckets - 1)) - 1;
}

std::string serialize_metrics(const ServiceMetrics& m) {
  std::string s = "{\"ok\":true,\"op\":\"metrics\"";
  util::append_field(s, "hits", m.hits);
  util::append_field(s, "misses", m.misses);
  util::append_field(s, "coalesced", m.coalesced);
  util::append_field(s, "shed", m.shed);
  util::append_field(s, "requests", m.requests);
  util::append_field(s, "estimates", m.estimates);
  util::append_field(s, "refused", m.refused);
  util::append_field(s, "errors", m.errors);
  util::append_field(s, "inflight",
                     static_cast<std::uint64_t>(m.inflight < 0 ? 0 : m.inflight));
  util::append_field(s, "draining", m.draining);
  util::append_field(s, "cache-entries",
                     static_cast<std::uint64_t>(m.cache.entries));
  util::append_field(s, "cache-bytes",
                     static_cast<std::uint64_t>(m.cache.bytes));
  util::append_field(s, "cache-evictions", m.cache.evictions);
  util::append_field(s, "p50-us", m.p50_us);
  util::append_field(s, "p90-us", m.p90_us);
  util::append_field(s, "p99-us", m.p99_us);
  s.push_back('}');
  return s;
}

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, opts_.cache_shards) {
  if (!opts_.executor) {
    opts_.executor = [](const jobs::KernelRequest& rq,
                        const exec::Budget& budget) {
      return jobs::run_kernel(rq, budget);
    };
  }
}

std::uint64_t Service::fingerprint(jobs::JobKind kind,
                                   const std::string& design) {
  // One memo entry per (design *class*, spec): symbolic and monte-carlo
  // both build netlists, so they share a fingerprint.
  const char* cls = kind == jobs::JobKind::Markov    ? "fsm"
                    : kind == jobs::JobKind::Schedule ? "cdfg"
                                                      : "net";
  std::string memo_key = cls;
  memo_key += '|';
  memo_key += design;
  {
    std::lock_guard<std::mutex> lock(fp_mu_);
    auto it = fp_memo_.find(memo_key);
    if (it != fp_memo_.end()) return it->second;
  }
  std::uint64_t fp = 0;
  switch (kind) {
    case jobs::JobKind::Markov:
      fp = fsm::structural_hash(fsm::controller_by_name(design));
      break;
    case jobs::JobKind::Schedule:
      fp = cdfg::structural_hash(jobs::make_cdfg(design));
      break;
    default:
      fp = netlist::structural_hash(jobs::make_module(design).netlist);
      break;
  }
  std::lock_guard<std::mutex> lock(fp_mu_);
  fp_memo_.emplace(std::move(memo_key), fp);
  return fp;
}

Service::Keys Service::keys(const Request& rq) {
  Keys k;
  // Base key: kind | content fingerprint | budget-irrelevant parameters.
  std::string base = jobs::to_string(rq.kind);
  base += '|';
  append_hex16(base, fingerprint(rq.kind, rq.design));
  switch (rq.kind) {
    // Static estimates carry the Monte Carlo accuracy knobs too: epsilon
    // decides tier-0 vs escalation and the remaining fields shape the
    // escalated sampling run, so they are all value-relevant.
    case jobs::JobKind::Static:
    case jobs::JobKind::MonteCarlo:
      base += "|eps=";
      util::append_json_double(base, rq.epsilon);
      base += "|conf=";
      util::append_json_double(base, rq.confidence);
      base += "|pairs=";
      append_u64(base, rq.min_pairs);
      base += ':';
      append_u64(base, rq.max_pairs);
      break;
    case jobs::JobKind::Markov:
      base += "|iters=";
      append_u64(base, static_cast<std::uint64_t>(rq.max_iters));
      break;
    default:
      break;  // symbolic / schedule results depend only on the design
  }
  // Content-addressed default seed: requests that omit the seed agree on
  // one derived from the content key, so they hit the same cache line.
  k.seed = rq.has_seed ? rq.seed : jobs::job_seed(base);
  k.cache_key = base;
  k.cache_key += "|seed=";
  append_u64(k.cache_key, k.seed);
  // Flight key adds the budget fields (and the cache opt-out): only
  // requests that would do byte-identical work under the same limits may
  // share one execution.
  k.flight_key = k.cache_key;
  k.flight_key += "|b=";
  util::append_json_double(k.flight_key, rq.deadline_seconds);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.node_cap);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.step_quota);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.memory_cap_bytes);
  if (!rq.use_cache) k.flight_key += ":nocache";
  return k;
}

exec::Budget Service::budget_for(const Request& rq) const {
  exec::Budget b;
  b.deadline_seconds = rq.deadline_seconds;
  if (opts_.ceiling_deadline_seconds > 0.0) {
    b.deadline_seconds = b.deadline_seconds > 0.0
                             ? std::min(b.deadline_seconds,
                                        opts_.ceiling_deadline_seconds)
                             : opts_.ceiling_deadline_seconds;
  }
  b.node_cap = clamp_cap(rq.node_cap, opts_.ceiling_node_cap);
  b.step_quota = clamp_cap(rq.step_quota, opts_.ceiling_step_quota);
  b.memory_cap_bytes =
      clamp_cap(rq.memory_cap_bytes, opts_.ceiling_memory_cap_bytes);
  return b;
}

std::string Service::compute_response(const Request& rq, std::uint64_t seed) {
  jobs::KernelRequest krq;
  krq.kind = rq.kind;
  krq.design = rq.design;
  krq.seed = seed;
  krq.epsilon = rq.epsilon;
  krq.confidence = rq.confidence;
  krq.min_pairs = rq.min_pairs;
  krq.max_pairs = rq.max_pairs;
  krq.max_iters = rq.max_iters;
  try {
    jobs::AttemptOutcome out = opts_.executor(krq, budget_for(rq));
    if (!out.ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "budget-exhausted", out.detail);
    }
    return make_value_response({}, out.out.value, out.out.detail,
                               out.out.degraded);
  } catch (const exec::BudgetExceeded& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "budget-exhausted", e.what());
  } catch (const std::invalid_argument& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "invalid-input", e.what());
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "internal", e.what());
  }
}

std::string Service::handle_estimate(const Request& rq) {
  if (draining()) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response(rq.id, "draining",
                               "service is shutting down");
  }
  if (opts_.max_inflight > 0) {
    int now = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now > opts_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response(rq.id, "shed",
                                 "admission control: too many in-flight "
                                 "requests");
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }
  struct InflightGuard {
    std::atomic<int>& n;
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{inflight_};

  estimates_.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();

  Keys k;
  try {
    k = keys(rq);
  } catch (const std::invalid_argument& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response(rq.id, "invalid-input", e.what());
  }

  std::string body;
  if (rq.use_cache && cache_.lookup(k.cache_key, body)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    SingleFlight::Result fr = flights_.run(k.flight_key, [&] {
      std::string computed = compute_response(rq, k.seed);
      // Only complete, non-degraded values are cached: anything a budget
      // touched depends on the budget, which the cache key excludes.
      if (rq.use_cache && opts_.cache_bytes > 0) {
        ResponseView v;
        if (parse_response(computed, v) && v.ok && v.has_value &&
            !v.degraded) {
          cache_.insert(k.cache_key, computed);
        }
      }
      return computed;
    });
    body = std::move(fr.value);
    (fr.leader ? misses_ : coalesced_).fetch_add(1, std::memory_order_relaxed);
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  latency_.record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
  return attach_id(body, rq.id);
}

std::string Service::handle_line(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request rq;
  std::string error;
  if (!Request::parse(line, rq, error)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "malformed", error);
  }
  switch (rq.op) {
    case Op::Ping:
      return attach_id(make_ping_response(), rq.id);
    case Op::Metrics:
      return attach_id(serialize_metrics(metrics()), rq.id);
    case Op::Estimate:
      return handle_estimate(rq);
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return make_error_response(rq.id, "internal", "unhandled op");
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics m;
  m.requests = requests_.load(std::memory_order_relaxed);
  m.estimates = estimates_.load(std::memory_order_relaxed);
  m.hits = hits_.load(std::memory_order_relaxed);
  m.misses = misses_.load(std::memory_order_relaxed);
  m.coalesced = coalesced_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.refused = refused_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.inflight = inflight_.load(std::memory_order_relaxed);
  m.draining = draining();
  m.cache = cache_.stats();
  m.p50_us = latency_.percentile(0.50);
  m.p90_us = latency_.percentile(0.90);
  m.p99_us = latency_.percentile(0.99);
  return m;
}

}  // namespace hlp::serve
