#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <charconv>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/estimate.hpp"
#include "exec/fi.hpp"
#include "fsm/benchmarks.hpp"
#include "fsm/stg.hpp"
#include "netlist/index.hpp"
#include "util/json.hpp"

namespace hlp::serve {

namespace {

void append_hex16(std::string& out, std::uint64_t v) {
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  }
  out.append(buf, 16);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

/// Splice the caller's id into an id-less response body. Response writers
/// put "id" immediately after the "ok" field, so the insertion point is
/// fixed by whether the body starts {"ok":true or {"ok":false.
std::string attach_id(const std::string& idless, std::string_view id) {
  if (id.empty()) return idless;
  const std::size_t split = idless.compare(0, 10, "{\"ok\":true") == 0 ? 10 : 11;
  std::string out = idless.substr(0, split);
  util::append_field(out, "id", id);
  out.append(idless, split, std::string::npos);
  return out;
}

/// Tag an accuracy-carrying request's kernel/cache answer "tier":"exact".
/// Spliced *after* caching so cache bodies stay byte-identical to the ones
/// non-accuracy requests see; predicted responses already carry their tier
/// and are left alone, as are error responses.
std::string attach_tier_exact(std::string body) {
  if (body.compare(0, 10, "{\"ok\":true") == 0 &&
      body.find("\"tier\":") == std::string::npos) {
    body.insert(body.size() - 1, ",\"tier\":\"exact\"");
  }
  return body;
}

std::size_t clamp_cap(std::size_t requested, std::size_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0) return ceiling;
  return std::min(requested, ceiling);
}

/// Kinds whose design spec elaborates to a netlist — the ones the tier-0
/// static bound can stand in for on a deadline trip.
bool netlist_backed(jobs::JobKind kind) {
  return kind == jobs::JobKind::Symbolic ||
         kind == jobs::JobKind::MonteCarlo || kind == jobs::JobKind::Static;
}

/// How long the waiter lets the wall clock run past the cooperative
/// deadline before abandoning the kernel: enough slack that a well-behaved
/// kernel's own meter trips first (typed by *its* stop reason), while a
/// kernel stuck between meter steps is still bounded.
double wall_limit_for(double cooperative_deadline) {
  if (cooperative_deadline <= 0.0) return 0.0;
  return cooperative_deadline * 1.25 + 0.05;
}

}  // namespace

const char* to_string(IsolateMode m) {
  switch (m) {
    case IsolateMode::Off: return "off";
    case IsolateMode::Symbolic: return "symbolic";
    case IsolateMode::All: return "all";
  }
  return "unknown";
}

bool parse_isolate_mode(std::string_view s, IsolateMode& out) {
  for (IsolateMode m :
       {IsolateMode::Off, IsolateMode::Symbolic, IsolateMode::All}) {
    if (s == to_string(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

void LatencyHistogram::record(std::uint64_t us) {
  int idx = std::bit_width(us);
  if (idx >= kBuckets) idx = kBuckets - 1;
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      // Upper bound of bucket i: largest value with bit width i.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return (std::uint64_t{1} << (kBuckets - 1)) - 1;
}

std::string serialize_metrics(const ServiceMetrics& m) {
  std::string s = "{\"ok\":true,\"op\":\"metrics\"";
  util::append_field(s, "hits", m.hits);
  util::append_field(s, "misses", m.misses);
  util::append_field(s, "coalesced", m.coalesced);
  util::append_field(s, "shed", m.shed);
  util::append_field(s, "requests", m.requests);
  util::append_field(s, "estimates", m.estimates);
  util::append_field(s, "refused", m.refused);
  util::append_field(s, "errors", m.errors);
  util::append_field(s, "deadline-exceeded", m.deadline_exceeded);
  util::append_field(s, "cancelled", m.cancelled);
  util::append_field(s, "degraded-deadline", m.degraded_deadline);
  util::append_field(s, "inflight",
                     static_cast<std::uint64_t>(m.inflight < 0 ? 0 : m.inflight));
  util::append_field(s, "draining", m.draining);
  util::append_field(s, "queue-depth",
                     static_cast<std::uint64_t>(m.queue_depth));
  util::append_field(
      s, "busy-workers",
      static_cast<std::uint64_t>(m.busy_workers < 0 ? 0 : m.busy_workers));
  util::append_field(s, "warm-entries", m.warm_entries);
  util::append_field(s, "persist-appends", m.persist_appends);
  util::append_field(s, "persist-torn-bytes", m.persist_torn_bytes);
  util::append_field(s, "ewma-service-us", m.ewma_service_us);
  util::append_field(s, "cache-entries",
                     static_cast<std::uint64_t>(m.cache.entries));
  util::append_field(s, "cache-bytes",
                     static_cast<std::uint64_t>(m.cache.bytes));
  util::append_field(s, "cache-evictions", m.cache.evictions);
  util::append_field(s, "p50-us", m.p50_us);
  util::append_field(s, "p90-us", m.p90_us);
  util::append_field(s, "p99-us", m.p99_us);
  s.push_back('}');
  return s;
}

std::string serialize_health(const ServiceHealth& h) {
  std::string s = "{\"ok\":true,\"op\":\"health\"";
  util::append_field(s, "workers",
                     static_cast<std::uint64_t>(h.workers < 0 ? 0 : h.workers));
  util::append_field(s, "live",
                     static_cast<std::uint64_t>(h.live < 0 ? 0 : h.live));
  util::append_field(s, "busy",
                     static_cast<std::uint64_t>(h.busy < 0 ? 0 : h.busy));
  util::append_field(s, "wedged",
                     static_cast<std::uint64_t>(h.wedged < 0 ? 0 : h.wedged));
  util::append_field(s, "queue-depth",
                     static_cast<std::uint64_t>(h.queue_depth));
  util::append_field(s, "respawns", h.respawns);
  util::append_field(s, "draining", h.draining);
  util::append_field(s, "isolated", h.isolated);
  util::append_field(s, "child-crashes", h.child_crashes);
  // One counter per crash class, named by the sandbox taxonomy
  // ("crash-signal", "crash-oom-kill", ...). Index 0 is CrashKind::None —
  // never counted, never emitted.
  for (std::size_t i = 1; i < h.crashes_by_kind.size(); ++i) {
    std::string key = "crash-";
    key += sandbox::to_string(static_cast<sandbox::CrashKind>(i));
    util::append_field(s, key.c_str(), h.crashes_by_kind[i]);
  }
  util::append_field(s, "quarantine-trips", h.quarantine_trips);
  util::append_field(s, "quarantine-served", h.quarantine_served);
  util::append_field(s, "quarantine-probes", h.quarantine_probes);
  util::append_field(s, "quarantine-reopens", h.quarantine_reopens);
  util::append_field(s, "quarantine-rehabilitated", h.quarantine_rehabilitated);
  util::append_field(s, "quarantine-open",
                     static_cast<std::uint64_t>(h.quarantine_open));
  util::append_field(s, "models",
                     static_cast<std::uint64_t>(h.models_loaded));
  util::append_field(s, "model-predicted", h.model_predicted);
  util::append_field(s, "model-escalated", h.model_escalated);
  util::append_field(s, "model-out-of-hull", h.model_out_of_hull);
  util::append_field(s, "model-miss", h.model_miss);
  s.push_back('}');
  return s;
}

namespace {

sandbox::Quarantine::Options quarantine_options(const ServiceOptions& o) {
  sandbox::Quarantine::Options q;
  q.threshold = o.quarantine_threshold;
  q.base_expiry = std::chrono::duration_cast<sandbox::Quarantine::Clock::duration>(
      std::chrono::duration<double>(o.quarantine_base_expiry_seconds));
  q.max_expiry = std::chrono::duration_cast<sandbox::Quarantine::Clock::duration>(
      std::chrono::duration<double>(o.quarantine_max_expiry_seconds));
  return q;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, opts_.cache_shards),
      quarantine_(quarantine_options(opts_)) {
  if (!opts_.executor) {
    opts_.executor = [](const jobs::KernelRequest& rq,
                        const exec::Budget& budget) {
      return jobs::run_kernel(rq, budget);
    };
  }
  if (!opts_.cache_path.empty() && opts_.cache_bytes > 0) {
    segment_ = std::make_unique<CacheSegmentFile>(opts_.cache_path);
    std::uint64_t warm = 0;
    segment_->load([&](std::string&& key, std::string&& value) {
      cache_.insert(key, std::move(value));
      ++warm;
    });
    warm_entries_.store(warm, std::memory_order_relaxed);
  }
  if (!opts_.model_path.empty()) load_models(opts_.model_path);
  if (opts_.workers > 0) {
    pool_ = std::make_unique<WorkerPool>(opts_.workers, opts_.queue_limit);
  }
}

Service::ModelsStatus Service::load_models(const std::string& path) {
  ModelsStatus st;
  model::ModelLoad load = model::load_models_file(path);
  st.status = load.status;
  st.torn_bytes = load.torn_bytes;
  st.error = load.error;
  if (!load.ok()) return st;  // previous registry (possibly none) stays
  auto reg = std::make_shared<const model::ModelRegistry>(
      model::build_registry(load));
  st.count = reg->size();
  std::lock_guard<std::mutex> lock(model_mu_);
  models_ = std::move(reg);
  return st;
}

std::shared_ptr<const model::ModelRegistry> Service::models() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return models_;
}

model::FeatureVector Service::features_for(const std::string& design) {
  {
    std::lock_guard<std::mutex> lock(feat_mu_);
    auto it = feat_memo_.find(design);
    if (it != feat_memo_.end()) return it->second;
  }
  const model::FeatureVector x = model::extract_features(design, 0.5);
  std::lock_guard<std::mutex> lock(feat_mu_);
  feat_memo_.emplace(design, x);
  return x;
}

std::string Service::predicted_response(const Request& rq) {
  // Only kinds whose labels a characterization campaign can produce.
  if (rq.kind != jobs::JobKind::Symbolic &&
      rq.kind != jobs::JobKind::MonteCarlo)
    return {};
  const std::shared_ptr<const model::ModelRegistry> reg = models();
  if (!reg || reg->empty()) {
    model_miss_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  model::FeatureVector x;
  try {
    x = features_for(rq.design);
  } catch (...) {
    // Unextractable features: let the real kernel produce the typed error.
    model_miss_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  const std::string family = model::design_family(rq.design);
  const model::Prediction p =
      reg->predict(family, jobs::to_string(rq.kind), x, rq.confidence);
  if (p.status == model::PredictStatus::NoModel) {
    model_miss_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  if (p.status == model::PredictStatus::OutOfHull) {
    model_out_of_hull_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  // The accuracy contract: answer from the model only when the prediction
  // interval's relative half-width is within what the client asked for.
  const double denom = std::max(std::abs(p.value), 1e-12);
  if (!(p.halfwidth / denom <= rq.accuracy)) {
    model_escalated_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  model_predicted_.fetch_add(1, std::memory_order_relaxed);
  std::string detail = "macromodel ";
  detail += family;
  detail += '/';
  detail += jobs::to_string(rq.kind);
  detail += ", interval halfwidth ";
  util::append_json_double(detail, p.halfwidth);
  detail += " at confidence ";
  util::append_json_double(detail, rq.confidence);
  return make_predicted_response({}, p.value, p.value - p.halfwidth,
                                 p.value + p.halfwidth, detail);
}

std::uint64_t Service::fingerprint(jobs::JobKind kind,
                                   const std::string& design) {
  // One memo entry per (design *class*, spec): symbolic and monte-carlo
  // both build netlists, so they share a fingerprint.
  const char* cls = kind == jobs::JobKind::Markov    ? "fsm"
                    : kind == jobs::JobKind::Schedule ? "cdfg"
                                                      : "net";
  std::string memo_key = cls;
  memo_key += '|';
  memo_key += design;
  {
    std::lock_guard<std::mutex> lock(fp_mu_);
    auto it = fp_memo_.find(memo_key);
    if (it != fp_memo_.end()) return it->second;
  }
  std::uint64_t fp = 0;
  switch (kind) {
    case jobs::JobKind::Markov:
      fp = fsm::structural_hash(fsm::controller_by_name(design));
      break;
    case jobs::JobKind::Schedule:
      fp = cdfg::structural_hash(jobs::make_cdfg(design));
      break;
    default:
      fp = netlist::structural_hash(jobs::make_module(design).netlist);
      break;
  }
  std::lock_guard<std::mutex> lock(fp_mu_);
  fp_memo_.emplace(std::move(memo_key), fp);
  return fp;
}

Service::Keys Service::keys(const Request& rq) {
  Keys k;
  // Base key: kind | content fingerprint | budget-irrelevant parameters.
  k.fp = fingerprint(rq.kind, rq.design);
  std::string base = jobs::to_string(rq.kind);
  base += '|';
  append_hex16(base, k.fp);
  switch (rq.kind) {
    // Static estimates carry the Monte Carlo accuracy knobs too: epsilon
    // decides tier-0 vs escalation and the remaining fields shape the
    // escalated sampling run, so they are all value-relevant.
    case jobs::JobKind::Static:
    case jobs::JobKind::MonteCarlo:
      base += "|eps=";
      util::append_json_double(base, rq.epsilon);
      base += "|conf=";
      util::append_json_double(base, rq.confidence);
      base += "|pairs=";
      append_u64(base, rq.min_pairs);
      base += ':';
      append_u64(base, rq.max_pairs);
      break;
    case jobs::JobKind::Markov:
      base += "|iters=";
      append_u64(base, static_cast<std::uint64_t>(rq.max_iters));
      break;
    default:
      break;  // symbolic / schedule results depend only on the design
  }
  // Content-addressed default seed: requests that omit the seed agree on
  // one derived from the content key, so they hit the same cache line.
  k.seed = rq.has_seed ? rq.seed : jobs::job_seed(base);
  k.cache_key = base;
  k.cache_key += "|seed=";
  append_u64(k.cache_key, k.seed);
  // Flight key adds the budget fields (and the cache opt-out): only
  // requests that would do byte-identical work under the same limits may
  // share one execution.
  k.flight_key = k.cache_key;
  k.flight_key += "|b=";
  util::append_json_double(k.flight_key, rq.deadline_seconds);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.node_cap);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.step_quota);
  k.flight_key += ':';
  append_u64(k.flight_key, rq.memory_cap_bytes);
  if (!rq.use_cache) k.flight_key += ":nocache";
  return k;
}

exec::Budget Service::budget_for(const Request& rq) const {
  exec::Budget b;
  b.deadline_seconds = rq.deadline_seconds;
  if (b.deadline_seconds <= 0.0 && opts_.default_deadline_seconds > 0.0)
    b.deadline_seconds = opts_.default_deadline_seconds;
  if (opts_.ceiling_deadline_seconds > 0.0) {
    b.deadline_seconds = b.deadline_seconds > 0.0
                             ? std::min(b.deadline_seconds,
                                        opts_.ceiling_deadline_seconds)
                             : opts_.ceiling_deadline_seconds;
  }
  b.node_cap = clamp_cap(rq.node_cap, opts_.ceiling_node_cap);
  b.step_quota = clamp_cap(rq.step_quota, opts_.ceiling_step_quota);
  b.memory_cap_bytes =
      clamp_cap(rq.memory_cap_bytes, opts_.ceiling_memory_cap_bytes);
  return b;
}

void Service::note_service_time(std::uint64_t us) {
  // EWMA with alpha = 1/8, seeded by the first sample. The load/store pair
  // is deliberately not a CAS loop: a lost update under contention just
  // delays the smoothing of a *hint*.
  const std::uint64_t prev = ewma_us_.load(std::memory_order_relaxed);
  std::uint64_t next = prev == 0 ? us : prev - prev / 8 + us / 8;
  if (next == 0) next = 1;
  ewma_us_.store(next, std::memory_order_relaxed);
}

std::uint64_t Service::retry_after_ms() const {
  const std::uint64_t us = ewma_us_.load(std::memory_order_relaxed);
  std::uint64_t waiting = 1;  // the retry itself
  int width = 1;
  if (pool_) {
    waiting += pool_->queue_depth() +
               static_cast<std::uint64_t>(std::max(0, pool_->busy()));
    // A wedged worker exists on paper but is not draining the queue:
    // discount it so the hint reflects the capacity actually serving.
    width = std::max(1, pool_->workers() - pool_->wedged());
  } else {
    const int inflight = inflight_.load(std::memory_order_relaxed);
    waiting += static_cast<std::uint64_t>(std::max(0, inflight));
  }
  return compute_retry_after_ms(us, waiting, width);
}

std::string Service::response_for_current_exception() {
  try {
    throw;
  } catch (const exec::BudgetExceeded& e) {
    if (e.reason() == exec::StopReason::Cancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "cancelled", e.what());
    }
    if (e.reason() == exec::StopReason::Deadline)
      return make_error_response({}, "deadline-exceeded", e.what());
    return make_error_response({}, "budget-exhausted", e.what());
  } catch (const std::bad_alloc&) {
    return make_error_response({}, "internal", "allocation failure");
  } catch (const std::invalid_argument& e) {
    return make_error_response({}, "invalid-input", e.what());
  } catch (const std::exception& e) {
    return make_error_response({}, "internal", e.what());
  } catch (...) {
    return make_error_response({}, "internal", "unknown exception");
  }
}

bool Service::isolated(jobs::JobKind kind) const {
  switch (opts_.isolate) {
    case IsolateMode::Off: return false;
    case IsolateMode::All: return true;
    case IsolateMode::Symbolic: return kind == jobs::JobKind::Symbolic;
  }
  return false;
}

std::string Service::quarantined_response(const Request& rq) {
  if (netlist_backed(rq.kind)) {
    try {
      // Same tier-0 fallback as a deadline trip, but the detail names the
      // breaker so clients can tell "slow" from "poison". Never cached
      // (degraded), so a rehabilitated design recomputes for real.
      netlist::Module mod = jobs::make_module(rq.design);
      const netlist::NetlistIndex ix = netlist::build_index(mod.netlist);
      exec::Meter meter(exec::Budget::with_deadline(0.25));
      const analysis::StaticEstimate est =
          analysis::static_estimate(mod.netlist, ix, {}, &meter);
      if (est.stop == exec::StopReason::None) {
        std::string detail =
            "quarantined: repeated kernel crashes on this design; serving "
            "tier-0 static bounds [";
        util::append_json_double(detail, est.lower);
        detail += ", ";
        util::append_json_double(detail, est.upper);
        detail += "]";
        return make_value_response({}, est.point, detail, /*degraded=*/true);
      }
    } catch (...) {
      // Fall through to the typed error; degradation is best-effort.
    }
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return make_error_response(
      {}, "quarantined",
      "repeated kernel crashes on this design fingerprint; retry after the "
      "quarantine expires");
}

std::string Service::isolated_response(const Request& rq, const Keys& k,
                                       const jobs::KernelRequest& krq,
                                       const exec::Budget& budget) {
  sandbox::Limits lim;
  lim.rlimit_as_bytes = opts_.isolate_rlimit_as_bytes;
  lim.rlimit_cpu_seconds = opts_.isolate_rlimit_cpu_seconds;
  lim.wall_deadline_seconds = wall_limit_for(budget.deadline_seconds);
  if (lim.wall_deadline_seconds <= 0.0)
    lim.wall_deadline_seconds = opts_.isolate_wall_ceiling_seconds;

  isolated_.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const sandbox::RunResult r =
      sandbox::run_isolated(krq, budget, lim, opts_.executor, &budget.cancel);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  note_service_time(static_cast<std::uint64_t>(us < 0 ? 0 : us));

  if (r.delivered) {
    if (opts_.quarantine_threshold > 0) quarantine_.record_success(k.fp);
    if (r.caught == jobs::ErrorClass::InvalidInput) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "invalid-input", r.caught_detail);
    }
    if (r.caught != jobs::ErrorClass::None) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "internal", r.caught_detail);
    }
    const jobs::AttemptOutcome& out = r.outcome;
    if (!out.ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (out.stop == exec::StopReason::Cancelled) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        return make_error_response({}, "cancelled", out.detail);
      }
      if (out.stop == exec::StopReason::Deadline)
        return make_error_response({}, "deadline-exceeded", out.detail);
      return make_error_response({}, "budget-exhausted", out.detail);
    }
    return make_value_response({}, out.out.value, out.out.detail,
                               out.out.degraded);
  }

  // The child died without delivering a frame: a typed crash, never a lost
  // response and never a dead daemon.
  child_crashes_.fetch_add(1, std::memory_order_relaxed);
  crashes_by_kind_[static_cast<std::size_t>(r.crash.kind)].fetch_add(
      1, std::memory_order_relaxed);
  const bool hard = r.crash.kind != sandbox::CrashKind::Cancelled;
  if (hard && opts_.quarantine_threshold > 0)
    quarantine_.record_failure(k.fp, sandbox::Quarantine::Clock::now());

  switch (r.crash.kind) {
    case sandbox::CrashKind::Cancelled:
      errors_.fetch_add(1, std::memory_order_relaxed);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "cancelled", r.crash.detail);
    case sandbox::CrashKind::WallTimeout:
      // Same client contract as an in-process wall abandonment, including
      // the degrade-on-deadline tier-0 fallback.
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      return deadline_response(rq, budget.deadline_seconds > 0.0
                                       ? budget.deadline_seconds
                                       : lim.wall_deadline_seconds);
    case sandbox::CrashKind::OomKill:
    case sandbox::CrashKind::CpuLimit:
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "budget-exhausted", r.crash.detail);
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "internal", r.crash.detail);
  }
}

std::string Service::compute_response(const Request& rq, const Keys& k,
                                      const exec::CancelToken& cancel) {
  jobs::KernelRequest krq;
  krq.kind = rq.kind;
  krq.design = rq.design;
  krq.seed = k.seed;
  krq.epsilon = rq.epsilon;
  krq.confidence = rq.confidence;
  krq.min_pairs = rq.min_pairs;
  krq.max_pairs = rq.max_pairs;
  krq.max_iters = rq.max_iters;
  exec::Budget budget = budget_for(rq);
  budget.cancel = cancel;

  // Chaos injection: a kernel stuck between meter steps. Cancellable (the
  // waiter's deadline/drain path), but capped so a faulted request on an
  // unlimited budget cannot wedge a worker forever.
  std::uint64_t stall_ms = 0;
  if (fi::serve_fault_checkpoint(fi::ServeFault::KernelStall, &stall_ms)) {
    const auto cap = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(stall_ms > 0 ? stall_ms : 10000);
    while (!budget.cancel.cancel_requested() &&
           std::chrono::steady_clock::now() < cap) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (isolated(rq.kind)) return isolated_response(rq, k, krq, budget);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    jobs::AttemptOutcome out = opts_.executor(krq, budget);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    note_service_time(static_cast<std::uint64_t>(us < 0 ? 0 : us));
    if (!out.ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (out.stop == exec::StopReason::Cancelled) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        return make_error_response({}, "cancelled", out.detail);
      }
      if (out.stop == exec::StopReason::Deadline)
        return make_error_response({}, "deadline-exceeded", out.detail);
      return make_error_response({}, "budget-exhausted", out.detail);
    }
    return make_value_response({}, out.out.value, out.out.detail,
                               out.out.degraded);
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return response_for_current_exception();
  }
}

std::string Service::deadline_response(const Request& rq,
                                       double limit_seconds) {
  std::string what = "wall deadline exceeded (";
  util::append_json_double(what, limit_seconds);
  what += "s); kernel cancelled";
  if (opts_.degrade_on_deadline && netlist_backed(rq.kind)) {
    try {
      // Tier-0 fallback (PR 7): the zero-simulation static estimate with
      // guaranteed bounds, under its own small budget so the fallback is
      // never the thing that hangs. Degraded answers are never cached.
      netlist::Module mod = jobs::make_module(rq.design);
      const netlist::NetlistIndex ix = netlist::build_index(mod.netlist);
      exec::Meter meter(exec::Budget::with_deadline(0.25));
      const analysis::StaticEstimate est =
          analysis::static_estimate(mod.netlist, ix, {}, &meter);
      if (est.stop == exec::StopReason::None) {
        degraded_deadline_.fetch_add(1, std::memory_order_relaxed);
        std::string detail = "deadline-degraded to static bounds [";
        util::append_json_double(detail, est.lower);
        detail += ", ";
        util::append_json_double(detail, est.upper);
        detail += "]";
        return make_value_response({}, est.point, detail, /*degraded=*/true);
      }
    } catch (...) {
      // Fall through to the typed error; degradation is best-effort.
    }
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return make_error_response({}, "deadline-exceeded", what);
}

std::uint64_t Service::register_task(const std::shared_ptr<Task>& task) {
  std::lock_guard<std::mutex> lock(task_mu_);
  const std::uint64_t id = next_task_id_++;
  active_tasks_.emplace(id, task);
  return id;
}

void Service::unregister_task(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(task_mu_);
  active_tasks_.erase(id);
}

void Service::cancel_inflight() {
  std::lock_guard<std::mutex> lock(task_mu_);
  for (auto& [id, task] : active_tasks_) task->cancel.request_cancel();
}

void Service::abort_pending() {
  abort_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(task_mu_);
  for (auto& [id, task] : active_tasks_) {
    task->cancel.request_cancel();
    task->cv.notify_all();  // wake waiters so they observe the flag now
  }
}

std::string Service::lead_execute(const Request& rq, const Keys& k) {
  // fi injection point (thread-local, like the kernel-layer ones): the
  // allocation that publishes a fresh result. The regression surface for
  // the single-flight waiter-wake satellite — a throw here used to escape
  // through the flight into the connection loop.
  fi::alloc_checkpoint();

  auto task = std::make_shared<Task>();
  const std::uint64_t task_id = register_task(task);

  if (!pool_) {
    // Inline execution (workers = 0): the PR 5 behavior, still registered
    // so drain can cancel it cooperatively.
    struct Unregister {
      Service* s;
      std::uint64_t id;
      ~Unregister() { s->unregister_task(id); }
    } guard{this, task_id};
    std::string body = compute_response(rq, k, task->cancel);
    maybe_cache(rq, k, body);
    return body;
  }

  // The task's wall deadline, shared with the pool so its supervisor can
  // tell a wedged slot (busy past this point) from a merely busy one.
  const double cooperative = budget_for(rq).deadline_seconds;
  const double wall = wall_limit_for(cooperative);
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(wall));

  const bool submitted = pool_->try_submit(
      [this, task, task_id, rq, k]() {
        std::string body;
        try {
          if (fi::serve_fault_checkpoint(fi::ServeFault::WorkerThrow))
            throw std::runtime_error("fi: injected worker crash mid-kernel");
          if (fi::serve_fault_checkpoint(fi::ServeFault::WorkerAlloc))
            throw std::bad_alloc{};
          body = compute_response(rq, k, task->cancel);
          maybe_cache(rq, k, body);
        } catch (...) {
          // compute_response catches everything itself; this guards the
          // injected faults and the response plumbing. A worker must never
          // rethrow — that would terminate the process.
          errors_.fetch_add(1, std::memory_order_relaxed);
          body = response_for_current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(task->mu);
          task->body = std::move(body);
          task->done = true;
        }
        task->cv.notify_all();
        unregister_task(task_id);
      },
      wall > 0.0 ? wall_deadline : WorkerPool::Clock::time_point{});
  if (!submitted) {
    unregister_task(task_id);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "shed",
                               "admission control: kernel queue is full",
                               retry_after_ms());
  }

  std::unique_lock<std::mutex> lock(task->mu);
  for (;;) {
    if (task->done) return std::move(task->body);
    if (abort_.load(std::memory_order_acquire)) {
      task->cancel.request_cancel();
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response({}, "cancelled",
                                 "drain deadline abandoned the request");
    }
    if (wall > 0.0 && std::chrono::steady_clock::now() >= wall_deadline) {
      // Abandon: cancel the kernel and answer without it. The worker still
      // publishes a completed result to the cache when it finishes.
      task->cancel.request_cancel();
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      return deadline_response(rq, cooperative);
    }
    task->cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void Service::maybe_cache(const Request& rq, const Keys& k,
                          const std::string& body) {
  if (!rq.use_cache || opts_.cache_bytes == 0) return;
  // Only complete, non-degraded values are cached: anything a budget
  // touched depends on the budget, which the cache key excludes.
  ResponseView v;
  if (!(parse_response(body, v) && v.ok && v.has_value && !v.degraded)) return;
  cache_.insert(k.cache_key, body);
  if (segment_) segment_->append(k.cache_key, body);
}

std::string Service::handle_estimate(const Request& rq) {
  if (draining()) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response(rq.id, "draining",
                               "service is shutting down");
  }
  if (opts_.max_inflight > 0) {
    int now = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now > opts_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return make_error_response(rq.id, "shed",
                                 "admission control: too many in-flight "
                                 "requests",
                                 retry_after_ms());
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }
  struct InflightGuard {
    std::atomic<int>& n;
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{inflight_};

  estimates_.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();

  Keys k;
  try {
    k = keys(rq);
  } catch (const std::invalid_argument& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response(rq.id, "invalid-input", e.what());
  }

  std::string body;
  bool predicted = false;
  if (rq.use_cache && cache_.lookup(k.cache_key, body)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else if (rq.has_accuracy && !(body = predicted_response(rq)).empty()) {
    // Predicted tier (DESIGN.md §12): answered from the macromodel in
    // microseconds, interval attached, never cached. An empty return means
    // escalate — fall through to the real kernel below.
    predicted = true;
  } else if (opts_.quarantine_threshold > 0 &&
             quarantine_.admit(k.fp, sandbox::Quarantine::Clock::now()) ==
                 sandbox::Quarantine::Decision::Quarantined) {
    // Poison fingerprint, breaker open: answer degraded in microseconds
    // instead of re-executing the blowup. (An admitted Probe falls through
    // and executes; its child's fate closes or re-opens the breaker.)
    body = quarantined_response(rq);
  } else {
    try {
      SingleFlight::Result fr =
          flights_.run(k.flight_key, [&] { return lead_execute(rq, k); });
      body = std::move(fr.value);
      (fr.leader ? misses_ : coalesced_)
          .fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // Whatever escaped the flight — the leader's publication failing
      // (fi alloc injection) or the rethrow a waiter received — becomes a
      // typed error response. Waiters are *woken with the error class*,
      // never left blocking (satellite: single-flight waiter leak).
      errors_.fetch_add(1, std::memory_order_relaxed);
      body = response_for_current_exception();
    }
  }

  if (rq.has_accuracy && !predicted) body = attach_tier_exact(std::move(body));

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  latency_.record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
  return attach_id(body, rq.id);
}

std::string Service::handle_line(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request rq;
  std::string error;
  if (!Request::parse(line, rq, error)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return make_error_response({}, "malformed", error);
  }
  switch (rq.op) {
    case Op::Ping:
      return attach_id(make_ping_response(), rq.id);
    case Op::Metrics:
      return attach_id(serialize_metrics(metrics()), rq.id);
    case Op::Health:
      return attach_id(serialize_health(health()), rq.id);
    case Op::Estimate:
      return handle_estimate(rq);
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return make_error_response(rq.id, "internal", "unhandled op");
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics m;
  m.requests = requests_.load(std::memory_order_relaxed);
  m.estimates = estimates_.load(std::memory_order_relaxed);
  m.hits = hits_.load(std::memory_order_relaxed);
  m.misses = misses_.load(std::memory_order_relaxed);
  m.coalesced = coalesced_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.refused = refused_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.degraded_deadline = degraded_deadline_.load(std::memory_order_relaxed);
  m.inflight = inflight_.load(std::memory_order_relaxed);
  m.draining = draining();
  if (pool_) {
    m.queue_depth = pool_->queue_depth();
    m.busy_workers = pool_->busy();
  }
  m.warm_entries = warm_entries_.load(std::memory_order_relaxed);
  if (segment_) {
    const SegmentStats ss = segment_->stats();
    m.persist_appends = ss.appends;
    m.persist_torn_bytes = ss.torn_bytes;
  }
  m.ewma_service_us = ewma_us_.load(std::memory_order_relaxed);
  m.cache = cache_.stats();
  m.p50_us = latency_.percentile(0.50);
  m.p90_us = latency_.percentile(0.90);
  m.p99_us = latency_.percentile(0.99);
  return m;
}

ServiceHealth Service::health() const {
  ServiceHealth h;
  h.workers = opts_.workers;
  h.draining = draining();
  if (pool_) {
    h.live = pool_->live();
    h.busy = pool_->busy();
    h.wedged = pool_->wedged();
    h.queue_depth = pool_->queue_depth();
    h.respawns = pool_->respawns();
  }
  h.isolated = isolated_.load(std::memory_order_relaxed);
  h.child_crashes = child_crashes_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < crashes_by_kind_.size(); ++i)
    h.crashes_by_kind[i] = crashes_by_kind_[i].load(std::memory_order_relaxed);
  const sandbox::Quarantine::Counters q = quarantine_.counters();
  h.quarantine_trips = q.trips;
  h.quarantine_served = q.served_open;
  h.quarantine_probes = q.probes;
  h.quarantine_reopens = q.reopens;
  h.quarantine_rehabilitated = q.rehabilitated;
  h.quarantine_open = q.open_now;
  const std::shared_ptr<const model::ModelRegistry> reg = models();
  h.models_loaded = reg ? reg->size() : 0;
  h.model_predicted = model_predicted_.load(std::memory_order_relaxed);
  h.model_escalated = model_escalated_.load(std::memory_order_relaxed);
  h.model_out_of_hull = model_out_of_hull_.load(std::memory_order_relaxed);
  h.model_miss = model_miss_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace hlp::serve
