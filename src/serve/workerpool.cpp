#include "serve/workerpool.hpp"

#include <utility>

namespace hlp::serve {

WorkerPool::WorkerPool(int workers, std::size_t queue_limit)
    : queue_limit_(queue_limit) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { stop(); }

bool WorkerPool::try_submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (queue_limit_ > 0 && queue_.size() >= queue_limit_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int WorkerPool::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the backlog is drained
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
  }
}

}  // namespace hlp::serve
