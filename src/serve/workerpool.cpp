#include "serve/workerpool.hpp"

#include <utility>
#include <vector>

namespace hlp::serve {

WorkerPool::WorkerPool(int workers, std::size_t queue_limit)
    : queue_limit_(queue_limit), target_(workers < 1 ? 1 : workers) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < target_; ++i) spawn_slot_locked();
  }
  supervisor_ = std::thread([this] { supervise_loop(); });
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::spawn_slot_locked() {
  slots_.emplace_back();
  Slot* s = &slots_.back();
  ++live_;
  s->thr = std::thread([this, s] { worker_loop(s); });
}

bool WorkerPool::try_submit(std::function<void()> fn,
                            Clock::time_point deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (queue_limit_ > 0 && queue_.size() >= queue_limit_) return false;
    Task t;
    t.fn = std::move(fn);
    t.has_deadline = deadline != Clock::time_point{};
    t.deadline = deadline;
    queue_.push_back(std::move(t));
  }
  cv_.notify_one();
  return true;
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int WorkerPool::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

int WorkerPool::wedged() const {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.busy && s.has_deadline && !s.superseded && now > s.deadline) ++n;
  }
  return n;
}

int WorkerPool::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::uint64_t WorkerPool::respawns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return respawns_;
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  supervise_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  // The supervisor has exited; no new slots can appear. Joining here waits
  // for superseded threads too — their tasks are deadline-bounded (see
  // header), so this terminates.
  for (Slot& s : slots_) {
    if (s.thr.joinable()) s.thr.join();
  }
}

void WorkerPool::worker_loop(Slot* self) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || self->superseded || !queue_.empty();
      });
      if (self->superseded) {
        // Replaced while idle (should not happen — only busy slots are
        // superseded — but harmless). live_ was handed to the replacement
        // at supersede time.
        self->retired = true;
        supervise_cv_.notify_all();
        return;
      }
      if (queue_.empty()) {
        // Stopping and the backlog is drained.
        --live_;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      self->busy = true;
      self->has_deadline = task.has_deadline;
      self->deadline = task.deadline;
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      self->busy = false;
      self->has_deadline = false;
      if (self->superseded) {
        // A replacement took this slot's capacity while the task was
        // wedged; the wedge has now resolved — exit and let the
        // supervisor reap the thread.
        self->retired = true;
        supervise_cv_.notify_all();
        return;
      }
    }
  }
}

void WorkerPool::supervise_loop() {
  for (;;) {
    std::vector<std::thread> reap;
    {
      std::unique_lock<std::mutex> lock(mu_);
      supervise_cv_.wait_for(lock, kSupervisePeriod,
                             [&] { return stopping_; });
      if (stopping_) return;
      const auto now = Clock::now();
      for (Slot& s : slots_) {
        if (s.busy && s.has_deadline && !s.superseded &&
            now > s.deadline + kSupersedeGrace) {
          // Wedged: the task ran past its deadline plus grace without
          // returning. Mark the slot superseded (exactly once), hand its
          // live count to a fresh thread — capacity is restored now, not
          // when the wedge eventually resolves.
          s.superseded = true;
          --live_;
          ++respawns_;
          spawn_slot_locked();
        }
        if (s.retired && s.thr.joinable()) reap.push_back(std::move(s.thr));
      }
    }
    // Join outside the lock: a retiring thread's last step released mu_
    // and returned, so these joins complete promptly.
    for (std::thread& t : reap) t.join();
  }
}

}  // namespace hlp::serve
