#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "jobs/kernels.hpp"

namespace hlp::serve {

/// --- Wire protocol ---------------------------------------------------------
///
/// Line-delimited JSON over a byte stream: one flat JSON object per line in
/// each direction, every request answered by exactly one response on the
/// same connection, in order. The grammar (DESIGN.md §9) deliberately
/// mirrors the campaign ledger: flat objects, known keys only, duplicate
/// keys rejected, canonical field order on the writing side, shortest
/// round-trip doubles — so `serialize(parse(line))` is a fixed point and
/// the fuzz harness can assert it.
///
/// Requests:
///   {"op":"estimate","kind":"symbolic","design":"adder:16", ...options}
///   {"op":"estimate","kind":"static","design":"mult:8","epsilon":0.05}
///   {"op":"metrics"}
///   {"op":"ping"}
///
/// "kind":"static" is the tier-0 path: the zero-simulation dataflow
/// estimate (src/analysis) answers in microseconds when its guaranteed
/// upper/lower bounds already meet the requested "epsilon"; otherwise the
/// service escalates to packed Monte Carlo under the same budgets and the
/// response "detail" says which happened ("static-tier0, bounds [lo, hi]"
/// vs a "static-escalated (spread ...)" prefix). Escalated answers are not
/// degraded — they met the accuracy target — so they cache like any other
/// estimate.
///
/// Estimate options (all optional): "id" (opaque client tag, echoed),
/// "seed", "epsilon", "confidence", "min-pairs", "max-pairs", "max-iters",
/// "deadline", "node-cap", "step-quota", "memory-cap", "cache" (false
/// bypasses the result cache for this request), "accuracy" (see below).
///
/// "accuracy" opts the request into the *predicted* tier (DESIGN.md §12):
/// when the service has a macromodel covering the request's design family
/// and kind, and the request's features lie inside the model's training
/// hull, and the model's prediction-interval half-width divided by the
/// predicted value is within the requested accuracy, the service answers
/// from the model in microseconds. Predicted responses carry
/// "tier":"predicted" plus "interval-lo"/"interval-hi" (the prediction
/// interval at the request's "confidence") and are never cached. When the
/// model cannot support the accuracy — no model, out of hull, or interval
/// too wide — the service *escalates* to the real kernel exactly as if no
/// accuracy had been given, and the (cacheable) exact answer is tagged
/// "tier":"exact". Requests without "accuracy" never consult the model.
///
/// Responses:
///   {"ok":true,...,"value":V,"detail":"...","degraded":false}
///   {"ok":false,...,"error":"<class>","detail":"..."[,"retry-after-ms":N]}
/// with "id" echoed right after "ok" when the request carried one. Error
/// classes: "malformed", "invalid-input", "budget-exhausted", "internal",
/// "shed" (admission control refused the request), "draining" (server is
/// shutting down), "deadline-exceeded" (the request's wall-clock deadline
/// tripped before the kernel finished), "cancelled" (a drain cancelled the
/// in-flight kernel), "quarantined" (the design's fingerprint is circuit-
/// broken after repeated kernel crashes and no degraded tier can stand in
/// — netlist-backed kinds get a degraded tier-0 *value* response with a
/// "quarantined" detail prefix instead; see DESIGN.md §11). "shed"
/// responses carry "retry-after-ms", a hint computed from queue depth and
/// observed service time; a well-behaved client backs off at least that
/// long before retrying (the hlp_serve client combines it with exponential
/// backoff + jitter, bounded by bounded_retry_delay_seconds). Cache hits
/// are deliberately indistinguishable from fresh computations in the
/// response body (PR 4's determinism guarantee makes them bit-identical);
/// provenance is visible only in the metrics.
///
/// {"op":"health"} answers supervision state (DESIGN.md §11): pool
/// live/busy/wedged counts, supervisor respawns, sandbox crash counters by
/// class, quarantine trips/open entries. Like metrics, it keeps working
/// while draining so shutdown and incident response can observe the
/// service.

/// Hard ceiling on one wire line (request or response), newline excluded.
/// A peer that exceeds it is answered with "malformed" and disconnected —
/// past the limit there is no way to tell where the next record starts.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

enum class Op : std::uint8_t { Estimate, Metrics, Ping, Health };

const char* to_string(Op op);

/// Ceiling on the "retry-after-ms" hint a server may emit and the backoff a
/// client derives from one. Shields both sides from pathological EWMA
/// states (a burst of near-zero service times followed by a deep queue
/// must not tell clients to sleep for minutes).
inline constexpr std::uint64_t kMaxRetryAfterMs = 30'000;

/// The EWMA-derived shed hint (free function so its properties are
/// testable without a Service): expected queue-drain time for `waiting`
/// requests across `width` effective workers at `ewma_us` per kernel.
/// Guarantees: strictly positive, monotone non-decreasing in `waiting`,
/// non-increasing in `width`, capped at kMaxRetryAfterMs.
std::uint64_t compute_retry_after_ms(std::uint64_t ewma_us,
                                     std::uint64_t waiting, int width);

/// Client-side backoff bound: the delay actually slept before a retry,
/// given the retry policy's exponential backoff and the server's hint.
/// Takes the max of the two (honor the server) but never exceeds
/// kMaxRetryAfterMs (distrust a pathological hint or policy overflow).
double bounded_retry_delay_seconds(double backoff_seconds,
                                   std::uint64_t retry_after_ms);

struct Request {
  Op op = Op::Estimate;
  std::string id;  ///< opaque client tag, echoed in the response ("" = none)

  // Estimate fields (defaults match jobs::KernelRequest).
  jobs::JobKind kind = jobs::JobKind::MonteCarlo;
  std::string design;
  bool has_seed = false;     ///< false: seed derives from the content key
  std::uint64_t seed = 0;
  double epsilon = 0.02;
  double confidence = 0.95;
  std::size_t min_pairs = 30;
  std::size_t max_pairs = 20000;
  int max_iters = 2000;
  /// Per-request budget; 0 = unlimited, clamped to the service ceiling.
  double deadline_seconds = 0.0;
  std::size_t node_cap = 0;
  std::size_t step_quota = 0;
  std::size_t memory_cap_bytes = 0;
  bool use_cache = true;
  /// Relative accuracy the predicted tier must support, in (0, 1]; absent
  /// (has_accuracy == false) means "never answer from a model".
  bool has_accuracy = false;
  double accuracy = 0.0;

  /// Canonical single-line JSON (no trailing newline): fixed field order,
  /// defaulted fields omitted.
  std::string serialize() const;

  /// Strict parse of one request line. Accepts known keys in any order;
  /// rejects unknown keys, duplicates, malformed values, and lines longer
  /// than kMaxLineBytes. On failure returns false with a diagnostic in
  /// `error` and leaves `out` untouched.
  static bool parse(std::string_view line, Request& out, std::string& error);

  bool operator==(const Request&) const = default;
};

/// Response writers (one line, no trailing newline). `id` is echoed when
/// non-empty.
std::string make_value_response(std::string_view id, double value,
                                std::string_view detail, bool degraded);
/// `retry_after_ms` > 0 appends the backoff hint (shed/overload responses).
std::string make_error_response(std::string_view id, std::string_view error,
                                std::string_view detail,
                                std::uint64_t retry_after_ms = 0);
/// Predicted-tier value response: tagged "tier":"predicted" and carrying
/// the prediction interval [lo, hi]. Never cached (the interval depends on
/// the request's accuracy/confidence, not just the content key).
std::string make_predicted_response(std::string_view id, double value,
                                    double interval_lo, double interval_hi,
                                    std::string_view detail);
std::string make_ping_response();

/// Client-side view of a response line: the union of the fields any
/// response kind can carry (absent numeric fields read 0).
struct ResponseView {
  bool ok = false;
  std::string id;
  std::string error;
  std::string detail;
  bool has_value = false;
  double value = 0.0;
  bool degraded = false;
  /// Backoff hint on shed/overload errors (0 = none given).
  std::uint64_t retry_after_ms = 0;
  /// Serving tier for accuracy-carrying requests: "predicted" or "exact"
  /// ("" on responses that never consulted a model).
  std::string tier;
  /// Prediction interval on predicted-tier responses.
  bool has_interval = false;
  double interval_lo = 0.0;
  double interval_hi = 0.0;
  /// Metrics-response counters, in wire order (see Metrics::serialize).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;
};

/// Tolerant parse for clients: accepts any flat JSON object the server
/// emits (unknown keys are skipped, not rejected — a newer server may add
/// metrics fields an older client does not know).
bool parse_response(std::string_view line, ResponseView& out);

}  // namespace hlp::serve
