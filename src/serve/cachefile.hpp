#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace hlp::serve {

/// Point-in-time segment-file counters. `torn_bytes` / `superseded` are
/// set once by load(); `appends` grows per durable record.
struct SegmentStats {
  std::uint64_t loaded = 0;      ///< live records handed to the load callback
  std::uint64_t superseded = 0;  ///< duplicate-key records dropped at load
  std::uint64_t appends = 0;     ///< records made durable since load
  std::uint64_t torn_bytes = 0;  ///< trailing bytes truncated by recovery
  std::uint64_t compactions = 0;
  bool wedged = false;  ///< persistence stopped (I/O error or injected fault)
};

/// Append-only, fsync'd, CRC-framed spill file for the serve result cache —
/// the same crash-consistency discipline as the jobs ledger, in binary
/// framing (DESIGN.md §9):
///
///   file   := magic "HLPCACH1" record*
///   record := klen:u32le vlen:u32le key[klen] value[vlen] crc:u32le
///
/// where crc is CRC-32 (IEEE) over the lengths and both payloads. Every
/// append is written in one buffer, then fsync'd, so after a crash the file
/// is a valid prefix plus at most one torn record; load() verifies frames
/// in order, truncates the file at the first bad one (torn-write recovery),
/// and replays the survivors last-write-wins. When superseded duplicates
/// outweigh live data, load() compacts by rewriting live records to a temp
/// file and renaming it into place.
///
/// Thread-safe for concurrent append(); load() must complete first (the
/// service calls it from its constructor).
class CacheSegmentFile {
 public:
  using LoadCallback = std::function<void(std::string&&, std::string&&)>;

  explicit CacheSegmentFile(std::string path);
  ~CacheSegmentFile();

  CacheSegmentFile(const CacheSegmentFile&) = delete;
  CacheSegmentFile& operator=(const CacheSegmentFile&) = delete;

  /// Scan + recover + replay as described above, invoking `cb` once per
  /// live record in append order, then open the file for appending. A
  /// missing or unrecognizable file starts a fresh segment. Never throws on
  /// I/O failure — persistence is best-effort by design; `stats().wedged`
  /// records that it stopped.
  void load(const LoadCallback& cb);

  /// Durably append one record (single write + fsync under a mutex). Does
  /// nothing once wedged or before load().
  void append(std::string_view key, std::string_view value);

  SegmentStats stats() const;
  const std::string& path() const { return path_; }

 private:
  void open_fresh();  // truncate + magic header + fsync (under mu_)

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  SegmentStats stats_;
};

}  // namespace hlp::serve
