#include "serve/cachefile.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/fi.hpp"
#include "util/hash.hpp"

namespace hlp::serve {

namespace {

constexpr char kMagic[8] = {'H', 'L', 'P', 'C', 'A', 'C', 'H', '1'};
constexpr std::size_t kFrameHeaderBytes = 8;  // klen + vlen
constexpr std::size_t kFrameCrcBytes = 4;
/// Sanity cap per field: keys and values both derive from wire lines, which
/// are capped at 64 KiB, so anything larger is corruption, not data.
constexpr std::uint32_t kMaxFieldBytes = 1u << 20;

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// One record's frame: lengths + payloads + CRC over all of the former.
void frame_record(std::string& out, std::string_view key,
                  std::string_view value) {
  const std::size_t frame_start = out.size();
  put_u32le(out, static_cast<std::uint32_t>(key.size()));
  put_u32le(out, static_cast<std::uint32_t>(value.size()));
  out.append(key);
  out.append(value);
  const std::uint32_t crc =
      util::crc32(out.data() + frame_start, out.size() - frame_start);
  put_u32le(out, crc);
}

bool write_all_fd(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Best-effort fsync of the directory holding `path`, so a rename made for
/// compaction survives a crash of the metadata journal too.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(),
                         O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

CacheSegmentFile::CacheSegmentFile(std::string path) : path_(std::move(path)) {}

CacheSegmentFile::~CacheSegmentFile() {
  if (fd_ >= 0) ::close(fd_);
}

void CacheSegmentFile::open_fresh() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    stats_.wedged = true;
    return;
  }
  if (!write_all_fd(fd_, kMagic, sizeof(kMagic))) {
    stats_.wedged = true;
    return;
  }
  ::fsync(fd_);
}

void CacheSegmentFile::load(const LoadCallback& cb) {
  std::lock_guard<std::mutex> lock(mu_);

  std::string data;
  if (FILE* f = std::fopen(path_.c_str(), "rb")) {
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
    std::fclose(f);
  }

  struct Rec {
    std::size_t key_off, val_off;
    std::uint32_t key_len, val_len;
    std::size_t frame_bytes;
  };
  std::vector<Rec> recs;
  std::size_t good = 0;
  if (data.size() >= sizeof(kMagic) &&
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
    std::size_t off = sizeof(kMagic);
    good = off;
    while (data.size() - off >= kFrameHeaderBytes + kFrameCrcBytes) {
      const std::uint32_t klen = get_u32le(bytes + off);
      const std::uint32_t vlen = get_u32le(bytes + off + 4);
      if (klen == 0 || klen > kMaxFieldBytes || vlen > kMaxFieldBytes) break;
      const std::size_t payload = kFrameHeaderBytes +
                                  static_cast<std::size_t>(klen) + vlen;
      if (payload + kFrameCrcBytes > data.size() - off) break;  // torn tail
      if (util::crc32(data.data() + off, payload) !=
          get_u32le(bytes + off + payload))
        break;  // torn or corrupt frame: everything after is unframable
      recs.push_back({off + kFrameHeaderBytes,
                      off + kFrameHeaderBytes + klen, klen, vlen,
                      payload + kFrameCrcBytes});
      off += payload + kFrameCrcBytes;
      good = off;
    }
  }
  stats_.torn_bytes = static_cast<std::uint64_t>(data.size() - good);

  // Replay last-write-wins, preserving first-append order for the live set
  // (the cache's LRU seeds in write order, oldest first).
  std::unordered_map<std::string_view, std::size_t> last;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    last[std::string_view(data.data() + recs[i].key_off, recs[i].key_len)] = i;
  }
  std::uint64_t live_bytes = 0;
  std::uint64_t waste_bytes = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Rec& r = recs[i];
    std::string_view key(data.data() + r.key_off, r.key_len);
    if (last[key] != i) {
      ++stats_.superseded;
      waste_bytes += r.frame_bytes;
      continue;
    }
    ++stats_.loaded;
    live_bytes += r.frame_bytes;
    cb(std::string(key),
       std::string(data.data() + r.val_off, r.val_len));
  }

  const bool torn = good < data.size();
  if (waste_bytes > live_bytes && waste_bytes > 4096) {
    // Compact: rewrite the live set to a temp segment, fsync, rename over
    // the old file. A crash anywhere leaves either the old file (with its
    // recoverable tail) or the complete new one — never a mix.
    std::string out(kMagic, sizeof(kMagic));
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const Rec& r = recs[i];
      std::string_view key(data.data() + r.key_off, r.key_len);
      if (last[key] != i) continue;
      frame_record(out, key,
                   std::string_view(data.data() + r.val_off, r.val_len));
    }
    const std::string tmp = path_ + ".compact";
    const int tfd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (tfd >= 0 && write_all_fd(tfd, out.data(), out.size())) {
      ::fsync(tfd);
      ::close(tfd);
      if (::rename(tmp.c_str(), path_.c_str()) == 0) {
        fsync_parent_dir(path_);
        ++stats_.compactions;
        fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
        if (fd_ < 0) stats_.wedged = true;
        return;
      }
    }
    if (tfd >= 0) ::close(tfd);
    // Compaction failed; fall through and keep appending to the old file.
  }

  if (good < sizeof(kMagic)) {
    // Missing, empty, or unrecognizable header: start a fresh segment.
    open_fresh();
    return;
  }
  if (torn && ::truncate(path_.c_str(), static_cast<off_t>(good)) != 0) {
    // Could not cut the torn tail; appending after it would be unframable.
    stats_.wedged = true;
    return;
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) stats_.wedged = true;
}

void CacheSegmentFile::append(std::string_view key, std::string_view value) {
  if (key.empty() || key.size() > kMaxFieldBytes ||
      value.size() > kMaxFieldBytes)
    return;
  std::string rec;
  rec.reserve(kFrameHeaderBytes + key.size() + value.size() + kFrameCrcBytes);
  frame_record(rec, key, value);

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || stats_.wedged) return;
  std::uint64_t cut = 0;
  if (fi::serve_fault_checkpoint(fi::ServeFault::CacheTornWrite, &cut)) {
    // Injected crash mid-write: persist only a prefix of the frame and stop
    // persisting, exactly what dying between write() and completion leaves
    // behind. The next load() must truncate this tail.
    if (cut == 0 || cut >= rec.size()) cut = rec.size() / 2;
    write_all_fd(fd_, rec.data(), static_cast<std::size_t>(cut));
    ::fsync(fd_);
    stats_.wedged = true;
    return;
  }
  if (!write_all_fd(fd_, rec.data(), rec.size())) {
    stats_.wedged = true;
    return;
  }
  ::fsync(fd_);
  ++stats_.appends;
}

SegmentStats CacheSegmentFile::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hlp::serve
