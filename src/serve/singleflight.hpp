#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hlp::serve {

/// Duplicate-suppression for concurrent identical work.
///
/// `run(key, fn)` executes `fn` at most once per key *generation*: the
/// first caller (the leader) runs it while any concurrent caller with the
/// same key blocks and receives the leader's result — including a thrown
/// exception, which is rethrown in every waiter. Once a generation
/// completes its key is retired, so a later call starts a fresh flight
/// (the result cache, not the flight table, provides memoization).
///
/// Keys are opaque; the service keys flights on cache key + budget fields,
/// so only requests that would do byte-identical work coalesce
/// (DESIGN.md §9).
class SingleFlight {
 public:
  struct Result {
    std::string value;
    bool leader = false;  ///< true: this caller executed fn
  };

  Result run(const std::string& key, const std::function<std::string()>& fn);

 private:
  struct Call {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string value;
    std::exception_ptr error;
  };

  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Call>> calls_;
};

}  // namespace hlp::serve
