#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "exec/exec.hpp"
#include "jobs/kernels.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/singleflight.hpp"

namespace hlp::serve {

/// Kernel execution hook. Defaults to jobs::run_kernel; tests substitute a
/// counting or blocking kernel to observe single-flight and shed behavior.
using Executor = std::function<jobs::AttemptOutcome(const jobs::KernelRequest&,
                                                    const exec::Budget&)>;

struct ServiceOptions {
  std::size_t cache_bytes = 8u << 20;  ///< 0 disables the result cache
  std::size_t cache_shards = 8;
  /// Maximum estimate requests executing at once across all connections;
  /// beyond it requests are answered "shed" immediately. 0 = unlimited.
  int max_inflight = 0;
  /// Service-wide budget ceilings; a request's own budget fields are
  /// clamped to these. 0 = no ceiling.
  double ceiling_deadline_seconds = 0.0;
  std::size_t ceiling_node_cap = 0;
  std::size_t ceiling_step_quota = 0;
  std::size_t ceiling_memory_cap_bytes = 0;
  Executor executor;  ///< empty = jobs::run_kernel
};

/// Point-in-time service counters (monotone except inflight/draining and
/// the cache working-set fields).
struct ServiceMetrics {
  std::uint64_t requests = 0;   ///< lines received (any op, incl. malformed)
  std::uint64_t estimates = 0;  ///< estimate requests admitted past shed/drain
  std::uint64_t hits = 0;       ///< served from the result cache
  std::uint64_t misses = 0;     ///< kernel executions led by this request
  std::uint64_t coalesced = 0;  ///< waited on another request's execution
  std::uint64_t shed = 0;       ///< refused by admission control
  std::uint64_t refused = 0;    ///< refused because the service is draining
  std::uint64_t errors = 0;     ///< malformed / invalid-input / kernel errors
  int inflight = 0;
  bool draining = false;
  CacheStats cache;
  std::uint64_t p50_us = 0;  ///< estimate-latency percentiles (log buckets)
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
};

/// Metrics wire form: {"ok":true,"op":"metrics",...} — counters first
/// (hits/misses/coalesced/shed are what parse_response surfaces), then
/// cache and latency detail.
std::string serialize_metrics(const ServiceMetrics& m);

/// Lock-free log-scale latency histogram: bucket i holds samples whose
/// microsecond count has bit width i, so percentiles are exact to a factor
/// of two — enough to tell a cache hit from a kernel run.
class LatencyHistogram {
 public:
  void record(std::uint64_t us);
  /// p in [0,1]; returns the upper bound of the bucket containing the
  /// p-quantile (0 when empty).
  std::uint64_t percentile(double p) const;

 private:
  static constexpr int kBuckets = 40;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The estimation service: protocol handling, content-addressed result
/// cache, single-flight deduplication, admission control, drain.
///
/// Thread-safe: handle_line may be called concurrently from any number of
/// connection threads. Everything transport-level (framing, sockets) lives
/// in Server; Service maps one request line to one response line.
///
/// Cache key (DESIGN.md §9): kind | structural fingerprint of the built
/// design | seed | budget-*irrelevant* kernel parameters. Budget fields
/// are deliberately excluded — a completed, non-degraded result is
/// budget-invariant (a budget trip surfaces as ok=false or degraded=true,
/// and only ok && !degraded results are cached). The single-flight key
/// appends the budget fields, so concurrent requests share one execution
/// only when they would do byte-identical work.
class Service {
 public:
  explicit Service(ServiceOptions opts = {});

  /// One request line (newline excluded) -> one response line (newline
  /// excluded). Never throws; protocol and kernel failures become
  /// {"ok":false,...} responses.
  std::string handle_line(std::string_view line);

  ServiceMetrics metrics() const;

  /// After begin_drain(), estimate requests are answered "draining";
  /// metrics and ping still work so shutdown can be observed.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Derived request identity, exposed for tests and tooling.
  struct Keys {
    std::string cache_key;
    std::string flight_key;
    std::uint64_t seed = 0;  ///< effective seed (derived when not given)
  };
  /// Throws std::invalid_argument for an unbuildable design.
  Keys keys(const Request& rq);

 private:
  std::string handle_estimate(const Request& rq);
  /// Id-less response body for the request; runs under single-flight.
  std::string compute_response(const Request& rq, std::uint64_t seed);
  std::uint64_t fingerprint(jobs::JobKind kind, const std::string& design);
  exec::Budget budget_for(const Request& rq) const;

  ServiceOptions opts_;
  ResultCache cache_;
  SingleFlight flights_;
  LatencyHistogram latency_;

  std::mutex fp_mu_;
  std::unordered_map<std::string, std::uint64_t> fp_memo_;

  std::atomic<bool> draining_{false};
  std::atomic<int> inflight_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> estimates_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace hlp::serve
