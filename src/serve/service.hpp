#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "exec/exec.hpp"
#include "jobs/kernels.hpp"
#include "model/features.hpp"
#include "model/registry.hpp"
#include "sandbox/quarantine.hpp"
#include "sandbox/sandbox.hpp"
#include "serve/cache.hpp"
#include "serve/cachefile.hpp"
#include "serve/protocol.hpp"
#include "serve/singleflight.hpp"
#include "serve/workerpool.hpp"

namespace hlp::serve {

/// Kernel execution hook. Defaults to jobs::run_kernel; tests substitute a
/// counting or blocking kernel to observe single-flight and shed behavior.
/// Runs on a pool worker thread (or the connection thread when workers=0);
/// the budget's CancelToken is the request's abandonment signal — a
/// deadline-abandoned or drain-cancelled executor should observe it and
/// return promptly.
using Executor = std::function<jobs::AttemptOutcome(const jobs::KernelRequest&,
                                                    const exec::Budget&)>;

/// Which request kinds execute inside a forked sandbox child (DESIGN.md
/// §11). `Symbolic` — the default — isolates only the kinds with
/// exponential worst cases (BDD-based symbolic estimation); cheap sampled
/// and closed-form kinds stay in-process. `All` forks every kernel.
enum class IsolateMode : std::uint8_t { Off, Symbolic, All };

const char* to_string(IsolateMode m);
bool parse_isolate_mode(std::string_view s, IsolateMode& out);

struct ServiceOptions {
  std::size_t cache_bytes = 8u << 20;  ///< 0 disables the result cache
  std::size_t cache_shards = 8;
  /// Maximum estimate requests executing at once across all connections;
  /// beyond it requests are answered "shed" immediately. 0 = unlimited.
  int max_inflight = 0;
  /// Service-wide budget ceilings; a request's own budget fields are
  /// clamped to these. 0 = no ceiling.
  double ceiling_deadline_seconds = 0.0;
  std::size_t ceiling_node_cap = 0;
  std::size_t ceiling_step_quota = 0;
  std::size_t ceiling_memory_cap_bytes = 0;
  /// Kernel execution bulkhead: estimates run on this many pool workers
  /// behind a bounded queue, so connection threads only wait (cancellably)
  /// for results and a stuck kernel cannot wedge its connection. 0 runs
  /// kernels inline on the connection thread (the PR 5 behavior).
  int workers = 4;
  /// Kernel tasks allowed to queue behind the busy workers; at the limit
  /// requests are shed with a retry-after-ms hint. 0 = unbounded.
  std::size_t queue_limit = 256;
  /// Wall-clock deadline applied to estimate requests that do not carry
  /// their own "deadline" (0 = none). The ceiling clamps both.
  double default_deadline_seconds = 0.0;
  /// When a wall deadline trips on a netlist-backed kind, answer with the
  /// tier-0 static bound (degraded:true, never cached) instead of the
  /// "deadline-exceeded" error — a bounded answer beats none.
  bool degrade_on_deadline = false;
  /// Crash-safe persistence: path of the append-only CRC-framed segment
  /// file the result cache spills to (see CacheSegmentFile). Loaded on
  /// construction so a restarted server answers previously-cached designs
  /// warm. Empty = in-memory cache only.
  std::string cache_path;
  /// Macromodel registry file (HLPMODL1, see model::load_models_file),
  /// loaded on construction. Missing or damaged files never prevent
  /// startup — the service just runs without a predicted tier and the load
  /// status is queryable via load_models(). Empty = no models.
  std::string model_path;
  Executor executor;  ///< empty = jobs::run_kernel

  /// Process isolation (DESIGN.md §11): which kinds fork a sandbox child.
  /// Library default is Off (embedders and tests opt in; in-process fakes
  /// and TSan suites must not fork from a threaded process); the hlp_serve
  /// daemon defaults to Symbolic.
  IsolateMode isolate = IsolateMode::Off;
  /// Hard rlimit caps applied inside isolated children (0 = inherit).
  std::size_t isolate_rlimit_as_bytes = 0;
  double isolate_rlimit_cpu_seconds = 0.0;
  /// Wall ceiling for isolated children whose request carries no deadline
  /// (a child must never be unkillable); requests with deadlines use
  /// 1.25x + 50ms like the in-process waiter.
  double isolate_wall_ceiling_seconds = 30.0;

  /// Poison-request quarantine: after `quarantine_threshold` hard child
  /// crashes on one design fingerprint, answer it degraded instead of
  /// re-executing (exponential expiry, see sandbox::Quarantine).
  /// threshold <= 0 disables the breaker.
  int quarantine_threshold = 3;
  double quarantine_base_expiry_seconds = 30.0;
  double quarantine_max_expiry_seconds = 1800.0;
};

/// Point-in-time service counters (monotone except inflight/draining and
/// the working-set gauges).
struct ServiceMetrics {
  std::uint64_t requests = 0;   ///< lines received (any op, incl. malformed)
  std::uint64_t estimates = 0;  ///< estimate requests admitted past shed/drain
  std::uint64_t hits = 0;       ///< served from the result cache
  std::uint64_t misses = 0;     ///< kernel executions led by this request
  std::uint64_t coalesced = 0;  ///< waited on another request's execution
  std::uint64_t shed = 0;       ///< refused by admission control
  std::uint64_t refused = 0;    ///< refused because the service is draining
  std::uint64_t errors = 0;     ///< malformed / invalid-input / kernel errors
  std::uint64_t deadline_exceeded = 0;  ///< wall-deadline abandonments
  std::uint64_t cancelled = 0;  ///< drain/abort-cancelled requests
  std::uint64_t degraded_deadline = 0;  ///< deadline trips degraded to tier-0
  int inflight = 0;
  bool draining = false;
  std::size_t queue_depth = 0;  ///< kernel tasks queued, not yet started
  int busy_workers = 0;
  std::uint64_t warm_entries = 0;  ///< cache entries loaded from the segment
  std::uint64_t persist_appends = 0;
  std::uint64_t persist_torn_bytes = 0;
  std::uint64_t ewma_service_us = 0;  ///< smoothed kernel service time
  CacheStats cache;
  std::uint64_t p50_us = 0;  ///< estimate-latency percentiles (log buckets)
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
};

/// Metrics wire form: {"ok":true,"op":"metrics",...} — counters first
/// (hits/misses/coalesced/shed are what parse_response surfaces), then
/// cache and latency detail.
std::string serialize_metrics(const ServiceMetrics& m);

/// Supervision-tree state answered by {"op":"health"} (DESIGN.md §11):
/// pool capacity and wedge/respawn counters, sandbox crash counters by
/// class, quarantine circuit-breaker state.
struct ServiceHealth {
  int workers = 0;       ///< configured pool size (0 = inline execution)
  int live = 0;          ///< threads currently serving the queue
  int busy = 0;          ///< tasks executing (incl. wedged/superseded)
  int wedged = 0;        ///< busy past deadline, not yet superseded
  std::size_t queue_depth = 0;
  std::uint64_t respawns = 0;  ///< supervisor replacements (one per wedge)
  bool draining = false;
  std::uint64_t isolated = 0;       ///< kernel attempts run in a child
  std::uint64_t child_crashes = 0;  ///< children that died without a frame
  /// Crash counts by sandbox::CrashKind (indexed by the enum).
  std::array<std::uint64_t, 8> crashes_by_kind{};
  std::uint64_t quarantine_trips = 0;
  std::uint64_t quarantine_served = 0;  ///< answered without execution
  std::uint64_t quarantine_probes = 0;
  std::uint64_t quarantine_reopens = 0;
  std::uint64_t quarantine_rehabilitated = 0;
  std::size_t quarantine_open = 0;  ///< fingerprints open right now
  /// Predicted-tier state (DESIGN.md §12).
  std::size_t models_loaded = 0;         ///< registry entries live right now
  std::uint64_t model_predicted = 0;     ///< answered from a macromodel
  std::uint64_t model_escalated = 0;     ///< interval too wide for accuracy
  std::uint64_t model_out_of_hull = 0;   ///< extrapolation refused
  std::uint64_t model_miss = 0;          ///< no model for the family/kind
};

/// Health wire form: {"ok":true,"op":"health",...}.
std::string serialize_health(const ServiceHealth& h);

/// Lock-free log-scale latency histogram: bucket i holds samples whose
/// microsecond count has bit width i, so percentiles are exact to a factor
/// of two — enough to tell a cache hit from a kernel run.
class LatencyHistogram {
 public:
  void record(std::uint64_t us);
  /// p in [0,1]; returns the upper bound of the bucket containing the
  /// p-quantile (0 when empty).
  std::uint64_t percentile(double p) const;

 private:
  static constexpr int kBuckets = 40;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The estimation service: protocol handling, content-addressed result
/// cache (optionally spilled to a crash-safe segment file), single-flight
/// deduplication, worker-pool kernel execution with per-request wall
/// deadlines, load-aware admission control, drain.
///
/// Thread-safe: handle_line may be called concurrently from any number of
/// connection threads. Everything transport-level (framing, sockets) lives
/// in Server; Service maps one request line to one response line.
///
/// Cache key (DESIGN.md §9): kind | structural fingerprint of the built
/// design | seed | budget-*irrelevant* kernel parameters. Budget fields
/// are deliberately excluded — a completed, non-degraded result is
/// budget-invariant (a budget trip surfaces as ok=false or degraded=true,
/// and only ok && !degraded results are cached). The single-flight key
/// appends the budget fields, so concurrent requests share one execution
/// only when they would do byte-identical work.
///
/// Execution path (DESIGN.md §9): the single-flight leader registers a
/// cancellable task, submits the kernel to the pool, and waits on the
/// task's latch with a wall-clock deadline. On expiry it cancels the
/// kernel through the task's CancelToken and answers "deadline-exceeded"
/// (or the tier-0 static bound); the worker finishes in the background,
/// still publishing a completed result to the cache so the work is not
/// wasted. Kernel exceptions never cross the pool boundary — workers
/// classify them into typed error responses, which single-flight hands to
/// every coalesced waiter.
class Service {
 public:
  explicit Service(ServiceOptions opts = {});

  /// One request line (newline excluded) -> one response line (newline
  /// excluded). Never throws; protocol and kernel failures become
  /// {"ok":false,...} responses.
  std::string handle_line(std::string_view line);

  ServiceMetrics metrics() const;
  ServiceHealth health() const;

  /// After begin_drain(), estimate requests are answered "draining";
  /// metrics and ping still work so shutdown can be observed.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Request cooperative cancellation of every in-flight kernel through
  /// its CancelToken; well-behaved kernels answer "cancelled" within a
  /// meter poll. Used by Server::shutdown under a drain deadline.
  void cancel_inflight();

  /// Hard abort: every connection thread still waiting on a kernel answers
  /// "cancelled" immediately, without waiting for the worker (the orphaned
  /// task finishes in the background and is discarded). One-way, like
  /// begin_drain. The escalation when the grace period expires.
  void abort_pending();

  /// Derived request identity, exposed for tests and tooling.
  struct Keys {
    std::string cache_key;
    std::string flight_key;
    std::uint64_t seed = 0;  ///< effective seed (derived when not given)
    std::uint64_t fp = 0;    ///< structural fingerprint (quarantine key)
  };
  /// Throws std::invalid_argument for an unbuildable design.
  Keys keys(const Request& rq);

  /// Outcome of (re)loading the model registry — typed, never a throw, so
  /// operational tooling and tests can assert exactly what happened to a
  /// missing / torn / corrupt / version-skewed artifact file.
  struct ModelsStatus {
    model::ModelFileStatus status = model::ModelFileStatus::Missing;
    std::size_t count = 0;        ///< registry entries after the load
    std::uint64_t torn_bytes = 0;
    std::string error;
    bool ok() const { return status == model::ModelFileStatus::Ok; }
  };
  /// Load (or hot-reload) the macromodel registry from `path`. On success
  /// the new registry atomically replaces the old one (in-flight requests
  /// keep the snapshot they started with); on any failure the previous
  /// registry — possibly none — keeps serving. Thread-safe.
  ModelsStatus load_models(const std::string& path);
  /// Current registry snapshot (may be null). Thread-safe.
  std::shared_ptr<const model::ModelRegistry> models() const;

 private:
  /// Per-execution latch shared by the single-flight leader (waiter side)
  /// and the pool worker (producer side). The leader may abandon the wait
  /// (deadline / abort); shared_ptr keeps the state alive for the worker.
  struct Task {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string body;
    exec::CancelToken cancel;
  };

  std::string handle_estimate(const Request& rq);
  /// Single-flight leader body: execute the kernel (pool or inline) and
  /// return the id-less response body.
  std::string lead_execute(const Request& rq, const Keys& k);
  /// Id-less response for one kernel execution; runs on a pool worker (or
  /// inline). Catches everything. Feeds the quarantine breaker: a
  /// delivered outcome is a success, a child crash a hard failure.
  std::string compute_response(const Request& rq, const Keys& k,
                               const exec::CancelToken& cancel);
  /// True when `kind` executes inside a forked sandbox child.
  bool isolated(jobs::JobKind kind) const;
  /// Run one attempt in a sandbox child and map the RunResult into a
  /// response line plus crash/quarantine bookkeeping.
  std::string isolated_response(const Request& rq, const Keys& k,
                                const jobs::KernelRequest& krq,
                                const exec::Budget& budget);
  /// Answer an open-quarantined fingerprint without executing: tier-0
  /// static bound (degraded, "quarantined" detail) for netlist-backed
  /// kinds, the "quarantined" error class otherwise. Never cached.
  std::string quarantined_response(const Request& rq);
  /// Response for a wall-deadline abandonment: tier-0 static bound when
  /// degrade_on_deadline allows, else the typed error.
  std::string deadline_response(const Request& rq, double limit_seconds);
  /// Predicted-tier attempt for an accuracy-carrying request: answer from
  /// the macromodel when it covers the request and its interval supports
  /// the accuracy; "" means escalate to the real kernel (the miss /
  /// out-of-hull / escalated counter has already been bumped).
  std::string predicted_response(const Request& rq);
  /// Memoized canonical feature extraction (uniform inputs, p = 0.5 — the
  /// statistics serve-time kernels use). Throws like extract_features.
  model::FeatureVector features_for(const std::string& design);
  /// Map the in-flight exception (call inside catch) to a typed error
  /// response. Never throws.
  std::string response_for_current_exception();
  void maybe_cache(const Request& rq, const Keys& k, const std::string& body);
  std::uint64_t fingerprint(jobs::JobKind kind, const std::string& design);
  exec::Budget budget_for(const Request& rq) const;
  std::uint64_t retry_after_ms() const;
  void note_service_time(std::uint64_t us);
  std::uint64_t register_task(const std::shared_ptr<Task>& task);
  void unregister_task(std::uint64_t id);

  ServiceOptions opts_;
  ResultCache cache_;
  SingleFlight flights_;
  LatencyHistogram latency_;
  std::unique_ptr<CacheSegmentFile> segment_;

  std::mutex fp_mu_;
  std::unordered_map<std::string, std::uint64_t> fp_memo_;

  /// Registry snapshot pointer, swapped whole under model_mu_ (readers
  /// copy the shared_ptr and predict lock-free on an immutable registry).
  mutable std::mutex model_mu_;
  std::shared_ptr<const model::ModelRegistry> models_;
  /// Feature-vector memo: extraction builds the netlist and runs static
  /// analysis (~ms); the predicted tier must answer in µs on repeats.
  std::mutex feat_mu_;
  std::unordered_map<std::string, model::FeatureVector> feat_memo_;

  std::mutex task_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Task>> active_tasks_;
  std::uint64_t next_task_id_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> abort_{false};
  std::atomic<int> inflight_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> estimates_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> degraded_deadline_{0};
  std::atomic<std::uint64_t> warm_entries_{0};
  std::atomic<std::uint64_t> ewma_us_{0};
  std::atomic<std::uint64_t> isolated_{0};
  std::atomic<std::uint64_t> child_crashes_{0};
  std::atomic<std::uint64_t> model_predicted_{0};
  std::atomic<std::uint64_t> model_escalated_{0};
  std::atomic<std::uint64_t> model_out_of_hull_{0};
  std::atomic<std::uint64_t> model_miss_{0};
  std::array<std::atomic<std::uint64_t>, 8> crashes_by_kind_{};

  sandbox::Quarantine quarantine_;

  /// Declared last: destroyed first, so workers finish (running any queued
  /// task to completion) while every member their closures touch is alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace hlp::serve
