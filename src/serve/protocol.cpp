#include "serve/protocol.hpp"

#include "util/json.hpp"

namespace hlp::serve {

const char* to_string(Op op) {
  switch (op) {
    case Op::Estimate: return "estimate";
    case Op::Metrics: return "metrics";
    case Op::Ping: return "ping";
    case Op::Health: return "health";
  }
  return "unknown";
}

std::uint64_t compute_retry_after_ms(std::uint64_t ewma_us,
                                     std::uint64_t waiting, int width) {
  if (ewma_us == 0) ewma_us = 1000;  // no observation yet: assume ~1ms
  if (waiting == 0) waiting = 1;     // the retry itself always waits
  if (width < 1) width = 1;
  // Per-request cost in ms, rounded up so sub-millisecond kernels still
  // produce a positive hint; clamp before multiplying so `waiting *
  // per_ms` cannot overflow u64 (waiting is at most queue_limit + workers
  // in practice, but the function must hold its guarantees for any input).
  const std::uint64_t per_ms = ewma_us / 1000 + 1;
  const std::uint64_t cap_units =
      kMaxRetryAfterMs * static_cast<std::uint64_t>(width);
  if (waiting > cap_units / per_ms) return kMaxRetryAfterMs;
  const std::uint64_t ms =
      waiting * per_ms / static_cast<std::uint64_t>(width);
  return ms < 1 ? 1 : (ms > kMaxRetryAfterMs ? kMaxRetryAfterMs : ms);
}

double bounded_retry_delay_seconds(double backoff_seconds,
                                   std::uint64_t retry_after_ms) {
  if (retry_after_ms > kMaxRetryAfterMs) retry_after_ms = kMaxRetryAfterMs;
  double delay = backoff_seconds;
  if (!(delay >= 0.0)) delay = 0.0;  // NaN / negative policy output
  const double hint_s = static_cast<double>(retry_after_ms) / 1000.0;
  if (hint_s > delay) delay = hint_s;  // honor the server
  const double cap_s = static_cast<double>(kMaxRetryAfterMs) / 1000.0;
  return delay > cap_s ? cap_s : delay;
}

namespace {

bool parse_op(std::string_view s, Op& out) {
  for (Op op : {Op::Estimate, Op::Metrics, Op::Ping, Op::Health}) {
    if (s == to_string(op)) {
      out = op;
      return true;
    }
  }
  return false;
}

/// Defaults against which serialize() omits fields (one source of truth
/// for both directions).
const Request kDefaults{};

}  // namespace

std::string Request::serialize() const {
  std::string s = "{\"op\":";
  util::append_json_string(s, to_string(op));
  if (!id.empty()) util::append_field(s, "id", id);
  if (op == Op::Estimate) {
    util::append_field(s, "kind", jobs::to_string(kind));
    util::append_field(s, "design", design);
    if (has_seed) util::append_field(s, "seed", seed);
    if (epsilon != kDefaults.epsilon)
      util::append_field(s, "epsilon", epsilon);
    if (confidence != kDefaults.confidence)
      util::append_field(s, "confidence", confidence);
    if (min_pairs != kDefaults.min_pairs)
      util::append_field(s, "min-pairs",
                         static_cast<std::uint64_t>(min_pairs));
    if (max_pairs != kDefaults.max_pairs)
      util::append_field(s, "max-pairs",
                         static_cast<std::uint64_t>(max_pairs));
    if (max_iters != kDefaults.max_iters)
      util::append_field(s, "max-iters", max_iters);
    if (deadline_seconds != 0.0)
      util::append_field(s, "deadline", deadline_seconds);
    if (node_cap != 0)
      util::append_field(s, "node-cap", static_cast<std::uint64_t>(node_cap));
    if (step_quota != 0)
      util::append_field(s, "step-quota",
                         static_cast<std::uint64_t>(step_quota));
    if (memory_cap_bytes != 0)
      util::append_field(s, "memory-cap",
                         static_cast<std::uint64_t>(memory_cap_bytes));
    if (!use_cache) util::append_field(s, "cache", false);
    if (has_accuracy) util::append_field(s, "accuracy", accuracy);
  }
  s.push_back('}');
  return s;
}

bool Request::parse(std::string_view line, Request& out, std::string& error) {
  if (line.size() > kMaxLineBytes) {
    error = "line exceeds " + std::to_string(kMaxLineBytes) + " bytes";
    return false;
  }
  util::JsonCursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) {
    error = "not a JSON object";
    return false;
  }
  Request r;
  bool have_op = false;
  // Which estimate-only keys appeared, so metrics/ping can reject them.
  bool estimate_keys = false;
  std::uint32_t seen = 0;
  auto mark = [&seen](int bit) {
    if (seen & (1u << bit)) return false;
    seen |= 1u << bit;
    return true;
  };
  auto fail = [&error](const char* what) {
    error = what;
    return false;
  };

  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return fail("expected ',' or '}'");
    if (first && c.at_end()) return fail("unterminated object");
    first = false;
    std::string key;
    if (!util::parse_json_string(c, key)) return fail("bad key string");
    if (!c.eat(':')) return fail("expected ':'");

    if (key == "op") {
      std::string v;
      if (!mark(0) || !util::parse_json_string(c, v))
        return fail("bad op value");
      if (!parse_op(v, r.op)) return fail("unknown op");
      have_op = true;
    } else if (key == "id") {
      if (!mark(1) || !util::parse_json_string(c, r.id))
        return fail("bad id value");
    } else if (key == "kind") {
      std::string v;
      if (!mark(2) || !util::parse_json_string(c, v))
        return fail("bad kind value");
      if (!jobs::parse_job_kind(v, r.kind) || r.kind == jobs::JobKind::Custom)
        return fail("unknown kind (symbolic, monte-carlo, markov, schedule)");
      estimate_keys = true;
    } else if (key == "design") {
      if (!mark(3) || !util::parse_json_string(c, r.design))
        return fail("bad design value");
      estimate_keys = true;
    } else if (key == "seed") {
      if (!mark(4) || !util::number_as(util::number_token(c), r.seed))
        return fail("bad seed value");
      r.has_seed = true;
      estimate_keys = true;
    } else if (key == "epsilon") {
      if (!mark(5) || !util::number_as(util::number_token(c), r.epsilon))
        return fail("bad epsilon value");
      if (!(r.epsilon > 0.0 && r.epsilon <= 1.0))
        return fail("epsilon must be in (0, 1]");
      estimate_keys = true;
    } else if (key == "confidence") {
      if (!mark(6) || !util::number_as(util::number_token(c), r.confidence))
        return fail("bad confidence value");
      if (!(r.confidence > 0.0 && r.confidence < 1.0))
        return fail("confidence must be in (0, 1)");
      estimate_keys = true;
    } else if (key == "min-pairs") {
      if (!mark(7) || !util::number_as(util::number_token(c), r.min_pairs))
        return fail("bad min-pairs value");
      estimate_keys = true;
    } else if (key == "max-pairs") {
      if (!mark(8) || !util::number_as(util::number_token(c), r.max_pairs))
        return fail("bad max-pairs value");
      estimate_keys = true;
    } else if (key == "max-iters") {
      if (!mark(9) || !util::number_as(util::number_token(c), r.max_iters))
        return fail("bad max-iters value");
      if (r.max_iters < 1) return fail("max-iters must be >= 1");
      estimate_keys = true;
    } else if (key == "deadline") {
      if (!mark(10) ||
          !util::number_as(util::number_token(c), r.deadline_seconds))
        return fail("bad deadline value");
      if (!(r.deadline_seconds >= 0.0))
        return fail("deadline must be non-negative");
      estimate_keys = true;
    } else if (key == "node-cap") {
      if (!mark(11) || !util::number_as(util::number_token(c), r.node_cap))
        return fail("bad node-cap value");
      estimate_keys = true;
    } else if (key == "step-quota") {
      if (!mark(12) || !util::number_as(util::number_token(c), r.step_quota))
        return fail("bad step-quota value");
      estimate_keys = true;
    } else if (key == "memory-cap") {
      if (!mark(13) ||
          !util::number_as(util::number_token(c), r.memory_cap_bytes))
        return fail("bad memory-cap value");
      estimate_keys = true;
    } else if (key == "cache") {
      if (!mark(14) || !util::parse_json_bool(c, r.use_cache))
        return fail("bad cache value");
      estimate_keys = true;
    } else if (key == "accuracy") {
      if (!mark(15) || !util::number_as(util::number_token(c), r.accuracy))
        return fail("bad accuracy value");
      if (!(r.accuracy > 0.0 && r.accuracy <= 1.0))
        return fail("accuracy must be in (0, 1]");
      r.has_accuracy = true;
      estimate_keys = true;
    } else {
      return fail("unknown key");  // refuse to half-read a damaged line
    }
  }
  if (!util::only_trailing_ws(c)) return fail("trailing garbage");
  if (!have_op) return fail("missing op");
  if (r.op == Op::Estimate) {
    if (r.design.empty()) return fail("estimate needs a design");
  } else if (estimate_keys) {
    return fail("estimate-only key on a non-estimate request");
  }
  out = std::move(r);
  return true;
}

std::string make_value_response(std::string_view id, double value,
                                std::string_view detail, bool degraded) {
  std::string s = "{\"ok\":true";
  if (!id.empty()) util::append_field(s, "id", id);
  util::append_field(s, "value", value);
  util::append_field(s, "detail", detail);
  util::append_field(s, "degraded", degraded);
  s.push_back('}');
  return s;
}

std::string make_error_response(std::string_view id, std::string_view error,
                                std::string_view detail,
                                std::uint64_t retry_after_ms) {
  std::string s = "{\"ok\":false";
  if (!id.empty()) util::append_field(s, "id", id);
  util::append_field(s, "error", error);
  util::append_field(s, "detail", detail);
  if (retry_after_ms > 0)
    util::append_field(s, "retry-after-ms", retry_after_ms);
  s.push_back('}');
  return s;
}

std::string make_predicted_response(std::string_view id, double value,
                                    double interval_lo, double interval_hi,
                                    std::string_view detail) {
  std::string s = "{\"ok\":true";
  if (!id.empty()) util::append_field(s, "id", id);
  util::append_field(s, "value", value);
  util::append_field(s, "detail", detail);
  util::append_field(s, "degraded", false);
  util::append_field(s, "tier", "predicted");
  util::append_field(s, "interval-lo", interval_lo);
  util::append_field(s, "interval-hi", interval_hi);
  s.push_back('}');
  return s;
}

std::string make_ping_response() { return "{\"ok\":true,\"op\":\"ping\"}"; }

bool parse_response(std::string_view line, ResponseView& out) {
  if (line.size() > kMaxLineBytes) return false;
  util::JsonCursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  ResponseView r;
  bool have_ok = false;
  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return false;
    if (first && c.at_end()) return false;
    first = false;
    std::string key;
    if (!util::parse_json_string(c, key)) return false;
    if (!c.eat(':')) return false;

    if (key == "ok") {
      if (!util::parse_json_bool(c, r.ok)) return false;
      have_ok = true;
    } else if (key == "id") {
      if (!util::parse_json_string(c, r.id)) return false;
    } else if (key == "error") {
      if (!util::parse_json_string(c, r.error)) return false;
    } else if (key == "detail") {
      if (!util::parse_json_string(c, r.detail)) return false;
    } else if (key == "value") {
      if (!util::number_as(util::number_token(c), r.value)) return false;
      r.has_value = true;
    } else if (key == "degraded") {
      if (!util::parse_json_bool(c, r.degraded)) return false;
    } else if (key == "retry-after-ms") {
      if (!util::number_as(util::number_token(c), r.retry_after_ms))
        return false;
    } else if (key == "hits") {
      if (!util::number_as(util::number_token(c), r.hits)) return false;
    } else if (key == "misses") {
      if (!util::number_as(util::number_token(c), r.misses)) return false;
    } else if (key == "coalesced") {
      if (!util::number_as(util::number_token(c), r.coalesced)) return false;
    } else if (key == "shed") {
      if (!util::number_as(util::number_token(c), r.shed)) return false;
    } else if (key == "tier") {
      if (!util::parse_json_string(c, r.tier)) return false;
    } else if (key == "interval-lo") {
      if (!util::number_as(util::number_token(c), r.interval_lo)) return false;
      r.has_interval = true;
    } else if (key == "interval-hi") {
      if (!util::number_as(util::number_token(c), r.interval_hi)) return false;
      r.has_interval = true;
    } else {
      // Tolerant: skip an unknown key's value, whatever its shape.
      if (!c.at_end() && *c.p == '"') {
        std::string dummy;
        if (!util::parse_json_string(c, dummy)) return false;
      } else if (!c.at_end() && (*c.p == 't' || *c.p == 'f')) {
        bool dummy;
        if (!util::parse_json_bool(c, dummy)) return false;
      } else {
        if (util::number_token(c).empty()) return false;
      }
    }
  }
  if (!util::only_trailing_ws(c)) return false;
  if (!have_ok) return false;
  out = std::move(r);
  return true;
}

}  // namespace hlp::serve
