#include "serve/singleflight.hpp"

#include <utility>

namespace hlp::serve {

SingleFlight::Result SingleFlight::run(const std::string& key,
                                       const std::function<std::string()>& fn) {
  std::shared_ptr<Call> call;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = calls_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Call>();
      leader = true;
    }
    call = it->second;
  }

  if (leader) {
    try {
      std::string value = fn();
      std::lock_guard<std::mutex> lock(call->mu);
      call->value = std::move(value);
      call->done = true;
    } catch (...) {
      std::lock_guard<std::mutex> lock(call->mu);
      call->error = std::current_exception();
      call->done = true;
    }
    {
      // Retire the generation before waking waiters: a caller arriving
      // after this point starts a fresh flight.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = calls_.find(key);
      if (it != calls_.end() && it->second == call) calls_.erase(it);
    }
    call->cv.notify_all();
    if (call->error) std::rethrow_exception(call->error);
    return Result{call->value, true};
  }

  std::unique_lock<std::mutex> lock(call->mu);
  call->cv.wait(lock, [&] { return call->done; });
  if (call->error) std::rethrow_exception(call->error);
  return Result{call->value, false};
}

}  // namespace hlp::serve
