#include "serve/cache.hpp"

#include "util/hash.hpp"

namespace hlp::serve {

namespace {

std::size_t entry_bytes(std::string_view key, std::string_view value) {
  return key.size() + value.size() + ResultCache::kEntryOverhead;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity_bytes, std::size_t shards)
    : n_shards_(shards == 0 ? 1 : shards) {
  shard_cap_ = capacity_bytes / n_shards_;
  shards_ = std::make_unique<Shard[]>(n_shards_);
}

ResultCache::Shard& ResultCache::shard_for(std::string_view key) {
  util::Fnv1a64 h;
  h.bytes(key.data(), key.size());
  return shards_[h.digest() % n_shards_];
}

bool ResultCache::lookup(std::string_view key, std::string& value_out) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  value_out = it->second->value;
  ++s.hits;
  return true;
}

void ResultCache::insert(std::string_view key, std::string value) {
  const std::size_t cost = entry_bytes(key, value);
  if (cost > shard_cap_) return;  // would thrash the whole shard; refuse
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= entry_bytes(it->second->key, it->second->value);
    it->second->value = std::move(value);
    s.bytes += entry_bytes(it->second->key, it->second->value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  while (s.bytes + cost > shard_cap_ && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= entry_bytes(victim.key, victim.value);
    s.index.erase(std::string_view(victim.key));
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.push_front(Entry{std::string(key), std::move(value)});
  s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
  s.bytes += cost;
  ++s.insertions;
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  for (std::size_t i = 0; i < n_shards_; ++i) {
    const Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.entries += s.lru.size();
    out.bytes += s.bytes;
  }
  return out;
}

}  // namespace hlp::serve
