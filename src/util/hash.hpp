#pragma once

// Streaming FNV-1a 64 with a splitmix64 finalizer — the hash behind every
// canonical structural fingerprint (netlist / CDFG / STG). Deterministic
// across processes and platforms; not cryptographic. Keyed surfaces that
// need collision *safety* (the serve result cache) therefore store and
// compare the full canonical key string and use the hash only to pick a
// shard / bucket.

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace hlp::util {

class Fnv1a64 {
 public:
  void bytes(const void* p, std::size_t n) {
    const unsigned char* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= c[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= v & 0xff;
      h_ *= 0x100000001b3ull;
      v >>= 8;
    }
  }
  void u32(std::uint32_t v) { u64(v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Finalized digest (splitmix64 avalanche over the running FNV state).
  std::uint64_t digest() const {
    std::uint64_t h = h_ + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// This is the *framing* checksum for durable on-disk records (the serve
/// cache segment file): unlike Fnv1a64 it detects the torn/partial writes a
/// crash leaves behind with the standard error-detection guarantees, and
/// its value is fixed by the public standard so files survive toolchain
/// changes. Chain blocks by passing the previous return value as `seed`.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static constexpr std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return ~c;
}

}  // namespace hlp::util
