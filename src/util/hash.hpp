#pragma once

// Streaming FNV-1a 64 with a splitmix64 finalizer — the hash behind every
// canonical structural fingerprint (netlist / CDFG / STG). Deterministic
// across processes and platforms; not cryptographic. Keyed surfaces that
// need collision *safety* (the serve result cache) therefore store and
// compare the full canonical key string and use the hash only to pick a
// shard / bucket.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hlp::util {

class Fnv1a64 {
 public:
  void bytes(const void* p, std::size_t n) {
    const unsigned char* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= c[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= v & 0xff;
      h_ *= 0x100000001b3ull;
      v >>= 8;
    }
  }
  void u32(std::uint32_t v) { u64(v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Finalized digest (splitmix64 avalanche over the running FNV state).
  std::uint64_t digest() const {
    std::uint64_t h = h_ + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace hlp::util
