#pragma once

// Canonical flat-JSON primitives shared by every line-oriented JSON surface
// in the toolkit: the campaign ledger (src/jobs/ledger.cpp), the BENCH_*.json
// reports (bench/bench_json.hpp), and the estimation-service wire protocol
// (src/serve/protocol.cpp). One escaping/formatting policy lives here so the
// round-trip guarantees those surfaces advertise — serialize(parse(line))
// byte-identical — rest on a single implementation:
//
//  - strings escape `"` `\` and all control characters (`\n` `\t` `\r`
//    named, the rest as `\u00XX`); parsing accepts the full JSON escape set
//    including `\uXXXX` basic-plane code points (encoded back as UTF-8,
//    surrogates rejected);
//  - doubles use shortest-round-trip `to_chars` formatting;
//  - numbers re-parse through `from_chars` with the *target* type, so an
//    integer field rejects "1.5" while a double field accepts it.

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace hlp::util {

/// Append `s` as a quoted, escaped JSON string.
inline void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

/// Append a double in shortest form that round-trips exactly.
inline void append_json_double(std::string& out, double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // shortest form of a double always fits
  out.append(buf, end);
}

/// `,"key":<value>` appenders for building flat objects field by field.
/// Callers open the object with its first field themselves (no comma).
inline void append_field(std::string& out, const char* key,
                         std::string_view v) {
  out.push_back(',');
  out += '"';
  out += key;
  out += "\":";
  append_json_string(out, v);
}

inline void append_field(std::string& out, const char* key, std::uint64_t v) {
  out.push_back(',');
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

inline void append_field(std::string& out, const char* key, int v) {
  append_field(out, key, static_cast<std::uint64_t>(v < 0 ? 0 : v));
}

inline void append_field(std::string& out, const char* key, double v) {
  out.push_back(',');
  out += '"';
  out += key;
  out += "\":";
  append_json_double(out, v);
}

inline void append_field(std::string& out, const char* key, bool v) {
  out.push_back(',');
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

/// A C-string value would otherwise overload-resolve to bool (a standard
/// conversion beats the user-defined one to string_view); route it to the
/// string appender explicitly.
inline void append_field(std::string& out, const char* key, const char* v) {
  append_field(out, key, std::string_view(v));
}

// --- parsing ---------------------------------------------------------------

/// Byte cursor over one line of flat JSON.
struct JsonCursor {
  const char* p;
  const char* end;
  bool at_end() const { return p == end; }
  bool eat(char c) {
    if (p != end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

/// Parse a quoted JSON string into `out`. Returns false on any
/// malformation: unterminated, raw control character (a truncated line cut
/// mid-escape), bad escape, or a surrogate code point (the writer never
/// emits one — `\u` is only used for control characters).
inline bool parse_json_string(JsonCursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (!c.at_end()) {
    unsigned char ch = static_cast<unsigned char>(*c.p++);
    if (ch == '"') return true;
    if (ch < 0x20) return false;  // raw control char: malformed/truncated
    if (ch != '\\') {
      out.push_back(static_cast<char>(ch));
      continue;
    }
    if (c.at_end()) return false;
    char esc = *c.p++;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c.end - c.p < 4) return false;
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
          char h = *c.p++;
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (v >= 0xD800 && v <= 0xDFFF) return false;
        if (v < 0x80) {
          out.push_back(static_cast<char>(v));
        } else if (v < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (v >> 6)));
          out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (v >> 12)));
          out.push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

/// The raw text of a number token; re-parse it with `number_as` so the
/// target type decides what is acceptable.
inline std::string_view number_token(JsonCursor& c) {
  const char* start = c.p;
  while (!c.at_end() &&
         (*c.p == '-' || *c.p == '+' || *c.p == '.' || *c.p == 'e' ||
          *c.p == 'E' || (*c.p >= '0' && *c.p <= '9')))
    ++c.p;
  return {start, static_cast<std::size_t>(c.p - start)};
}

template <typename T>
bool number_as(std::string_view tok, T& out) {
  if (tok.empty()) return false;
  auto [rest, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && rest == tok.data() + tok.size();
}

/// Parse a literal `true`/`false`.
inline bool parse_json_bool(JsonCursor& c, bool& out) {
  if (c.end - c.p >= 4 && std::string_view(c.p, 4) == "true") {
    out = true;
    c.p += 4;
    return true;
  }
  if (c.end - c.p >= 5 && std::string_view(c.p, 5) == "false") {
    out = false;
    c.p += 5;
    return true;
  }
  return false;
}

/// True when only trailing whitespace remains — the tail check every
/// strict line parser performs after the closing brace.
inline bool only_trailing_ws(JsonCursor& c) {
  while (!c.at_end()) {
    if (*c.p != ' ' && *c.p != '\t' && *c.p != '\r') return false;
    ++c.p;
  }
  return true;
}

}  // namespace hlp::util
