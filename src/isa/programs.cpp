#include "isa/programs.hpp"

#include "stats/rng.hpp"

namespace hlp::isa {
namespace {

// Register conventions for generated programs.
constexpr int rZero = 0;   // always 0 by convention (never written)
constexpr int rIdx = 1;    // loop index
constexpr int rLim = 2;    // loop limit
constexpr int rTmp = 3;
constexpr int rTmp2 = 4;
constexpr int rAcc = 5;
constexpr int rBase = 6;   // array a base
constexpr int rBase2 = 7;  // array b base
constexpr int rBase3 = 8;  // array c base
constexpr int rK = 9;      // scalar constant

}  // namespace

Program fig2_with_memory_temp(int n) {
  // for i: b[i] = a[i] * k;            (store to memory)
  // for i: c[i] = b[i] + k;            (load from memory)
  Program p;
  auto& c = p.code;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(make_i(Opcode::Li, rLim, 0, n));
  c.push_back(make_i(Opcode::Li, rBase, 0, 0));
  c.push_back(make_i(Opcode::Li, rBase2, 0, n));
  c.push_back(make_i(Opcode::Li, rBase3, 0, 2 * n));
  c.push_back(make_i(Opcode::Li, rK, 0, 3));
  // Loop 1 (6 instructions): body at index 6.
  std::int32_t loop1 = static_cast<std::int32_t>(c.size());
  c.push_back(make_r(Opcode::Add, rTmp2, rBase, rIdx));
  c.push_back(make_i(Opcode::Ld, rTmp, rTmp2, 0));         // a[i]
  c.push_back(make_r(Opcode::Mul, rTmp, rTmp, rK));
  c.push_back(make_r(Opcode::Add, rTmp2, rBase2, rIdx));
  c.push_back(make_r(Opcode::St, 0, rTmp2, rTmp));         // b[i] = ...
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop1 - static_cast<std::int32_t>(c.size())));
  // Loop 2.
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  std::int32_t loop2 = static_cast<std::int32_t>(c.size());
  c.push_back(make_r(Opcode::Add, rTmp2, rBase2, rIdx));
  c.push_back(make_i(Opcode::Ld, rTmp, rTmp2, 0));         // b[i]
  c.push_back(make_r(Opcode::Add, rTmp, rTmp, rK));
  c.push_back(make_r(Opcode::Add, rTmp2, rBase3, rIdx));
  c.push_back(make_r(Opcode::St, 0, rTmp2, rTmp));         // c[i] = ...
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop2 - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

Program fig2_register_temp(int n) {
  // for i: t = a[i] * k; c[i] = t + k;   (t stays in a register)
  Program p;
  auto& c = p.code;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(make_i(Opcode::Li, rLim, 0, n));
  c.push_back(make_i(Opcode::Li, rBase, 0, 0));
  c.push_back(make_i(Opcode::Li, rBase3, 0, 2 * n));
  c.push_back(make_i(Opcode::Li, rK, 0, 3));
  std::int32_t loop = static_cast<std::int32_t>(c.size());
  c.push_back(make_r(Opcode::Add, rTmp2, rBase, rIdx));
  c.push_back(make_i(Opcode::Ld, rTmp, rTmp2, 0));   // a[i]
  c.push_back(make_r(Opcode::Mul, rTmp, rTmp, rK));  // t = a[i]*k
  c.push_back(make_r(Opcode::Add, rTmp, rTmp, rK));  // t + k
  c.push_back(make_r(Opcode::Add, rTmp2, rBase3, rIdx));
  c.push_back(make_r(Opcode::St, 0, rTmp2, rTmp));   // c[i]
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

Program dsp_kernel(int taps, int iters) {
  Program p;
  auto& c = p.code;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));           // sample index
  c.push_back(make_i(Opcode::Li, rLim, 0, iters));
  c.push_back(make_i(Opcode::Li, rBase, 0, 0));          // samples base
  c.push_back(make_i(Opcode::Li, rBase2, 0, 4096));      // coeff base
  std::int32_t outer = static_cast<std::int32_t>(c.size());
  c.push_back(make_i(Opcode::Li, rAcc, 0, 0));
  for (int t = 0; t < taps; ++t) {
    c.push_back(make_r(Opcode::Add, rTmp2, rBase, rIdx));
    c.push_back(make_i(Opcode::Ld, rTmp, rTmp2, t));       // x[n-t]
    c.push_back(make_i(Opcode::Ld, rTmp2, rBase2, t));     // c[t]
    c.push_back(make_r(Opcode::Mul, rTmp, rTmp, rTmp2));
    c.push_back(make_r(Opcode::Add, rAcc, rAcc, rTmp));
  }
  c.push_back(make_r(Opcode::Add, rTmp2, rBase, rIdx));
  c.push_back(make_r(Opcode::St, 0, rTmp2, rAcc));  // y[n] = acc
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     outer - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

Program array_sum(int rows, int cols) {
  Program p;
  auto& c = p.code;
  int n = rows * cols;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(make_i(Opcode::Li, rLim, 0, n));
  c.push_back(make_i(Opcode::Li, rAcc, 0, 0));
  std::int32_t loop = static_cast<std::int32_t>(c.size());
  c.push_back(make_i(Opcode::Ld, rTmp, rIdx, 0));
  c.push_back(make_r(Opcode::Add, rAcc, rAcc, rTmp));
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

Program random_loads(int span, int iters, std::uint64_t seed) {
  Program p;
  auto& c = p.code;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(make_i(Opcode::Li, rLim, 0, iters));
  // Linear congruential address generator in registers.
  c.push_back(make_i(Opcode::Li, rTmp2, 0,
                     static_cast<std::int32_t>(seed % 65521)));
  c.push_back(make_i(Opcode::Li, rK, 0, 1103));
  std::int32_t loop = static_cast<std::int32_t>(c.size());
  c.push_back(make_r(Opcode::Mul, rTmp2, rTmp2, rK));
  c.push_back(make_i(Opcode::Addi, rTmp2, rTmp2, 12345));
  c.push_back(make_i(Opcode::Li, rTmp, 0, span - 1));
  c.push_back(make_r(Opcode::And, rTmp, rTmp2, rTmp));  // addr = x & mask
  c.push_back(make_i(Opcode::Ld, rAcc, rTmp, 0));
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

Program random_arith(int n, int reps, double mul_frac, std::uint64_t seed) {
  stats::Rng rng(seed);
  Program p;
  auto& c = p.code;
  c.push_back(make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(make_i(Opcode::Li, rLim, 0, reps));
  std::int32_t loop = static_cast<std::int32_t>(c.size());
  for (int i = 0; i < n; ++i) {
    int rd = 3 + static_cast<int>(rng.uniform_int(0, 6));
    int rs1 = 3 + static_cast<int>(rng.uniform_int(0, 6));
    int rs2 = 3 + static_cast<int>(rng.uniform_int(0, 6));
    if (rng.uniform_real() < mul_frac) {
      c.push_back(make_r(Opcode::Mul, rd, rs1, rs2));
    } else {
      static constexpr Opcode kAlu[] = {Opcode::Add, Opcode::Sub, Opcode::And,
                                        Opcode::Or, Opcode::Xor};
      c.push_back(make_r(kAlu[rng.uniform_int(0, 4)], rd, rs1, rs2));
    }
  }
  c.push_back(make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(make_b(Opcode::Bne, rIdx, rLim,
                     loop - static_cast<std::int32_t>(c.size())));
  c.push_back(make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

}  // namespace hlp::isa
