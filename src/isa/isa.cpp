#include "isa/isa.hpp"

#include <stdexcept>

namespace hlp::isa {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Li: return "li";
    case Opcode::Addi: return "addi";
    case Opcode::Ld: return "ld";
    case Opcode::St: return "st";
    case Opcode::Beq: return "beq";
    case Opcode::Bne: return "bne";
    case Opcode::Jmp: return "jmp";
    case Opcode::Halt: return "halt";
  }
  return "?";
}

Instr make_r(Opcode op, int rd, int rs1, int rs2) {
  return {op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs1),
          static_cast<std::uint8_t>(rs2), 0};
}

Instr make_i(Opcode op, int rd, int rs1, std::int32_t imm) {
  return {op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs1),
          0, imm};
}

Instr make_b(Opcode op, int rs1, int rs2, std::int32_t offset) {
  return {op, 0, static_cast<std::uint8_t>(rs1),
          static_cast<std::uint8_t>(rs2), offset};
}

Machine::Machine(MachineConfig cfg) : cfg_(cfg) {
  regs_.assign(static_cast<std::size_t>(cfg_.n_regs), 0);
  mem_.assign(cfg_.mem_words, 0);
  icache_tag_.assign(static_cast<std::size_t>(cfg_.icache_lines), -1);
  dcache_tag_.assign(static_cast<std::size_t>(cfg_.dcache_lines), -1);
}

ExecStats Machine::run(const Program& prog, std::uint64_t max_instructions,
                       bool record_trace) {
  ExecStats st;
  std::int64_t pc = 0;
  int prev_op = -1;
  std::fill(icache_tag_.begin(), icache_tag_.end(), -1);
  std::fill(dcache_tag_.begin(), dcache_tag_.end(), -1);

  auto icache_access = [&](std::int64_t addr) {
    std::int64_t line = addr / cfg_.icache_line_words;
    auto idx = static_cast<std::size_t>(
        line % static_cast<std::int64_t>(cfg_.icache_lines));
    if (icache_tag_[idx] != line) {
      icache_tag_[idx] = line;
      ++st.icache_misses;
      st.cycles += static_cast<std::uint64_t>(cfg_.miss_penalty);
    }
  };
  auto dcache_access = [&](std::int64_t addr) {
    std::int64_t line = addr / cfg_.dcache_line_words;
    auto idx = static_cast<std::size_t>(
        line % static_cast<std::int64_t>(cfg_.dcache_lines));
    if (dcache_tag_[idx] != line) {
      dcache_tag_[idx] = line;
      ++st.dcache_misses;
      st.cycles += static_cast<std::uint64_t>(cfg_.miss_penalty);
    }
  };

  while (st.instructions < max_instructions) {
    if (pc < 0 || pc >= static_cast<std::int64_t>(prog.code.size())) break;
    icache_access(pc);
    const Instr& in = prog.code[static_cast<std::size_t>(pc)];
    ++st.instructions;
    ++st.cycles;
    auto op_idx = static_cast<std::size_t>(in.op);
    ++st.per_opcode[op_idx];
    if (prev_op >= 0)
      ++st.pair[static_cast<std::size_t>(prev_op)][op_idx];
    prev_op = static_cast<int>(op_idx);
    if (record_trace) {
      st.trace.push_back(static_cast<std::uint8_t>(in.op));
      st.pc_trace.push_back(static_cast<std::uint32_t>(pc));
    }

    auto& R = regs_;
    auto rd = static_cast<std::size_t>(in.rd);
    auto rs1 = static_cast<std::size_t>(in.rs1);
    auto rs2 = static_cast<std::size_t>(in.rs2);
    std::int64_t next_pc = pc + 1;
    // Register arithmetic wraps two's-complement, like any real 64-bit
    // machine: compute in uint64 so LCG-style workload programs (multiply
    // by a large constant, shift negative values) stay defined behavior.
    auto u = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
    auto s = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
    switch (in.op) {
      case Opcode::Nop: break;
      case Opcode::Add: R[rd] = s(u(R[rs1]) + u(R[rs2])); break;
      case Opcode::Sub: R[rd] = s(u(R[rs1]) - u(R[rs2])); break;
      case Opcode::Mul: R[rd] = s(u(R[rs1]) * u(R[rs2])); break;
      case Opcode::And: R[rd] = R[rs1] & R[rs2]; break;
      case Opcode::Or: R[rd] = R[rs1] | R[rs2]; break;
      case Opcode::Xor: R[rd] = R[rs1] ^ R[rs2]; break;
      case Opcode::Shl: R[rd] = s(u(R[rs1]) << (in.imm & 63)); break;
      case Opcode::Shr:
        R[rd] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(R[rs1]) >> (in.imm & 63));
        break;
      case Opcode::Li: R[rd] = in.imm; break;
      case Opcode::Addi: R[rd] = R[rs1] + in.imm; break;
      case Opcode::Ld: {
        auto addr = static_cast<std::uint64_t>(R[rs1] + in.imm) %
                    cfg_.mem_words;
        dcache_access(static_cast<std::int64_t>(addr));
        if (record_trace)
          st.addr_trace.push_back(static_cast<std::uint32_t>(addr));
        R[rd] = mem_[addr];
        ++st.mem_reads;
        break;
      }
      case Opcode::St: {
        auto addr = static_cast<std::uint64_t>(R[rs1] + in.imm) %
                    cfg_.mem_words;
        dcache_access(static_cast<std::int64_t>(addr));
        if (record_trace)
          st.addr_trace.push_back(static_cast<std::uint32_t>(addr));
        mem_[addr] = R[rs2];
        ++st.mem_writes;
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne: {
        ++st.branch_instructions;
        bool eq = R[rs1] == R[rs2];
        bool taken = (in.op == Opcode::Beq) ? eq : !eq;
        if (taken) {
          next_pc = pc + in.imm;
          ++st.taken_branches;
          st.cycles += static_cast<std::uint64_t>(cfg_.branch_penalty);
        }
        break;
      }
      case Opcode::Jmp:
        next_pc = pc + in.imm;
        ++st.taken_branches;
        ++st.branch_instructions;
        st.cycles += static_cast<std::uint64_t>(cfg_.branch_penalty);
        break;
      case Opcode::Halt:
        return st;
    }
    pc = next_pc;
  }
  return st;
}

}  // namespace hlp::isa
