#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace hlp::isa {

/// Workload programs for the software-level power experiments.

/// Fig. 2 (left): first loop stores an intermediate array b[i] = a[i] * k to
/// memory, second loop reads it back — 2n extra memory accesses.
Program fig2_with_memory_temp(int n);

/// Fig. 2 (right): fused loop keeps the intermediate in a register.
Program fig2_register_temp(int n);

/// FIR-like DSP kernel: `iters` output samples of a `taps`-tap filter over a
/// circular buffer (mul/add/load heavy).
Program dsp_kernel(int taps, int iters);

/// Dense traversal summing a `rows` x `cols` array — cache-regular loads.
Program array_sum(int rows, int cols);

/// Pointer-chase style random loads over `span` words for `iters` steps —
/// cache-hostile workload.
Program random_loads(int span, int iters, std::uint64_t seed);

/// Straight-line random arithmetic block of `n` instructions repeated
/// `reps` times (loop), with the given fraction of multiplies.
Program random_arith(int n, int reps, double mul_frac, std::uint64_t seed);

}  // namespace hlp::isa
