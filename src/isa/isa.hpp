#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hlp::isa {

/// Opcodes of the tiny load/store ISA used by the software-level power
/// experiments (Section II-A / III-A of the paper). The set is intentionally
/// DSP-flavored: ALU ops, multiply, memory, and branches, so the Tiwari
/// instruction-level model [7] and the profile-driven synthesis flow [8]
/// exercise the same structure they did on real processors.
enum class Opcode : std::uint8_t {
  Nop,
  Add,   // rd = rs1 + rs2
  Sub,   // rd = rs1 - rs2
  Mul,   // rd = rs1 * rs2
  And,   // rd = rs1 & rs2
  Or,    // rd = rs1 | rs2
  Xor,   // rd = rs1 ^ rs2
  Shl,   // rd = rs1 << imm
  Shr,   // rd = rs1 >> imm
  Li,    // rd = imm
  Addi,  // rd = rs1 + imm
  Ld,    // rd = mem[rs1 + imm]
  St,    // mem[rs1 + imm] = rs2
  Beq,   // if rs1 == rs2 goto pc + imm
  Bne,   // if rs1 != rs2 goto pc + imm
  Jmp,   // goto pc + imm
  Halt,
};
inline constexpr int kNumOpcodes = 17;

const char* opcode_name(Opcode op);

struct Instr {
  Opcode op = Opcode::Nop;
  std::uint8_t rd = 0, rs1 = 0, rs2 = 0;
  std::int32_t imm = 0;
};

struct Program {
  std::vector<Instr> code;
  std::size_t size() const { return code.size(); }
};

/// Microarchitecture parameters: single-issue in-order pipeline with a
/// direct-mapped I-cache and D-cache and static not-taken branch prediction.
struct MachineConfig {
  int n_regs = 16;
  std::size_t mem_words = 1 << 16;
  int icache_lines = 64;     ///< direct-mapped, 4 instructions per line
  int icache_line_words = 4;
  int dcache_lines = 64;     ///< direct-mapped, 4 words per line
  int dcache_line_words = 4;
  int miss_penalty = 8;      ///< stall cycles per cache miss
  int branch_penalty = 2;    ///< stall cycles per taken branch (mispredict)
};

/// Execution statistics: everything the instruction-level power model and
/// the characteristic profile need.
struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::array<std::uint64_t, kNumOpcodes> per_opcode{};
  /// pair_counts[prev][cur]: circuit-state transition counts (the N_{i,j}
  /// of the Tiwari model).
  std::array<std::array<std::uint64_t, kNumOpcodes>, kNumOpcodes> pair{};
  /// Executed opcode trace (recorded when requested).
  std::vector<std::uint8_t> trace;
  /// Data-memory address trace (loads and stores, recorded when requested)
  /// — input to the memory-hierarchy exploration of Section III-A.
  std::vector<std::uint32_t> addr_trace;
  /// Instruction-address (PC) trace — the mostly-consecutive stream the
  /// Gray/T0 instruction-bus codes of Section III-G target.
  std::vector<std::uint32_t> pc_trace;

  double icache_miss_rate() const {
    return instructions ? static_cast<double>(icache_misses) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
  double branch_taken_rate() const {
    return branch_instructions ? static_cast<double>(taken_branches) /
                                     static_cast<double>(branch_instructions)
                               : 0.0;
  }
};

/// Functional + timing simulator.
class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  /// Run until Halt or `max_instructions`. Returns the statistics.
  ExecStats run(const Program& prog, std::uint64_t max_instructions,
                bool record_trace = false);

  /// Register/memory access for test setup and result checks.
  std::int64_t reg(int r) const { return regs_[static_cast<std::size_t>(r)]; }
  void set_reg(int r, std::int64_t v) {
    regs_[static_cast<std::size_t>(r)] = v;
  }
  std::int64_t mem(std::size_t addr) const { return mem_[addr]; }
  void set_mem(std::size_t addr, std::int64_t v) { mem_[addr] = v; }

 private:
  MachineConfig cfg_;
  std::vector<std::int64_t> regs_;
  std::vector<std::int64_t> mem_;
  std::vector<std::int64_t> icache_tag_, dcache_tag_;
};

/// Small assembler-style helpers.
Instr make_r(Opcode op, int rd, int rs1, int rs2);
Instr make_i(Opcode op, int rd, int rs1, std::int32_t imm);
Instr make_b(Opcode op, int rs1, int rs2, std::int32_t offset);

}  // namespace hlp::isa
