#include "sandbox/quarantine.hpp"

namespace hlp::sandbox {

Quarantine::Clock::duration Quarantine::expiry_for(std::uint32_t trips) const {
  // base · 2^(trips-1), saturating at max. `trips` is the count *after*
  // the opening transition, so the first open waits exactly base_expiry.
  Clock::duration d = opts_.base_expiry;
  for (std::uint32_t i = 1; i < trips; ++i) {
    if (d >= opts_.max_expiry / 2) return opts_.max_expiry;
    d *= 2;
  }
  return d < opts_.max_expiry ? d : opts_.max_expiry;
}

Quarantine::Decision Quarantine::admit(std::uint64_t fp,
                                       Clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) return Decision::Admit;
  Entry& e = it->second;
  if (e.state == State::Open && now >= e.until) {
    e.state = State::HalfOpen;
    e.probe_inflight = false;
  }
  switch (e.state) {
    case State::Closed: return Decision::Admit;
    case State::Open:
      ++counters_.served_open;
      return Decision::Quarantined;
    case State::HalfOpen:
      if (e.probe_inflight) {
        // One probe at a time: siblings keep getting the degraded answer
        // until the probe resolves.
        ++counters_.served_open;
        return Decision::Quarantined;
      }
      e.probe_inflight = true;
      ++counters_.probes;
      return Decision::Probe;
  }
  return Decision::Admit;  // unreachable
}

bool Quarantine::record_failure(std::uint64_t fp, Clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[fp];
  switch (e.state) {
    case State::Closed:
      if (++e.failures < opts_.threshold) return false;
      e.state = State::Open;
      ++e.trips;
      e.until = now + expiry_for(e.trips);
      e.failures = 0;
      ++counters_.trips;
      ++counters_.open_now;
      return true;
    case State::HalfOpen:
      // The probe failed (or a straggler from before the trip crashed):
      // re-open with doubled expiry.
      e.state = State::Open;
      ++e.trips;
      e.until = now + expiry_for(e.trips);
      e.probe_inflight = false;
      ++counters_.trips;
      ++counters_.reopens;
      return true;
    case State::Open:
      // A straggler attempt admitted before the trip crashed after it;
      // the breaker is already open, nothing to escalate.
      return false;
  }
  return false;  // unreachable
}

void Quarantine::record_success(std::uint64_t fp) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  switch (e.state) {
    case State::Closed:
      e.failures = 0;
      break;
    case State::HalfOpen:
      // Rehabilitated: forget the history entirely so a later relapse
      // starts from a fresh K-count and base expiry.
      entries_.erase(it);
      ++counters_.rehabilitated;
      if (counters_.open_now > 0) --counters_.open_now;
      break;
    case State::Open:
      // Straggler success from before the trip; leave the breaker open —
      // the expiry schedule decides when to re-probe.
      break;
  }
}

bool Quarantine::is_open(std::uint64_t fp, Clock::time_point now) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  const Entry& e = it->second;
  if (e.state == State::Closed) return false;
  if (e.state == State::Open && now < e.until) return true;
  // Expired-open and half-open both still quarantine siblings; report open
  // until a probe rehabilitates the entry.
  return true;
}

Quarantine::Counters Quarantine::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace hlp::sandbox
