#include "sandbox/sandbox.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exec/fi.hpp"
#include "util/json.hpp"

namespace hlp::sandbox {

namespace {

using Clock = std::chrono::steady_clock;

/// Write all of `data` to `fd`, retrying on EINTR. Returns false on any
/// other error (the parent died or closed its end — nothing to salvage).
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Which chaos fault (if any) the child must perform. Decided in the
/// *parent*, before fork: the fi serve-fault slots are process-global
/// one-shots, and claiming one inside the child would only disarm the
/// child's copy-on-write copy — every later fork would take the same hit.
enum class Inject : std::uint8_t { None, Segv, Oom, Wedge };

Inject claim_injected_fault() {
  if (fi::serve_fault_checkpoint(fi::ServeFault::ChildSegv))
    return Inject::Segv;
  if (fi::serve_fault_checkpoint(fi::ServeFault::ChildOom))
    return Inject::Oom;
  if (fi::serve_fault_checkpoint(fi::ServeFault::ChildWedge))
    return Inject::Wedge;
  return Inject::None;
}

/// Child body. Never returns; every path ends in _exit or a signal death.
[[noreturn]] void child_main(int wfd, const jobs::KernelRequest& rq,
                             const exec::Budget& budget, const Limits& limits,
                             const KernelFn& kernel, Inject inject) {
  if (limits.rlimit_as_bytes > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = limits.rlimit_as_bytes;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.rlimit_cpu_seconds > 0.0) {
    rlimit rl{};
    // Soft = ceiling(limit) delivers SIGXCPU (default action: terminate);
    // hard = soft + 1 is the kernel's SIGKILL backstop.
    rl.rlim_cur = static_cast<rlim_t>(std::ceil(limits.rlimit_cpu_seconds));
    if (rl.rlim_cur == 0) rl.rlim_cur = 1;
    rl.rlim_max = rl.rlim_cur + 1;
    ::setrlimit(RLIMIT_CPU, &rl);
  }

  switch (inject) {
    case Inject::Segv:
      // Restore the default disposition first: under ASan the installed
      // SEGV handler would turn the death into a report + exit code, and
      // the crash class under test is "killed by signal".
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      _exit(97);  // unreachable
    case Inject::Oom:
      // Model the kernel OOM killer: an uncatchable SIGKILL, not a polite
      // bad_alloc (RLIMIT_AS produces those; the OOM killer does not).
      ::raise(SIGKILL);
      _exit(97);  // unreachable
    case Inject::Wedge:
      // Non-cooperative: no meter, no cancel poll, no syscall to interrupt.
      // Only the parent's wall-deadline SIGKILL ends this.
      for (volatile std::uint64_t spin = 0;;) spin = spin + 1;
    case Inject::None:
      break;
  }

  jobs::AttemptOutcome out;
  jobs::ErrorClass caught = jobs::ErrorClass::None;
  std::string caught_detail;
  try {
    out = kernel ? kernel(rq, budget) : jobs::run_kernel(rq, budget);
  } catch (const exec::BudgetExceeded& e) {
    out.ok = false;
    out.stop = e.reason();
    out.detail = e.what();
  } catch (const std::bad_alloc&) {
    out.ok = false;
    out.stop = exec::StopReason::AllocFailure;
    out.detail = "allocation failure in isolated child";
  } catch (const std::invalid_argument& e) {
    caught = jobs::ErrorClass::InvalidInput;
    caught_detail = e.what();
  } catch (const std::exception& e) {
    caught = jobs::ErrorClass::Internal;
    caught_detail = e.what();
  } catch (...) {
    caught = jobs::ErrorClass::Internal;
    caught_detail = "non-standard exception in isolated child";
  }

  std::string payload;
  try {
    payload = encode_outcome(out, caught, caught_detail);
  } catch (...) {
    _exit(96);  // encoding must not allocate past RLIMIT_AS and lie about it
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char hdr[4] = {static_cast<char>(len & 0xff),
                 static_cast<char>((len >> 8) & 0xff),
                 static_cast<char>((len >> 16) & 0xff),
                 static_cast<char>((len >> 24) & 0xff)};
  if (!write_all(wfd, hdr, 4) || !write_all(wfd, payload.data(), len))
    _exit(95);
  _exit(0);  // never exit(): no atexit, no stream flush, no leak check
}

/// Parent-side frame reader: poll + read until one complete frame, the
/// deadline, a cancellation, or EOF. Returns true with the payload on a
/// complete frame.
enum class ReadEnd : std::uint8_t { Frame, Eof, Timeout, Cancel, Garbled };

ReadEnd read_frame(int rfd, Clock::time_point deadline, bool has_deadline,
                   const exec::CancelToken* cancel, std::string& payload) {
  std::string buf;
  bool have_len = false;
  std::uint32_t want = 0;
  for (;;) {
    if (cancel && cancel->cancel_requested()) return ReadEnd::Cancel;
    int timeout_ms = 20;  // cancel-poll granularity
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return ReadEnd::Timeout;
      timeout_ms = static_cast<int>(
          std::min<std::chrono::milliseconds::rep>(left.count(), 20));
      if (timeout_ms < 1) timeout_ms = 1;
    }
    pollfd pfd{rfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadEnd::Garbled;
    }
    if (pr == 0) continue;  // re-check deadline/cancel
    char chunk[4096];
    const ssize_t n = ::read(rfd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadEnd::Garbled;
    }
    if (n == 0) return ReadEnd::Eof;  // child died before completing a frame
    buf.append(chunk, static_cast<std::size_t>(n));
    if (!have_len && buf.size() >= 4) {
      want = static_cast<std::uint32_t>(static_cast<unsigned char>(buf[0])) |
             static_cast<std::uint32_t>(static_cast<unsigned char>(buf[1]))
                 << 8 |
             static_cast<std::uint32_t>(static_cast<unsigned char>(buf[2]))
                 << 16 |
             static_cast<std::uint32_t>(static_cast<unsigned char>(buf[3]))
                 << 24;
      if (want > kMaxFrameBytes) return ReadEnd::Garbled;
      have_len = true;
    }
    if (have_len && buf.size() >= 4u + want) {
      payload.assign(buf, 4, want);
      return ReadEnd::Frame;
    }
  }
}

/// Reap `pid`, blocking. Only called when the child is dead or dying
/// (frame delivered and child is _exiting, or we already SIGKILLed it).
int reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

CrashReport classify_death(int status, bool we_killed, bool cancel_kill) {
  CrashReport cr;
  if (WIFSIGNALED(status)) {
    cr.signal = WTERMSIG(status);
    if (we_killed && cr.signal == SIGKILL) {
      cr.kind = cancel_kill ? CrashKind::Cancelled : CrashKind::WallTimeout;
      cr.detail = cancel_kill
                      ? "isolated child killed: cancellation requested"
                      : "isolated child killed at wall deadline (wedged or "
                        "overlong kernel)";
    } else if (cr.signal == SIGXCPU) {
      cr.kind = CrashKind::CpuLimit;
      cr.detail = "isolated child exceeded RLIMIT_CPU (SIGXCPU)";
    } else if (cr.signal == SIGKILL) {
      cr.kind = CrashKind::OomKill;
      cr.detail = "isolated child killed (OOM killer or external SIGKILL)";
    } else {
      cr.kind = CrashKind::Signal;
      cr.detail = "isolated child killed by signal ";
      cr.detail += std::to_string(cr.signal);
      if (const char* name = ::strsignal(cr.signal)) {
        cr.detail += " (";
        cr.detail += name;
        cr.detail += ")";
      }
    }
    return cr;
  }
  if (WIFEXITED(status)) {
    cr.exit_code = WEXITSTATUS(status);
    cr.kind = CrashKind::ExitNonzero;
    cr.detail = "isolated child exited with status ";
    cr.detail += std::to_string(cr.exit_code);
    cr.detail += " without delivering an outcome";
    return cr;
  }
  cr.kind = CrashKind::Signal;
  cr.detail = "isolated child ended with unrecognized wait status";
  return cr;
}

}  // namespace

const char* to_string(CrashKind k) {
  switch (k) {
    case CrashKind::None: return "none";
    case CrashKind::Signal: return "signal";
    case CrashKind::OomKill: return "oom-kill";
    case CrashKind::CpuLimit: return "cpu-limit";
    case CrashKind::WallTimeout: return "wall-timeout";
    case CrashKind::Cancelled: return "cancelled";
    case CrashKind::ExitNonzero: return "exit-nonzero";
    case CrashKind::PipeError: return "pipe-error";
  }
  return "unknown";
}

jobs::ErrorClass error_class_for(const CrashReport& crash) {
  switch (crash.kind) {
    case CrashKind::None: return jobs::ErrorClass::None;
    case CrashKind::OomKill:
    case CrashKind::CpuLimit:
    case CrashKind::WallTimeout: return jobs::ErrorClass::BudgetExhausted;
    case CrashKind::Cancelled: return jobs::ErrorClass::Cancelled;
    case CrashKind::Signal:
    case CrashKind::ExitNonzero:
    case CrashKind::PipeError: return jobs::ErrorClass::Internal;
  }
  return jobs::ErrorClass::Internal;
}

std::string encode_outcome(const jobs::AttemptOutcome& out,
                           jobs::ErrorClass caught,
                           std::string_view caught_detail) {
  std::string s = "{\"ok\":";
  s += out.ok ? "true" : "false";
  util::append_field(s, "stop", exec::to_string(out.stop));
  util::append_field(s, "detail", out.detail);
  util::append_field(s, "value", out.out.value);
  util::append_field(s, "odetail", out.out.detail);
  util::append_field(s, "degraded", out.out.degraded);
  if (!out.out.degraded_from.empty())
    util::append_field(s, "from", out.out.degraded_from);
  if (!out.out.degraded_to.empty())
    util::append_field(s, "to", out.out.degraded_to);
  if (out.out.has_checkpoint)
    util::append_field(s, "ckpt", out.out.checkpoint.serialize());
  if (caught != jobs::ErrorClass::None) {
    util::append_field(s, "caught", jobs::to_string(caught));
    util::append_field(s, "caught-detail", caught_detail);
  }
  s.push_back('}');
  return s;
}

bool decode_outcome(std::string_view payload, jobs::AttemptOutcome& out,
                    jobs::ErrorClass& caught, std::string& caught_detail) {
  util::JsonCursor c{payload.data(), payload.data() + payload.size()};
  if (!c.eat('{')) return false;
  jobs::AttemptOutcome r;
  jobs::ErrorClass ec = jobs::ErrorClass::None;
  std::string ec_detail;
  bool have_ok = false;
  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return false;
    if (first && c.at_end()) return false;
    first = false;
    std::string key;
    if (!util::parse_json_string(c, key)) return false;
    if (!c.eat(':')) return false;
    if (key == "ok") {
      if (!util::parse_json_bool(c, r.ok)) return false;
      have_ok = true;
    } else if (key == "stop") {
      std::string v;
      if (!util::parse_json_string(c, v)) return false;
      bool known = false;
      for (auto sr : {exec::StopReason::None, exec::StopReason::Deadline,
                      exec::StopReason::NodeCap, exec::StopReason::MemoryCap,
                      exec::StopReason::StepQuota, exec::StopReason::Cancelled,
                      exec::StopReason::AllocFailure}) {
        if (v == exec::to_string(sr)) {
          r.stop = sr;
          known = true;
          break;
        }
      }
      if (!known) return false;
    } else if (key == "detail") {
      if (!util::parse_json_string(c, r.detail)) return false;
    } else if (key == "value") {
      if (!util::number_as(util::number_token(c), r.out.value)) return false;
    } else if (key == "odetail") {
      if (!util::parse_json_string(c, r.out.detail)) return false;
    } else if (key == "degraded") {
      if (!util::parse_json_bool(c, r.out.degraded)) return false;
    } else if (key == "from") {
      if (!util::parse_json_string(c, r.out.degraded_from)) return false;
    } else if (key == "to") {
      if (!util::parse_json_string(c, r.out.degraded_to)) return false;
    } else if (key == "ckpt") {
      std::string v;
      if (!util::parse_json_string(c, v)) return false;
      if (!core::MonteCarloCheckpoint::parse(v, r.out.checkpoint))
        return false;
      r.out.has_checkpoint = true;
    } else if (key == "caught") {
      std::string v;
      if (!util::parse_json_string(c, v)) return false;
      if (!jobs::parse_error_class(v, ec)) return false;
    } else if (key == "caught-detail") {
      if (!util::parse_json_string(c, ec_detail)) return false;
    } else {
      return false;  // the codec is closed: both ends are this file
    }
  }
  if (!util::only_trailing_ws(c) || !have_ok) return false;
  out = std::move(r);
  caught = ec;
  caught_detail = std::move(ec_detail);
  return true;
}

RunResult run_isolated(const jobs::KernelRequest& rq,
                       const exec::Budget& budget, const Limits& limits,
                       const KernelFn& kernel,
                       const exec::CancelToken* cancel) {
  RunResult result;
  const Inject inject = claim_injected_fault();

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    result.crash.kind = CrashKind::PipeError;
    result.crash.detail = "pipe() failed: ";
    result.crash.detail += std::strerror(errno);
    return result;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    result.crash.kind = CrashKind::PipeError;
    result.crash.detail = "fork() failed: ";
    result.crash.detail += std::strerror(errno);
    return result;
  }
  if (pid == 0) {
    ::close(pipefd[0]);
    child_main(pipefd[1], rq, budget, limits, kernel, inject);
  }
  ::close(pipefd[1]);

  const bool has_deadline = limits.wall_deadline_seconds > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? limits.wall_deadline_seconds : 0));

  std::string payload;
  const ReadEnd end =
      read_frame(pipefd[0], deadline, has_deadline, cancel, payload);
  ::close(pipefd[0]);

  bool we_killed = false;
  bool cancel_kill = false;
  if (end == ReadEnd::Timeout || end == ReadEnd::Cancel ||
      end == ReadEnd::Garbled) {
    ::kill(pid, SIGKILL);
    we_killed = (end != ReadEnd::Garbled);
    cancel_kill = (end == ReadEnd::Cancel);
  }
  const int status = reap(pid);

  if (end == ReadEnd::Frame) {
    if (decode_outcome(payload, result.outcome, result.caught,
                       result.caught_detail)) {
      result.delivered = true;
      return result;
    }
    result.crash.kind = CrashKind::PipeError;
    result.crash.detail = "isolated child delivered an undecodable frame";
    return result;
  }
  if (end == ReadEnd::Garbled) {
    result.crash.kind = CrashKind::PipeError;
    result.crash.detail =
        "isolated child frame protocol violation (oversized or torn frame)";
    return result;
  }
  result.crash = classify_death(status, we_killed, cancel_kill);
  return result;
}

jobs::AttemptOutcome run_kernel_isolated(const jobs::KernelRequest& rq,
                                         const exec::Budget& budget,
                                         Limits limits) {
  if (limits.wall_deadline_seconds <= 0.0 && budget.deadline_seconds > 0.0)
    limits.wall_deadline_seconds = budget.deadline_seconds * 1.25 + 0.05;
  const RunResult r =
      run_isolated(rq, budget, limits, {}, &budget.cancel);
  if (r.delivered) {
    if (r.caught == jobs::ErrorClass::InvalidInput)
      throw std::invalid_argument(r.caught_detail);
    if (r.caught != jobs::ErrorClass::None)
      throw std::runtime_error(r.caught_detail);
    return r.outcome;
  }
  switch (error_class_for(r.crash)) {
    case jobs::ErrorClass::BudgetExhausted: {
      jobs::AttemptOutcome out;
      out.ok = false;
      out.stop = r.crash.kind == CrashKind::OomKill
                     ? exec::StopReason::AllocFailure
                     : exec::StopReason::Deadline;
      out.detail = r.crash.detail;
      return out;
    }
    case jobs::ErrorClass::Cancelled: {
      jobs::AttemptOutcome out;
      out.ok = false;
      out.stop = exec::StopReason::Cancelled;
      out.detail = r.crash.detail;
      return out;
    }
    default:
      throw std::runtime_error(r.crash.detail);
  }
}

}  // namespace hlp::sandbox
