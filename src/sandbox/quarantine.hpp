#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hlp::sandbox {

/// --- Poison-request quarantine (per-fingerprint circuit breaker) -----------
///
/// A design whose kernel keeps crashing the sandbox child ("poison": a
/// symbolic blow-up that segfaults, OOM-kills, or wedges every attempt)
/// should not be re-executed on every retry — each attempt burns a fork, a
/// worker slot, and up to a full wall deadline. The breaker tracks *hard*
/// failures (crashes — a delivered outcome is a success even if it reports
/// an error) per design fingerprint and, after K consecutive failures,
/// opens: the serve tier answers from tier-0 static bounds with a typed
/// `quarantined` detail instead of re-executing the blowup.
///
/// State machine (DESIGN.md §11):
///
///   Closed{failures}  --K-th hard failure-->  Open{until, trips}
///   Open              --expiry reached----->  HalfOpen
///   HalfOpen          --admit() == Probe--->  (one live attempt admitted)
///   HalfOpen probe    --success----------->  Closed   (rehabilitated)
///   HalfOpen probe    --hard failure------>  Open     (expiry doubled)
///
/// Expiry is exponential — base · 2^trips, capped — so a transiently-poison
/// design (host memory pressure) rehabilitates quickly while a structurally
/// exponential one settles into long quarantines. All clock inputs are
/// passed as `now` parameters so tests drive the machine with a fake clock.
///
/// Thread safety: all methods take an internal lock; admit() resolving to
/// Probe atomically claims the half-open slot, so concurrent requests for
/// the same poisoned fingerprint admit exactly one probe.
class Quarantine {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    int threshold = 3;  ///< K hard failures to trip Closed -> Open
    Clock::duration base_expiry = std::chrono::seconds(30);
    Clock::duration max_expiry = std::chrono::minutes(30);
  };

  /// What admit() tells the caller to do with a request.
  enum class Decision : std::uint8_t {
    Admit,        ///< closed (or unknown): execute normally
    Probe,        ///< half-open: execute, and report the result back
    Quarantined,  ///< open: answer degraded, do not execute
  };

  Quarantine() = default;
  explicit Quarantine(Options opts) : opts_(opts) {}

  /// Gate one request for `fp`. Open entries whose expiry has passed move
  /// to half-open here; the first caller after expiry gets the Probe.
  Decision admit(std::uint64_t fp, Clock::time_point now);

  /// Record a hard (crash) failure for `fp`. In Closed, increments the
  /// failure count and trips to Open at K; a half-open probe's failure
  /// re-opens with doubled expiry. Returns true when this call tripped the
  /// breaker (Closed/HalfOpen -> Open).
  bool record_failure(std::uint64_t fp, Clock::time_point now);

  /// Record a delivered outcome for `fp`: resets a Closed entry's failure
  /// count and closes a half-open probe (rehabilitation).
  void record_success(std::uint64_t fp);

  /// True while `fp` is quarantining requests: Open — including past
  /// expiry, until a probe resolves the entry — or HalfOpen. Does not
  /// transition state (expiry is observable through admit()).
  bool is_open(std::uint64_t fp, Clock::time_point now) const;

  struct Counters {
    std::uint64_t trips = 0;        ///< Closed/HalfOpen -> Open transitions
    std::uint64_t served_open = 0;  ///< admit() calls answered Quarantined
    std::uint64_t probes = 0;       ///< half-open probes admitted
    std::uint64_t reopens = 0;      ///< probe failures (expiry doubled)
    std::uint64_t rehabilitated = 0;///< probe successes (entry closed)
    std::size_t open_now = 0;       ///< entries currently Open/HalfOpen
  };
  Counters counters() const;

  const Options& options() const { return opts_; }

 private:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };
  struct Entry {
    State state = State::Closed;
    int failures = 0;             ///< consecutive hard failures while Closed
    std::uint32_t trips = 0;      ///< times this entry has opened
    Clock::time_point until{};    ///< Open expiry
    bool probe_inflight = false;  ///< HalfOpen: the one admitted probe
  };

  Clock::duration expiry_for(std::uint32_t trips) const;

  Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Counters counters_;
};

}  // namespace hlp::sandbox
