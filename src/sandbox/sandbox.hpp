#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "exec/exec.hpp"
#include "jobs/jobs.hpp"
#include "jobs/kernels.hpp"

namespace hlp::sandbox {

/// --- Process-isolated kernel execution -------------------------------------
///
/// The symbolic estimation kernels have exponential worst cases in both
/// memory and time, and cooperative budgets (`hlp::exec`) only bound a
/// kernel that keeps reaching its meter: a segfault, an allocation storm in
/// a noexcept context, or a tight loop between checkpoints escapes them and
/// takes the whole process (or permanently burns a pool thread) with it.
/// `sandbox` adds the hard OS-level layer (DESIGN.md §11): each kernel
/// attempt runs in a forked single-request child under `rlimit` caps, the
/// outcome returns over a length-framed pipe, and any way the child can die
/// — signal, rlimit kill, non-cooperative wedge past the wall deadline —
/// becomes a *typed* crash report in the parent instead of a lost daemon.
///
/// fork() discipline: the parent may be heavily multithreaded (the serve
/// worker pool). The child inherits only the calling thread plus a copy of
/// the address space, so the kernel closure and the KernelRequest (including
/// its resume-checkpoint pointer) stay valid without any serialization on
/// the request side; glibc's atfork handlers keep malloc usable. The child
/// never touches parent state: it runs the kernel, writes one frame, and
/// `_exit`s (no atexit handlers, no stream flushes, no leak-check).

/// Hard resource caps applied inside the child, before the kernel runs.
struct Limits {
  /// RLIMIT_AS ceiling in bytes (0 = inherit). Allocation past it fails —
  /// a throwing kernel degrades or reports AllocFailure; a noexcept-context
  /// failure aborts the child and surfaces as a Signal crash.
  std::size_t rlimit_as_bytes = 0;
  /// RLIMIT_CPU ceiling in whole seconds (0 = none). The kernel delivers
  /// SIGXCPU at the soft limit; the default action kills the child.
  double rlimit_cpu_seconds = 0.0;
  /// Parent-side wall-clock deadline (0 = none): past it the child is
  /// SIGKILLed and the crash is reported as WallTimeout. This is the
  /// containment for kernels wedged between meter checkpoints.
  double wall_deadline_seconds = 0.0;
};

/// How an isolated child failed to deliver an outcome. `None` means the
/// outcome frame arrived (the kernel may still have *reported* an error —
/// that is a delivered outcome, not a crash).
enum class CrashKind : std::uint8_t {
  None = 0,
  Signal,       ///< killed by a signal (SIGSEGV, SIGABRT, SIGBUS, ...)
  OomKill,      ///< SIGKILL not sent by us: kernel OOM killer / external kill
  CpuLimit,     ///< SIGXCPU: RLIMIT_CPU exceeded
  WallTimeout,  ///< we SIGKILLed it at the wall deadline (wedged child)
  Cancelled,    ///< we SIGKILLed it because cancellation was requested
  ExitNonzero,  ///< child exited without writing a complete frame
  PipeError,    ///< frame protocol violation (oversized/garbled frame)
};

const char* to_string(CrashKind k);

/// Typed report for one child death, built from waitpid status plus what
/// the parent knows (whether *it* sent the kill, and why).
struct CrashReport {
  CrashKind kind = CrashKind::None;
  int signal = 0;     ///< WTERMSIG when signalled, else 0
  int exit_code = 0;  ///< WEXITSTATUS when exited, else 0
  std::string detail;
};

/// Map a crash into the jobs-layer failure taxonomy (DESIGN.md §11 table):
/// resource kills (OomKill/CpuLimit/WallTimeout) are BudgetExhausted and
/// therefore retryable-with-downgrade; Cancelled is Cancelled; everything
/// else (Signal, ExitNonzero, PipeError) is Internal.
jobs::ErrorClass error_class_for(const CrashReport& crash);

/// Result of one isolated attempt: either the child's outcome frame was
/// delivered (`delivered`, with `caught` naming the exception class the
/// child absorbed, None when the kernel returned normally) or the child
/// crashed (`crash.kind != None`).
struct RunResult {
  bool delivered = false;
  jobs::AttemptOutcome outcome;
  jobs::ErrorClass caught = jobs::ErrorClass::None;
  std::string caught_detail;
  CrashReport crash;
};

/// Kernel body run inside the child. Empty = jobs::run_kernel. The serve
/// tier passes its Executor here so tests can fork deterministic fakes.
using KernelFn = std::function<jobs::AttemptOutcome(const jobs::KernelRequest&,
                                                    const exec::Budget&)>;

/// Fork, cap, execute, and reap one kernel attempt. Never throws; every
/// failure mode is a typed CrashReport. `cancel` (may be null) is polled
/// while waiting: a requested cancellation SIGKILLs the child and reports
/// CrashKind::Cancelled.
RunResult run_isolated(const jobs::KernelRequest& rq,
                       const exec::Budget& budget, const Limits& limits,
                       const KernelFn& kernel = {},
                       const exec::CancelToken* cancel = nullptr);

/// Campaign-facing wrapper with jobs-layer semantics: a delivered outcome
/// is returned as-is; resource-kill crashes become `ok == false` outcomes
/// (WallTimeout/CpuLimit → StopReason::Deadline, OomKill →
/// StopReason::AllocFailure) so the runner retries with downgrade; Signal /
/// ExitNonzero / PipeError crashes and child-caught invalid-input /
/// internal exceptions are rethrown as the exceptions the runner's
/// classifier expects. With limits.wall_deadline_seconds == 0 a wall
/// deadline is derived from the budget's cooperative deadline (1.25x +
/// 50 ms of slack, matching the serve tier's waiter).
jobs::AttemptOutcome run_kernel_isolated(const jobs::KernelRequest& rq,
                                         const exec::Budget& budget,
                                         Limits limits);

/// --- Pipe frame codec (exposed for tests and the fuzz harness) -------------
///
/// One frame per child: `len:u32le payload[len]`, where the payload is one
/// flat JSON object in the ledger/wire idiom (util/json.hpp). Frames longer
/// than kMaxFrameBytes are rejected as PipeError — a garbled length must
/// never make the parent allocate unboundedly.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

std::string encode_outcome(const jobs::AttemptOutcome& out,
                           jobs::ErrorClass caught,
                           std::string_view caught_detail);
bool decode_outcome(std::string_view payload, jobs::AttemptOutcome& out,
                    jobs::ErrorClass& caught, std::string& caught_detail);

}  // namespace hlp::sandbox
