#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "jobs/jobs.hpp"

namespace hlp::jobs {

/// --- Campaign spec files ---------------------------------------------------
///
/// A whole benchmark campaign in a small line-oriented text file, consumed
/// by `tools/hlp_run`:
///
///     # campaign-wide settings (all optional)
///     workers 4
///     max-attempts 3
///     base-delay 0.05
///
///     # one line per job: job <id> <kind> <design> [key=value ...]
///     job add16      symbolic    adder:16
///     job mult8      symbolic    mult:8      node-cap=20000
///     job mc-alu     monte-carlo alu:12      epsilon=0.01 max-pairs=50000
///     job dma-chain  markov      dma
///     job fir-sched  schedule    fir:16
///
/// Per-job keys: epsilon, confidence, min-pairs, max-pairs, max-iters,
/// deadline (budget wall seconds, metered), wall-deadline (supervisor-
/// enforced seconds), node-cap, step-quota, memory-cap, mc-threads
/// (monte-carlo only: >0 runs the chunk-sharded estimator on that many
/// lane-shard threads; the value never changes the result bits).

/// Parse failure with 1-based line number, mirroring VerilogError.
class SpecError : public std::runtime_error {
 public:
  SpecError(int line, const std::string& what)
      : std::runtime_error("spec line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct CampaignSpec {
  int workers = 1;
  RetryPolicy retry;
  std::vector<Job> jobs;
};

/// Parse spec text. Throws SpecError on any malformed line, duplicate job
/// id, unknown kind/key, or out-of-range value. Design specs themselves
/// are validated lazily by the kernel (an unknown design is an
/// invalid-input job failure, not a spec error), so a campaign file can be
/// loaded even if one job's design turns out to be bogus.
CampaignSpec parse_campaign_spec(std::string_view text);

/// Read and parse a spec file; throws std::runtime_error if unreadable.
CampaignSpec read_campaign_spec(const std::string& path);

}  // namespace hlp::jobs
