#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec.hpp"
#include "jobs/kernels.hpp"
#include "jobs/ledger.hpp"
#include "stats/descriptive.hpp"

namespace hlp::jobs {

/// --- Supervised parallel job runner ----------------------------------------
///
/// The paper's experimental method is batch-shaped: every table is "run N
/// estimators over M designs and compare". `jobs` runs such a campaign on a
/// fixed worker pool with each job isolated at its boundary — all
/// exceptions caught and classified, per-attempt wall deadlines enforced by
/// a supervisor thread through `exec::CancelToken`, failed attempts retried
/// with exponential backoff (and optionally *downgraded* to a cheaper
/// estimator via the PR 3 degradation paths) — while appending every state
/// transition to a crash-consistent ledger so a killed process loses at
/// most its in-flight attempts. See DESIGN.md §8.
///
/// Determinism guarantee: per-job RNG seeds derive from the job id alone
/// (job_seed), never from the thread schedule, and results merge in job
/// submission order — a serial run, a parallel run, and a resumed run of
/// the same campaign produce bit-identical estimates.

/// Structured failure taxonomy. Every exception a kernel can raise is
/// classified into exactly one of these at the job boundary.
enum class ErrorClass : std::uint8_t {
  None = 0,
  InvalidInput,     ///< bad design spec/parameters — retrying cannot help
  BudgetExhausted,  ///< budget or supervisor wall deadline tripped — retryable
  Internal,         ///< unexpected exception / allocation failure — retryable
  Cancelled,        ///< campaign-level cancellation — not an error, no retry
};

const char* to_string(ErrorClass e);
bool parse_error_class(std::string_view s, ErrorClass& out);
/// Classify the in-flight exception (call inside a catch block). The
/// Cancelled/BudgetExhausted split for a tripped CancelToken is decided by
/// the runner, which knows *who* tripped it; this helper maps every
/// cancellation trip to BudgetExhausted-or-Cancelled via `campaign_cancel`.
ErrorClass classify_current_exception(bool campaign_cancelled);

/// One unit of campaign work: an estimator kernel + design + per-attempt
/// budget. Copyable; the runner never mutates it.
struct Job {
  std::string id;  ///< unique within the campaign; seeds the kernel RNG
  JobKind kind = JobKind::MonteCarlo;
  std::string design;
  /// Per-attempt resource budget. `budget.cancel` is ignored — the runner
  /// installs a fresh token per attempt (cancellation is sticky, and a
  /// retried attempt must not start pre-cancelled).
  exec::Budget budget;
  /// Supervisor-enforced wall ceiling per attempt (0 = none). Unlike
  /// `budget.deadline_seconds` (observed cooperatively by the meter), this
  /// is enforced from outside the worker via CancelToken, so it also
  /// bounds kernels that are stuck between meter steps.
  double attempt_deadline_seconds = 0.0;

  /// Monte Carlo / sampled-fallback parameters.
  double epsilon = 0.02;
  double confidence = 0.95;
  std::size_t min_pairs = 30;
  std::size_t max_pairs = 20000;
  /// Sharded Monte Carlo: mc_threads > 0 runs the kernel on the
  /// chunk-sharded estimator with that many lane-shard threads (results are
  /// bit-identical across thread counts and resumes; see
  /// core::monte_carlo_power_sharded). 0 keeps the sequential estimator,
  /// preserving the historical per-job values exactly.
  int mc_threads = 0;
  std::size_t mc_chunk_pairs = 4096;  ///< determinism unit when sharded
  /// Markov parameters.
  int max_iters = 2000;

  /// JobKind::Custom body (tests / embedders). Receives the attempt budget
  /// (with the runner's per-attempt token installed), whether this is a
  /// downgraded retry, and any checkpoint from a prior attempt.
  std::function<AttemptOutcome(const exec::Budget&, bool degraded,
                               const core::MonteCarloCheckpoint*)>
      custom;
};

/// Exponential backoff with deterministic jitter. `delay_seconds` is a pure
/// function of (job id, attempt) so retry schedules are reproducible and
/// testable without a clock.
struct RetryPolicy {
  int max_attempts = 3;
  double base_delay_seconds = 0.05;
  double multiplier = 2.0;
  double max_delay_seconds = 2.0;
  /// Jitter amplitude as a fraction of the backoff delay; the sign and
  /// magnitude are hashed from (job id, attempt), spreading simultaneous
  /// retries without sacrificing reproducibility.
  double jitter_frac = 0.25;
  /// On a budget-exhausted failure of a Symbolic job, rerun the retry with
  /// the sampled fallback kernel (degraded = true).
  bool downgrade_on_budget = true;

  bool retryable(ErrorClass e) const {
    return e == ErrorClass::BudgetExhausted || e == ErrorClass::Internal;
  }
  /// Backoff before attempt `failed_attempts + 1`:
  /// min(base * multiplier^(failed_attempts-1), max) * (1 ± jitter).
  double delay_seconds(std::string_view job_id, int failed_attempts) const;
};

enum class JobStatus : std::uint8_t { Completed, Failed, Cancelled };
const char* to_string(JobStatus s);

struct JobResult {
  std::string id;
  JobStatus status = JobStatus::Cancelled;
  ErrorClass error = ErrorClass::None;  ///< set when status != Completed
  int attempts = 0;                     ///< attempts actually executed
  bool degraded = false;
  double value = 0.0;
  std::string detail;
  /// True when the value was read back from a prior run's ledger rather
  /// than recomputed (Runner::resume skipping a completed job).
  bool from_ledger = false;
};

struct RunnerOptions {
  int workers = 1;
  RetryPolicy retry;
  /// JSON-lines ledger path; empty disables durability (pure in-memory
  /// campaign). `run` truncates, `resume` appends.
  std::string ledger_path;
  /// Campaign-level cancellation: trip it (from any thread) to stop the
  /// campaign — in-flight attempts are cancelled through their tokens,
  /// queued jobs are not started, and no retries are scheduled.
  exec::CancelToken campaign_cancel;
  /// Supervisor poll period for deadlines/cancellation.
  double supervisor_poll_seconds = 0.002;
  /// Kernel execution hook for spec-driven (non-Custom) jobs: empty runs
  /// run_kernel in-process; hlp_run's --isolate wires
  /// sandbox::run_kernel_isolated here so each attempt forks a rlimit-
  /// capped child. The hook must keep run_kernel's contract: ok=false for
  /// budget stops, std::invalid_argument / other exceptions for the
  /// classifier (resource-kill crashes surface as ok=false outcomes, so
  /// retry-with-downgrade applies to them too).
  std::function<AttemptOutcome(const KernelRequest&, const exec::Budget&)>
      kernel_executor;
  /// Backoff sleep hook; tests inject a fake clock here. Default: real
  /// std::this_thread::sleep_for.
  std::function<void(double)> sleep_fn;
};

struct CampaignResult {
  /// One result per submitted job, in submission order.
  std::vector<JobResult> results;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t retries = 0;   ///< retry transitions across all jobs
  std::size_t degraded = 0;  ///< jobs whose value came from a fallback
  /// Moments of completed-job values, merged in submission order
  /// (deterministic regardless of worker count).
  stats::RunningStats value_stats;
  /// Warnings from ledger scanning on resume (skipped lines etc.).
  std::vector<std::string> warnings;

  bool all_completed() const { return completed == results.size(); }
};

/// Lifecycle transition counters, monotone over a Runner's lifetime and
/// queryable at any moment — including from another thread while
/// run()/resume() is executing (each cell is an independent atomic, so a
/// mid-campaign snapshot may be momentarily inconsistent across cells but
/// every cell is exact). Counts *transitions*, mirroring the ledger record
/// kinds: `retried` counts retry transitions, `degraded` counts
/// symbolic→sampled downgrades, `completed`/`failed`/`cancelled` count
/// terminal outcomes reached by this process, and `served_from_ledger`
/// counts resume-skips whose value was read back instead of recomputed.
struct RunnerCounters {
  std::size_t enqueued = 0;
  std::size_t attempts_started = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t retried = 0;
  std::size_t degraded = 0;
  std::size_t served_from_ledger = 0;
};

/// Supervised campaign executor. One Runner per campaign invocation.
class Runner {
 public:
  explicit Runner(RunnerOptions opts = {});

  /// Run a fresh campaign. Truncates the ledger (if configured). Throws
  /// std::invalid_argument on duplicate job ids.
  CampaignResult run(const std::vector<Job>& jobs);

  /// Resume a campaign from its ledger: jobs with a `completed` record are
  /// skipped (their recorded value is returned, bit-identical thanks to
  /// round-trip-exact serialization), jobs with a `checkpoint` record
  /// restart from the checkpoint, and everything else re-runs from
  /// scratch. The ledger is appended to, never rewritten. With no ledger
  /// configured (or none on disk) this is identical to run().
  CampaignResult resume(const std::vector<Job>& jobs);

  /// Snapshot of the lifecycle counters (thread-safe; see RunnerCounters).
  RunnerCounters counters() const;

 private:
  CampaignResult run_impl(const std::vector<Job>& jobs, bool resuming);
  RunnerOptions opts_;
  std::shared_ptr<struct RunnerCounterCells> cells_;  ///< atomic cells
};

}  // namespace hlp::jobs
