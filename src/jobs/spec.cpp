#include "jobs/spec.hpp"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <unordered_set>

namespace hlp::jobs {

namespace {

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) toks.push_back(line.substr(start, i - start));
  }
  return toks;
}

template <typename T>
T parse_num(std::string_view tok, int line, const char* what) {
  T v{};
  auto [rest, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || rest != tok.data() + tok.size())
    throw SpecError(line, std::string("bad ") + what + " value '" +
                              std::string(tok) + "'");
  return v;
}

double parse_positive(std::string_view tok, int line, const char* what) {
  double v = parse_num<double>(tok, line, what);
  if (!(v >= 0.0))
    throw SpecError(line, std::string(what) + " must be non-negative");
  return v;
}

void apply_job_key(Job& job, std::string_view key, std::string_view val,
                   int line) {
  if (key == "epsilon") {
    job.epsilon = parse_positive(val, line, "epsilon");
  } else if (key == "confidence") {
    job.confidence = parse_positive(val, line, "confidence");
    if (job.confidence <= 0.0 || job.confidence >= 1.0)
      throw SpecError(line, "confidence must be in (0, 1)");
  } else if (key == "min-pairs") {
    job.min_pairs = parse_num<std::size_t>(val, line, "min-pairs");
  } else if (key == "max-pairs") {
    job.max_pairs = parse_num<std::size_t>(val, line, "max-pairs");
  } else if (key == "max-iters") {
    job.max_iters = parse_num<int>(val, line, "max-iters");
  } else if (key == "deadline") {
    job.budget.deadline_seconds = parse_positive(val, line, "deadline");
  } else if (key == "wall-deadline") {
    job.attempt_deadline_seconds =
        parse_positive(val, line, "wall-deadline");
  } else if (key == "node-cap") {
    job.budget.node_cap = parse_num<std::size_t>(val, line, "node-cap");
  } else if (key == "step-quota") {
    job.budget.step_quota = parse_num<std::size_t>(val, line, "step-quota");
  } else if (key == "memory-cap") {
    job.budget.memory_cap_bytes =
        parse_num<std::size_t>(val, line, "memory-cap");
  } else if (key == "mc-threads") {
    job.mc_threads = parse_num<int>(val, line, "mc-threads");
    if (job.mc_threads < 0)
      throw SpecError(line, "mc-threads must be >= 0");
  } else {
    throw SpecError(line, "unknown job key '" + std::string(key) + "'");
  }
}

}  // namespace

CampaignSpec parse_campaign_spec(std::string_view text) {
  CampaignSpec spec;
  std::unordered_set<std::string> ids;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    std::vector<std::string_view> toks = split_ws(line);
    if (toks.empty()) continue;

    if (toks[0] == "workers") {
      if (toks.size() != 2) throw SpecError(line_no, "workers takes one value");
      spec.workers = parse_num<int>(toks[1], line_no, "workers");
      if (spec.workers < 1 || spec.workers > 256)
        throw SpecError(line_no, "workers must be in [1, 256]");
    } else if (toks[0] == "max-attempts") {
      if (toks.size() != 2)
        throw SpecError(line_no, "max-attempts takes one value");
      spec.retry.max_attempts =
          parse_num<int>(toks[1], line_no, "max-attempts");
      if (spec.retry.max_attempts < 1)
        throw SpecError(line_no, "max-attempts must be >= 1");
    } else if (toks[0] == "base-delay") {
      if (toks.size() != 2)
        throw SpecError(line_no, "base-delay takes one value");
      spec.retry.base_delay_seconds =
          parse_positive(toks[1], line_no, "base-delay");
    } else if (toks[0] == "job") {
      if (toks.size() < 4)
        throw SpecError(line_no, "job needs: job <id> <kind> <design>");
      Job job;
      job.id = std::string(toks[1]);
      if (!ids.insert(job.id).second)
        throw SpecError(line_no, "duplicate job id '" + job.id + "'");
      if (!parse_job_kind(toks[2], job.kind) || job.kind == JobKind::Custom)
        throw SpecError(line_no, "unknown job kind '" + std::string(toks[2]) +
                                     "' (symbolic, monte-carlo, markov, "
                                     "schedule)");
      job.design = std::string(toks[3]);
      for (std::size_t t = 4; t < toks.size(); ++t) {
        std::size_t eq = toks[t].find('=');
        if (eq == std::string_view::npos || eq == 0 ||
            eq + 1 >= toks[t].size())
          throw SpecError(line_no, "job option must be key=value, got '" +
                                       std::string(toks[t]) + "'");
        apply_job_key(job, toks[t].substr(0, eq), toks[t].substr(eq + 1),
                      line_no);
      }
      spec.jobs.push_back(std::move(job));
    } else {
      throw SpecError(line_no, "unknown directive '" + std::string(toks[0]) +
                                   "'");
    }
  }
  return spec;
}

CampaignSpec read_campaign_spec(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    // The errno text turns "cannot read" into an actionable message — a
    // missing file, a permission problem, and a directory-as-file all read
    // identically without it.
    const int err = errno;
    throw std::runtime_error("jobs: cannot read campaign spec '" + path +
                             "': " + std::strerror(err));
  }
  std::string text;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_campaign_spec(text);
}

}  // namespace hlp::jobs
