#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cdfg/cdfg.hpp"
#include "core/sampling_power.hpp"
#include "exec/exec.hpp"
#include "netlist/generators.hpp"

namespace hlp::jobs {

/// --- Estimator kernels behind the job runner -------------------------------
///
/// A job names a kernel *kind* and a *design spec* instead of holding live
/// objects, so a campaign is fully described by text (spec files, ledger
/// records) and every run of the same job is bit-identical: the kernel
/// rebuilds the design from the spec and derives its RNG seed from the job
/// id — never from the thread schedule or wall clock.

enum class JobKind : std::uint8_t {
  Symbolic,    ///< exact switched-cap expectation via BDD sat-fractions
  MonteCarlo,  ///< Burch-style sampled power with CI stopping (resumable)
  Markov,      ///< STG steady-state power iteration (edge entropy)
  Schedule,    ///< activity-driven list scheduling (latency)
  Static,      ///< zero-simulation dataflow estimate with guaranteed bounds
               ///< (hlp::analysis); escalates to MonteCarlo when the bound
               ///< spread exceeds the requested epsilon
  Custom,      ///< caller-supplied kernel (tests / embedders); not in specs
};

const char* to_string(JobKind k);
bool parse_job_kind(std::string_view s, JobKind& out);

/// What a successful kernel run produced (plus any resumable state a
/// failed run left behind).
struct KernelOutput {
  double value = 0.0;   ///< the job's scalar estimate
  std::string detail;   ///< human-readable method/effort summary
  bool degraded = false;
  std::string degraded_from;  ///< e.g. "bdd-sat-fraction"
  std::string degraded_to;    ///< e.g. "monte-carlo"
  bool has_checkpoint = false;
  core::MonteCarloCheckpoint checkpoint;  ///< resumable partial estimate
};

/// One attempt's result. `ok == false` means the budget stopped the kernel
/// (stop + detail say how); invalid designs/parameters throw
/// std::invalid_argument instead, and symbolic blow-ups surface as
/// exec::BudgetExceeded — the runner classifies all three differently.
struct AttemptOutcome {
  bool ok = false;
  exec::StopReason stop = exec::StopReason::None;
  std::string detail;
  KernelOutput out;  ///< value valid when ok; checkpoint filled either way
};

/// Kernel invocation, decoupled from the scheduling-side Job so the kernel
/// layer has no dependency on the runner.
struct KernelRequest {
  JobKind kind = JobKind::MonteCarlo;
  std::string design;
  std::uint64_t seed = 0;  ///< derive via job_seed(job id)
  bool degraded = false;   ///< run the downgraded (sampled) path directly
  /// Monte Carlo / sampled-fallback parameters.
  double epsilon = 0.02;
  double confidence = 0.95;
  std::size_t min_pairs = 30;
  std::size_t max_pairs = 20000;
  /// mc_threads > 0 selects the chunk-sharded estimator (bit-identical
  /// across thread counts); 0 keeps the sequential path and its values.
  int mc_threads = 0;
  std::size_t mc_chunk_pairs = 4096;
  /// Markov parameters.
  int max_iters = 2000;
  /// Resume state from a previous attempt's checkpoint (nullptr = fresh).
  const core::MonteCarloCheckpoint* resume = nullptr;
};

/// Execute one metered kernel attempt under `budget`. Deterministic in
/// (kind, design, seed, degraded, resume) — two calls with equal requests
/// return bit-identical values regardless of thread or process.
AttemptOutcome run_kernel(const KernelRequest& rq, const exec::Budget& budget);

/// Deterministic per-job seed: FNV-1a over the job id, finalized with a
/// splitmix64 mix. Depends only on the id string, so serial, parallel, and
/// resumed runs of the same campaign draw identical vector streams.
std::uint64_t job_seed(std::string_view job_id);

/// Design-spec factories (exposed for tests and the lint/CLI layers).
/// Netlist specs: adder:N, mult:N, alu:N, parity:N, comparator:N, max:N,
/// mux:SEL, mulred:N:TREES, random:IN:GATES:OUT:SEED, c17.
/// Throws std::invalid_argument (with the offending spec) on unknown names,
/// bad arity, unparsable or out-of-range arguments (total input bits are
/// capped at 64 — the width of a simulation vector).
netlist::Module make_module(const std::string& design);
/// CDFG specs: poly:ORDER, horner:ORDER, fir:TAPS, expr:LEAVES:SEED,
/// branching:BRANCHES:CONE:SEED, opshare:VARS:COEFS.
cdfg::Cdfg make_cdfg(const std::string& design);

}  // namespace hlp::jobs
