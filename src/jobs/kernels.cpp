#include "jobs/kernels.hpp"

#include <charconv>
#include <map>
#include <stdexcept>
#include <vector>

#include "analysis/estimate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/netlist_bdd.hpp"
#include "netlist/index.hpp"
#include "cdfg/generators.hpp"
#include "core/scheduling_power.hpp"
#include "fsm/benchmarks.hpp"
#include "fsm/markov.hpp"
#include "stats/rng.hpp"

namespace hlp::jobs {

const char* to_string(JobKind k) {
  switch (k) {
    case JobKind::Symbolic: return "symbolic";
    case JobKind::MonteCarlo: return "monte-carlo";
    case JobKind::Markov: return "markov";
    case JobKind::Schedule: return "schedule";
    case JobKind::Static: return "static";
    case JobKind::Custom: return "custom";
  }
  return "unknown";
}

bool parse_job_kind(std::string_view s, JobKind& out) {
  for (JobKind k : {JobKind::Symbolic, JobKind::MonteCarlo, JobKind::Markov,
                    JobKind::Schedule, JobKind::Static, JobKind::Custom}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::uint64_t job_seed(std::string_view job_id) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (unsigned char c : job_id) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h += 0x9e3779b97f4a7c15ull;  // splitmix64 finalizer
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

namespace {

[[noreturn]] void bad_spec(const std::string& design, const char* why) {
  throw std::invalid_argument("jobs: bad design spec '" + design + "': " +
                              why);
}

/// Split "name:a:b:..." into name + integer args, validating arity and
/// per-argument [lo, hi] ranges.
struct SpecArgs {
  std::string name;
  std::vector<long long> args;
};

SpecArgs split_spec(const std::string& design) {
  SpecArgs out;
  std::size_t pos = design.find(':');
  out.name = design.substr(0, pos);
  while (pos != std::string::npos) {
    std::size_t next = design.find(':', pos + 1);
    std::string_view tok(design.data() + pos + 1,
                         (next == std::string::npos ? design.size() : next) -
                             pos - 1);
    long long v = 0;
    auto [rest, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || rest != tok.data() + tok.size())
      bad_spec(design, "argument is not an integer");
    out.args.push_back(v);
    pos = next;
  }
  return out;
}

long long arg_in(const SpecArgs& sa, const std::string& design, std::size_t i,
                 long long lo, long long hi) {
  if (i >= sa.args.size()) bad_spec(design, "missing argument");
  if (sa.args[i] < lo || sa.args[i] > hi)
    bad_spec(design, "argument out of range");
  return sa.args[i];
}

void expect_arity(const SpecArgs& sa, const std::string& design,
                  std::size_t n) {
  if (sa.args.size() != n) bad_spec(design, "wrong number of arguments");
}

}  // namespace

netlist::Module make_module(const std::string& design) {
  SpecArgs sa = split_spec(design);
  if (sa.name == "adder") {
    expect_arity(sa, design, 1);
    return netlist::adder_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 31)));
  }
  if (sa.name == "mult") {
    expect_arity(sa, design, 1);
    return netlist::multiplier_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 16)));
  }
  if (sa.name == "alu") {
    expect_arity(sa, design, 1);
    return netlist::alu_module(static_cast<int>(arg_in(sa, design, 0, 1, 24)));
  }
  if (sa.name == "parity") {
    expect_arity(sa, design, 1);
    return netlist::parity_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 63)));
  }
  if (sa.name == "comparator") {
    expect_arity(sa, design, 1);
    return netlist::comparator_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 31)));
  }
  if (sa.name == "max") {
    expect_arity(sa, design, 1);
    return netlist::max_module(static_cast<int>(arg_in(sa, design, 0, 1, 31)));
  }
  if (sa.name == "mux") {
    expect_arity(sa, design, 1);
    return netlist::mux_tree_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 5)));
  }
  if (sa.name == "mulred") {
    expect_arity(sa, design, 2);
    return netlist::multiply_reduce_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 16)),
        static_cast<int>(arg_in(sa, design, 1, 1, 8)));
  }
  if (sa.name == "random") {
    expect_arity(sa, design, 4);
    return netlist::random_logic_module(
        static_cast<int>(arg_in(sa, design, 0, 1, 63)),
        static_cast<int>(arg_in(sa, design, 1, 1, 20000)),
        static_cast<int>(arg_in(sa, design, 2, 1, 64)),
        static_cast<std::uint64_t>(
            arg_in(sa, design, 3, 0, (1ll << 62))));
  }
  if (sa.name == "c17") {
    expect_arity(sa, design, 0);
    return netlist::c17_module();
  }
  bad_spec(design, "unknown netlist design");
}

cdfg::Cdfg make_cdfg(const std::string& design) {
  SpecArgs sa = split_spec(design);
  if (sa.name == "poly") {
    expect_arity(sa, design, 1);
    return cdfg::polynomial_direct(
        static_cast<int>(arg_in(sa, design, 0, 1, 32)));
  }
  if (sa.name == "horner") {
    expect_arity(sa, design, 1);
    return cdfg::polynomial_horner(
        static_cast<int>(arg_in(sa, design, 0, 1, 32)));
  }
  if (sa.name == "fir") {
    expect_arity(sa, design, 1);
    return cdfg::fir_cdfg(static_cast<int>(arg_in(sa, design, 0, 1, 64)));
  }
  if (sa.name == "expr") {
    expect_arity(sa, design, 2);
    return cdfg::random_expr_tree(
        static_cast<int>(arg_in(sa, design, 0, 2, 512)), 0.4,
        static_cast<std::uint64_t>(arg_in(sa, design, 1, 0, (1ll << 62))));
  }
  if (sa.name == "branching") {
    expect_arity(sa, design, 3);
    return cdfg::branching_cdfg(
        static_cast<int>(arg_in(sa, design, 0, 1, 64)),
        static_cast<int>(arg_in(sa, design, 1, 1, 64)),
        static_cast<std::uint64_t>(arg_in(sa, design, 2, 0, (1ll << 62))));
  }
  if (sa.name == "opshare") {
    expect_arity(sa, design, 2);
    return cdfg::operand_sharing_cdfg(
        static_cast<int>(arg_in(sa, design, 0, 1, 64)),
        static_cast<int>(arg_in(sa, design, 1, 1, 64)));
  }
  bad_spec(design, "unknown cdfg design");
}

namespace {

/// Sampled power estimate — the Monte Carlo kernel and the symbolic
/// kernel's degradation target share this exact code path, so a downgraded
/// retry's answer equals the sampled estimator's direct answer bit for bit.
AttemptOutcome sampled_power(const KernelRequest& rq,
                             const exec::Budget& budget) {
  netlist::Module mod = make_module(rq.design);
  const int width = mod.total_input_bits();
  core::MonteCarloCheckpoint resume;
  if (rq.resume && rq.resume->valid()) resume = *rq.resume;
  exec::Outcome<core::MonteCarloResult> out;
  if (rq.mc_threads > 0) {
    // Chunk-sharded estimator: per-chunk seeds derive from the job seed, so
    // the sampled pairs — and therefore the estimate — depend only on
    // (seed, chunk_pairs), not on mc_threads or where a resume cut the
    // campaign. Checkpoints resume at chunk granularity with no generator
    // fast-forwarding (each chunk owns its own generator).
    core::ShardedMcOptions so;
    so.total_pairs = rq.max_pairs;
    so.chunk_pairs = rq.mc_chunk_pairs ? rq.mc_chunk_pairs : 4096;
    so.threads = rq.mc_threads;
    so.epsilon = rq.epsilon;
    so.confidence = rq.confidence;
    so.min_pairs = rq.min_pairs;
    out = core::monte_carlo_power_sharded(mod, rq.seed, so, budget, {},
                                          resume);
  } else {
    stats::Rng rng(rq.seed);
    if (resume.valid()) {
      // The estimator draws exactly two vectors per pair, in pair order
      // (the packed engine interleaves identically — see
      // sampling_power.cpp), so fast-forwarding a fresh generator by
      // 2*count draws re-creates the exact stream position the
      // checkpointed run would have continued from. Over-draws past a
      // cancellation stop don't matter: they were never folded into the
      // Welford state the checkpoint captured.
      rng.engine().discard(2 * static_cast<unsigned long long>(resume.count));
    }
    auto gen = [&rng, width] { return rng.uniform_bits(width); };
    out = core::monte_carlo_power_budgeted(mod, gen, budget, rq.epsilon,
                                           rq.confidence, rq.min_pairs,
                                           rq.max_pairs, {}, {}, resume);
  }

  AttemptOutcome ao;
  ao.out.has_checkpoint = out.value.checkpoint.valid();
  ao.out.checkpoint = out.value.checkpoint;
  if (out.value.stop_reason ==
      core::MonteCarloResult::StopReason::BudgetExhausted) {
    ao.ok = false;
    ao.stop = out.diag.stop;
    ao.detail = "monte-carlo stopped at " + std::to_string(out.value.pairs) +
                " pairs (" + exec::to_string(out.diag.stop) + ")";
    return ao;
  }
  ao.ok = true;
  ao.out.value = out.value.mean_energy;
  ao.detail = ao.out.detail =
      "monte-carlo " + std::to_string(out.value.pairs) + " pairs, " +
      (out.value.converged ? "converged" : "pair-budget exhausted");
  return ao;
}

AttemptOutcome symbolic_power(const KernelRequest& rq,
                              const exec::Budget& budget) {
  if (rq.degraded) {
    // Downgraded retry: run the sampled estimator directly and label the
    // degradation. Same seed derivation as a direct MonteCarlo job.
    AttemptOutcome ao = sampled_power(rq, budget);
    ao.out.degraded = true;
    ao.out.degraded_from = "bdd-sat-fraction";
    ao.out.degraded_to = "monte-carlo";
    return ao;
  }
  netlist::Module mod = make_module(rq.design);
  exec::Meter meter(budget);
  bdd::Manager mgr;
  mgr.set_meter(&meter);
  // Worst-case exponential: a node-cap/deadline trip throws
  // exec::BudgetExceeded out of here; the runner classifies it
  // budget-exhausted and the retry policy may downgrade to sampling.
  bdd::NetlistBdds bdds = bdd::build_bdds(mgr, mod.netlist);
  std::vector<double> loads = mod.netlist.loads({});
  double energy = 0.0;
  for (netlist::GateId g = 0; g < mod.netlist.gate_count(); ++g) {
    meter.step();
    double p = mgr.sat_fraction(bdds.fn[g]);
    // Expected switched cap per independent vector pair: toggle probability
    // of a node with signal probability p is 2p(1-p).
    energy += loads[g] * 2.0 * p * (1.0 - p);
  }
  AttemptOutcome ao;
  ao.ok = true;
  ao.out.value = energy;
  ao.detail = ao.out.detail =
      "bdd exact, " + std::to_string(mgr.total_nodes()) + " nodes over " +
      std::to_string(mod.netlist.gate_count()) + " gates";
  return ao;
}

AttemptOutcome static_power(const KernelRequest& rq,
                            const exec::Budget& budget) {
  if (rq.degraded) {
    AttemptOutcome ao = sampled_power(rq, budget);
    ao.out.degraded = true;
    ao.out.degraded_from = "static-bounds";
    ao.out.degraded_to = "monte-carlo";
    return ao;
  }
  netlist::Module mod = make_module(rq.design);
  exec::Meter meter(budget);
  const netlist::NetlistIndex ix = netlist::build_index(mod.netlist);
  // Default StaticOptions on purpose: the BDD refinement budget is an
  // analysis constant, never derived from the request budget, so the value
  // for a given (design, epsilon) is budget-invariant — the property the
  // serve result cache requires of everything it stores.
  const analysis::StaticEstimate est =
      analysis::static_estimate(mod.netlist, ix, {}, &meter);
  if (est.stop != exec::StopReason::None) {
    AttemptOutcome ao;
    ao.ok = false;
    ao.stop = est.stop;
    ao.detail = std::string("static analysis stopped (") +
                exec::to_string(est.stop) + ")";
    return ao;
  }
  const double half = (est.upper - est.lower) / 2.0;
  const double tol = rq.epsilon * std::max(est.point, 1e-12);
  if (half <= tol) {
    AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = est.point;
    std::string d = "static-tier0, bounds [";
    d += std::to_string(est.lower);
    d += ", ";
    d += std::to_string(est.upper);
    d += "], ";
    d += std::to_string(est.activity.refined_gates);
    d += " gates bdd-exact";
    ao.detail = ao.out.detail = d;
    return ao;
  }
  // Bounds too loose for the requested accuracy: escalate to the packed
  // Monte Carlo kernel under the same budget/seed. This is the tiered
  // contract working as designed, not a degradation — the result is as
  // cacheable as a direct monte-carlo answer.
  AttemptOutcome ao = sampled_power(rq, budget);
  std::string prefix = "static-escalated (spread ";
  prefix += std::to_string(est.upper - est.lower);
  prefix += " > eps), ";
  ao.detail = prefix + ao.detail;
  ao.out.detail = ao.detail;
  return ao;
}

AttemptOutcome markov_power(const KernelRequest& rq,
                            const exec::Budget& budget) {
  fsm::Stg stg = fsm::controller_by_name(rq.design);
  exec::Outcome<fsm::MarkovAnalysis> out =
      fsm::analyze_markov_budgeted(stg, budget, {}, rq.max_iters);
  AttemptOutcome ao;
  if (out.diag.stop != exec::StopReason::None) {
    ao.ok = false;
    ao.stop = out.diag.stop;
    ao.detail = "power iteration stopped after " +
                std::to_string(out.value.iterations) + " sweeps (" +
                exec::to_string(out.diag.stop) + ")";
    return ao;
  }
  ao.ok = true;
  ao.out.value = out.value.edge_entropy();
  ao.detail = ao.out.detail =
      "power iteration, " + std::to_string(out.value.iterations) +
      " sweeps, " + (out.value.converged ? "converged" : "iteration cap");
  return ao;
}

AttemptOutcome schedule_power(const KernelRequest& rq,
                              const exec::Budget& budget) {
  cdfg::Cdfg g = make_cdfg(rq.design);
  std::map<cdfg::OpKind, int> limits{{cdfg::OpKind::Add, 1},
                                     {cdfg::OpKind::Mul, 1}};
  exec::Outcome<cdfg::Schedule> out =
      core::activity_driven_schedule_budgeted(g, budget, limits);
  AttemptOutcome ao;
  if (out.diag.stop == exec::StopReason::Cancelled) {
    // Cancellation (campaign stop or wall deadline) must interrupt the
    // attempt, not silently accept the ASAP fallback.
    ao.ok = false;
    ao.stop = out.diag.stop;
    ao.detail = "list scheduling cancelled";
    return ao;
  }
  ao.ok = true;
  ao.out.value = static_cast<double>(out.value.length);
  ao.out.degraded = out.diag.degraded;
  ao.out.degraded_from = out.diag.degraded_from;
  ao.out.degraded_to = out.diag.degraded_to;
  ao.detail = ao.out.detail =
      out.diag.degraded ? "asap fallback (budget trip mid-list-schedule)"
                        : "activity-driven list schedule";
  return ao;
}

}  // namespace

AttemptOutcome run_kernel(const KernelRequest& rq, const exec::Budget& budget) {
  switch (rq.kind) {
    case JobKind::Symbolic: return symbolic_power(rq, budget);
    case JobKind::MonteCarlo: return sampled_power(rq, budget);
    case JobKind::Markov: return markov_power(rq, budget);
    case JobKind::Schedule: return schedule_power(rq, budget);
    case JobKind::Static: return static_power(rq, budget);
    case JobKind::Custom:
      throw std::invalid_argument(
          "jobs: custom kernels carry their own callable; run_kernel has "
          "nothing to dispatch");
  }
  throw std::invalid_argument("jobs: unknown job kind");
}

}  // namespace hlp::jobs
