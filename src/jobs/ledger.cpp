#include "jobs/ledger.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "util/json.hpp"

namespace hlp::jobs {

const char* to_string(RecordKind k) {
  switch (k) {
    case RecordKind::Enqueued: return "enqueued";
    case RecordKind::Started: return "started";
    case RecordKind::AttemptFailed: return "attempt-failed";
    case RecordKind::Retried: return "retried";
    case RecordKind::Degraded: return "degraded";
    case RecordKind::Checkpoint: return "checkpoint";
    case RecordKind::Completed: return "completed";
  }
  return "unknown";
}

bool parse_record_kind(std::string_view s, RecordKind& out) {
  for (RecordKind k :
       {RecordKind::Enqueued, RecordKind::Started, RecordKind::AttemptFailed,
        RecordKind::Retried, RecordKind::Degraded, RecordKind::Checkpoint,
        RecordKind::Completed}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

// JSON writing/escaping and the strict line-parsing primitives live in
// util/json.hpp, shared with the bench reports and the serve wire protocol.
// The canonical-form guarantee (serialize∘parse byte-identical) is theirs;
// this file owns only the ledger's field vocabulary and per-kind ordering.
using util::append_field;
using util::append_json_string;
using util::number_as;
using util::number_token;
using util::parse_json_string;

using Cursor = util::JsonCursor;

std::string LedgerRecord::serialize() const {
  std::string s = "{\"rec\":";
  append_json_string(s, to_string(kind));
  append_field(s, "seq", seq);
  append_field(s, "job", job);
  switch (kind) {
    case RecordKind::Enqueued:
      append_field(s, "kind", job_kind);
      append_field(s, "design", design);
      break;
    case RecordKind::Started:
      append_field(s, "attempt", attempt);
      break;
    case RecordKind::AttemptFailed:
      append_field(s, "attempt", attempt);
      append_field(s, "error", error);
      append_field(s, "detail", detail);
      break;
    case RecordKind::Retried:
      append_field(s, "attempt", attempt);
      append_field(s, "delay", delay_seconds);
      break;
    case RecordKind::Degraded:
      append_field(s, "attempt", attempt);
      append_field(s, "from", from);
      append_field(s, "to", to);
      break;
    case RecordKind::Checkpoint:
      append_field(s, "attempt", attempt);
      append_field(s, "ckpt", checkpoint);
      break;
    case RecordKind::Completed:
      append_field(s, "attempts", attempts);
      append_field(s, "degraded", degraded);
      append_field(s, "value", value);
      append_field(s, "detail", detail);
      break;
  }
  s.push_back('}');
  return s;
}

bool LedgerRecord::parse(std::string_view line, LedgerRecord& out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  LedgerRecord r;
  bool have_rec = false, have_seq = false, have_job = false;
  std::uint32_t seen = 0;  // duplicate-key bitmap, one bit per known key
  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return false;
    if (first && c.at_end()) return false;
    first = false;
    std::string key;
    if (!parse_json_string(c, key)) return false;
    if (!c.eat(':')) return false;

    auto mark = [&seen](int bit) {
      if (seen & (1u << bit)) return false;
      seen |= 1u << bit;
      return true;
    };

    if (key == "rec") {
      std::string v;
      if (!mark(0) || !parse_json_string(c, v)) return false;
      if (!parse_record_kind(v, r.kind)) return false;
      have_rec = true;
    } else if (key == "seq") {
      if (!mark(1) || !number_as(number_token(c), r.seq)) return false;
      have_seq = true;
    } else if (key == "job") {
      if (!mark(2) || !parse_json_string(c, r.job)) return false;
      have_job = true;
    } else if (key == "kind") {
      if (!mark(3) || !parse_json_string(c, r.job_kind)) return false;
    } else if (key == "design") {
      if (!mark(4) || !parse_json_string(c, r.design)) return false;
    } else if (key == "attempt") {
      if (!mark(5) || !number_as(number_token(c), r.attempt)) return false;
    } else if (key == "error") {
      if (!mark(6) || !parse_json_string(c, r.error)) return false;
    } else if (key == "detail") {
      if (!mark(7) || !parse_json_string(c, r.detail)) return false;
    } else if (key == "delay") {
      if (!mark(8) || !number_as(number_token(c), r.delay_seconds))
        return false;
    } else if (key == "from") {
      if (!mark(9) || !parse_json_string(c, r.from)) return false;
    } else if (key == "to") {
      if (!mark(10) || !parse_json_string(c, r.to)) return false;
    } else if (key == "ckpt") {
      if (!mark(11) || !parse_json_string(c, r.checkpoint)) return false;
    } else if (key == "attempts") {
      if (!mark(12) || !number_as(number_token(c), r.attempts)) return false;
    } else if (key == "degraded") {
      if (!mark(13) || !util::parse_json_bool(c, r.degraded)) return false;
    } else if (key == "value") {
      if (!mark(14) || !number_as(number_token(c), r.value)) return false;
    } else {
      return false;  // unknown key: refuse to half-read a damaged line
    }
  }
  // Only trailing whitespace may follow the closing brace.
  if (!util::only_trailing_ws(c)) return false;
  if (!have_rec || !have_seq || !have_job) return false;
  out = std::move(r);
  return true;
}

LedgerWriter::LedgerWriter(const std::string& path, bool truncate) {
  f_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (!f_)
    throw std::runtime_error("jobs: cannot open ledger file '" + path + "'");
}

LedgerWriter::~LedgerWriter() {
  // Well-behaved use never destroys the writer with appenders in flight
  // (every append blocks until its records are durable), so pending_ is
  // empty here unless a failure already closed the file.
  std::lock_guard<std::mutex> lk(mu_);
  if (f_) std::fclose(f_);
  f_ = nullptr;
}

bool LedgerWriter::open() const {
  std::lock_guard<std::mutex> lk(mu_);
  return f_ != nullptr;
}

std::uint64_t LedgerWriter::records_committed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_;
}

std::uint64_t LedgerWriter::flush_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flushes_;
}

void LedgerWriter::append(const LedgerRecord& rec) {
  std::string line = rec.serialize();
  line.push_back('\n');
  commit_lines(std::move(line), 1);
}

void LedgerWriter::append_batch(std::span<const LedgerRecord> recs) {
  if (recs.empty()) return;
  std::string text;
  for (const LedgerRecord& rec : recs) {
    text += rec.serialize();
    text.push_back('\n');
  }
  commit_lines(std::move(text), recs.size());
}

void LedgerWriter::commit_lines(std::string&& text, std::uint64_t n) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!f_) return;
  pending_ += text;
  const std::uint64_t my_horizon = enqueued_ + n;
  enqueued_ = my_horizon;
  // Leader-flush group commit: whoever finds the flush slot free takes the
  // whole pending buffer to disk; everyone else sleeps until a leader's
  // durable horizon covers their records. Write-ahead discipline holds —
  // the caller returns only once its records are fsync'd (or the writer
  // has failed).
  while (durable_ < my_horizon && f_) {
    if (!flushing_) {
      flushing_ = true;
      std::string buf;
      buf.swap(pending_);
      const std::uint64_t upto = enqueued_;
      std::FILE* f = f_;
      lk.unlock();
      // An I/O failure (disk full) silently closes the ledger rather than
      // killing the campaign — the ledger is a durability optimization,
      // and a later resume simply re-runs whatever the lost records
      // covered. fsync errors are ignored, matching the historical
      // per-record writer.
      const bool ok =
          std::fwrite(buf.data(), 1, buf.size(), f) == buf.size() &&
          std::fflush(f) == 0;
      if (ok) ::fsync(::fileno(f));
      lk.lock();
      flushing_ = false;
      if (ok) {
        durable_ = upto;
        ++flushes_;
      } else {
        std::fclose(f_);
        f_ = nullptr;
      }
      cv_.notify_all();
    } else {
      cv_.wait(lk);
    }
  }
}

std::uint64_t LedgerScan::max_seq() const {
  std::uint64_t m = 0;
  for (const auto& r : records) m = std::max(m, r.seq);
  return m;
}

LedgerScan scan_ledger_text(std::string_view text) {
  LedgerScan scan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool truncated = nl == std::string_view::npos;
    std::string_view line =
        text.substr(pos, truncated ? std::string_view::npos : nl - pos);
    pos = truncated ? text.size() : nl + 1;
    if (line.empty()) continue;
    LedgerRecord rec;
    if (LedgerRecord::parse(line, rec)) {
      scan.records.push_back(std::move(rec));
    } else {
      ++scan.malformed_lines;
      if (scan.warnings.size() < 32) {
        std::string why = truncated ? "truncated final line (crash mid-write)"
                                    : "malformed record";
        scan.warnings.push_back(
            why + ": " +
            std::string(line.substr(0, std::min<std::size_t>(line.size(), 80))));
      }
    }
  }
  return scan;
}

LedgerScan read_ledger(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string text;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return scan_ledger_text(text);
}

}  // namespace hlp::jobs
