#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hlp::jobs {

/// --- Durable campaign ledger ----------------------------------------------
///
/// Every job state transition is appended to a JSON-lines ledger *before*
/// the runner acts on it (write-ahead): one flat JSON object per line,
/// durable (flushed and fsync'd) before the append returns — concurrent
/// appends share fsyncs via group commit without weakening that guarantee.
/// A killed process therefore loses at most
/// the attempts that were in flight — on restart, `Runner::resume` scans
/// the ledger, skips every job with a `completed` record, and restores
/// interrupted Monte Carlo estimates from their latest `checkpoint` record.
///
/// Crash model: the only corruption a kill can produce is a truncated
/// final line (a write cut mid-record). The scanner skips any line that is
/// not a complete, well-formed record — counting it and warning, never
/// crashing — so a ledger is always readable no matter where the previous
/// process died. See DESIGN.md §8 for the full format specification.

/// One record kind per job lifecycle transition (DESIGN.md §8 state
/// machine). `Checkpoint` is not a transition: it snapshots resumable
/// kernel state next to the `attempt-failed` record it accompanies.
enum class RecordKind : std::uint8_t {
  Enqueued,       ///< job admitted to the campaign (id, kind, design)
  Started,        ///< attempt N began on some worker
  AttemptFailed,  ///< attempt N ended in a classified error
  Retried,        ///< attempt N+1 scheduled after backoff delay
  Degraded,       ///< retry will run the downgraded (sampled) kernel
  Checkpoint,     ///< serialized resumable kernel state (Monte Carlo)
  Completed,      ///< job finished; value + attempt count are final
};

const char* to_string(RecordKind k);
bool parse_record_kind(std::string_view s, RecordKind& out);

/// One ledger line. Only the fields meaningful for `kind` are serialized
/// (see each field's comment); the rest stay at their defaults.
struct LedgerRecord {
  RecordKind kind = RecordKind::Enqueued;
  std::uint64_t seq = 0;  ///< campaign-monotone sequence number (all kinds)
  std::string job;        ///< job id (all kinds)

  // Enqueued
  std::string job_kind;  ///< kernel kind name ("monte-carlo", ...)
  std::string design;    ///< design generator spec ("adder:16", ...)

  // Started / AttemptFailed / Retried / Degraded / Checkpoint
  int attempt = 0;  ///< 1-based; for Retried, the *upcoming* attempt

  // AttemptFailed
  std::string error;   ///< ErrorClass name ("budget-exhausted", ...)
  std::string detail;  ///< free text (also used by Completed)

  // Retried
  double delay_seconds = 0.0;  ///< backoff slept before the next attempt

  // Degraded
  std::string from;  ///< method abandoned (e.g. "bdd-sat-fraction")
  std::string to;    ///< fallback method (e.g. "monte-carlo")

  // Checkpoint
  std::string checkpoint;  ///< core::MonteCarloCheckpoint::serialize()

  // Completed
  int attempts = 0;      ///< total attempts consumed
  bool degraded = false; ///< value came from a downgraded kernel
  double value = 0.0;    ///< the job's scalar estimate

  /// Canonical single-line JSON (no trailing newline). Field order is
  /// fixed per kind and doubles use shortest-round-trip formatting, so
  /// serialize(parse(serialize(r))) is byte-identical to serialize(r).
  std::string serialize() const;

  /// Parse one ledger line. Accepts the known keys in any order (unknown
  /// keys are rejected — a truncated line that happens to re-synchronize
  /// must not be half-read). Returns false on any malformation, leaving
  /// `out` untouched.
  static bool parse(std::string_view line, LedgerRecord& out);

  bool operator==(const LedgerRecord&) const = default;
};

/// Append-only writer with group commit. Every append is durable (written,
/// flushed, and fsync'd) before it returns — the write-ahead discipline is
/// unchanged — but when several threads complete records concurrently, one
/// of them becomes the *flush leader*: it takes every line enqueued so far
/// and retires them with a single fwrite+fflush+fsync while the others wait
/// on a condition variable for their record's durable horizon. N records
/// racing through the commit path thus cost one fsync, not N, without
/// weakening the crash model (a record is never acknowledged before it is
/// on disk; the only kill artifact is still a truncated final line).
///
/// `append_batch` extends the same protocol to a caller who already holds
/// several records (the runner's enqueue burst): the whole batch rides one
/// enqueue and is covered by one fsync.
///
/// All members are thread-safe. File order may interleave records from
/// concurrent appenders in any order — `seq` is campaign-monotone but the
/// ledger format has never promised file-order monotonicity, and the
/// scanner orders by content, not position.
class LedgerWriter {
 public:
  LedgerWriter() = default;
  /// `truncate` starts a fresh ledger; otherwise appends to an existing
  /// one (resume). Throws std::runtime_error if the file cannot be opened.
  explicit LedgerWriter(const std::string& path, bool truncate = true);
  ~LedgerWriter();
  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;

  bool open() const;
  void append(const LedgerRecord& rec);
  /// Append several records with one durable commit (single fsync for the
  /// batch, possibly shared with concurrent appenders).
  void append_batch(std::span<const LedgerRecord> recs);

  /// Records durably retired so far (monotone; for benches/diagnostics).
  std::uint64_t records_committed() const;
  /// Physical fsync batches issued. records_committed / flush_batches is
  /// the group-commit amortization factor (1.0 = no batching happened).
  std::uint64_t flush_batches() const;

 private:
  /// Enqueue pre-serialized text covering `n` records and block until it
  /// is durable (or the writer has failed). Implements the leader-flush
  /// protocol shared by append and append_batch.
  void commit_lines(std::string&& text, std::uint64_t n);

  std::FILE* f_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string pending_;           ///< serialized lines awaiting flush
  std::uint64_t enqueued_ = 0;    ///< records ever enqueued
  std::uint64_t durable_ = 0;     ///< records known on disk
  bool flushing_ = false;         ///< a leader currently owns the buffer
  std::uint64_t flushes_ = 0;     ///< physical fsync batches issued
};

/// Result of scanning a ledger: every well-formed record in file order,
/// plus a count of skipped (malformed or truncated) lines with one warning
/// string each (capped to keep a hostile file from ballooning memory).
struct LedgerScan {
  std::vector<LedgerRecord> records;
  std::size_t malformed_lines = 0;
  std::vector<std::string> warnings;

  /// Highest sequence number seen (0 when empty); a resumed campaign
  /// continues numbering from here.
  std::uint64_t max_seq() const;
};

/// Scan ledger text (exposed separately for tests and the fuzz harness).
LedgerScan scan_ledger_text(std::string_view text);

/// Read and scan a ledger file. A missing file yields an empty scan — a
/// resume against a ledger that was never created is a fresh campaign.
LedgerScan read_ledger(const std::string& path);

}  // namespace hlp::jobs
