#include "jobs/jobs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace hlp::jobs {

const char* to_string(ErrorClass e) {
  switch (e) {
    case ErrorClass::None: return "none";
    case ErrorClass::InvalidInput: return "invalid-input";
    case ErrorClass::BudgetExhausted: return "budget-exhausted";
    case ErrorClass::Internal: return "internal";
    case ErrorClass::Cancelled: return "cancelled";
  }
  return "unknown";
}

bool parse_error_class(std::string_view s, ErrorClass& out) {
  for (ErrorClass e : {ErrorClass::None, ErrorClass::InvalidInput,
                       ErrorClass::BudgetExhausted, ErrorClass::Internal,
                       ErrorClass::Cancelled}) {
    if (s == to_string(e)) {
      out = e;
      return true;
    }
  }
  return false;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Completed: return "completed";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
  }
  return "unknown";
}

ErrorClass classify_current_exception(bool campaign_cancelled) {
  try {
    throw;
  } catch (const exec::BudgetExceeded& e) {
    if (e.reason() == exec::StopReason::Cancelled)
      // Only two parties ever trip an attempt token: the campaign (a real
      // cancellation) and the supervisor's wall deadline (a resource
      // limit, hence retryable budget exhaustion).
      return campaign_cancelled ? ErrorClass::Cancelled
                                : ErrorClass::BudgetExhausted;
    return ErrorClass::BudgetExhausted;
  } catch (const std::invalid_argument&) {
    return ErrorClass::InvalidInput;
  } catch (const std::bad_alloc&) {
    return ErrorClass::Internal;
  } catch (...) {
    return ErrorClass::Internal;
  }
}

double RetryPolicy::delay_seconds(std::string_view job_id,
                                  int failed_attempts) const {
  if (failed_attempts < 1) failed_attempts = 1;
  double d = base_delay_seconds;
  for (int i = 1; i < failed_attempts; ++i) {
    d *= multiplier;
    if (d >= max_delay_seconds) break;
  }
  d = std::min(d, max_delay_seconds);
  // Deterministic jitter in [-jitter_frac, +jitter_frac): hashed from the
  // (job, attempt) pair, so two runs of the same campaign back off on the
  // same schedule while distinct jobs de-synchronize.
  std::uint64_t h = job_seed(job_id) ^
                    (0x9e3779b97f4a7c15ull *
                     static_cast<std::uint64_t>(failed_attempts));
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  d *= 1.0 + jitter_frac * (2.0 * u - 1.0);
  return d > 0.0 ? d : 0.0;
}

/// Atomic counter cells behind RunnerCounters. Relaxed ordering throughout:
/// each cell is an independent monotone event count, and a reader wants
/// exact per-cell values, not a consistent cross-cell cut.
struct RunnerCounterCells {
  std::atomic<std::size_t> enqueued{0};
  std::atomic<std::size_t> attempts_started{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> degraded{0};
  std::atomic<std::size_t> served_from_ledger{0};

  void bump(std::atomic<std::size_t>& cell) {
    cell.fetch_add(1, std::memory_order_relaxed);
  }
};

RunnerCounters Runner::counters() const {
  const RunnerCounterCells& c = *cells_;
  RunnerCounters out;
  out.enqueued = c.enqueued.load(std::memory_order_relaxed);
  out.attempts_started = c.attempts_started.load(std::memory_order_relaxed);
  out.completed = c.completed.load(std::memory_order_relaxed);
  out.failed = c.failed.load(std::memory_order_relaxed);
  out.cancelled = c.cancelled.load(std::memory_order_relaxed);
  out.retried = c.retried.load(std::memory_order_relaxed);
  out.degraded = c.degraded.load(std::memory_order_relaxed);
  out.served_from_ledger = c.served_from_ledger.load(std::memory_order_relaxed);
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Per-worker in-flight attempt, observed by the supervisor. `tripped` is
/// written (release) *before* the token is signalled, so a worker that
/// observes the cancellation (acquire) also observes why — see the
/// CancelToken memory-order contract in exec.hpp.
struct Inflight {
  exec::CancelToken token;
  std::shared_ptr<std::atomic<bool>> deadline_tripped;
  Clock::time_point deadline{};
  bool has_deadline = false;
  bool active = false;
};

struct Shared {
  std::mutex mu;  ///< guards ledger/seq/inflight; never held during a kernel
  LedgerWriter* ledger = nullptr;
  std::uint64_t seq = 0;
  std::vector<Inflight> inflight;
  exec::CancelToken campaign;
  RunnerCounterCells* counters = nullptr;
  bool stop_supervisor = false;
  std::condition_variable cv;

  /// Write-ahead append: sequence-stamped, durable before returning. The
  /// sequence is stamped under `mu` but the durable write happens outside
  /// it, so workers completing records concurrently share fsyncs through
  /// the ledger's group commit instead of serializing on this mutex.
  /// (`ledger` is set once before workers start and LedgerWriter is itself
  /// thread-safe, so the unlocked call is safe.)
  void append(LedgerRecord rec) {
    {
      std::lock_guard<std::mutex> lk(mu);
      rec.seq = ++seq;
    }
    if (ledger) ledger->append(rec);
  }

  /// Batch variant for bursts (campaign enqueue): stamps each record, then
  /// retires the whole burst with a single group-committed fsync.
  void append_batch(std::vector<LedgerRecord>& recs) {
    {
      std::lock_guard<std::mutex> lk(mu);
      for (LedgerRecord& rec : recs) rec.seq = ++seq;
    }
    if (ledger) ledger->append_batch(recs);
  }
};

/// Mutable per-job execution state (one owner worker at a time).
struct Slot {
  const Job* job = nullptr;
  JobResult result;
  core::MonteCarloCheckpoint ckpt;
  bool have_ckpt = false;
  bool degraded_mode = false;  ///< a prior retry downgraded this job
  int prior_attempts = 0;      ///< attempts recorded by an earlier process
  bool done = false;           ///< completed in a prior process (skip)
  std::size_t retries = 0;
};

LedgerRecord make_record(RecordKind kind, const std::string& job_id) {
  LedgerRecord r;
  r.kind = kind;
  r.job = job_id;
  return r;
}

void execute_job(const Job& job, Slot& slot, Shared& sh,
                 const RunnerOptions& opts, int worker) {
  JobResult& r = slot.result;
  r.id = job.id;
  int attempt = slot.prior_attempts;
  bool degraded_mode = slot.degraded_mode;
  const std::uint64_t seed = job_seed(job.id);

  for (;;) {
    if (sh.campaign.cancel_requested()) {
      r.status = JobStatus::Cancelled;
      r.error = ErrorClass::Cancelled;
      r.attempts = attempt;
      r.detail = "campaign cancelled before attempt";
      sh.counters->bump(sh.counters->cancelled);
      return;
    }
    ++attempt;
    sh.counters->bump(sh.counters->attempts_started);
    {
      LedgerRecord rec = make_record(RecordKind::Started, job.id);
      rec.attempt = attempt;
      sh.append(rec);
    }

    // Fresh token per attempt: cancellation is sticky, and a retry must
    // not start pre-cancelled.
    exec::CancelToken token;
    auto tripped = std::make_shared<std::atomic<bool>>(false);
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      Inflight& inf = sh.inflight[static_cast<std::size_t>(worker)];
      inf.token = token;
      inf.deadline_tripped = tripped;
      inf.has_deadline = job.attempt_deadline_seconds > 0.0;
      if (inf.has_deadline)
        inf.deadline = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               job.attempt_deadline_seconds));
      inf.active = true;
    }
    exec::Budget budget = job.budget;
    budget.cancel = token;

    AttemptOutcome ao;
    ErrorClass err = ErrorClass::None;
    std::string fail_detail;
    try {
      if (job.kind == JobKind::Custom) {
        if (!job.custom)
          throw std::invalid_argument("jobs: custom job '" + job.id +
                                      "' has no callable");
        ao = job.custom(budget, degraded_mode,
                        slot.have_ckpt ? &slot.ckpt : nullptr);
      } else {
        KernelRequest rq;
        rq.kind = job.kind;
        rq.design = job.design;
        rq.seed = seed;
        rq.degraded = degraded_mode;
        rq.epsilon = job.epsilon;
        rq.confidence = job.confidence;
        rq.min_pairs = job.min_pairs;
        rq.max_pairs = job.max_pairs;
        rq.mc_threads = job.mc_threads;
        rq.mc_chunk_pairs = job.mc_chunk_pairs;
        rq.max_iters = job.max_iters;
        rq.resume = slot.have_ckpt ? &slot.ckpt : nullptr;
        ao = opts.kernel_executor ? opts.kernel_executor(rq, budget)
                                  : run_kernel(rq, budget);
      }
      if (!ao.ok) {
        err = ao.stop == exec::StopReason::Cancelled &&
                      sh.campaign.cancel_requested()
                  ? ErrorClass::Cancelled
                  : ErrorClass::BudgetExhausted;
        fail_detail = ao.detail;
      }
    } catch (const std::exception& e) {
      err = classify_current_exception(sh.campaign.cancel_requested());
      fail_detail = e.what();
    } catch (...) {
      err = ErrorClass::Internal;
      fail_detail = "non-standard exception";
    }
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      sh.inflight[static_cast<std::size_t>(worker)].active = false;
    }
    if (err == ErrorClass::BudgetExhausted &&
        tripped->load(std::memory_order_acquire))
      fail_detail += " [supervisor wall deadline]";

    if (err == ErrorClass::None) {
      LedgerRecord rec = make_record(RecordKind::Completed, job.id);
      rec.attempts = attempt;
      rec.degraded = ao.out.degraded;
      rec.value = ao.out.value;
      rec.detail = ao.out.detail;
      sh.append(rec);
      r.status = JobStatus::Completed;
      r.error = ErrorClass::None;
      r.attempts = attempt;
      r.degraded = ao.out.degraded;
      r.value = ao.out.value;
      r.detail = ao.out.detail;
      sh.counters->bump(sh.counters->completed);
      return;
    }

    {
      LedgerRecord rec = make_record(RecordKind::AttemptFailed, job.id);
      rec.attempt = attempt;
      rec.error = to_string(err);
      rec.detail = fail_detail;
      sh.append(rec);
    }
    if (ao.out.has_checkpoint) {
      // Durable resumable state: a later attempt (this process or the
      // next) continues the estimate instead of restarting it.
      slot.ckpt = ao.out.checkpoint;
      slot.have_ckpt = true;
      LedgerRecord rec = make_record(RecordKind::Checkpoint, job.id);
      rec.attempt = attempt;
      rec.checkpoint = slot.ckpt.serialize();
      sh.append(rec);
    }

    if (err == ErrorClass::Cancelled || sh.campaign.cancel_requested()) {
      r.status = JobStatus::Cancelled;
      r.error = ErrorClass::Cancelled;
      r.attempts = attempt;
      r.detail = fail_detail;
      sh.counters->bump(sh.counters->cancelled);
      return;
    }
    const bool out_of_attempts =
        attempt >= slot.prior_attempts + opts.retry.max_attempts;
    if (!opts.retry.retryable(err) || out_of_attempts) {
      r.status = JobStatus::Failed;
      r.error = err;
      r.attempts = attempt;
      r.detail = fail_detail;
      sh.counters->bump(sh.counters->failed);
      return;
    }

    const double delay = opts.retry.delay_seconds(job.id, attempt);
    {
      LedgerRecord rec = make_record(RecordKind::Retried, job.id);
      rec.attempt = attempt + 1;
      rec.delay_seconds = delay;
      sh.append(rec);
    }
    if (opts.retry.downgrade_on_budget && err == ErrorClass::BudgetExhausted &&
        !degraded_mode &&
        (job.kind == JobKind::Symbolic || job.kind == JobKind::Custom)) {
      degraded_mode = true;
      LedgerRecord rec = make_record(RecordKind::Degraded, job.id);
      rec.attempt = attempt + 1;
      rec.from = job.kind == JobKind::Symbolic ? "bdd-sat-fraction" : "primary";
      rec.to = job.kind == JobKind::Symbolic ? "monte-carlo" : "fallback";
      sh.append(rec);
      sh.counters->bump(sh.counters->degraded);
    }
    ++slot.retries;
    sh.counters->bump(sh.counters->retried);
    if (delay > 0.0) opts.sleep_fn(delay);
  }
}

}  // namespace

Runner::Runner(RunnerOptions opts)
    : opts_(std::move(opts)),
      cells_(std::make_shared<RunnerCounterCells>()) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (!opts_.sleep_fn)
    opts_.sleep_fn = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
}

CampaignResult Runner::run(const std::vector<Job>& jobs) {
  return run_impl(jobs, /*resuming=*/false);
}

CampaignResult Runner::resume(const std::vector<Job>& jobs) {
  return run_impl(jobs, /*resuming=*/true);
}

CampaignResult Runner::run_impl(const std::vector<Job>& jobs, bool resuming) {
  {
    std::unordered_set<std::string_view> ids;
    for (const Job& j : jobs) {
      if (j.id.empty())
        throw std::invalid_argument("jobs: job with empty id");
      if (!ids.insert(j.id).second)
        throw std::invalid_argument("jobs: duplicate job id '" + j.id + "'");
    }
  }

  CampaignResult cr;
  cr.results.resize(jobs.size());

  LedgerScan scan;
  std::unique_ptr<LedgerWriter> writer;
  if (!opts_.ledger_path.empty()) {
    if (resuming) scan = read_ledger(opts_.ledger_path);
    writer = std::make_unique<LedgerWriter>(opts_.ledger_path,
                                            /*truncate=*/!resuming);
  }
  for (const std::string& w : scan.warnings)
    cr.warnings.push_back("ledger: " + w);
  if (scan.malformed_lines > scan.warnings.size())
    cr.warnings.push_back("ledger: " +
                          std::to_string(scan.malformed_lines) +
                          " malformed lines skipped in total");

  // Fold the prior process's ledger into per-job starting state.
  std::vector<Slot> slots(jobs.size());
  std::unordered_map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    slots[i].job = &jobs[i];
    index.emplace(jobs[i].id, i);
  }
  std::size_t unknown_ledger_jobs = 0;
  for (const LedgerRecord& rec : scan.records) {
    auto it = index.find(rec.job);
    if (it == index.end()) {
      ++unknown_ledger_jobs;
      continue;
    }
    Slot& slot = slots[it->second];
    switch (rec.kind) {
      case RecordKind::Completed:
        if (!slot.done) cells_->bump(cells_->served_from_ledger);
        slot.done = true;
        slot.result.id = rec.job;
        slot.result.status = JobStatus::Completed;
        slot.result.error = ErrorClass::None;
        slot.result.attempts = rec.attempts;
        slot.result.degraded = rec.degraded;
        slot.result.value = rec.value;
        slot.result.detail = rec.detail;
        slot.result.from_ledger = true;
        break;
      case RecordKind::Started:
        slot.prior_attempts = std::max(slot.prior_attempts, rec.attempt);
        break;
      case RecordKind::Checkpoint:
        if (core::MonteCarloCheckpoint ck;
            core::MonteCarloCheckpoint::parse(rec.checkpoint, ck)) {
          slot.ckpt = ck;
          slot.have_ckpt = true;
        } else {
          cr.warnings.push_back("ledger: unparsable checkpoint for job '" +
                                rec.job + "' ignored");
        }
        break;
      case RecordKind::Degraded:
        // The symbolic path already proved too expensive once; a resumed
        // run keeps the downgrade instead of re-discovering it.
        slot.degraded_mode = true;
        break;
      default: break;
    }
  }
  if (unknown_ledger_jobs)
    cr.warnings.push_back("ledger: " + std::to_string(unknown_ledger_jobs) +
                          " records for jobs not in this campaign");

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (!slots[i].done) pending.push_back(i);

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(opts_.workers),
          std::max<std::size_t>(pending.size(), 1)));

  Shared sh;
  sh.ledger = writer.get();
  sh.seq = scan.max_seq();
  sh.campaign = opts_.campaign_cancel;
  sh.counters = cells_.get();
  sh.inflight.resize(static_cast<std::size_t>(workers));

  {
    std::vector<LedgerRecord> burst;
    burst.reserve(pending.size());
    for (std::size_t i : pending) {
      LedgerRecord rec = make_record(RecordKind::Enqueued, jobs[i].id);
      rec.job_kind = to_string(jobs[i].kind);
      rec.design = jobs[i].design;
      burst.push_back(std::move(rec));
      sh.counters->bump(sh.counters->enqueued);
    }
    sh.append_batch(burst);
  }

  // Supervisor: enforces per-attempt wall deadlines and fans campaign
  // cancellation out to every in-flight attempt token.
  std::thread supervisor([&sh, poll = opts_.supervisor_poll_seconds] {
    std::unique_lock<std::mutex> lk(sh.mu);
    while (!sh.stop_supervisor) {
      sh.cv.wait_for(lk, std::chrono::duration<double>(poll));
      const bool campaign = sh.campaign.cancel_requested();
      const Clock::time_point now = Clock::now();
      for (Inflight& inf : sh.inflight) {
        if (!inf.active) continue;
        if (campaign) {
          inf.token.request_cancel();
        } else if (inf.has_deadline && now >= inf.deadline) {
          // Reason first, then signal: release/acquire on the token
          // guarantees the worker that sees the cancellation also sees
          // the deadline flag.
          inf.deadline_tripped->store(true, std::memory_order_release);
          inf.token.request_cancel();
        }
      }
    }
  });

  std::atomic<std::size_t> next{0};
  auto worker_fn = [&](int w) {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= pending.size()) break;
      Slot& slot = slots[pending[k]];
      if (sh.campaign.cancel_requested()) {
        slot.result.id = slot.job->id;
        slot.result.status = JobStatus::Cancelled;
        slot.result.error = ErrorClass::Cancelled;
        slot.result.attempts = slot.prior_attempts;
        slot.result.detail = "campaign cancelled before attempt";
        sh.counters->bump(sh.counters->cancelled);
        continue;
      }
      execute_job(*slot.job, slot, sh, opts_, w);
    }
  };

  if (workers == 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);
    for (std::thread& t : pool) t.join();
  }
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.stop_supervisor = true;
  }
  sh.cv.notify_all();
  supervisor.join();

  // Deterministic aggregation: submission order, never completion order.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    cr.results[i] = slots[i].result;
    cr.retries += slots[i].retries;
    switch (cr.results[i].status) {
      case JobStatus::Completed: {
        ++cr.completed;
        if (cr.results[i].degraded) ++cr.degraded;
        stats::RunningStats one;
        one.add(cr.results[i].value);
        cr.value_stats.merge(one);
        break;
      }
      case JobStatus::Failed: ++cr.failed; break;
      case JobStatus::Cancelled: ++cr.cancelled; break;
    }
  }
  if (writer && !writer->open())
    cr.warnings.push_back(
        "ledger: write failure mid-campaign; later records were dropped");
  return cr;
}

}  // namespace hlp::jobs
