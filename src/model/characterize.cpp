#include "model/characterize.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "jobs/kernels.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"

namespace hlp::model {

namespace {

std::string format_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("?");
}

/// Biased Monte Carlo label: vectors drawn with per-bit probability p.
/// One uniform_real draw per input bit per vector, so the stream is a pure
/// function of (seed, width) and a resumed attempt can fast-forward by
/// replaying the generator — the same discipline run_kernel uses for its
/// uniform streams.
jobs::AttemptOutcome biased_mc_label(const std::string& design, double p,
                                     std::uint64_t seed, const SweepSpec& spec,
                                     const exec::Budget& budget,
                                     const core::MonteCarloCheckpoint* ckpt) {
  jobs::AttemptOutcome ao;
  const netlist::Module mod = jobs::make_module(design);
  const int width = mod.total_input_bits();
  stats::Rng rng(seed);
  auto gen = [&rng, width, p]() {
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i)
      if (rng.uniform_real() < p) v |= std::uint64_t{1} << i;
    return v;
  };
  core::MonteCarloCheckpoint resume;
  if (ckpt && ckpt->valid()) {
    resume = *ckpt;
    // Fast-forward: the checkpointed pairs consumed 2 vectors each.
    for (std::size_t i = 0; i < 2 * resume.count; ++i) (void)gen();
  }
  const exec::Outcome<core::MonteCarloResult> out =
      core::monte_carlo_power_budgeted(mod, gen, budget, spec.epsilon,
                                       spec.confidence, spec.min_pairs,
                                       spec.max_pairs, {}, {}, resume);
  ao.out.has_checkpoint = out.value.checkpoint.valid();
  ao.out.checkpoint = out.value.checkpoint;
  const std::string pairs = std::to_string(out.value.pairs);
  if (out.value.stop_reason ==
      core::MonteCarloResult::StopReason::BudgetExhausted) {
    ao.ok = false;
    ao.stop = out.diag.stop;
    ao.detail = "biased monte-carlo stopped at " + pairs + " pairs";
    return ao;
  }
  ao.ok = true;
  ao.out.value = out.value.mean_energy;
  ao.detail = ao.out.detail =
      "biased monte-carlo p=" + format_double(p) + ", " + pairs + " pairs, " +
      (out.value.converged ? "converged" : "pair-budget exhausted");
  return ao;
}

}  // namespace

std::string sweep_design(const SweepSpec& spec, std::size_t param_index) {
  if (spec.params.empty()) return spec.family;
  return spec.family + ":" + std::to_string(spec.params.at(param_index));
}

std::string sweep_job_id(const SweepSpec& spec, const std::string& design,
                         double input_p) {
  return "model|" + design + "|" + jobs::to_string(spec.kind) +
         "|p=" + format_double(input_p);
}

std::vector<jobs::Job> sweep_jobs(const SweepSpec& spec) {
  if (spec.kind != jobs::JobKind::Symbolic &&
      spec.kind != jobs::JobKind::MonteCarlo)
    throw std::invalid_argument(
        "characterization supports symbolic or monte-carlo label kernels");
  if (spec.input_p.empty())
    throw std::invalid_argument("input_p grid must not be empty");
  for (double p : spec.input_p)
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument("input probability must be in [0, 1]");

  const std::size_t designs =
      spec.params.empty() ? 1 : spec.params.size();
  std::vector<jobs::Job> out;
  out.reserve(designs * spec.input_p.size());
  for (std::size_t d = 0; d < designs; ++d) {
    const std::string design = sweep_design(spec, d);
    (void)jobs::make_module(design);  // validate the spec before enqueueing
    for (double p : spec.input_p) {
      jobs::Job job;
      job.id = sweep_job_id(spec, design, p);
      job.kind = jobs::JobKind::Custom;
      job.design = design;
      job.attempt_deadline_seconds = spec.attempt_deadline_seconds;
      job.epsilon = spec.epsilon;
      job.confidence = spec.confidence;
      job.min_pairs = spec.min_pairs;
      job.max_pairs = spec.max_pairs;
      const std::uint64_t seed = jobs::job_seed(job.id);
      const SweepSpec spec_copy = spec;
      if (spec.kind == jobs::JobKind::Symbolic && p == 0.5) {
        // Uniform inputs: the BDD sat-fraction kernel is exact here, and
        // run_kernel already owns its degradation-to-sampled path.
        job.custom = [design, seed, spec_copy](
                         const exec::Budget& budget, bool degraded,
                         const core::MonteCarloCheckpoint* ckpt) {
          jobs::KernelRequest kr;
          kr.kind = jobs::JobKind::Symbolic;
          kr.design = design;
          kr.seed = seed;
          kr.degraded = degraded;
          kr.epsilon = spec_copy.epsilon;
          kr.confidence = spec_copy.confidence;
          kr.min_pairs = spec_copy.min_pairs;
          kr.max_pairs = spec_copy.max_pairs;
          kr.resume = ckpt;
          return jobs::run_kernel(kr, budget);
        };
      } else {
        job.custom = [design, p, seed, spec_copy](
                         const exec::Budget& budget, bool /*degraded*/,
                         const core::MonteCarloCheckpoint* ckpt) {
          return biased_mc_label(design, p, seed, spec_copy, budget, ckpt);
        };
      }
      out.push_back(std::move(job));
    }
  }
  return out;
}

Characterization characterize(const SweepSpec& spec,
                              const jobs::RunnerOptions& ropts, bool resume) {
  Characterization ch;
  const std::vector<jobs::Job> jobs = sweep_jobs(spec);
  jobs::Runner runner(ropts);
  ch.campaign = resume ? runner.resume(jobs) : runner.run(jobs);

  // Rebuild rows from completed results. Features are recomputed here
  // because extract_features is pure in (design, input_p): a label read
  // back from the ledger pairs with exactly the features a fresh run
  // would have computed.
  const std::size_t designs = spec.params.empty() ? 1 : spec.params.size();
  std::size_t j = 0;
  for (std::size_t d = 0; d < designs; ++d) {
    const std::string design = sweep_design(spec, d);
    for (double p : spec.input_p) {
      const jobs::JobResult& r = ch.campaign.results.at(j);
      ++j;
      if (r.status != jobs::JobStatus::Completed) continue;
      Row row;
      row.design = design;
      row.input_p = p;
      row.x = extract_features(design, p);
      row.power = r.value;
      ch.rows.push_back(std::move(row));
    }
  }
  return ch;
}

FitReport fit_macromodel(std::span<const Row> rows, const std::string& family,
                         const std::string& kind, const FitOptions& opts) {
  if (rows.size() < 3)
    throw std::invalid_argument(
        "fit_macromodel: need at least 3 characterization rows, got " +
        std::to_string(rows.size()));

  // Deterministic every-k-th-row holdout — no RNG, so refitting the same
  // rows reproduces the same split and the same model bit for bit.
  std::size_t k = 0;
  if (opts.holdout_frac > 0.0 && rows.size() >= 4) {
    k = static_cast<std::size_t>(std::llround(1.0 / opts.holdout_frac));
    if (k < 2) k = 2;
  }
  std::vector<std::size_t> train_ix, hold_ix;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (k && i % k == k - 1)
      hold_ix.push_back(i);
    else
      train_ix.push_back(i);
  }
  if (train_ix.size() < 3) {  // tiny campaigns: train on everything
    train_ix.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) train_ix[i] = i;
    hold_ix.clear();
  }

  stats::Matrix x;
  std::vector<double> y;
  x.reserve(train_ix.size());
  y.reserve(train_ix.size());
  for (std::size_t i : train_ix) {
    x.emplace_back(rows[i].x.v.begin(), rows[i].x.v.end());
    y.push_back(rows[i].power);
  }

  const stats::StepwiseResult sel =
      stats::forward_select(x, y, opts.f_enter, opts.max_vars);

  // Strict refit on the selected columns: full-rank or a typed error —
  // never a ridge-smoothed inverse that would understate the intervals.
  const stats::Matrix xs = stats::select_columns(x, sel.selected);
  const stats::OlsInference inf = stats::ols_inference(xs, y);

  FitReport rep;
  Macromodel& m = rep.model;
  m.family = family;
  m.kind = kind;
  m.selected = sel.selected;
  m.beta = inf.fit.beta;
  m.intercept = inf.fit.intercept;
  m.n = train_ix.size();
  const std::size_t p = sel.selected.size() + 1;
  if (train_ix.size() <= p)
    throw std::invalid_argument(
        "fit_macromodel: no residual degrees of freedom");
  m.dof = train_ix.size() - p;
  m.sigma2 = inf.fit.rss / static_cast<double>(m.dof);
  m.r2 = inf.fit.r2;
  m.condition = inf.fit.condition;
  m.xtx_inv = inf.xtx_inv;
  // Training-domain hull over every characterized row: the campaign grid
  // is the domain the model is allowed to answer for.
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    m.hull_lo[f] = rows[0].x.v[f];
    m.hull_hi[f] = rows[0].x.v[f];
  }
  for (const Row& r : rows) {
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      if (r.x.v[f] < m.hull_lo[f]) m.hull_lo[f] = r.x.v[f];
      if (r.x.v[f] > m.hull_hi[f]) m.hull_hi[f] = r.x.v[f];
    }
  }

  rep.train_rows = train_ix.size();
  rep.holdout_rows = hold_ix.size();
  rep.train_r2 = inf.fit.r2;
  rep.condition = inf.fit.condition;
  rep.condition_warning = inf.fit.condition > 1e8;
  for (std::size_t c : sel.selected)
    rep.selected_names.emplace_back(feature_name(c));

  if (!hold_ix.empty()) {
    std::vector<double> est, ref;
    est.reserve(hold_ix.size());
    ref.reserve(hold_ix.size());
    for (std::size_t i : hold_ix) {
      est.push_back(m.predict(rows[i].x));
      ref.push_back(rows[i].power);
    }
    rep.holdout_mape = stats::mean_abs_rel_error(est, ref);
  }
  return rep;
}

}  // namespace hlp::model
