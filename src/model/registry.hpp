#pragma once

#include <map>
#include <string>
#include <string_view>

#include "model/artifact.hpp"

namespace hlp::model {

/// Outcome of asking the registry for a prediction.
enum class PredictStatus : std::uint8_t {
  Ok,         ///< value + interval filled in
  NoModel,    ///< no model registered for this (family, kind)
  OutOfHull,  ///< query outside the training hull — extrapolation refused
};

struct Prediction {
  PredictStatus status = PredictStatus::NoModel;
  double value = 0.0;      ///< predicted mean power
  double halfwidth = 0.0;  ///< prediction-interval half-width at `confidence`
  bool ok() const { return status == PredictStatus::Ok; }
};

/// Immutable lookup table of fitted macromodels keyed by (family, kind).
///
/// Built once from a ModelLoad, then shared read-only: the serve tier holds
/// a `std::shared_ptr<const ModelRegistry>` and hot-reload swaps the pointer
/// under a mutex, so in-flight requests keep the registry they started with
/// and no lock is held while predicting.
class ModelRegistry {
 public:
  /// Register a model; a later model for the same (family, kind) wins,
  /// matching "last record in the file is the freshest fit".
  void insert(Macromodel m);

  /// nullptr when no model covers (family, kind).
  const Macromodel* find(std::string_view family, std::string_view kind) const;

  /// Full lookup-and-evaluate: family routing, hull check, point value and
  /// interval half-width at `confidence` in one call.
  Prediction predict(std::string_view family, std::string_view kind,
                     const FeatureVector& x, double confidence) const;

  std::size_t size() const { return models_.size(); }
  bool empty() const { return models_.empty(); }

 private:
  /// key = family + '|' + kind (neither side may contain '|': family is a
  /// design-spec prefix, kind is a protocol token).
  std::map<std::string, Macromodel, std::less<>> models_;
};

/// Convenience: build a registry from a successful load (file order, so
/// later records override earlier ones).
ModelRegistry build_registry(const ModelLoad& load);

}  // namespace hlp::model
