#pragma once

#include <span>
#include <string>
#include <vector>

#include "jobs/jobs.hpp"
#include "model/artifact.hpp"

namespace hlp::model {

/// --- Offline characterization campaign -------------------------------------
///
/// Training data for a macromodel comes from running the *real* estimation
/// kernels over a design-family sweep: a parameter grid (adder:4 .. adder:12)
/// crossed with an input-statistics grid (signal probability p). Each grid
/// point is one job in an hlp::jobs campaign, so characterization inherits
/// the runner's supervision, retries, crash-consistent ledger, and resume —
/// a killed characterization run continues where it stopped.
///
/// Reference labels: at p == 0.5 the symbolic (BDD sat-fraction) kernel is
/// exact and cheap enough; at p != 0.5 the BDD layer has no weighted sat
/// fraction, so labels come from biased Monte Carlo — vectors drawn with
/// per-bit probability p — with the usual CI stopping rule. Both paths are
/// deterministic in the job id, so re-running a campaign reproduces every
/// label bit for bit.

struct SweepSpec {
  std::string family = "adder";  ///< design-spec prefix (one factory family)
  jobs::JobKind kind = jobs::JobKind::Symbolic;  ///< label kernel
  /// Parameter grid: each entry p makes design "family:p". Empty runs the
  /// bare family name once (parameterless specs like "c17").
  std::vector<int> params;
  /// Input signal-probability grid (each must be in [0, 1]).
  std::vector<double> input_p = {0.5};
  /// Monte Carlo stopping parameters for sampled labels.
  double epsilon = 0.02;
  double confidence = 0.95;
  std::size_t min_pairs = 30;
  std::size_t max_pairs = 20000;
  /// Per-attempt supervisor wall ceiling (0 = none).
  double attempt_deadline_seconds = 0.0;
};

/// One training observation: canonical features -> reference power.
struct Row {
  std::string design;
  double input_p = 0.5;
  FeatureVector x;
  double power = 0.0;
};

struct Characterization {
  std::vector<Row> rows;  ///< one per *completed* job, grid order
  jobs::CampaignResult campaign;
  bool complete() const { return campaign.all_completed(); }
};

/// Design spec for one grid point ("adder" + 8 -> "adder:8").
std::string sweep_design(const SweepSpec& spec, std::size_t param_index);

/// Deterministic job id for one grid point; doubles as the RNG seed domain.
std::string sweep_job_id(const SweepSpec& spec, const std::string& design,
                         double input_p);

/// Build the campaign's job list (exposed so hlp_fit can size ledgers and
/// tests can inspect ids without running anything).
std::vector<jobs::Job> sweep_jobs(const SweepSpec& spec);

/// Run (or, with `resume`, continue) the characterization campaign and
/// extract feature rows from the completed jobs. Features are recomputed
/// from (design, input_p) after the campaign — extract_features is pure, so
/// rows are identical whether a label was computed or read from the ledger.
/// Throws std::invalid_argument on an invalid spec (unknown family, bad p).
Characterization characterize(const SweepSpec& spec,
                              const jobs::RunnerOptions& ropts,
                              bool resume = false);

/// --- Fitting ---------------------------------------------------------------

struct FitOptions {
  double f_enter = 4.0;     ///< partial-F threshold for forward selection
  std::size_t max_vars = 8;
  /// Held-out fraction for the accuracy report: every k-th row (k chosen
  /// from the fraction, deterministic — no RNG) is excluded from training
  /// and scored afterwards. 0 trains on everything and reports MAPE = 0.
  double holdout_frac = 0.25;
};

struct FitReport {
  Macromodel model;
  std::size_t train_rows = 0;
  std::size_t holdout_rows = 0;
  double holdout_mape = 0.0;  ///< mean |rel err| on held-out rows
  double train_r2 = 0.0;
  double condition = 0.0;  ///< normal-equation condition estimate
  /// Set when the condition estimate exceeds ~1e8: coefficients solved but
  /// numerically fragile — surfaced, not silently shipped.
  bool condition_warning = false;
  std::vector<std::string> selected_names;  ///< feature names, fit order
};

/// Fit a macromodel for (family, kind) from characterization rows:
/// stepwise selection on the training split, then a strict full-rank
/// refit with inference by-products (sigma2, (X'X)^-1) for prediction
/// intervals, and the training-domain hull over all rows. Throws
/// std::invalid_argument on too few rows and stats::RankDeficientError
/// when the selected design matrix cannot support inference.
FitReport fit_macromodel(std::span<const Row> rows, const std::string& family,
                         const std::string& kind, const FitOptions& opts = {});

}  // namespace hlp::model
