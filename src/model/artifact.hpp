#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/features.hpp"

namespace hlp::model {

/// Artifact format version. Bumps when the feature layout (kFeatureCount /
/// feature order) or the wire fields change; a registry never silently
/// evaluates a model whose version it does not understand.
inline constexpr int kModelVersion = 1;

/// A fitted power macromodel: everything needed to answer a prediction
/// *with a confidence interval* and to refuse extrapolation.
///
/// value(x)     = intercept + sum_i beta[i] * x[selected[i]]
/// halfwidth(x) = z(conf) * sqrt(sigma2 * (1 + x_aug' * XtX^-1 * x_aug))
/// where x_aug = [1, x[selected[0]], ...] — the standard OLS prediction
/// interval under the normal approximation. `hull_lo/hull_hi` is the
/// axis-aligned bounding box of the training rows over ALL canonical
/// features (not just selected ones): a query outside it is extrapolation
/// and the registry refuses to predict (DESIGN.md §12).
struct Macromodel {
  int version = kModelVersion;
  std::string family;  ///< design-spec prefix the model covers ("adder")
  std::string kind;    ///< kernel kind the labels came from ("symbolic")
  std::vector<std::size_t> selected;  ///< feature indices, selection order
  std::vector<double> beta;           ///< one coefficient per selected entry
  double intercept = 0.0;
  double sigma2 = 0.0;      ///< residual variance rss / dof
  std::uint64_t dof = 0;    ///< training degrees of freedom (n - p)
  std::uint64_t n = 0;      ///< training rows
  double r2 = 0.0;
  double condition = 0.0;   ///< normal-equation condition estimate
  /// (p x p) row-major inverse of the intercept-augmented X'X,
  /// p = selected.size() + 1. Stored so serving can price a query's
  /// leverage in microseconds without the training data.
  std::vector<double> xtx_inv;
  std::array<double, kFeatureCount> hull_lo{};
  std::array<double, kFeatureCount> hull_hi{};

  double predict(const FeatureVector& x) const;
  /// Interval half-width for one query at `confidence` (normal quantile).
  double halfwidth(const FeatureVector& x, double confidence) const;
  /// True when every canonical feature lies inside the training hull
  /// (with a tiny relative tolerance for float round-trips).
  bool in_hull(const FeatureVector& x) const;

  /// Canonical one-line flat JSON (no trailing newline). Vectors are
  /// space-separated shortest-round-trip doubles inside string fields —
  /// the repo's flat-JSON grammar has no arrays — so serialize o parse is
  /// byte-identical (the fuzz harness asserts the fixed point).
  std::string serialize() const;

  enum class ParseStatus : std::uint8_t { Ok, Malformed, VersionMismatch };
  /// Strict parse: known keys only, duplicates rejected, sizes
  /// cross-checked (|beta| == |selected|, |xtx_inv| == (|selected|+1)^2,
  /// hulls exactly kFeatureCount wide, indices < kFeatureCount). On
  /// failure `out` is untouched and `error` says why; VersionMismatch is
  /// distinguished so the registry can answer it as its own typed error.
  static ParseStatus parse(std::string_view line, Macromodel& out,
                           std::string& error);
};

/// --- On-disk registry file ---------------------------------------------------
///
///   file   := magic "HLPMODL1" record*
///   record := len:u32le payload[len] crc:u32le
///
/// with crc = CRC-32 (IEEE) over len + payload and each payload one
/// serialized Macromodel line — the serve::cachefile framing discipline
/// applied to model artifacts. A torn tail (crashed writer) is truncated
/// at the first unframable record and the intact prefix loads; a record
/// whose CRC verifies but whose payload does not parse is *corruption in
/// sound framing* and rejects the whole file with a typed status (a model
/// registry must be all-or-nothing; serving half a registry silently would
/// change answers).
enum class ModelFileStatus : std::uint8_t {
  Ok,               ///< models usable (torn_bytes may still be > 0)
  Missing,          ///< no file at the path
  BadMagic,         ///< exists but is not a model registry file
  VersionMismatch,  ///< a well-framed record has an unsupported version
  BadRecord,        ///< a well-framed record failed to parse
  IoError,          ///< read/write syscall failure
};

const char* to_string(ModelFileStatus s);

struct ModelLoad {
  ModelFileStatus status = ModelFileStatus::Ok;
  std::vector<Macromodel> models;  ///< file order; empty unless Ok
  std::uint64_t torn_bytes = 0;    ///< trailing unframable bytes dropped
  std::string error;               ///< detail for non-Ok statuses
  bool ok() const { return status == ModelFileStatus::Ok; }
};

/// Decode an in-memory registry image (the file loader and the fuzz
/// harness share this; never throws).
ModelLoad decode_models(std::string_view bytes);

/// Read + decode `path`. Missing file -> ModelFileStatus::Missing.
ModelLoad load_models_file(const std::string& path);

/// Write all models as a fresh registry file: temp file + fsync + rename,
/// so a crash leaves either the old registry or the complete new one.
/// Returns false with `error` set on I/O failure.
bool save_models_file(const std::string& path,
                      std::span<const Macromodel> models, std::string& error);

}  // namespace hlp::model
