#include "model/registry.hpp"

namespace hlp::model {

namespace {

std::string make_key(std::string_view family, std::string_view kind) {
  std::string k;
  k.reserve(family.size() + 1 + kind.size());
  k.append(family);
  k.push_back('|');
  k.append(kind);
  return k;
}

}  // namespace

void ModelRegistry::insert(Macromodel m) {
  std::string key = make_key(m.family, m.kind);
  models_.insert_or_assign(std::move(key), std::move(m));
}

const Macromodel* ModelRegistry::find(std::string_view family,
                                      std::string_view kind) const {
  const auto it = models_.find(make_key(family, kind));
  return it == models_.end() ? nullptr : &it->second;
}

Prediction ModelRegistry::predict(std::string_view family,
                                  std::string_view kind,
                                  const FeatureVector& x,
                                  double confidence) const {
  Prediction p;
  const Macromodel* m = find(family, kind);
  if (!m) {
    p.status = PredictStatus::NoModel;
    return p;
  }
  if (!m->in_hull(x)) {
    p.status = PredictStatus::OutOfHull;
    return p;
  }
  p.status = PredictStatus::Ok;
  p.value = m->predict(x);
  p.halfwidth = m->halfwidth(x, confidence);
  return p;
}

ModelRegistry build_registry(const ModelLoad& load) {
  ModelRegistry reg;
  for (const Macromodel& m : load.models) reg.insert(m);
  return reg;
}

}  // namespace hlp::model
