#include "model/features.hpp"

#include <stdexcept>

#include "analysis/estimate.hpp"
#include "jobs/kernels.hpp"
#include "netlist/index.hpp"

namespace hlp::model {

const char* feature_name(std::size_t i) {
  switch (i) {
    case 0: return "gates";
    case 1: return "inputs";
    case 2: return "outputs";
    case 3: return "cap";
    case 4: return "depth";
    case 5: return "static-point";
    case 6: return "static-lower";
    case 7: return "static-upper";
    case 8: return "glitch-upper";
    case 9: return "input-p";
    case 10: return "input-t";
  }
  return "unknown";
}

FeatureVector extract_features(const std::string& design, double input_p) {
  if (!(input_p >= 0.0 && input_p <= 1.0))
    throw std::invalid_argument("input probability must be in [0, 1]");
  netlist::Module mod = jobs::make_module(design);
  const netlist::NetlistIndex ix = netlist::build_index(mod.netlist);
  analysis::StaticOptions sopts;
  sopts.inputs.pair_mode = true;
  sopts.inputs.default_p = input_p;
  // No meter: extraction must be a pure function of (design, input_p) so
  // training rows and serve-time queries agree bit for bit.
  const analysis::StaticEstimate est =
      analysis::static_estimate(mod.netlist, ix, sopts, nullptr);

  FeatureVector f;
  f.v[0] = static_cast<double>(mod.netlist.logic_gate_count());
  f.v[1] = static_cast<double>(mod.total_input_bits());
  f.v[2] = static_cast<double>(mod.total_output_bits());
  f.v[3] = mod.netlist.total_capacitance({});
  f.v[4] = static_cast<double>(mod.netlist.depth());
  f.v[5] = est.point;
  f.v[6] = est.lower;
  f.v[7] = est.upper;
  f.v[8] = est.glitch_upper;
  f.v[9] = input_p;
  f.v[10] = 2.0 * input_p * (1.0 - input_p);
  return f;
}

std::string design_family(const std::string& design) {
  const std::size_t colon = design.find(':');
  return colon == std::string::npos ? design : design.substr(0, colon);
}

}  // namespace hlp::model
