#include "model/artifact.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "stats/descriptive.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace hlp::model {

namespace {

constexpr char kMagic[8] = {'H', 'L', 'P', 'M', 'O', 'D', 'L', '1'};
constexpr std::size_t kFrameLenBytes = 4;
constexpr std::size_t kFrameCrcBytes = 4;
/// Sanity cap per record: a serialized model is a few KiB; anything larger
/// is corruption, not data.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Space-separated shortest-round-trip doubles — the flat-JSON grammar has
/// no arrays, so vectors ride inside string fields.
void append_doubles(std::string& out, std::span<const double> xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out.push_back(' ');
    util::append_json_double(out, xs[i]);
  }
}

bool parse_doubles(std::string_view s, std::vector<double>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(' ', pos);
    if (end == std::string_view::npos) end = s.size();
    if (end == pos) return false;  // empty token (double space / edges)
    double v = 0.0;
    const char* b = s.data() + pos;
    const char* e = s.data() + end;
    auto [rest, ec] = std::from_chars(b, e, v);
    if (ec != std::errc{} || rest != e || !std::isfinite(v)) return false;
    out.push_back(v);
    pos = end + 1;
  }
  return true;
}

void append_indices(std::string& out, std::span<const std::size_t> xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out.push_back(' ');
    out += std::to_string(xs[i]);
  }
}

bool parse_indices(std::string_view s, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(' ', pos);
    if (end == std::string_view::npos) end = s.size();
    if (end == pos) return false;
    std::size_t v = 0;
    const char* b = s.data() + pos;
    const char* e = s.data() + end;
    auto [rest, ec] = std::from_chars(b, e, v);
    if (ec != std::errc{} || rest != e) return false;
    out.push_back(v);
    pos = end + 1;
  }
  return true;
}

bool write_all_fd(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(),
                         O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

double Macromodel::predict(const FeatureVector& x) const {
  double y = intercept;
  for (std::size_t i = 0; i < selected.size() && i < beta.size(); ++i)
    y += beta[i] * x.v[selected[i]];
  return y;
}

double Macromodel::halfwidth(const FeatureVector& x, double confidence) const {
  const std::size_t p = selected.size() + 1;
  if (xtx_inv.size() != p * p) return 0.0;
  // x_aug' * XtX^-1 * x_aug with x_aug = [1, selected features...].
  double q = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    const double xi = i == 0 ? 1.0 : x.v[selected[i - 1]];
    double row = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      const double xj = j == 0 ? 1.0 : x.v[selected[j - 1]];
      row += xtx_inv[i * p + j] * xj;
    }
    q += xi * row;
  }
  if (!(q >= 0.0)) q = 0.0;  // numerically negative leverage: clamp
  const double var = sigma2 * (1.0 + q);
  return stats::normal_quantile_two_sided(confidence) *
         std::sqrt(var > 0.0 ? var : 0.0);
}

bool Macromodel::in_hull(const FeatureVector& x) const {
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const double lo = hull_lo[i];
    const double hi = hull_hi[i];
    const double tol =
        1e-9 * std::max(1.0, std::max(std::fabs(lo), std::fabs(hi)));
    if (x.v[i] < lo - tol || x.v[i] > hi + tol) return false;
  }
  return true;
}

std::string Macromodel::serialize() const {
  std::string s = "{\"version\":";
  s += std::to_string(version);
  util::append_field(s, "family", family);
  util::append_field(s, "kind", kind);
  std::string vec;
  append_indices(vec, selected);
  util::append_field(s, "selected", vec);
  vec.clear();
  append_doubles(vec, beta);
  util::append_field(s, "beta", vec);
  util::append_field(s, "intercept", intercept);
  util::append_field(s, "sigma2", sigma2);
  util::append_field(s, "dof", dof);
  util::append_field(s, "n", n);
  util::append_field(s, "r2", r2);
  util::append_field(s, "condition", condition);
  vec.clear();
  append_doubles(vec, xtx_inv);
  util::append_field(s, "xtxinv", vec);
  vec.clear();
  append_doubles(vec, {hull_lo.data(), hull_lo.size()});
  util::append_field(s, "hull-lo", vec);
  vec.clear();
  append_doubles(vec, {hull_hi.data(), hull_hi.size()});
  util::append_field(s, "hull-hi", vec);
  s.push_back('}');
  return s;
}

Macromodel::ParseStatus Macromodel::parse(std::string_view line,
                                          Macromodel& out,
                                          std::string& error) {
  util::JsonCursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) {
    error = "not a JSON object";
    return ParseStatus::Malformed;
  }
  Macromodel m;
  std::uint32_t seen = 0;
  auto mark = [&seen](int bit) {
    if (seen & (1u << bit)) return false;
    seen |= 1u << bit;
    return true;
  };
  auto fail = [&error](const char* what) {
    error = what;
    return ParseStatus::Malformed;
  };
  std::vector<double> tmp;

  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return fail("expected ',' or '}'");
    if (first && c.at_end()) return fail("unterminated object");
    first = false;
    std::string key;
    if (!util::parse_json_string(c, key)) return fail("bad key string");
    if (!c.eat(':')) return fail("expected ':'");

    if (key == "version") {
      if (!mark(0) || !util::number_as(util::number_token(c), m.version))
        return fail("bad version value");
    } else if (key == "family") {
      if (!mark(1) || !util::parse_json_string(c, m.family))
        return fail("bad family value");
    } else if (key == "kind") {
      if (!mark(2) || !util::parse_json_string(c, m.kind))
        return fail("bad kind value");
    } else if (key == "selected") {
      std::string v;
      if (!mark(3) || !util::parse_json_string(c, v) ||
          !parse_indices(v, m.selected))
        return fail("bad selected value");
    } else if (key == "beta") {
      std::string v;
      if (!mark(4) || !util::parse_json_string(c, v) ||
          !parse_doubles(v, m.beta))
        return fail("bad beta value");
    } else if (key == "intercept") {
      if (!mark(5) || !util::number_as(util::number_token(c), m.intercept))
        return fail("bad intercept value");
    } else if (key == "sigma2") {
      if (!mark(6) || !util::number_as(util::number_token(c), m.sigma2))
        return fail("bad sigma2 value");
    } else if (key == "dof") {
      if (!mark(7) || !util::number_as(util::number_token(c), m.dof))
        return fail("bad dof value");
    } else if (key == "n") {
      if (!mark(8) || !util::number_as(util::number_token(c), m.n))
        return fail("bad n value");
    } else if (key == "r2") {
      if (!mark(9) || !util::number_as(util::number_token(c), m.r2))
        return fail("bad r2 value");
    } else if (key == "condition") {
      if (!mark(10) || !util::number_as(util::number_token(c), m.condition))
        return fail("bad condition value");
    } else if (key == "xtxinv") {
      std::string v;
      if (!mark(11) || !util::parse_json_string(c, v) ||
          !parse_doubles(v, m.xtx_inv))
        return fail("bad xtxinv value");
    } else if (key == "hull-lo") {
      std::string v;
      if (!mark(12) || !util::parse_json_string(c, v) ||
          !parse_doubles(v, tmp) || tmp.size() != kFeatureCount)
        return fail("bad hull-lo value");
      for (std::size_t i = 0; i < kFeatureCount; ++i) m.hull_lo[i] = tmp[i];
    } else if (key == "hull-hi") {
      std::string v;
      if (!mark(13) || !util::parse_json_string(c, v) ||
          !parse_doubles(v, tmp) || tmp.size() != kFeatureCount)
        return fail("bad hull-hi value");
      for (std::size_t i = 0; i < kFeatureCount; ++i) m.hull_hi[i] = tmp[i];
    } else {
      return fail("unknown key");  // refuse to half-read a damaged record
    }
  }
  if (!util::only_trailing_ws(c)) return fail("trailing garbage");
  if (!(seen & 1u)) return fail("missing version");
  if (m.version != kModelVersion) {
    error = "unsupported model version " + std::to_string(m.version) +
            " (expected " + std::to_string(kModelVersion) + ")";
    return ParseStatus::VersionMismatch;
  }
  if (seen != (1u << 14) - 1) return fail("missing field");
  if (m.family.empty()) return fail("empty family");
  if (m.kind.empty()) return fail("empty kind");
  if (m.beta.size() != m.selected.size())
    return fail("beta/selected size mismatch");
  const std::size_t p = m.selected.size() + 1;
  if (m.xtx_inv.size() != p * p) return fail("xtxinv size mismatch");
  for (std::size_t idx : m.selected)
    if (idx >= kFeatureCount) return fail("selected index out of range");
  if (!(m.sigma2 >= 0.0)) return fail("sigma2 must be non-negative");
  out = std::move(m);
  return ParseStatus::Ok;
}

const char* to_string(ModelFileStatus s) {
  switch (s) {
    case ModelFileStatus::Ok: return "ok";
    case ModelFileStatus::Missing: return "missing";
    case ModelFileStatus::BadMagic: return "bad-magic";
    case ModelFileStatus::VersionMismatch: return "version-mismatch";
    case ModelFileStatus::BadRecord: return "bad-record";
    case ModelFileStatus::IoError: return "io-error";
  }
  return "unknown";
}

ModelLoad decode_models(std::string_view bytes) {
  ModelLoad out;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    out.status = ModelFileStatus::BadMagic;
    out.error = "not a model registry file (bad magic)";
    return out;
  }
  const auto* raw = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t off = sizeof(kMagic);
  while (bytes.size() - off >= kFrameLenBytes + kFrameCrcBytes) {
    const std::uint32_t len = get_u32le(raw + off);
    if (len == 0 || len > kMaxRecordBytes) break;  // unframable: torn tail
    const std::size_t payload = kFrameLenBytes + len;
    if (payload + kFrameCrcBytes > bytes.size() - off) break;  // torn tail
    if (util::crc32(bytes.data() + off, payload) !=
        get_u32le(raw + off + payload))
      break;  // torn or bit-flipped: everything after is unframable
    // CRC verified: the payload is what the writer wrote, so a parse
    // failure here is real corruption (or a future version), not a torn
    // write — reject the whole file with a typed status.
    Macromodel m;
    std::string perr;
    const Macromodel::ParseStatus ps = Macromodel::parse(
        std::string_view(bytes.data() + off + kFrameLenBytes, len), m, perr);
    if (ps != Macromodel::ParseStatus::Ok) {
      out.error = "record " + std::to_string(out.models.size()) + ": " + perr;
      out.models.clear();
      out.status = ps == Macromodel::ParseStatus::VersionMismatch
                       ? ModelFileStatus::VersionMismatch
                       : ModelFileStatus::BadRecord;
      out.torn_bytes = 0;
      return out;
    }
    out.models.push_back(std::move(m));
    off += payload + kFrameCrcBytes;
  }
  out.torn_bytes = static_cast<std::uint64_t>(bytes.size() - off);
  return out;
}

ModelLoad load_models_file(const std::string& path) {
  ModelLoad out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    out.status = ModelFileStatus::Missing;
    out.error = "cannot open " + path + ": " + std::strerror(errno);
    return out;
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    out.status = ModelFileStatus::IoError;
    out.error = "read error on " + path;
    return out;
  }
  return decode_models(data);
}

bool save_models_file(const std::string& path,
                      std::span<const Macromodel> models, std::string& error) {
  std::string out(kMagic, sizeof(kMagic));
  for (const Macromodel& m : models) {
    const std::string payload = m.serialize();
    const std::size_t frame_start = out.size();
    put_u32le(out, static_cast<std::uint32_t>(payload.size()));
    out += payload;
    out.append(4, '\0');  // crc placeholder
    const std::uint32_t crc = util::crc32(out.data() + frame_start,
                                          out.size() - frame_start - 4);
    out.resize(out.size() - 4);
    put_u32le(out, crc);
  }
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    error = "cannot create " + tmp + ": " + std::strerror(errno);
    return false;
  }
  if (!write_all_fd(fd, out.data(), out.size())) {
    error = "write failed on " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "rename to " + path + " failed: " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

}  // namespace hlp::model
