#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace hlp::model {

/// --- Macromodel feature extraction ------------------------------------------
///
/// The learned power models (DESIGN.md §12) regress a module's expected
/// switched capacitance against a fixed, ordered feature vector computed
/// *without simulation*: structural totals from the netlist plus the
/// hlp::analysis static activity figures under the request's input
/// statistics. One canonical extractor is shared by the characterization
/// campaign (training rows) and the serve predicted tier (query rows), so a
/// model can never be asked about a feature layout it was not trained on —
/// the feature order below IS the artifact's coefficient order.
///
/// Extraction is deterministic in (design, input_p): the static estimator
/// runs with a fixed node budget and no request-derived limits, the same
/// discipline the serve tier-0 cache relies on.

/// Number of features, fixed per artifact version (kModelVersion).
inline constexpr std::size_t kFeatureCount = 11;

/// Canonical feature names, by index:
///   0 gates        logic gate count
///   1 inputs       primary input bits
///   2 outputs      primary output bits
///   3 cap          total capacitance (default model)
///   4 depth        logic depth
///   5 static-point zero-simulation activity point estimate
///   6 static-lower guaranteed lower bound
///   7 static-upper guaranteed upper bound
///   8 glitch-upper unit-delay worst-case ceiling
///   9 input-p      primary-input signal probability
///  10 input-t      primary-input toggle density 2p(1-p)
const char* feature_name(std::size_t i);

struct FeatureVector {
  std::array<double, kFeatureCount> v{};
};

/// Extract the canonical feature vector for a netlist design spec under
/// i.i.d. pair-mode inputs with signal probability `input_p` on every bit.
/// Throws std::invalid_argument for an unbuildable design (same contract as
/// jobs::make_module) or input_p outside [0, 1].
FeatureVector extract_features(const std::string& design, double input_p);

/// The design-family key a model is registered under: the spec prefix
/// before the first ':' ("adder:16" -> "adder", "c17" -> "c17").
std::string design_family(const std::string& design);

}  // namespace hlp::model
