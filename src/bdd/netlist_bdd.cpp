#include "bdd/netlist_bdd.hpp"

#include <stdexcept>

namespace hlp::bdd {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

NetlistBdds build_bdds(Manager& mgr, const netlist::Netlist& nl) {
  std::vector<std::size_t> identity(nl.inputs().size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  return build_bdds_ordered(mgr, nl, identity);
}

std::vector<std::size_t> interleaved_word_order(
    const std::vector<netlist::Word>& input_words) {
  std::vector<std::size_t> order;
  std::size_t base = 0;
  std::vector<std::size_t> starts;
  std::size_t max_w = 0;
  for (const auto& w : input_words) {
    starts.push_back(base);
    base += w.size();
    max_w = std::max(max_w, w.size());
  }
  for (std::size_t bit = 0; bit < max_w; ++bit)
    for (std::size_t w = 0; w < input_words.size(); ++w)
      if (bit < input_words[w].size()) order.push_back(starts[w] + bit);
  return order;
}

NetlistBdds build_bdds_ordered(Manager& mgr, const netlist::Netlist& nl,
                               std::span<const std::size_t> input_order) {
  NetlistBdds out;
  out.fn.assign(nl.gate_count(), kFalse);
  out.input_vars.assign(nl.inputs().size(), 0);
  std::uint32_t next_var = 0;
  for (std::size_t k = 0; k < input_order.size(); ++k) {
    GateId g = nl.inputs()[input_order[k]];
    out.var_of[g] = next_var;
    out.input_vars[input_order[k]] = next_var;
    out.fn[g] = mgr.var(next_var);
    ++next_var;
  }
  for (GateId g : nl.dffs()) {
    out.var_of[g] = next_var;
    out.state_vars.push_back(next_var);
    out.fn[g] = mgr.var(next_var);
    ++next_var;
  }
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    switch (g.kind) {
      case GateKind::Input:
      case GateKind::Dff:
        break;  // already assigned
      case GateKind::Const0:
        out.fn[id] = kFalse;
        break;
      case GateKind::Const1:
        out.fn[id] = kTrue;
        break;
      case GateKind::Buf:
        out.fn[id] = out.fn[g.fanins[0]];
        break;
      case GateKind::Not:
        out.fn[id] = mgr.bdd_not(out.fn[g.fanins[0]]);
        break;
      case GateKind::And:
      case GateKind::Nand: {
        NodeRef r = kTrue;
        for (GateId f : g.fanins) r = mgr.bdd_and(r, out.fn[f]);
        out.fn[id] = g.kind == GateKind::Nand ? mgr.bdd_not(r) : r;
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        NodeRef r = kFalse;
        for (GateId f : g.fanins) r = mgr.bdd_or(r, out.fn[f]);
        out.fn[id] = g.kind == GateKind::Nor ? mgr.bdd_not(r) : r;
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        NodeRef r = kFalse;
        for (GateId f : g.fanins) r = mgr.bdd_xor(r, out.fn[f]);
        out.fn[id] = g.kind == GateKind::Xnor ? mgr.bdd_not(r) : r;
        break;
      }
      case GateKind::Mux:
        out.fn[id] = mgr.ite(out.fn[g.fanins[0]], out.fn[g.fanins[2]],
                             out.fn[g.fanins[1]]);
        break;
    }
  }
  return out;
}

}  // namespace hlp::bdd
