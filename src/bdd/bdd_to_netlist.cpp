#include "bdd/bdd_to_netlist.hpp"

#include <stdexcept>

namespace hlp::bdd {

namespace {

netlist::GateId materialize_rec(
    const Manager& mgr, NodeRef f, netlist::Netlist& nl,
    const std::unordered_map<std::uint32_t, netlist::GateId>& var_nets,
    std::unordered_map<NodeRef, netlist::GateId>& memo,
    netlist::GateId const0, netlist::GateId const1) {
  if (f == kFalse) return const0;
  if (f == kTrue) return const1;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  auto vn = var_nets.find(mgr.node_var(f));
  if (vn == var_nets.end())
    throw std::invalid_argument("materialize: unmapped BDD variable");
  netlist::GateId lo = materialize_rec(mgr, mgr.node_lo(f), nl, var_nets,
                                       memo, const0, const1);
  netlist::GateId hi = materialize_rec(mgr, mgr.node_hi(f), nl, var_nets,
                                       memo, const0, const1);
  netlist::GateId g = nl.add_mux(vn->second, lo, hi);
  memo.emplace(f, g);
  return g;
}

}  // namespace

netlist::GateId materialize(
    const Manager& mgr, NodeRef f, netlist::Netlist& nl,
    const std::unordered_map<std::uint32_t, netlist::GateId>& var_nets) {
  std::unordered_map<NodeRef, netlist::GateId> memo;
  netlist::GateId c0 = nl.add_const(false);
  netlist::GateId c1 = nl.add_const(true);
  return materialize_rec(mgr, f, nl, var_nets, memo, c0, c1);
}

}  // namespace hlp::bdd
