#include "bdd/bdd.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "exec/fi.hpp"

namespace hlp::bdd {

namespace {
constexpr std::uint32_t kTermVar = std::numeric_limits<std::uint32_t>::max();
}

Manager::Manager() {
  nodes_.push_back({kTermVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back({kTermVar, kTrue, kTrue});    // 1 = true
}

NodeRef Manager::make_node(std::uint32_t var, NodeRef lo, NodeRef hi) {
  if (lo == hi) return lo;
  NodeKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  // The only point where the manager grows. Budget and fault checks sit
  // before the first mutation; the rollback below restores the class
  // invariant (every node is in the unique table, and vice versa) if the
  // second mutation throws — the strong exception guarantee.
  if (meter_) meter_->check_nodes(nodes_.size() + 1);
  fi::alloc_checkpoint();
  NodeRef id = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  try {
    unique_.emplace(key, id);
  } catch (...) {
    nodes_.pop_back();
    throw;
  }
  return id;
}

NodeRef Manager::var(std::uint32_t v) { return make_node(v, kFalse, kTrue); }
NodeRef Manager::nvar(std::uint32_t v) { return make_node(v, kTrue, kFalse); }

std::uint32_t Manager::top_var(NodeRef f, NodeRef g, NodeRef h) const {
  std::uint32_t v = kTermVar;
  if (f > kTrue) v = std::min(v, nodes_[f].var);
  if (g > kTrue) v = std::min(v, nodes_[g].var);
  if (h > kTrue) v = std::min(v, nodes_[h].var);
  return v;
}

NodeRef Manager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;
  if (meter_) meter_->step();

  std::uint32_t v = top_var(f, g, h);
  auto cof = [&](NodeRef x, bool hi) -> NodeRef {
    if (x <= kTrue || nodes_[x].var != v) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  NodeRef t = ite(cof(f, true), cof(g, true), cof(h, true));
  NodeRef e = ite(cof(f, false), cof(g, false), cof(h, false));
  NodeRef r = make_node(v, e, t);
  ite_cache_.emplace(key, r);
  return r;
}

NodeRef Manager::restrict_var(NodeRef f, std::uint32_t v, bool val) {
  if (f <= kTrue) return f;
  // Copy, not reference: the recursive calls below go through make_node,
  // which can grow nodes_ and invalidate anything pointing into it.
  const Node n = nodes_[f];
  if (n.var > v) return f;
  if (n.var == v) return val ? n.hi : n.lo;
  // n.var < v: rebuild children.
  NodeRef lo = restrict_var(n.lo, v, val);
  NodeRef hi = restrict_var(n.hi, v, val);
  return make_node(n.var, lo, hi);
}

NodeRef Manager::exists(NodeRef f, std::uint32_t v) {
  return bdd_or(restrict_var(f, v, false), restrict_var(f, v, true));
}

NodeRef Manager::forall(NodeRef f, std::uint32_t v) {
  return bdd_and(restrict_var(f, v, false), restrict_var(f, v, true));
}

NodeRef Manager::exists_set(NodeRef f, std::span<const std::uint32_t> vars) {
  for (std::uint32_t v : vars) f = exists(f, v);
  return f;
}

NodeRef Manager::forall_set(NodeRef f, std::span<const std::uint32_t> vars) {
  for (std::uint32_t v : vars) f = forall(f, v);
  return f;
}

NodeRef Manager::compose(NodeRef f, std::uint32_t v, NodeRef g) {
  // f[v <- g] = ite(g, f|v=1, f|v=0)
  return ite(g, restrict_var(f, v, true), restrict_var(f, v, false));
}

NodeRef Manager::rename(
    NodeRef f, const std::unordered_map<std::uint32_t, std::uint32_t>& map) {
  if (f <= kTrue) return f;
  const Node n = nodes_[f];
  NodeRef lo = rename(n.lo, map);
  NodeRef hi = rename(n.hi, map);
  auto it = map.find(n.var);
  std::uint32_t v = it == map.end() ? n.var : it->second;
  return make_node(v, lo, hi);
}

double Manager::sat_fraction(NodeRef f) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  auto it = sat_cache_.find(f);
  if (it != sat_cache_.end()) return it->second;
  const Node& n = nodes_[f];
  // Each child sits some levels below; with the fraction semantics every
  // skipped level halves both branches equally, so the plain average is
  // exact regardless of which variables appear.
  double r = 0.5 * (sat_fraction(n.lo) + sat_fraction(n.hi));
  sat_cache_.emplace(f, r);
  return r;
}

std::size_t Manager::node_count(NodeRef f) {
  NodeRef roots[1] = {f};
  return node_count(roots);
}

std::size_t Manager::node_count(std::span<const NodeRef> roots) {
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack(roots.begin(), roots.end());
  std::size_t count = 0;
  while (!stack.empty()) {
    NodeRef f = stack.back();
    stack.pop_back();
    if (f <= kTrue || !seen.insert(f).second) continue;
    ++count;
    stack.push_back(nodes_[f].lo);
    stack.push_back(nodes_[f].hi);
  }
  return count;
}

std::vector<std::uint32_t> Manager::support(NodeRef f) {
  std::unordered_set<NodeRef> seen;
  std::unordered_set<std::uint32_t> vars;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    NodeRef x = stack.back();
    stack.pop_back();
    if (x <= kTrue || !seen.insert(x).second) continue;
    vars.insert(nodes_[x].var);
    stack.push_back(nodes_[x].lo);
    stack.push_back(nodes_[x].hi);
  }
  std::vector<std::uint32_t> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Manager::eval(NodeRef f, std::uint64_t assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.var >= 64)
      throw std::out_of_range("Manager::eval: variable index >= 64");
    f = ((assignment >> n.var) & 1u) ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::uint64_t Manager::any_sat(NodeRef f) const {
  if (f == kFalse) throw std::logic_error("any_sat on constant false");
  std::uint64_t a = 0;
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      if (n.var < 64) a |= std::uint64_t{1} << n.var;
      f = n.hi;
    } else {
      f = n.lo;
    }
  }
  return a;
}

}  // namespace hlp::bdd
