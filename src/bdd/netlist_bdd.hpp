#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace hlp::bdd {

/// Symbolic view of a netlist: one BDD per gate, over variables assigned to
/// primary inputs and DFF outputs (present-state lines).
struct NetlistBdds {
  std::vector<NodeRef> fn;  ///< indexed by GateId
  std::unordered_map<netlist::GateId, std::uint32_t> var_of;  ///< sources
  std::vector<std::uint32_t> input_vars;  ///< in primary-input order
  std::vector<std::uint32_t> state_vars;  ///< in DFF order

  NodeRef output(const netlist::Netlist& nl, std::size_t i) const {
    return fn[nl.outputs()[i]];
  }
};

/// Build BDDs for every gate. Variable order: primary inputs first (in
/// declaration order), then DFF outputs. Throws if the netlist has a
/// combinational cycle.
NetlistBdds build_bdds(Manager& mgr, const netlist::Netlist& nl);

/// Build with an explicit primary-input order: `input_order[k]` is the
/// index (into nl.inputs()) of the input assigned BDD variable k. Variable
/// order is the classic lever on BDD size — e.g. interleaving the two
/// operand words of an adder turns its exponential BDD linear.
NetlistBdds build_bdds_ordered(Manager& mgr, const netlist::Netlist& nl,
                               std::span<const std::size_t> input_order);

/// Convenience: interleave the bits of a module's input words
/// (a0,b0,a1,b1,...) — the right order for word-wise arithmetic.
std::vector<std::size_t> interleaved_word_order(
    const std::vector<netlist::Word>& input_words);

}  // namespace hlp::bdd
