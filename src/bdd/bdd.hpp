#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "exec/exec.hpp"

namespace hlp::bdd {

/// Reference to a BDD node. 0 and 1 are the constant terminals.
using NodeRef = std::uint32_t;
inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// Reduced ordered binary decision diagram manager (Bryant [84]).
///
/// Plain ROBDDs (no complement arcs) with a unique table and an ITE cache.
/// Variable order is the variable index order (0 = top). The package backs
/// the survey's symbolic techniques: Ferrandi's BDD-node capacitance model
/// (II-B1), precomputation predictor synthesis (III-I), guarded-evaluation
/// observability don't-cares (III-I), and FSM symbolic analysis (III-H).
class Manager {
 public:
  Manager();

  NodeRef constant(bool b) const { return b ? kTrue : kFalse; }
  /// Projection function for variable v.
  NodeRef var(std::uint32_t v);
  /// Negated projection function.
  NodeRef nvar(std::uint32_t v);

  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);
  NodeRef bdd_not(NodeRef f) { return ite(f, kFalse, kTrue); }
  NodeRef bdd_and(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
  NodeRef bdd_or(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
  NodeRef bdd_xor(NodeRef f, NodeRef g) { return ite(f, bdd_not(g), g); }
  NodeRef bdd_xnor(NodeRef f, NodeRef g) { return ite(f, g, bdd_not(g)); }

  /// Cofactor of f with variable v fixed to `val`.
  NodeRef restrict_var(NodeRef f, std::uint32_t v, bool val);
  /// Existential / universal quantification over one variable.
  NodeRef exists(NodeRef f, std::uint32_t v);
  NodeRef forall(NodeRef f, std::uint32_t v);
  /// Quantify over a set of variables.
  NodeRef exists_set(NodeRef f, std::span<const std::uint32_t> vars);
  NodeRef forall_set(NodeRef f, std::span<const std::uint32_t> vars);

  /// Substitute variable v by function g in f.
  NodeRef compose(NodeRef f, std::uint32_t v, NodeRef g);

  /// Rename variables: f with var i replaced by var `map[i]` (identity for
  /// indices not in the map). The mapping must be monotone in the variable
  /// order (true for the interleaved state encodings we use).
  NodeRef rename(NodeRef f, const std::unordered_map<std::uint32_t,
                                                     std::uint32_t>& map);

  /// True iff f implies g.
  bool implies(NodeRef f, NodeRef g) { return ite(f, g, kTrue) == kTrue; }

  /// Fraction of minterms satisfying f (equals satisfying fraction over any
  /// superset of the support).
  double sat_fraction(NodeRef f);

  /// Number of internal nodes reachable from f (terminals excluded) — the
  /// "N" of Ferrandi's C_tot = alpha * (m/n) * N * h_out + beta model.
  std::size_t node_count(NodeRef f);
  /// Internal nodes reachable from any of the given roots, deduplicated
  /// (shared subgraphs counted once) — multi-output circuit size.
  std::size_t node_count(std::span<const NodeRef> roots);

  /// Support: sorted list of variables f depends on.
  std::vector<std::uint32_t> support(NodeRef f);

  /// Evaluate under a full assignment (bit v of `assignment` = variable v).
  bool eval(NodeRef f, std::uint64_t assignment) const;

  /// One satisfying assignment (as packed bits over support vars); f must
  /// not be kFalse. Unassigned variables default to 0.
  std::uint64_t any_sat(NodeRef f) const;

  std::size_t total_nodes() const { return nodes_.size(); }

  /// Attach an execution meter (not owned; nullptr detaches). While
  /// attached, node creation checks the budget's node cap and every ITE
  /// cache miss charges one meter step, so runaway constructions trip the
  /// deadline/step quota/cancellation instead of hanging. A trip throws
  /// exec::BudgetExceeded mid-operation; the manager's tables only ever
  /// contain completed entries, so it remains fully usable afterwards.
  void set_meter(exec::Meter* m) { meter_ = m; }
  exec::Meter* meter() const { return meter_; }

  std::uint32_t node_var(NodeRef f) const { return nodes_[f].var; }
  NodeRef node_lo(NodeRef f) const { return nodes_[f].lo; }
  NodeRef node_hi(NodeRef f) const { return nodes_[f].hi; }
  bool is_terminal(NodeRef f) const { return f <= kTrue; }

 private:
  struct Node {
    std::uint32_t var;
    NodeRef lo, hi;
  };
  struct NodeKey {
    std::uint32_t var;
    NodeRef lo, hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9E3779B97F4A7C15ull + k.lo;
      h = h * 0x9E3779B97F4A7C15ull + k.hi;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    NodeRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9E3779B97F4A7C15ull + k.g;
      h = h * 0x9E3779B97F4A7C15ull + k.h;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  NodeRef make_node(std::uint32_t var, NodeRef lo, NodeRef hi);
  std::uint32_t top_var(NodeRef f, NodeRef g, NodeRef h) const;

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, NodeRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;
  std::unordered_map<NodeRef, double> sat_cache_;
  exec::Meter* meter_ = nullptr;
};

}  // namespace hlp::bdd
