#pragma once

#include <unordered_map>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace hlp::bdd {

/// Materialize a BDD as a mux network in `nl` (one 2:1 mux per BDD node,
/// shared via memoization — the "obvious mapping" of Section III-H).
/// `var_nets` maps BDD variable index -> driving net.
netlist::GateId materialize(const Manager& mgr, NodeRef f,
                            netlist::Netlist& nl,
                            const std::unordered_map<std::uint32_t,
                                                     netlist::GateId>&
                                var_nets);

}  // namespace hlp::bdd
