#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp::netlist {

/// Copy a purely combinational netlist into `dst`, substituting the source's
/// primary inputs with `input_nets` (same order/count as src.inputs()).
/// Returns the translation table (src GateId -> dst GateId). Output marks
/// are NOT copied; use the returned table to wire/mark outputs.
std::vector<GateId> copy_combinational(const Netlist& src, Netlist& dst,
                                       std::span<const GateId> input_nets);

}  // namespace hlp::netlist
