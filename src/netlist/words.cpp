#include "netlist/words.hpp"

#include <stdexcept>
#include <string>

namespace hlp::netlist {
namespace {

std::string indexed(std::string_view prefix, int i) {
  return std::string(prefix) + "[" + std::to_string(i) + "]";
}

void require_same_width(const Word& a, const Word& b, const char* fn) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string(fn) + ": word width mismatch (" +
                                std::to_string(a.size()) + " vs " +
                                std::to_string(b.size()) + " bits)");
}

void require_nonempty(const Word& a, const char* fn) {
  if (a.empty()) throw std::invalid_argument(std::string(fn) + ": empty word");
}

/// One-bit full adder; returns {sum, carry}.
std::pair<GateId, GateId> full_adder(Netlist& nl, GateId a, GateId b,
                                     GateId c) {
  GateId axb = nl.add_binary(GateKind::Xor, a, b);
  GateId sum = nl.add_binary(GateKind::Xor, axb, c);
  GateId ab = nl.add_binary(GateKind::And, a, b);
  GateId axbc = nl.add_binary(GateKind::And, axb, c);
  GateId carry = nl.add_binary(GateKind::Or, ab, axbc);
  return {sum, carry};
}

}  // namespace

Word make_input_word(Netlist& nl, int width, std::string_view prefix) {
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w.push_back(nl.add_input(indexed(prefix, i)));
  return w;
}

Word make_const_word(Netlist& nl, int width, std::uint64_t value) {
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w.push_back(nl.add_const((value >> i) & 1u));
  return w;
}

Word ripple_adder(Netlist& nl, const Word& a, const Word& b, GateId cin,
                  GateId* cout) {
  require_same_width(a, b, "ripple_adder");
  Word sum;
  sum.reserve(a.size());
  GateId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (carry == kNullGate) {
      // Half adder for the first stage without carry-in.
      sum.push_back(nl.add_binary(GateKind::Xor, a[i], b[i]));
      carry = nl.add_binary(GateKind::And, a[i], b[i]);
    } else {
      auto [s, c] = full_adder(nl, a[i], b[i], carry);
      sum.push_back(s);
      carry = c;
    }
  }
  if (cout) *cout = carry;
  return sum;
}

Word subtractor(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "subtractor");
  Word nb = not_word(nl, b);
  GateId one = nl.add_const(true);
  GateId cout = kNullGate;
  Word diff;
  GateId carry = one;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(nl, a[i], nb[i], carry);
    diff.push_back(s);
    carry = c;
  }
  cout = carry;
  (void)cout;
  return diff;
}

Word array_multiplier(Netlist& nl, const Word& a, const Word& b) {
  const std::size_t n = a.size(), m = b.size();
  Word result;
  if (n == 0 || m == 0) return result;
  // Row of partial products accumulated with ripple adders.
  Word acc;
  for (std::size_t i = 0; i < n; ++i)
    acc.push_back(nl.add_binary(GateKind::And, a[i], b[0]));
  result.push_back(acc[0]);
  acc.erase(acc.begin());
  acc.push_back(nl.add_const(false));
  for (std::size_t j = 1; j < m; ++j) {
    Word pp;
    for (std::size_t i = 0; i < n; ++i)
      pp.push_back(nl.add_binary(GateKind::And, a[i], b[j]));
    GateId cout = kNullGate;
    acc = ripple_adder(nl, acc, pp, kNullGate, &cout);
    result.push_back(acc[0]);
    acc.erase(acc.begin());
    acc.push_back(cout);
  }
  for (GateId g : acc) result.push_back(g);
  return result;
}

Word carry_select_adder(Netlist& nl, const Word& a, const Word& b, int block,
                        GateId* cout) {
  require_same_width(a, b, "carry_select_adder");
  if (block < 1)
    throw std::invalid_argument("carry_select_adder: block must be >= 1");
  Word sum;
  sum.reserve(a.size());
  GateId carry = kNullGate;  // null = known zero at the first block
  for (std::size_t lo = 0; lo < a.size();
       lo += static_cast<std::size_t>(block)) {
    std::size_t hi = std::min(a.size(), lo + static_cast<std::size_t>(block));
    Word ab(a.begin() + static_cast<std::ptrdiff_t>(lo),
            a.begin() + static_cast<std::ptrdiff_t>(hi));
    Word bb(b.begin() + static_cast<std::ptrdiff_t>(lo),
            b.begin() + static_cast<std::ptrdiff_t>(hi));
    if (carry == kNullGate) {
      GateId c0 = kNullGate;
      Word s = ripple_adder(nl, ab, bb, kNullGate, &c0);
      for (GateId g : s) sum.push_back(g);
      carry = c0;
    } else {
      // Both speculative versions, selected by the incoming carry.
      GateId zero = nl.add_const(false);
      GateId one = nl.add_const(true);
      GateId c0 = kNullGate, c1 = kNullGate;
      Word s0 = ripple_adder(nl, ab, bb, zero, &c0);
      Word s1 = ripple_adder(nl, ab, bb, one, &c1);
      Word sel = mux_word(nl, carry, s0, s1);
      for (GateId g : sel) sum.push_back(g);
      carry = nl.add_mux(carry, c0, c1);
    }
  }
  if (cout) *cout = carry;
  return sum;
}

Word csa_multiplier(Netlist& nl, const Word& a, const Word& b) {
  const std::size_t n = a.size(), m = b.size();
  Word result;
  if (n == 0 || m == 0) return result;
  const std::size_t w = n + m;
  // Column-wise partial-product bins.
  std::vector<std::vector<GateId>> cols(w);
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t i = 0; i < n; ++i)
      cols[i + j].push_back(nl.add_binary(GateKind::And, a[i], b[j]));
  // 3:2 / 2:2 reduction until every column holds at most two bits.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    std::vector<std::vector<GateId>> next(w);
    for (std::size_t c = 0; c < w; ++c) {
      auto& col = cols[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        // Full adder: sum stays, carry moves up.
        GateId x = col[i], y = col[i + 1], z = col[i + 2];
        i += 3;
        GateId xy = nl.add_binary(GateKind::Xor, x, y);
        GateId s = nl.add_binary(GateKind::Xor, xy, z);
        GateId c1 = nl.add_binary(GateKind::And, x, y);
        GateId c2 = nl.add_binary(GateKind::And, xy, z);
        GateId cy = nl.add_binary(GateKind::Or, c1, c2);
        next[c].push_back(s);
        if (c + 1 < w) next[c + 1].push_back(cy);
        reduced = true;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    cols = std::move(next);
  }
  // Final carry-propagate add over the two remaining rows; carry-select
  // keeps the fast tree from being bottlenecked by a ripple chain.
  Word row0, row1;
  for (std::size_t c = 0; c < w; ++c) {
    row0.push_back(cols[c].empty() ? nl.add_const(false) : cols[c][0]);
    row1.push_back(cols[c].size() > 1 ? cols[c][1] : nl.add_const(false));
  }
  return carry_select_adder(nl, row0, row1, 3);
}

Word and_word(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "and_word");
  Word w;
  for (std::size_t i = 0; i < a.size(); ++i)
    w.push_back(nl.add_binary(GateKind::And, a[i], b[i]));
  return w;
}

Word or_word(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "or_word");
  Word w;
  for (std::size_t i = 0; i < a.size(); ++i)
    w.push_back(nl.add_binary(GateKind::Or, a[i], b[i]));
  return w;
}

Word xor_word(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "xor_word");
  Word w;
  for (std::size_t i = 0; i < a.size(); ++i)
    w.push_back(nl.add_binary(GateKind::Xor, a[i], b[i]));
  return w;
}

Word not_word(Netlist& nl, const Word& a) {
  Word w;
  for (GateId g : a) w.push_back(nl.add_unary(GateKind::Not, g));
  return w;
}

Word mux_word(Netlist& nl, GateId sel, const Word& a, const Word& b) {
  require_same_width(a, b, "mux_word");
  Word w;
  for (std::size_t i = 0; i < a.size(); ++i)
    w.push_back(nl.add_mux(sel, a[i], b[i]));
  return w;
}

Word register_word(Netlist& nl, const Word& d, std::string_view prefix) {
  Word q;
  for (std::size_t i = 0; i < d.size(); ++i)
    q.push_back(nl.add_dff(d[i], false,
                           prefix.empty()
                               ? std::string{}
                               : indexed(prefix, static_cast<int>(i))));
  return q;
}

GateId parity(Netlist& nl, const Word& a) {
  require_nonempty(a, "parity");
  // Balanced XOR tree.
  Word level = a;
  while (level.size() > 1) {
    Word next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(nl.add_binary(GateKind::Xor, level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

GateId equals(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "equals");
  require_nonempty(a, "equals");
  Word eqs;
  for (std::size_t i = 0; i < a.size(); ++i)
    eqs.push_back(nl.add_binary(GateKind::Xnor, a[i], b[i]));
  // AND tree.
  while (eqs.size() > 1) {
    Word next;
    for (std::size_t i = 0; i + 1 < eqs.size(); i += 2)
      next.push_back(nl.add_binary(GateKind::And, eqs[i], eqs[i + 1]));
    if (eqs.size() % 2) next.push_back(eqs.back());
    eqs = std::move(next);
  }
  return eqs[0];
}

GateId less_than(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "less_than");
  require_nonempty(a, "less_than");
  // lt_i = (!a_i & b_i) | (a_i==b_i) & lt_{i-1}, scanning from LSB.
  GateId lt = nl.add_const(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    GateId na = nl.add_unary(GateKind::Not, a[i]);
    GateId strict = nl.add_binary(GateKind::And, na, b[i]);
    GateId eq = nl.add_binary(GateKind::Xnor, a[i], b[i]);
    GateId carry = nl.add_binary(GateKind::And, eq, lt);
    lt = nl.add_binary(GateKind::Or, strict, carry);
  }
  return lt;
}

Word shift_left_const(Netlist& nl, const Word& a, int amount) {
  Word w;
  for (int i = 0; i < amount && i < static_cast<int>(a.size()); ++i)
    w.push_back(nl.add_const(false));
  for (std::size_t i = 0; w.size() < a.size(); ++i) w.push_back(a[i]);
  return w;
}

void mark_output_word(Netlist& nl, const Word& w, std::string_view prefix) {
  for (std::size_t i = 0; i < w.size(); ++i)
    nl.mark_output(w[i], prefix.empty()
                             ? std::string{}
                             : indexed(prefix, static_cast<int>(i)));
}

}  // namespace hlp::netlist
