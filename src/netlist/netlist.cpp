#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/hash.hpp"

namespace hlp::netlist {

bool is_logic(GateKind k) {
  switch (k) {
    case GateKind::Input:
    case GateKind::Const0:
    case GateKind::Const1:
    case GateKind::Dff:
      return false;
    default:
      return true;
  }
}

const char* kind_name(GateKind k) {
  switch (k) {
    case GateKind::Input: return "input";
    case GateKind::Const0: return "const0";
    case GateKind::Const1: return "const1";
    case GateKind::Buf: return "buf";
    case GateKind::Not: return "not";
    case GateKind::And: return "and";
    case GateKind::Or: return "or";
    case GateKind::Nand: return "nand";
    case GateKind::Nor: return "nor";
    case GateKind::Xor: return "xor";
    case GateKind::Xnor: return "xnor";
    case GateKind::Mux: return "mux";
    case GateKind::Dff: return "dff";
  }
  return "?";
}

bool eval_gate(GateKind kind, std::span<const std::uint8_t> v) {
  switch (kind) {
    case GateKind::Const0: return false;
    case GateKind::Const1: return true;
    case GateKind::Buf: return v[0];
    case GateKind::Not: return !v[0];
    case GateKind::And: {
      for (std::uint8_t b : v)
        if (!b) return false;
      return true;
    }
    case GateKind::Or: {
      for (std::uint8_t b : v)
        if (b) return true;
      return false;
    }
    case GateKind::Nand: {
      for (std::uint8_t b : v)
        if (!b) return true;
      return false;
    }
    case GateKind::Nor: {
      for (std::uint8_t b : v)
        if (b) return false;
      return true;
    }
    case GateKind::Xor: {
      bool r = false;
      for (std::uint8_t b : v) r ^= b;
      return r;
    }
    case GateKind::Xnor: {
      bool r = true;
      for (std::uint8_t b : v) r ^= b;
      return r;
    }
    case GateKind::Mux:
      return v[0] ? v[2] : v[1];
    case GateKind::Input:
    case GateKind::Dff:
      throw std::logic_error("eval_gate: kind has no combinational function");
  }
  return false;
}

GateId Netlist::add_input(std::string_view name) {
  GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back({GateKind::Input, {}, std::string(name), 0.0});
  inputs_.push_back(id);
  invalidate_cache();
  return id;
}

GateId Netlist::add_const(bool value) {
  GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(
      {value ? GateKind::Const1 : GateKind::Const0, {}, {}, 0.0});
  invalidate_cache();
  return id;
}

GateId Netlist::add_gate(GateKind kind, std::span<const GateId> fanins,
                         std::string_view name) {
  assert(is_logic(kind));
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = kind;
  g.fanins.assign(fanins.begin(), fanins.end());
  g.name = std::string(name);
  gates_.push_back(std::move(g));
  invalidate_cache();
  return id;
}

GateId Netlist::add_unary(GateKind kind, GateId a, std::string_view name) {
  GateId f[1] = {a};
  return add_gate(kind, f, name);
}

GateId Netlist::add_binary(GateKind kind, GateId a, GateId b,
                           std::string_view name) {
  GateId f[2] = {a, b};
  return add_gate(kind, f, name);
}

GateId Netlist::add_mux(GateId sel, GateId d0, GateId d1,
                        std::string_view name) {
  GateId f[3] = {sel, d0, d1};
  return add_gate(GateKind::Mux, f, name);
}

GateId Netlist::add_dff(GateId d, bool init, std::string_view name) {
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = GateKind::Dff;
  if (d != kNullGate) g.fanins.push_back(d);
  g.name = std::string(name);
  gates_.push_back(std::move(g));
  dffs_.push_back(id);
  dff_inits_.push_back(init);
  invalidate_cache();
  return id;
}

void Netlist::set_dff_input(GateId dff, GateId d) {
  assert(gates_[dff].kind == GateKind::Dff);
  gates_[dff].fanins.assign(1, d);
  invalidate_cache();
}

bool Netlist::dff_init(GateId dff) const {
  for (std::size_t i = 0; i < dffs_.size(); ++i)
    if (dffs_[i] == dff) return dff_inits_[i];
  return false;
}

void Netlist::mark_output(GateId g, std::string_view name) {
  outputs_.push_back(g);
  output_names_.emplace_back(name);
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (is_logic(g.kind)) ++n;
  return n;
}

const std::vector<GateId>& Netlist::topo_order() const {
  if (topo_valid_) return topo_cache_;
  topo_cache_.clear();
  topo_cache_.reserve(gates_.size());
  // Kahn's algorithm over combinational edges only: DFFs are sources (their
  // output is the state) and their D fanin is not a combinational dependency
  // of the DFF node itself.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (is_logic(g.kind)) pending[id] = static_cast<std::uint32_t>(g.fanins.size());
  }
  std::vector<std::vector<GateId>> fo(gates_.size());
  for (GateId id = 0; id < gates_.size(); ++id) {
    if (!is_logic(gates_[id].kind)) continue;
    for (GateId f : gates_[id].fanins) fo[f].push_back(id);
  }
  std::vector<GateId> ready;
  for (GateId id = 0; id < gates_.size(); ++id)
    if (!is_logic(gates_[id].kind)) ready.push_back(id);
  while (!ready.empty()) {
    GateId id = ready.back();
    ready.pop_back();
    topo_cache_.push_back(id);
    for (GateId s : fo[id])
      if (--pending[s] == 0) ready.push_back(s);
  }
  if (topo_cache_.size() != gates_.size())
    throw std::logic_error("Netlist: combinational cycle detected");
  topo_valid_ = true;
  return topo_cache_;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> n(gates_.size(), 0);
  for (const Gate& g : gates_)
    for (GateId f : g.fanins) ++n[f];
  return n;
}

std::vector<std::vector<GateId>> Netlist::fanouts() const {
  std::vector<std::vector<GateId>> fo(gates_.size());
  for (GateId id = 0; id < gates_.size(); ++id)
    for (GateId f : gates_[id].fanins) fo[f].push_back(id);
  return fo;
}

std::vector<double> Netlist::loads(const CapacitanceModel& cap) const {
  std::vector<double> load(gates_.size(), 0.0);
  auto nfo = fanout_counts();
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    double pin = (g.kind == GateKind::Dff) ? cap.dff_pin_cap
                                           : cap.input_pin_cap;
    for (GateId f : g.fanins) load[f] += pin;
  }
  for (GateId id = 0; id < gates_.size(); ++id) {
    load[id] += cap.output_self_cap +
                cap.wire_cap_per_fanout * static_cast<double>(nfo[id]) +
                gates_[id].extra_cap;
  }
  return load;
}

double Netlist::total_capacitance(const CapacitanceModel& cap) const {
  double total = 0.0;
  for (double l : loads(cap)) total += l;
  total += cap.dff_clock_cap * static_cast<double>(dffs_.size());
  return total;
}

int Netlist::depth() const {
  std::vector<int> d(gates_.size(), 0);
  int best = 0;
  for (GateId id : topo_order()) {
    const Gate& g = gates_[id];
    if (!is_logic(g.kind)) continue;
    int m = 0;
    for (GateId f : g.fanins) m = std::max(m, d[f]);
    d[id] = m + 1;
    best = std::max(best, d[id]);
  }
  return best;
}

std::uint64_t structural_hash(const Netlist& nl) {
  util::Fnv1a64 h;
  h.u64(nl.gate_count());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    h.u32(static_cast<std::uint32_t>(gate.kind));
    h.u64(gate.fanins.size());
    for (GateId f : gate.fanins) h.u32(f);
    h.f64(gate.extra_cap);
  }
  h.u64(nl.inputs().size());
  for (GateId g : nl.inputs()) h.u32(g);
  h.u64(nl.outputs().size());
  for (GateId g : nl.outputs()) h.u32(g);
  h.u64(nl.dffs().size());
  for (GateId g : nl.dffs()) {
    h.u32(g);
    h.u32(nl.dff_init(g) ? 1u : 0u);
  }
  return h.digest();
}

}  // namespace hlp::netlist
