#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/words.hpp"

namespace hlp::netlist {

/// A combinational or sequential block with word-level port structure.
///
/// Stands in for the precharacterized RT-level library components the paper's
/// macro-modeling flows operate on (adders, multipliers, ALUs, ...).
struct Module {
  std::string name;
  Netlist netlist;
  std::vector<Word> input_words;   ///< primary input buses
  std::vector<Word> output_words;  ///< primary output buses

  int total_input_bits() const {
    int n = 0;
    for (const auto& w : input_words) n += static_cast<int>(w.size());
    return n;
  }
  int total_output_bits() const {
    int n = 0;
    for (const auto& w : output_words) n += static_cast<int>(w.size());
    return n;
  }
};

/// n-bit ripple-carry adder: inputs a, b; output sum (n+1 bits).
Module adder_module(int n);

/// n x n unsigned array multiplier: inputs a, b; output p (2n bits).
Module multiplier_module(int n);

/// n-bit ALU with 2-bit opcode: 00 add, 01 and, 10 or, 11 xor.
Module alu_module(int n);

/// n-bit parity generator (single output).
Module parity_module(int n);

/// n-bit unsigned comparator: outputs {lt, eq}.
Module comparator_module(int n);

/// n-bit maximum: out = max(a, b) (comparator + word mux); used by the
/// precomputation experiments (Fig. 6 of the paper).
Module max_module(int n);

/// Random combinational DAG: `n_in` inputs, `n_gates` two-input gates with
/// fanins drawn from earlier nodes (locality-biased), `n_out` outputs drawn
/// from the last gates. Deterministic in `seed`.
Module random_logic_module(int n_in, int n_gates, int n_out,
                           std::uint64_t seed);

/// The ISCAS-85 c17 benchmark (6 NAND gates, 5 inputs, 2 outputs).
Module c17_module();

/// Balanced mux tree selecting one of 2^sel_bits data inputs.
Module mux_tree_module(int sel_bits);

/// n x n multiplier followed by `trees` XOR-reduction trees over rotated
/// subsets of the product bits. The multiplier generates glitches and the
/// XOR trees amplify them — the canonical low-power retiming target
/// (Fig. 9): a register cut at the product bits is narrow and blocks the
/// glitches from the reduction stage.
Module multiply_reduce_module(int n, int trees = 4);

}  // namespace hlp::netlist
