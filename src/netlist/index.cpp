#include "netlist/index.hpp"

#include <algorithm>

namespace hlp::netlist {

NetlistIndex build_index(const Netlist& nl, const CapacitanceModel& cap) {
  const auto n = static_cast<GateId>(nl.gate_count());
  NetlistIndex ix;

  // Degree counting pass, then a placement pass: CSR without intermediate
  // per-gate vectors.
  ix.fanout_count.assign(n, 0);
  std::vector<std::uint32_t> comb_count(n, 0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    const bool logic = is_logic(g.kind);
    for (GateId f : g.fanins) {
      ++ix.fanout_count[f];
      if (logic) ++comb_count[f];
    }
  }
  ix.fanout_offset.assign(n + 1, 0);
  ix.comb_fanout_offset.assign(n + 1, 0);
  for (GateId id = 0; id < n; ++id) {
    ix.fanout_offset[id + 1] = ix.fanout_offset[id] + ix.fanout_count[id];
    ix.comb_fanout_offset[id + 1] = ix.comb_fanout_offset[id] + comb_count[id];
  }
  ix.fanout_edges.resize(ix.fanout_offset[n]);
  ix.comb_fanout_edges.resize(ix.comb_fanout_offset[n]);
  {
    std::vector<std::uint32_t> cur(ix.fanout_offset.begin(),
                                   ix.fanout_offset.end() - 1);
    std::vector<std::uint32_t> ccur(ix.comb_fanout_offset.begin(),
                                    ix.comb_fanout_offset.end() - 1);
    for (GateId id = 0; id < n; ++id) {
      const Gate& g = nl.gate(id);
      const bool logic = is_logic(g.kind);
      for (GateId f : g.fanins) {
        ix.fanout_edges[cur[f]++] = id;
        if (logic) ix.comb_fanout_edges[ccur[f]++] = id;
      }
    }
  }

  // Kahn over the combinational edges; a cycle simply leaves its gates out
  // of the order (acyclic = false) instead of throwing.
  ix.topo.reserve(n);
  ix.topo_rank.assign(n, NetlistIndex::kNoRank);
  ix.level.assign(n, 0);
  std::vector<std::uint32_t> pending(n, 0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    if (is_logic(g.kind))
      pending[id] = static_cast<std::uint32_t>(g.fanins.size());
  }
  // Two-pointer BFS over the topo vector itself keeps the order identical
  // to a queue-based Kahn (sources in id order, then by dependency wave).
  for (GateId id = 0; id < n; ++id)
    if (!is_logic(nl.gate(id).kind)) ix.topo.push_back(id);
  for (std::size_t head = 0; head < ix.topo.size(); ++head) {
    GateId id = ix.topo[head];
    // level[id] is final here: every combinational fanin of id was popped
    // (and propagated its level) before id's pending count reached zero.
    for (GateId s : ix.comb_fanouts(id)) {
      int lvl = ix.level[id] + 1;
      if (lvl > ix.level[s]) ix.level[s] = lvl;
      if (--pending[s] == 0) ix.topo.push_back(s);
    }
  }
  for (std::size_t r = 0; r < ix.topo.size(); ++r)
    ix.topo_rank[ix.topo[r]] = static_cast<std::uint32_t>(r);
  ix.acyclic = ix.topo.size() == n;

  // Loads, reusing the fanout counts already in hand (Netlist::loads()
  // recounts them).
  ix.load.assign(n, 0.0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    const double pin =
        g.kind == GateKind::Dff ? cap.dff_pin_cap : cap.input_pin_cap;
    for (GateId f : g.fanins) ix.load[f] += pin;
  }
  ix.total_load = 0.0;
  for (GateId id = 0; id < n; ++id) {
    ix.load[id] += cap.output_self_cap +
                   cap.wire_cap_per_fanout *
                       static_cast<double>(ix.fanout_count[id]) +
                   nl.gate(id).extra_cap;
    ix.total_load += ix.load[id];
  }
  return ix;
}

}  // namespace hlp::netlist
