#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hlp::netlist {

/// Gate kinds supported by the netlist IR.
///
/// `Mux` fanins are ordered {sel, d0, d1} (output = sel ? d1 : d0).
/// `Dff` has a single fanin (the D input); its output is the state bit.
enum class GateKind : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Mux,
  Dff,
};

using GateId = std::uint32_t;
inline constexpr GateId kNullGate = std::numeric_limits<GateId>::max();

/// A word is an ordered list of nets, LSB first.
using Word = std::vector<GateId>;

struct Gate {
  GateKind kind = GateKind::Input;
  std::vector<GateId> fanins;
  std::string name;       ///< optional diagnostic name
  double extra_cap = 0.0; ///< additional wire/pin load in capacitance units
};

/// Capacitance model parameters (arbitrary units; the paper's techniques are
/// all defined relative to a switched-capacitance reference, so only ratios
/// matter — see DESIGN.md substitution table).
struct CapacitanceModel {
  double input_pin_cap = 1.0;   ///< per logic-gate input pin
  double dff_pin_cap = 2.0;     ///< DFF D-pin load
  double dff_clock_cap = 1.0;   ///< per-DFF clock network load, switched 2x/cycle
  double output_self_cap = 0.5; ///< gate output diffusion cap
  double wire_cap_per_fanout = 0.25;  ///< statistical wire-load model
};

/// Gate-level netlist: a DAG of logic gates plus DFF state elements.
///
/// DFF outputs act as combinational sources; DFF D-inputs are sampled at the
/// end of each cycle by the simulator. Structural loops through DFFs are
/// allowed; purely combinational loops are not.
class Netlist {
 public:
  GateId add_input(std::string_view name = {});
  GateId add_const(bool value);
  GateId add_gate(GateKind kind, std::span<const GateId> fanins,
                  std::string_view name = {});
  /// Convenience for 1- and 2-input gates.
  GateId add_unary(GateKind kind, GateId a, std::string_view name = {});
  GateId add_binary(GateKind kind, GateId a, GateId b,
                    std::string_view name = {});
  GateId add_mux(GateId sel, GateId d0, GateId d1, std::string_view name = {});

  /// Creates a DFF whose D input may be wired later (for feedback paths).
  GateId add_dff(GateId d = kNullGate, bool init = false,
                 std::string_view name = {});
  void set_dff_input(GateId dff, GateId d);
  bool dff_init(GateId dff) const;

  void mark_output(GateId g, std::string_view name = {});

  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  /// Mutable access invalidates the topo cache. Deliberately named (rather
  /// than a non-const `gate()` overload) so that reads on a non-const
  /// Netlist do not silently discard the cache; use `set_fanin` /
  /// `add_extra_cap` for the common structured edits.
  Gate& gate_mut(GateId g) {
    invalidate_cache();
    return gates_[g];
  }
  /// Rewire one fanin slot. Invalidates the topo cache.
  void set_fanin(GateId g, std::size_t slot, GateId src) {
    invalidate_cache();
    gates_[g].fanins[slot] = src;
  }
  /// Add wire/pin load to a gate. Loads do not affect topology, so the
  /// topo cache stays valid.
  void add_extra_cap(GateId g, double cap) { gates_[g].extra_cap += cap; }

  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::span<const GateId> dffs() const { return dffs_; }

  /// Number of gates that are neither inputs, constants, nor DFFs.
  std::size_t logic_gate_count() const;

  /// Topological order of combinational gates (inputs/consts/DFF outputs
  /// first, then logic gates in dependency order). Cached; invalidated by
  /// structural edits.
  const std::vector<GateId>& topo_order() const;

  /// fanout_count()[g] = number of fanin references to g.
  std::vector<std::uint32_t> fanout_counts() const;

  /// Fanout adjacency: for each gate, the list of gates that read it.
  std::vector<std::vector<GateId>> fanouts() const;

  /// Capacitive load seen by each gate's output under the given model.
  std::vector<double> loads(const CapacitanceModel& cap = {}) const;

  /// Total capacitance of the netlist (sum of all loads + clock network).
  double total_capacitance(const CapacitanceModel& cap = {}) const;

  /// Logic depth (max #logic gates on any input/DFF-to-output/DFF path).
  int depth() const;

 private:
  void invalidate_cache() { topo_valid_ = false; }

  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<std::string> output_names_;
  std::vector<GateId> dffs_;
  std::vector<bool> dff_inits_;
  mutable std::vector<GateId> topo_cache_;
  mutable bool topo_valid_ = false;
};

/// Canonical structural fingerprint: FNV-1a (splitmix-finalized) over gate
/// kinds, fanins, extra loads, and the input/output/DFF interface, in
/// gate-id order. Diagnostic names are excluded — two netlists differing
/// only in names hash identically — so the fingerprint identifies
/// *content*, which is what the serve layer's content-addressed result
/// cache keys on (DESIGN.md §9).
std::uint64_t structural_hash(const Netlist& nl);

/// True if the kind has a defined boolean evaluation (everything but Input).
bool is_logic(GateKind k);

/// Evaluate a single gate given its fanin values.
bool eval_gate(GateKind kind, std::span<const std::uint8_t> fanin_values);

const char* kind_name(GateKind k);

}  // namespace hlp::netlist
