#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace hlp::netlist {

/// Structural Verilog export (synthesizable subset: continuous assigns for
/// the logic, one clocked always block for the DFFs). Lets downstream users
/// push the library's netlists into standard EDA flows for cross-checking.
///
/// Net names are `n<id>`; primary inputs/outputs get `pi<k>`/`po<k>` ports
/// (plus `clk` when the netlist has state).
std::string to_verilog(const Netlist& nl, std::string_view module_name);

}  // namespace hlp::netlist
