#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace hlp::netlist {

/// Structural Verilog export (synthesizable subset: continuous assigns for
/// the logic, one clocked always block for the DFFs). Lets downstream users
/// push the library's netlists into standard EDA flows for cross-checking.
///
/// Net names are `n<id>`; primary inputs/outputs get `pi<k>`/`po<k>` ports
/// (plus `clk` when the netlist has state).
std::string to_verilog(const Netlist& nl, std::string_view module_name);

/// Parse error with the 1-based source line where it was detected. The
/// what() string is already formatted as `verilog:<line>: <message>`.
class VerilogError : public std::runtime_error {
 public:
  VerilogError(int line, const std::string& msg);
  int line() const { return line_; }

 private:
  int line_;
};

struct ParsedModule {
  std::string name;
  Netlist netlist;
  /// Input port that clocks the always block ("" if combinational).
  std::string clock;
};

/// Parses the structural subset emitted by to_verilog: one module, scalar
/// input/output/wire/reg declarations, continuous assigns over `~ & | ^ ?:`
/// and `1'b0/1'b1`, and at most one `always @(posedge <clk>)` block of
/// non-blocking reg updates. Input ports become Input gates (in port-list
/// order), regs become DFFs, and output ports are marked in port-list order,
/// so `parse_verilog(to_verilog(nl, m)).netlist` is simulation-equivalent
/// to `nl`.
///
/// Malformed input throws VerilogError: truncated files, duplicate module
/// definitions, undeclared or doubly-declared nets, nets with zero or
/// multiple drivers, assigns targeting regs or input ports, mixed infix
/// operators, and combinational cycles.
ParsedModule parse_verilog(std::string_view src);

}  // namespace hlp::netlist
