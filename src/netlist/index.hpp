#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp::netlist {

/// Precomputed structural views of one netlist, shared by every pass that
/// would otherwise rebuild them: the lint rules (src/lint/netlist_rules.cpp
/// used to walk fanouts three separate times per run) and the static
/// analyses (src/analysis). All arrays are indexed by GateId; fanout
/// adjacency is CSR (offset + edge arrays) instead of vector-of-vectors, so
/// building the index is two linear passes and zero per-gate allocations.
///
/// The index is a snapshot: it does not observe later structural edits to
/// the netlist. Rebuild after mutation.
struct NetlistIndex {
  /// Kahn topological order over combinational edges (sources — inputs,
  /// constants, DFF outputs — first). On a cyclic netlist this holds only
  /// the gates reachable without entering a cycle and `acyclic` is false;
  /// unlike Netlist::topo_order() it never throws, so diagnostics passes
  /// can keep running on malformed input.
  std::vector<GateId> topo;
  /// topo_rank[g] = position of g in `topo` (kNoRank for gates a cycle
  /// excluded from the order).
  std::vector<std::uint32_t> topo_rank;
  bool acyclic = false;

  /// CSR fanout adjacency over *all* fanin references (DFF D-pins
  /// included): consumers of g are fanout_edges[fanout_offset[g] ..
  /// fanout_offset[g+1]). Edge order is ascending consumer id.
  std::vector<std::uint32_t> fanout_offset;
  std::vector<GateId> fanout_edges;
  /// Combinational-only subset (logic consumers; a DFF D-pin is a
  /// sequential sink, not a combinational edge — the edge set topo uses).
  std::vector<std::uint32_t> comb_fanout_offset;
  std::vector<GateId> comb_fanout_edges;

  /// fanout_count[g] = total fanin references to g (== degree in
  /// fanout_edges).
  std::vector<std::uint32_t> fanout_count;

  /// Logic level (max #logic gates on any source-to-g path); 0 for
  /// sources. Valid only when `acyclic`.
  std::vector<int> level;

  /// Capacitive load per gate output under the model the index was built
  /// with, plus their sum (excludes the clock network).
  std::vector<double> load;
  double total_load = 0.0;

  static constexpr std::uint32_t kNoRank = 0xffffffffu;

  std::span<const GateId> fanouts(GateId g) const {
    return {fanout_edges.data() + fanout_offset[g],
            fanout_edges.data() + fanout_offset[g + 1]};
  }
  std::span<const GateId> comb_fanouts(GateId g) const {
    return {comb_fanout_edges.data() + comb_fanout_offset[g],
            comb_fanout_edges.data() + comb_fanout_offset[g + 1]};
  }
};

/// Build every view in O(V + E). Safe on malformed netlists as long as all
/// fanin references are in range (callers that admit dangling references —
/// the linter — must check NL-REF first).
NetlistIndex build_index(const Netlist& nl, const CapacitanceModel& cap = {});

}  // namespace hlp::netlist
