#include "netlist/verilog.hpp"

#include <sstream>

namespace hlp::netlist {

namespace {

std::string net(GateId g) { return "n" + std::to_string(g); }

const char* infix_op(GateKind k) {
  switch (k) {
    case GateKind::And:
    case GateKind::Nand: return " & ";
    case GateKind::Or:
    case GateKind::Nor: return " | ";
    case GateKind::Xor:
    case GateKind::Xnor: return " ^ ";
    default: return nullptr;
  }
}

bool inverted(GateKind k) {
  return k == GateKind::Nand || k == GateKind::Nor || k == GateKind::Xnor ||
         k == GateKind::Not;
}

}  // namespace

std::string to_verilog(const Netlist& nl, std::string_view module_name) {
  std::ostringstream os;
  const bool sequential = !nl.dffs().empty();

  os << "module " << module_name << "(";
  if (sequential) os << "clk, ";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "pi" << i << ", ";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    os << "po" << i;
    if (i + 1 < nl.outputs().size()) os << ", ";
  }
  os << ");\n";
  if (sequential) os << "  input clk;\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "  input pi" << i << ";\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    os << "  output po" << i << ";\n";

  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (nl.gate(g).kind == GateKind::Dff)
      os << "  reg " << net(g) << ";\n";
    else
      os << "  wire " << net(g) << ";\n";
  }

  // Input bindings.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "  assign " << net(nl.inputs()[i]) << " = pi" << i << ";\n";

  // Combinational logic.
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input:
      case GateKind::Dff:
        break;
      case GateKind::Const0:
        os << "  assign " << net(g) << " = 1'b0;\n";
        break;
      case GateKind::Const1:
        os << "  assign " << net(g) << " = 1'b1;\n";
        break;
      case GateKind::Buf:
        os << "  assign " << net(g) << " = " << net(gate.fanins[0])
           << ";\n";
        break;
      case GateKind::Not:
        os << "  assign " << net(g) << " = ~" << net(gate.fanins[0])
           << ";\n";
        break;
      case GateKind::Mux:
        os << "  assign " << net(g) << " = " << net(gate.fanins[0]) << " ? "
           << net(gate.fanins[2]) << " : " << net(gate.fanins[1]) << ";\n";
        break;
      default: {
        const char* op = infix_op(gate.kind);
        os << "  assign " << net(g) << " = ";
        if (inverted(gate.kind)) os << "~(";
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
          os << net(gate.fanins[i]);
          if (i + 1 < gate.fanins.size()) os << op;
        }
        if (inverted(gate.kind)) os << ")";
        os << ";\n";
        break;
      }
    }
  }

  if (sequential) {
    os << "  always @(posedge clk) begin\n";
    for (GateId d : nl.dffs()) {
      const Gate& g = nl.gate(d);
      if (!g.fanins.empty())
        os << "    " << net(d) << " <= " << net(g.fanins[0]) << ";\n";
    }
    os << "  end\n";
  }

  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    os << "  assign po" << i << " = " << net(nl.outputs()[i]) << ";\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace hlp::netlist
