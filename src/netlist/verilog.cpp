#include "netlist/verilog.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace hlp::netlist {

namespace {

std::string net(GateId g) {
  std::string s = "n";
  s += std::to_string(g);
  return s;
}

const char* infix_op(GateKind k) {
  switch (k) {
    case GateKind::And:
    case GateKind::Nand: return " & ";
    case GateKind::Or:
    case GateKind::Nor: return " | ";
    case GateKind::Xor:
    case GateKind::Xnor: return " ^ ";
    default: return nullptr;
  }
}

bool inverted(GateKind k) {
  return k == GateKind::Nand || k == GateKind::Nor || k == GateKind::Xnor ||
         k == GateKind::Not;
}

}  // namespace

std::string to_verilog(const Netlist& nl, std::string_view module_name) {
  std::ostringstream os;
  const bool sequential = !nl.dffs().empty();

  os << "module " << module_name << "(";
  if (sequential) os << "clk, ";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "pi" << i << ", ";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    os << "po" << i;
    if (i + 1 < nl.outputs().size()) os << ", ";
  }
  os << ");\n";
  if (sequential) os << "  input clk;\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "  input pi" << i << ";\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    os << "  output po" << i << ";\n";

  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (nl.gate(g).kind == GateKind::Dff)
      os << "  reg " << net(g) << ";\n";
    else
      os << "  wire " << net(g) << ";\n";
  }

  // Input bindings.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "  assign " << net(nl.inputs()[i]) << " = pi" << i << ";\n";

  // Combinational logic.
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input:
      case GateKind::Dff:
        break;
      case GateKind::Const0:
        os << "  assign " << net(g) << " = 1'b0;\n";
        break;
      case GateKind::Const1:
        os << "  assign " << net(g) << " = 1'b1;\n";
        break;
      case GateKind::Buf:
        os << "  assign " << net(g) << " = " << net(gate.fanins[0])
           << ";\n";
        break;
      case GateKind::Not:
        os << "  assign " << net(g) << " = ~" << net(gate.fanins[0])
           << ";\n";
        break;
      case GateKind::Mux:
        os << "  assign " << net(g) << " = " << net(gate.fanins[0]) << " ? "
           << net(gate.fanins[2]) << " : " << net(gate.fanins[1]) << ";\n";
        break;
      default: {
        const char* op = infix_op(gate.kind);
        os << "  assign " << net(g) << " = ";
        if (inverted(gate.kind)) os << "~(";
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
          os << net(gate.fanins[i]);
          if (i + 1 < gate.fanins.size()) os << op;
        }
        if (inverted(gate.kind)) os << ")";
        os << ";\n";
        break;
      }
    }
  }

  if (sequential) {
    os << "  always @(posedge clk) begin\n";
    for (GateId d : nl.dffs()) {
      const Gate& g = nl.gate(d);
      if (!g.fanins.empty())
        os << "    " << net(d) << " <= " << net(g.fanins[0]) << ";\n";
    }
    os << "  end\n";
  }

  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    os << "  assign po" << i << " = " << net(nl.outputs()[i]) << ";\n";
  os << "endmodule\n";
  return os.str();
}

// --- Parser ----------------------------------------------------------------

VerilogError::VerilogError(int line, const std::string& msg)
    : std::runtime_error("verilog:" + std::to_string(line) + ": " + msg),
      line_(line) {}

namespace {

struct Token {
  enum Kind { Ident, Literal, Punct, End } kind = End;
  std::string text;
  int line = 1;
};

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto alnum = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
  };
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && alnum(src[j])) ++j;
      toks.push_back({Token::Ident, std::string(src.substr(i, j - i)), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // The subset's only numeric literals are 1'b0 / 1'b1.
      std::size_t j = i;
      while (j < n && (alnum(src[j]) || src[j] == '\'')) ++j;
      toks.push_back(
          {Token::Literal, std::string(src.substr(i, j - i)), line});
      i = j;
    } else if (c == '<' && i + 1 < n && src[i + 1] == '=') {
      toks.push_back({Token::Punct, "<=", line});
      i += 2;
    } else {
      toks.push_back({Token::Punct, std::string(1, c), line});
      ++i;
    }
  }
  toks.push_back({Token::End, "", line});
  return toks;
}

/// One parsed RHS: a gate kind plus operand net names (fanin order).
struct Driver {
  GateKind kind = GateKind::Buf;
  std::vector<std::string> operands;
  int line = 1;
};

enum class NetClass { PortIn, PortOut, Wire, Reg };

struct NetDecl {
  NetClass cls = NetClass::Wire;
  int line = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  ParsedModule parse() {
    parse_module();
    return build();
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) {
    throw VerilogError(line, msg);
  }
  const Token& peek() const { return toks_[pos_]; }
  Token take() { return toks_[pos_++]; }
  bool at_ident(std::string_view kw) const {
    return peek().kind == Token::Ident && peek().text == kw;
  }
  void expect_punct(std::string_view p) {
    Token t = take();
    if (t.kind != Token::Punct || t.text != p) {
      if (t.kind == Token::End)
        fail(t.line, "unexpected end of file (expected '" + std::string(p) +
                         "')");
      fail(t.line, "expected '" + std::string(p) + "', got '" + t.text + "'");
    }
  }
  std::string expect_ident(const char* what) {
    Token t = take();
    if (t.kind != Token::Ident) {
      if (t.kind == Token::End)
        fail(t.line,
             std::string("unexpected end of file (expected ") + what + ")");
      fail(t.line, std::string("expected ") + what + ", got '" + t.text +
                       "'");
    }
    return t.text;
  }

  const NetDecl* decl_of(const std::string& name) const {
    auto it = decls_.find(name);
    return it == decls_.end() ? nullptr : &it->second;
  }

  void declare(const std::string& name, NetClass cls, int line) {
    auto [it, fresh] = decls_.emplace(name, NetDecl{cls, line});
    if (!fresh)
      fail(line, "duplicate declaration of '" + name +
                     "' (first declared on line " +
                     std::to_string(it->second.line) + ")");
    decl_order_.push_back(name);
    if (cls == NetClass::PortIn || cls == NetClass::PortOut) {
      bool listed = false;
      for (const std::string& p : port_list_) listed |= p == name;
      if (!listed)
        fail(line, "port '" + name + "' is not in the module port list");
    }
  }

  void parse_module() {
    if (!at_ident("module"))
      fail(peek().line, peek().kind == Token::End
                            ? "empty file: expected 'module'"
                            : "expected 'module'");
    take();
    mod_name_ = expect_ident("module name");
    expect_punct("(");
    if (!(peek().kind == Token::Punct && peek().text == ")"))
      while (true) {
        port_list_.push_back(expect_ident("port name"));
        if (peek().kind == Token::Punct && peek().text == ",") {
          take();
          continue;
        }
        break;
      }
    expect_punct(")");
    expect_punct(";");

    bool closed = false;
    while (!closed) {
      Token t = peek();
      if (t.kind == Token::End)
        fail(t.line, "unexpected end of file: missing 'endmodule'");
      if (t.kind != Token::Ident)
        fail(t.line, "expected a statement, got '" + t.text + "'");
      if (t.text == "input")
        parse_decl(NetClass::PortIn);
      else if (t.text == "output")
        parse_decl(NetClass::PortOut);
      else if (t.text == "wire")
        parse_decl(NetClass::Wire);
      else if (t.text == "reg")
        parse_decl(NetClass::Reg);
      else if (t.text == "assign")
        parse_assign();
      else if (t.text == "always")
        parse_always();
      else if (t.text == "endmodule") {
        take();
        closed = true;
      } else {
        fail(t.line, "unsupported statement '" + t.text + "'");
      }
    }
    if (peek().kind != Token::End) {
      if (at_ident("module"))
        fail(peek().line, "duplicate module definition ('" + mod_name_ +
                              "' already ended)");
      fail(peek().line, "trailing tokens after 'endmodule'");
    }
  }

  void parse_decl(NetClass cls) {
    take();  // keyword
    while (true) {
      Token t = toks_[pos_];
      declare(expect_ident("net name"), cls, t.line);
      if (peek().kind == Token::Punct && peek().text == ",") {
        take();
        continue;
      }
      break;
    }
    expect_punct(";");
  }

  GateKind nary_kind(const std::string& op, bool inverted, int line) {
    if (op == "&") return inverted ? GateKind::Nand : GateKind::And;
    if (op == "|") return inverted ? GateKind::Nor : GateKind::Or;
    if (op == "^") return inverted ? GateKind::Xnor : GateKind::Xor;
    fail(line, "unsupported operator '" + op + "'");
  }

  /// ident (op ident)* with a single consistent operator.
  void parse_operand_chain(Driver& d, bool inverted) {
    d.operands.push_back(expect_ident("operand"));
    std::string op;
    while (peek().kind == Token::Punct &&
           (peek().text == "&" || peek().text == "|" || peek().text == "^")) {
      Token t = take();
      if (op.empty())
        op = t.text;
      else if (op != t.text)
        fail(t.line, "mixed operators '" + op + "' and '" + t.text +
                         "' in one expression");
      d.operands.push_back(expect_ident("operand"));
    }
    d.kind = op.empty()
                 ? (inverted ? GateKind::Not : GateKind::Buf)
                 : nary_kind(op, inverted, d.line);
    if (op.empty() && d.operands.size() != 1)
      fail(d.line, "expected an operator");
  }

  void parse_assign() {
    Token kw = take();  // 'assign'
    std::string target = expect_ident("assignment target");
    expect_punct("=");
    Driver d;
    d.line = kw.line;
    Token t = peek();
    if (t.kind == Token::Literal) {
      take();
      if (t.text == "1'b0")
        d.kind = GateKind::Const0;
      else if (t.text == "1'b1")
        d.kind = GateKind::Const1;
      else
        fail(t.line, "unsupported literal '" + t.text + "' (only 1'b0/1'b1)");
    } else if (t.kind == Token::Punct && t.text == "~") {
      take();
      if (peek().kind == Token::Punct && peek().text == "(") {
        take();
        parse_operand_chain(d, /*inverted=*/true);
        if (d.kind == GateKind::Not)
          fail(t.line, "expected an operator inside '~(...)'");
        expect_punct(")");
      } else {
        d.operands.push_back(expect_ident("operand"));
        d.kind = GateKind::Not;
      }
    } else {
      parse_operand_chain(d, /*inverted=*/false);
      if (peek().kind == Token::Punct && peek().text == "?") {
        if (d.kind != GateKind::Buf)
          fail(peek().line, "ternary condition must be a single net");
        take();
        std::string d1 = expect_ident("operand");
        expect_punct(":");
        std::string d0 = expect_ident("operand");
        d.kind = GateKind::Mux;  // fanins: {sel, d0, d1}
        d.operands.push_back(std::move(d0));
        d.operands.push_back(std::move(d1));
      }
    }
    expect_punct(";");
    record_driver(target, std::move(d));
  }

  void record_driver(const std::string& target, Driver d) {
    const NetDecl* decl = decl_of(target);
    if (!decl) fail(d.line, "undeclared net '" + target + "'");
    if (decl->cls == NetClass::PortIn)
      fail(d.line, "cannot drive input port '" + target + "'");
    if (decl->cls == NetClass::Reg)
      fail(d.line, "reg '" + target +
                       "' driven by assign (use <= in an always block)");
    const int line = d.line;
    auto [it, fresh] = drivers_.emplace(target, std::move(d));
    if (!fresh)
      fail(line, "net '" + target + "' has multiple drivers (first on line " +
                     std::to_string(it->second.line) + ")");
  }

  void parse_always() {
    Token kw = take();  // 'always'
    if (!clock_.empty())
      fail(kw.line, "only one always block is supported");
    expect_punct("@");
    expect_punct("(");
    std::string edge = expect_ident("'posedge'");
    if (edge != "posedge") fail(kw.line, "expected 'posedge'");
    clock_ = expect_ident("clock net");
    const NetDecl* cd = decl_of(clock_);
    if (!cd || cd->cls != NetClass::PortIn)
      fail(kw.line, "clock '" + clock_ + "' is not an input port");
    expect_punct(")");
    std::string b = expect_ident("'begin'");
    if (b != "begin") fail(kw.line, "expected 'begin'");
    while (!at_ident("end")) {
      if (peek().kind == Token::End)
        fail(peek().line, "unexpected end of file inside always block");
      Token t = peek();
      std::string target = expect_ident("reg name");
      const NetDecl* decl = decl_of(target);
      if (!decl) fail(t.line, "undeclared net '" + target + "'");
      if (decl->cls != NetClass::Reg)
        fail(t.line, "non-blocking assignment to non-reg '" + target + "'");
      expect_punct("<=");
      std::string src = expect_ident("reg D input");
      expect_punct(";");
      auto [it, fresh] = reg_drivers_.emplace(target, std::pair{src, t.line});
      if (!fresh)
        fail(t.line, "reg '" + target + "' has multiple drivers (first on line " +
                         std::to_string(it->second.second) + ")");
    }
    take();  // 'end'
  }

  // --- Netlist construction ----------------------------------------------

  GateId resolve(const std::string& name, int line,
                 const std::map<std::string, GateId>& ids) const {
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const NetDecl* decl = decl_of(name);
    if (!decl) throw VerilogError(line, "undeclared net '" + name + "'");
    if (decl->cls == NetClass::PortOut)
      throw VerilogError(line, "cannot read output port '" + name + "'");
    if (name == clock_)
      throw VerilogError(line,
                         "clock '" + name + "' cannot be read as data");
    throw VerilogError(line, "net '" + name + "' has no driver");
  }

  ParsedModule build() {
    ParsedModule out;
    out.name = mod_name_;
    out.clock = clock_;
    Netlist& nl = out.netlist;
    std::map<std::string, GateId> ids;  // net/port name -> gate

    // Ports must all be declared.
    for (const std::string& p : port_list_)
      if (!decl_of(p))
        fail(1, "port '" + p + "' is never declared input or output");

    // Input gates in port-list order (the clock is consumed by the always
    // block, not modeled as a data input).
    for (const std::string& p : port_list_) {
      const NetDecl* d = decl_of(p);
      if (d->cls == NetClass::PortIn && p != clock_)
        ids[p] = nl.add_input(p);
    }
    // DFFs for regs (declaration order, so round trips renumber stably);
    // D inputs are wired after the combinational gates exist.
    for (const std::string& name : decl_order_) {
      const NetDecl& d = decls_.at(name);
      if (d.cls != NetClass::Reg) continue;
      if (!reg_drivers_.count(name))
        fail(d.line, "reg '" + name + "' has no driver");
      ids[name] = nl.add_dff(kNullGate, false, name);
    }

    // Wires: every declared wire needs exactly one driver.
    std::vector<std::pair<std::string, const Driver*>> pending;
    for (const std::string& name : decl_order_) {
      const NetDecl& d = decls_.at(name);
      if (d.cls != NetClass::Wire) continue;
      auto it = drivers_.find(name);
      if (it == drivers_.end())
        fail(d.line, "net '" + name + "' has no driver");
      pending.emplace_back(name, &it->second);
    }

    // Create combinational gates in dependency order (Kahn-style sweeps);
    // a sweep that makes no progress means the file has a true
    // combinational cycle through assigns.
    while (!pending.empty()) {
      std::size_t kept = 0;
      for (auto& [name, d] : pending) {
        bool ready = true;
        for (const std::string& op : d->operands)
          if (!ids.count(op)) {
            const NetDecl* od = decl_of(op);
            if (od && od->cls == NetClass::Wire && drivers_.count(op)) {
              ready = false;  // driven wire not built yet
              break;
            }
            resolve(op, d->line, ids);  // throws the precise error
          }
        if (!ready) {
          pending[kept++] = {name, d};
          continue;
        }
        if (d->kind == GateKind::Const0 || d->kind == GateKind::Const1) {
          ids[name] = nl.add_const(d->kind == GateKind::Const1);
        } else if (d->kind == GateKind::Buf && d->operands.size() == 1 &&
                   decl_of(d->operands[0])->cls == NetClass::PortIn) {
          // `assign nX = piK;` — the wire *is* the input binding.
          ids[name] = resolve(d->operands[0], d->line, ids);
        } else {
          std::vector<GateId> fi;
          fi.reserve(d->operands.size());
          for (const std::string& op : d->operands)
            fi.push_back(resolve(op, d->line, ids));
          ids[name] = nl.add_gate(d->kind, fi, name);
        }
      }
      if (kept == pending.size()) {
        const auto& [name, d] = pending.front();
        fail(d->line,
             "combinational cycle through net '" + name + "'");
      }
      pending.resize(kept);
    }

    // Wire the DFF D inputs.
    for (const auto& [name, src] : reg_drivers_)
      nl.set_dff_input(ids[name], resolve(src.first, src.second, ids));

    // Output ports in port-list order.
    for (const std::string& p : port_list_) {
      if (decl_of(p)->cls != NetClass::PortOut) continue;
      auto it = drivers_.find(p);
      if (it == drivers_.end())
        fail(decl_of(p)->line, "output port '" + p + "' is never driven");
      const Driver& d = it->second;
      if (d.kind != GateKind::Buf || d.operands.size() != 1)
        fail(d.line, "output port '" + p + "' must be a plain net alias");
      nl.mark_output(resolve(d.operands[0], d.line, ids), p);
    }
    return out;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::string mod_name_;
  std::vector<std::string> port_list_;
  std::map<std::string, NetDecl> decls_;
  std::vector<std::string> decl_order_;
  std::map<std::string, Driver> drivers_;
  std::map<std::string, std::pair<std::string, int>> reg_drivers_;
  std::string clock_;
};

}  // namespace

ParsedModule parse_verilog(std::string_view src) {
  return Parser(src).parse();
}

}  // namespace hlp::netlist
