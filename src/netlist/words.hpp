#pragma once

#include <cstdint>
#include <string_view>

#include "netlist/netlist.hpp"

namespace hlp::netlist {

/// Word-level construction helpers. All words are LSB-first.
///
/// Width contracts are enforced: helpers that combine two words throw
/// std::invalid_argument on a width mismatch (or an empty word where one is
/// required), naming the helper and both widths.

Word make_input_word(Netlist& nl, int width, std::string_view prefix);
Word make_const_word(Netlist& nl, int width, std::uint64_t value);

/// sum = a + b + cin (ripple-carry); if `cout` is non-null it receives the
/// carry out. a and b must have equal width.
Word ripple_adder(Netlist& nl, const Word& a, const Word& b,
                  GateId cin = kNullGate, GateId* cout = nullptr);

/// a - b (two's complement); width preserved, borrow discarded.
Word subtractor(Netlist& nl, const Word& a, const Word& b);

/// Carry-select adder: `block`-bit groups computed for both carry-in values
/// and selected by the incoming carry — shallower than ripple at the cost
/// of duplicated group logic (a classic power/delay tradeoff point for the
/// architecture-exploration experiments).
Word carry_select_adder(Netlist& nl, const Word& a, const Word& b, int block,
                        GateId* cout = nullptr);

/// Carry-save (Wallace-style) multiplier: partial products reduced with 3:2
/// compressors, final ripple add. Much shallower than the array multiplier
/// and with different glitch behavior.
Word csa_multiplier(Netlist& nl, const Word& a, const Word& b);

/// Unsigned array multiplier; result width = |a| + |b|.
Word array_multiplier(Netlist& nl, const Word& a, const Word& b);

/// Bitwise word operations (equal widths).
Word and_word(Netlist& nl, const Word& a, const Word& b);
Word or_word(Netlist& nl, const Word& a, const Word& b);
Word xor_word(Netlist& nl, const Word& a, const Word& b);
Word not_word(Netlist& nl, const Word& a);

/// 2:1 word multiplexer: sel ? b : a.
Word mux_word(Netlist& nl, GateId sel, const Word& a, const Word& b);

/// Registers the word through DFFs; returns the Q-side word.
Word register_word(Netlist& nl, const Word& d, std::string_view prefix = {});

/// XOR-tree parity of all word bits.
GateId parity(Netlist& nl, const Word& a);

/// a == b (AND of XNORs).
GateId equals(Netlist& nl, const Word& a, const Word& b);

/// Unsigned a < b.
GateId less_than(Netlist& nl, const Word& a, const Word& b);

/// Logical shift left by a constant (zero fill, width preserved) — free,
/// implemented by rewiring and constant nets.
Word shift_left_const(Netlist& nl, const Word& a, int amount);

/// Marks every bit of the word as a primary output.
void mark_output_word(Netlist& nl, const Word& w,
                      std::string_view prefix = {});

}  // namespace hlp::netlist
