#include "netlist/generators.hpp"

#include <algorithm>
#include <cassert>

#include "stats/rng.hpp"

namespace hlp::netlist {

Module adder_module(int n) {
  Module m;
  m.name = "add" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  GateId cout = kNullGate;
  Word sum = ripple_adder(m.netlist, a, b, kNullGate, &cout);
  sum.push_back(cout);
  mark_output_word(m.netlist, sum, "s");
  m.input_words = {a, b};
  m.output_words = {sum};
  return m;
}

Module multiplier_module(int n) {
  Module m;
  m.name = "mul" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  Word p = array_multiplier(m.netlist, a, b);
  mark_output_word(m.netlist, p, "p");
  m.input_words = {a, b};
  m.output_words = {p};
  return m;
}

Module alu_module(int n) {
  Module m;
  m.name = "alu" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  Word op = make_input_word(m.netlist, 2, "op");
  Word sum = ripple_adder(m.netlist, a, b);
  Word aw = and_word(m.netlist, a, b);
  Word ow = or_word(m.netlist, a, b);
  Word xw = xor_word(m.netlist, a, b);
  Word lo = mux_word(m.netlist, op[0], sum, aw);   // op=00 add, 01 and
  Word hi = mux_word(m.netlist, op[0], ow, xw);    // op=10 or, 11 xor
  Word out = mux_word(m.netlist, op[1], lo, hi);
  mark_output_word(m.netlist, out, "y");
  m.input_words = {a, b, op};
  m.output_words = {out};
  return m;
}

Module parity_module(int n) {
  Module m;
  m.name = "par" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  GateId p = parity(m.netlist, a);
  m.netlist.mark_output(p, "p");
  m.input_words = {a};
  m.output_words = {{p}};
  return m;
}

Module comparator_module(int n) {
  Module m;
  m.name = "cmp" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  GateId lt = less_than(m.netlist, a, b);
  GateId eq = equals(m.netlist, a, b);
  m.netlist.mark_output(lt, "lt");
  m.netlist.mark_output(eq, "eq");
  m.input_words = {a, b};
  m.output_words = {{lt, eq}};
  return m;
}

Module max_module(int n) {
  Module m;
  m.name = "max" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  GateId lt = less_than(m.netlist, a, b);  // a < b
  Word out = mux_word(m.netlist, lt, a, b);
  mark_output_word(m.netlist, out, "m");
  m.input_words = {a, b};
  m.output_words = {out};
  return m;
}

Module random_logic_module(int n_in, int n_gates, int n_out,
                           std::uint64_t seed) {
  assert(n_in >= 2 && n_gates >= 1);
  Module m;
  m.name = "rnd" + std::to_string(n_in) + "x" + std::to_string(n_gates);
  hlp::stats::Rng rng(seed);
  Word ins = make_input_word(m.netlist, n_in, "x");
  std::vector<GateId> pool(ins.begin(), ins.end());
  static constexpr GateKind kKinds[] = {GateKind::And,  GateKind::Or,
                                        GateKind::Nand, GateKind::Nor,
                                        GateKind::Xor,  GateKind::Not};
  for (int g = 0; g < n_gates; ++g) {
    auto kind = kKinds[rng.uniform_int(0, 5)];
    // Locality bias: prefer recently created nodes so depth grows with size.
    auto pick = [&]() -> GateId {
      auto sz = static_cast<std::int64_t>(pool.size());
      std::int64_t i = sz - 1 - std::min<std::int64_t>(
                                    rng.geometric(0.15), sz - 1);
      return pool[static_cast<std::size_t>(i)];
    };
    GateId out;
    if (kind == GateKind::Not) {
      out = m.netlist.add_unary(kind, pick());
    } else {
      GateId a = pick(), b = pick();
      if (a == b) b = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      out = m.netlist.add_binary(kind, a, b);
    }
    pool.push_back(out);
  }
  Word outs;
  int n_logic = static_cast<int>(pool.size()) - n_in;
  n_out = std::min(n_out, n_logic);
  for (int i = 0; i < n_out; ++i) {
    GateId g = pool[pool.size() - 1 - static_cast<std::size_t>(i)];
    m.netlist.mark_output(g, "y[" + std::to_string(i) + "]");
    outs.push_back(g);
  }
  m.input_words = {ins};
  m.output_words = {outs};
  return m;
}

Module c17_module() {
  Module m;
  m.name = "c17";
  Netlist& nl = m.netlist;
  GateId g1 = nl.add_input("1");
  GateId g2 = nl.add_input("2");
  GateId g3 = nl.add_input("3");
  GateId g6 = nl.add_input("6");
  GateId g7 = nl.add_input("7");
  GateId g10 = nl.add_binary(GateKind::Nand, g1, g3, "10");
  GateId g11 = nl.add_binary(GateKind::Nand, g3, g6, "11");
  GateId g16 = nl.add_binary(GateKind::Nand, g2, g11, "16");
  GateId g19 = nl.add_binary(GateKind::Nand, g11, g7, "19");
  GateId g22 = nl.add_binary(GateKind::Nand, g10, g16, "22");
  GateId g23 = nl.add_binary(GateKind::Nand, g16, g19, "23");
  nl.mark_output(g22, "22");
  nl.mark_output(g23, "23");
  m.input_words = {{g1, g2, g3, g6, g7}};
  m.output_words = {{g22, g23}};
  return m;
}

Module multiply_reduce_module(int n, int trees) {
  Module m;
  m.name = "mulred" + std::to_string(n);
  Word a = make_input_word(m.netlist, n, "a");
  Word b = make_input_word(m.netlist, n, "b");
  Word p = array_multiplier(m.netlist, a, b);
  Word outs;
  for (int t = 0; t < trees; ++t) {
    // Rotated two-thirds subset of the product bits per tree.
    Word subset;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (static_cast<int>((i + static_cast<std::size_t>(t)) % 3) != 0)
        subset.push_back(p[(i + static_cast<std::size_t>(t)) % p.size()]);
    GateId y = parity(m.netlist, subset);
    m.netlist.mark_output(y, "y[" + std::to_string(t) + "]");
    outs.push_back(y);
  }
  m.input_words = {a, b};
  m.output_words = {outs};
  return m;
}

Module mux_tree_module(int sel_bits) {
  Module m;
  m.name = "muxtree" + std::to_string(sel_bits);
  int n_data = 1 << sel_bits;
  Word sel = make_input_word(m.netlist, sel_bits, "s");
  Word data = make_input_word(m.netlist, n_data, "d");
  std::vector<GateId> level(data.begin(), data.end());
  for (int b = 0; b < sel_bits; ++b) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(m.netlist.add_mux(sel[static_cast<std::size_t>(b)],
                                       level[i], level[i + 1]));
    level = std::move(next);
  }
  m.netlist.mark_output(level[0], "y");
  m.input_words = {sel, data};
  m.output_words = {{level[0]}};
  return m;
}

}  // namespace hlp::netlist
