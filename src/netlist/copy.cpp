#include "netlist/copy.hpp"

#include <stdexcept>

namespace hlp::netlist {

std::vector<GateId> copy_combinational(const Netlist& src, Netlist& dst,
                                       std::span<const GateId> input_nets) {
  if (input_nets.size() != src.inputs().size())
    throw std::invalid_argument("copy_combinational: input count mismatch");
  if (!src.dffs().empty())
    throw std::invalid_argument("copy_combinational: source has DFFs");
  std::vector<GateId> xlat(src.gate_count(), kNullGate);
  for (std::size_t i = 0; i < input_nets.size(); ++i)
    xlat[src.inputs()[i]] = input_nets[i];
  for (GateId id : src.topo_order()) {
    const Gate& g = src.gate(id);
    switch (g.kind) {
      case GateKind::Input:
        break;  // mapped above
      case GateKind::Const0:
        xlat[id] = dst.add_const(false);
        break;
      case GateKind::Const1:
        xlat[id] = dst.add_const(true);
        break;
      case GateKind::Dff:
        throw std::logic_error("unreachable");
      default: {
        std::vector<GateId> fanins;
        fanins.reserve(g.fanins.size());
        for (GateId f : g.fanins) fanins.push_back(xlat[f]);
        xlat[id] = dst.add_gate(g.kind, fanins, g.name);
        break;
      }
    }
  }
  return xlat;
}

}  // namespace hlp::netlist
