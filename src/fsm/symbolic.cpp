#include "fsm/symbolic.hpp"

#include <cmath>
#include <new>
#include <string>
#include <unordered_map>

#include "bdd/netlist_bdd.hpp"

namespace hlp::fsm {

SymbolicFsm build_symbolic(bdd::Manager& mgr, const SynthesizedFsm& sf) {
  SymbolicFsm sym;
  sym.mgr = &mgr;
  sym.state_bits = sf.state_bits;

  // Gate BDDs over (input vars, present-state vars) in declaration order:
  // inputs get 0..n_in-1, DFF outputs n_in..n_in+n_s-1.
  auto bdds = bdd::build_bdds(mgr, sf.netlist);
  sym.in_vars = bdds.input_vars;
  sym.s_vars = bdds.state_vars;
  // Next-state variables in a block above both (the s' -> s rename then
  // shifts a contiguous block downward, which preserves relative order).
  std::uint32_t base =
      static_cast<std::uint32_t>(sym.in_vars.size() + sym.s_vars.size());
  for (int k = 0; k < sf.state_bits; ++k)
    sym.ns_vars.push_back(base + static_cast<std::uint32_t>(k));

  // T(x, s, s') = AND_k (s'_k XNOR delta_k(x, s)).
  sym.trans = bdd::kTrue;
  for (int k = 0; k < sf.state_bits; ++k) {
    netlist::GateId dff = sf.state[static_cast<std::size_t>(k)];
    netlist::GateId d = sf.netlist.gate(dff).fanins[0];
    bdd::NodeRef delta = bdds.fn[d];
    sym.trans = mgr.bdd_and(
        sym.trans,
        mgr.bdd_xnor(mgr.var(sym.ns_vars[static_cast<std::size_t>(k)]),
                     delta));
  }

  // Initial state predicate from the reset code.
  sym.init = bdd::kTrue;
  for (int k = 0; k < sf.state_bits; ++k) {
    bool bit = (sf.codes[0] >> k) & 1u;
    auto v = sym.s_vars[static_cast<std::size_t>(k)];
    sym.init = mgr.bdd_and(sym.init, bit ? mgr.var(v) : mgr.nvar(v));
  }
  return sym;
}

ReachResult symbolic_reachability(const SymbolicFsm& sym) {
  bdd::Manager& mgr = *sym.mgr;
  ReachResult res;

  std::vector<std::uint32_t> quantify = sym.in_vars;
  quantify.insert(quantify.end(), sym.s_vars.begin(), sym.s_vars.end());
  std::unordered_map<std::uint32_t, std::uint32_t> ns_to_s;
  for (std::size_t k = 0; k < sym.ns_vars.size(); ++k)
    ns_to_s[sym.ns_vars[k]] = sym.s_vars[k];

  bdd::NodeRef reached = sym.init;
  for (;;) {
    ++res.iterations;
    bdd::NodeRef img =
        mgr.exists_set(mgr.bdd_and(sym.trans, reached), quantify);
    img = mgr.rename(img, ns_to_s);
    bdd::NodeRef next = mgr.bdd_or(reached, img);
    if (next == reached) break;
    reached = next;
  }
  res.reached = reached;
  res.count = mgr.sat_fraction(reached) *
              std::pow(2.0, sym.state_bits);
  return res;
}

exec::Outcome<ReachResult> reachability_budgeted(bdd::Manager& mgr,
                                                 const SynthesizedFsm& sf,
                                                 const Stg& stg,
                                                 const exec::Budget& budget) {
  exec::Outcome<ReachResult> out;
  exec::Meter meter(budget);
  mgr.set_meter(&meter);
  try {
    SymbolicFsm sym = build_symbolic(mgr, sf);
    out.value = symbolic_reachability(sym);
    mgr.set_meter(nullptr);
    out.diag = meter.diag();
    return out;
  } catch (const exec::BudgetExceeded&) {
    mgr.set_meter(nullptr);
    out.diag = meter.diag();
  } catch (const std::bad_alloc&) {
    mgr.set_meter(nullptr);
    out.diag = meter.diag();
    out.diag.stop = exec::StopReason::AllocFailure;
  }

  // Degraded path: explicit BFS over the STG (benchmark-sized, so always
  // cheap). State 0 is the reset state — build_symbolic encodes sf.codes[0].
  out.diag.degraded = true;
  out.diag.degraded_from = "symbolic image iteration";
  out.diag.degraded_to = "explicit STG breadth-first search";

  ReachResult r;
  std::vector<char> seen(stg.num_states(), 0);
  std::vector<StateId> frontier{0};
  seen[0] = 1;
  std::size_t n_reached = 1;
  while (!frontier.empty()) {
    ++r.iterations;
    std::vector<StateId> next;
    for (StateId s : frontier)
      for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
        StateId t = stg.next(s, a);
        if (!seen[t]) {
          seen[t] = 1;
          ++n_reached;
          next.push_back(t);
        }
      }
    frontier = std::move(next);
  }
  r.count = static_cast<double>(n_reached);

  // Rebuild the characteristic function as a union of per-code cubes over
  // the present-state variables (inputs take vars 0..n_in-1, DFFs follow —
  // the same assignment build_bdds makes, so code_reachable keeps working).
  const auto n_in = static_cast<std::uint32_t>(sf.inputs.size());
  r.reached = bdd::kFalse;
  for (StateId s = 0; s < stg.num_states(); ++s) {
    if (!seen[s]) continue;
    bdd::NodeRef cube = bdd::kTrue;
    for (int k = 0; k < sf.state_bits; ++k) {
      std::uint32_t v = n_in + static_cast<std::uint32_t>(k);
      bool bit = (sf.codes[s] >> k) & 1u;
      cube = mgr.bdd_and(cube, bit ? mgr.var(v) : mgr.nvar(v));
    }
    r.reached = mgr.bdd_or(r.reached, cube);
  }
  out.value = r;
  out.diag.note = "reached " + std::to_string(n_reached) + " of " +
                  std::to_string(stg.num_states()) + " states explicitly";
  return out;
}

bool code_reachable(const SymbolicFsm& sym, bdd::NodeRef reached,
                    std::uint64_t code) {
  std::uint64_t assignment = 0;
  for (std::size_t k = 0; k < sym.s_vars.size(); ++k)
    if ((code >> k) & 1u)
      assignment |= std::uint64_t{1} << sym.s_vars[k];
  return sym.mgr->eval(reached, assignment);
}

}  // namespace hlp::fsm
