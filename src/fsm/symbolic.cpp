#include "fsm/symbolic.hpp"

#include <cmath>
#include <unordered_map>

#include "bdd/netlist_bdd.hpp"

namespace hlp::fsm {

SymbolicFsm build_symbolic(bdd::Manager& mgr, const SynthesizedFsm& sf) {
  SymbolicFsm sym;
  sym.mgr = &mgr;
  sym.state_bits = sf.state_bits;

  // Gate BDDs over (input vars, present-state vars) in declaration order:
  // inputs get 0..n_in-1, DFF outputs n_in..n_in+n_s-1.
  auto bdds = bdd::build_bdds(mgr, sf.netlist);
  sym.in_vars = bdds.input_vars;
  sym.s_vars = bdds.state_vars;
  // Next-state variables in a block above both (the s' -> s rename then
  // shifts a contiguous block downward, which preserves relative order).
  std::uint32_t base =
      static_cast<std::uint32_t>(sym.in_vars.size() + sym.s_vars.size());
  for (int k = 0; k < sf.state_bits; ++k)
    sym.ns_vars.push_back(base + static_cast<std::uint32_t>(k));

  // T(x, s, s') = AND_k (s'_k XNOR delta_k(x, s)).
  sym.trans = bdd::kTrue;
  for (int k = 0; k < sf.state_bits; ++k) {
    netlist::GateId dff = sf.state[static_cast<std::size_t>(k)];
    netlist::GateId d = sf.netlist.gate(dff).fanins[0];
    bdd::NodeRef delta = bdds.fn[d];
    sym.trans = mgr.bdd_and(
        sym.trans,
        mgr.bdd_xnor(mgr.var(sym.ns_vars[static_cast<std::size_t>(k)]),
                     delta));
  }

  // Initial state predicate from the reset code.
  sym.init = bdd::kTrue;
  for (int k = 0; k < sf.state_bits; ++k) {
    bool bit = (sf.codes[0] >> k) & 1u;
    auto v = sym.s_vars[static_cast<std::size_t>(k)];
    sym.init = mgr.bdd_and(sym.init, bit ? mgr.var(v) : mgr.nvar(v));
  }
  return sym;
}

ReachResult symbolic_reachability(const SymbolicFsm& sym) {
  bdd::Manager& mgr = *sym.mgr;
  ReachResult res;

  std::vector<std::uint32_t> quantify = sym.in_vars;
  quantify.insert(quantify.end(), sym.s_vars.begin(), sym.s_vars.end());
  std::unordered_map<std::uint32_t, std::uint32_t> ns_to_s;
  for (std::size_t k = 0; k < sym.ns_vars.size(); ++k)
    ns_to_s[sym.ns_vars[k]] = sym.s_vars[k];

  bdd::NodeRef reached = sym.init;
  for (;;) {
    ++res.iterations;
    bdd::NodeRef img =
        mgr.exists_set(mgr.bdd_and(sym.trans, reached), quantify);
    img = mgr.rename(img, ns_to_s);
    bdd::NodeRef next = mgr.bdd_or(reached, img);
    if (next == reached) break;
    reached = next;
  }
  res.reached = reached;
  res.count = mgr.sat_fraction(reached) *
              std::pow(2.0, sym.state_bits);
  return res;
}

bool code_reachable(const SymbolicFsm& sym, bdd::NodeRef reached,
                    std::uint64_t code) {
  std::uint64_t assignment = 0;
  for (std::size_t k = 0; k < sym.s_vars.size(); ++k)
    if ((code >> k) & 1u)
      assignment |= std::uint64_t{1} << sym.s_vars[k];
  return sym.mgr->eval(reached, assignment);
}

}  // namespace hlp::fsm
