#include "fsm/decompose.hpp"

#include <algorithm>
#include <cassert>

#include "fsm/encoding.hpp"
#include "fsm/synth.hpp"
#include "lint/lint.hpp"
#include "sim/power.hpp"
#include "sim/simulator.hpp"

namespace hlp::fsm {


double crossing_probability(const Stg& stg, const MarkovAnalysis& ma,
                            const Partition& part) {
  double p = 0.0;
  for (std::size_t i = 0; i < stg.num_states(); ++i)
    for (std::size_t j = 0; j < stg.num_states(); ++j)
      if (part[i] != part[j]) p += ma.edge_prob(static_cast<StateId>(i),
                                                static_cast<StateId>(j));
  return p;
}

Partition partition_min_crossing(const Stg& stg, const MarkovAnalysis& ma,
                                 double min_fraction) {
  const std::size_t n = stg.num_states();
  Partition part(n, 0);
  for (std::size_t s = n / 2; s < n; ++s) part[s] = 1;
  auto min_block = static_cast<std::size_t>(
      std::max(1.0, min_fraction * static_cast<double>(n)));

  double cur = crossing_probability(stg, ma, part);
  bool improved = true;
  int guard = 0;
  while (improved && guard++ < 64) {
    improved = false;
    // Single moves.
    for (std::size_t s = 0; s < n; ++s) {
      std::size_t size0 = static_cast<std::size_t>(
          std::count(part.begin(), part.end(), 0));
      std::size_t from_size = part[s] == 0 ? size0 : n - size0;
      if (from_size <= min_block) continue;
      part[s] ^= 1;
      double next = crossing_probability(stg, ma, part);
      if (next < cur - 1e-15) {
        cur = next;
        improved = true;
      } else {
        part[s] ^= 1;
      }
    }
    // Pair swaps (balance preserving).
    for (std::size_t a = 0; a < n && !improved; ++a)
      for (std::size_t b = a + 1; b < n; ++b) {
        if (part[a] == part[b]) continue;
        std::swap(part[a], part[b]);
        double next = crossing_probability(stg, ma, part);
        if (next < cur - 1e-15) {
          cur = next;
          improved = true;
          break;
        }
        std::swap(part[a], part[b]);
      }
  }
  return part;
}

std::vector<SubMachine> build_submachines(const Stg& stg,
                                          const Partition& part) {
  std::vector<SubMachine> subs;
  for (int b = 0; b < 2; ++b) {
    SubMachine sm;
    for (std::size_t s = 0; s < stg.num_states(); ++s)
      if (part[s] == b) sm.members.push_back(static_cast<StateId>(s));
    sm.stg = Stg(stg.n_inputs(), stg.n_outputs());
    std::vector<StateId> sub_id(stg.num_states(), 0);
    for (std::size_t i = 0; i < sm.members.size(); ++i) {
      sm.stg.add_state(stg.state_name(sm.members[i]));
      sub_id[sm.members[i]] = static_cast<StateId>(i);
    }
    sm.wait = sm.stg.add_state("wait");

    for (std::size_t i = 0; i < sm.members.size(); ++i) {
      StateId orig = sm.members[i];
      for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
        StateId nxt = stg.next(orig, a);
        std::uint64_t out = stg.output(orig, a);
        StateId to = (part[nxt] == b) ? sub_id[nxt] : sm.wait;
        sm.stg.set_transition(static_cast<StateId>(i), a, to, out);
      }
    }
    sm.stg.set_all_transitions(sm.wait, sm.wait, 0);
    subs.push_back(std::move(sm));
  }
  return subs;
}

DecompositionEval evaluate_decomposition(const Stg& stg,
                                         const Partition& part,
                                         std::size_t cycles,
                                         std::uint64_t seed,
                                         std::span<const double> input_probs,
                                         const sim::SimOptions& opts) {
  lint::enforce_fsm(stg, opts.lint, "evaluate_decomposition");
  DecompositionEval ev;
  sim::PowerParams pp;

  // Monolithic reference.
  auto ma = analyze_markov(stg, input_probs);
  auto codes = encode_states(stg, EncodingStyle::Binary, &ma);
  auto mono = synthesize_fsm(stg, codes,
                             encoding_bits(EncodingStyle::Binary,
                                           stg.num_states()));
  ev.mono_gates = mono.netlist.logic_gate_count();

  // Global reference run: states, inputs, outputs.
  stats::Rng rng(seed);
  std::vector<std::uint64_t> inputs, outputs;
  auto states =
      simulate_states(stg, cycles, rng, input_probs, 0, &inputs, &outputs);

  {
    // State recurrence is serial: scalar only (throws if Packed is forced;
    // Auto resolves to Scalar).
    (void)sim::resolve_engine(mono.netlist, opts.engine);
    sim::Simulator s(mono.netlist);
    sim::ActivityCollector col(mono.netlist);
    for (std::size_t c = 0; c < cycles; ++c) {
      s.set_word(mono.inputs, inputs[c]);
      s.eval();
      col.record(s);
      s.tick();
    }
    ev.mono_power =
        sim::compute_power(mono.netlist, col.activities(), pp)
            .power_with_clock();
  }

  // Submachines with selective clocking.
  auto subs = build_submachines(stg, part);
  std::vector<StateId> sub_id(stg.num_states(), 0);
  for (int b = 0; b < 2; ++b)
    for (std::size_t i = 0; i < subs[static_cast<std::size_t>(b)].members.size(); ++i)
      sub_id[subs[static_cast<std::size_t>(b)].members[i]] =
          static_cast<StateId>(i);

  std::size_t crossings = 0;
  double total_power = 0.0;
  int max_state_bits = 0;
  for (int b = 0; b < 2; ++b) {
    auto& sm = subs[static_cast<std::size_t>(b)];
    auto sma = analyze_markov(sm.stg);
    auto scodes = encode_states(sm.stg, EncodingStyle::Binary, &sma);
    int sbits = encoding_bits(EncodingStyle::Binary, sm.stg.num_states());
    auto sf = synthesize_fsm(sm.stg, scodes, sbits);
    max_state_bits = std::max(max_state_bits, sbits);

    // Wake interface: go strobe + target code muxed into the state DFFs.
    netlist::Netlist& nl = sf.netlist;
    netlist::GateId go = nl.add_input("go");
    netlist::Word tgt;
    for (int k = 0; k < sbits; ++k)
      tgt.push_back(nl.add_input("tgt[" + std::to_string(k) + "]"));
    for (int k = 0; k < sbits; ++k) {
      netlist::GateId dff = sf.state[static_cast<std::size_t>(k)];
      netlist::GateId d_old = nl.gate(dff).fanins[0];
      netlist::GateId d_new =
          nl.add_mux(go, d_old, tgt[static_cast<std::size_t>(k)]);
      nl.set_dff_input(dff, d_new);
    }
    ev.sub_gates[b] = nl.logic_gate_count();

    (void)sim::resolve_engine(nl, opts.engine);
    sim::Simulator s(nl);
    auto loads = nl.loads(pp.cap);
    std::vector<std::uint8_t> prev(nl.gate_count(), 0);

    // Park this machine in WAIT if its block is not active at reset, using
    // the wake interface in reverse (load the WAIT code directly).
    s.set_word(sf.inputs, 0);
    s.set_input(go, part[states[0]] != b);
    s.set_word(tgt, scodes[sm.wait]);
    s.eval();
    s.tick();
    if (part[states[0]] == b) {
      // Reload the true initial state (reset already points there).
      s.set_input(go, true);
      s.set_word(tgt, scodes[sub_id[states[0]]]);
      s.eval();
      s.tick();
    }
    s.set_input(go, false);
    s.set_word(tgt, 0);
    s.eval();
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      prev[g] = s.value(g) ? 1 : 0;

    double switched = 0.0;
    std::size_t clocked = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      bool active = part[states[c]] == b;
      bool wake = !active && c + 1 < cycles && part[states[c + 1]] == b;
      if (!active && !wake) continue;  // clock gated, inputs frozen

      if (active) {
        s.set_word(sf.inputs, inputs[c]);
        s.set_input(go, false);
        s.set_word(tgt, 0);
      } else {
        s.set_input(go, true);
        s.set_word(tgt, scodes[sub_id[states[c + 1]]]);
      }
      s.eval();
      ++clocked;
      for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
        std::uint8_t v = s.value(g) ? 1 : 0;
        if (v != prev[g]) switched += loads[g];
        prev[g] = v;
      }
      if (active) {
        if (s.word_value(sf.outputs) != outputs[c])
          ev.functionally_correct = false;
        if (c + 1 < cycles && part[states[c + 1]] != b) ++crossings;
      }
      s.tick();
    }
    double denom = static_cast<double>(cycles);
    ev.active_fraction[b] = static_cast<double>(clocked) / denom;
    double logic = 0.5 * pp.vdd * pp.vdd * pp.freq * switched / denom;
    double clock = pp.vdd * pp.vdd * pp.freq * pp.cap.dff_clock_cap *
                   static_cast<double>(nl.dffs().size()) *
                   ev.active_fraction[b];
    total_power += logic + clock;
  }
  // Inter-machine lines (go + target code) load both ends and switch at
  // each crossing.
  double comm_lines = 2.0 * (1.0 + max_state_bits);
  ev.crossing_rate =
      static_cast<double>(crossings) / static_cast<double>(cycles);
  total_power += 0.5 * pp.vdd * pp.vdd * pp.freq * ev.crossing_rate *
                 comm_lines * 2.0 * pp.cap.input_pin_cap;
  ev.decomposed_power = total_power;
  return ev;
}

}  // namespace hlp::fsm
