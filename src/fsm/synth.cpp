#include "fsm/synth.hpp"

#include <string>

namespace hlp::fsm {

using netlist::GateId;
using netlist::GateKind;
using netlist::Word;

SynthesizedFsm synthesize_fsm(const Stg& stg,
                              std::span<const std::uint64_t> codes,
                              int state_bits) {
  SynthesizedFsm out;
  netlist::Netlist& nl = out.netlist;
  out.codes.assign(codes.begin(), codes.end());
  out.state_bits = state_bits;

  for (int i = 0; i < stg.n_inputs(); ++i)
    out.inputs.push_back(nl.add_input("in[" + std::to_string(i) + "]"));
  for (int b = 0; b < state_bits; ++b) {
    bool init = (codes[0] >> b) & 1u;
    out.state.push_back(
        nl.add_dff(netlist::kNullGate, init, "st[" + std::to_string(b) + "]"));
  }

  // Shared literal inverters.
  Word n_in, n_st;
  for (GateId g : out.inputs) n_in.push_back(nl.add_unary(GateKind::Not, g));
  for (GateId g : out.state) n_st.push_back(nl.add_unary(GateKind::Not, g));

  // One product term per (state, symbol).
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  std::vector<std::vector<GateId>>& term = out.terms;
  term.assign(n, std::vector<GateId>(sym));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < sym; ++a) {
      std::vector<GateId> lits;
      lits.reserve(static_cast<std::size_t>(state_bits) + out.inputs.size());
      for (int b = 0; b < state_bits; ++b)
        lits.push_back(((codes[s] >> b) & 1u)
                           ? out.state[static_cast<std::size_t>(b)]
                           : n_st[static_cast<std::size_t>(b)]);
      for (std::size_t i = 0; i < out.inputs.size(); ++i)
        lits.push_back(((a >> i) & 1u) ? out.inputs[i] : n_in[i]);
      term[s][a] = nl.add_gate(GateKind::And, lits);
    }
  }

  // OR plane per next-state bit.
  for (int b = 0; b < state_bits; ++b) {
    std::vector<GateId> ors;
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t a = 0; a < sym; ++a)
        if ((codes[stg.next(static_cast<StateId>(s), a)] >> b) & 1u)
          ors.push_back(term[s][a]);
    GateId d;
    if (ors.empty())
      d = nl.add_const(false);
    else if (ors.size() == 1)
      d = nl.add_unary(GateKind::Buf, ors[0]);
    else
      d = nl.add_gate(GateKind::Or, ors);
    nl.set_dff_input(out.state[static_cast<std::size_t>(b)], d);
  }

  // OR plane per output bit.
  for (int o = 0; o < stg.n_outputs(); ++o) {
    std::vector<GateId> ors;
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t a = 0; a < sym; ++a)
        if ((stg.output(static_cast<StateId>(s), a) >> o) & 1u)
          ors.push_back(term[s][a]);
    GateId y;
    if (ors.empty())
      y = nl.add_const(false);
    else if (ors.size() == 1)
      y = nl.add_unary(GateKind::Buf, ors[0]);
    else
      y = nl.add_gate(GateKind::Or, ors);
    nl.mark_output(y, "out[" + std::to_string(o) + "]");
    out.outputs.push_back(y);
  }
  return out;
}

}  // namespace hlp::fsm
