#include "fsm/encoding.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "lint/lint.hpp"

namespace hlp::fsm {
namespace {

int bits_for(std::size_t n_states) {
  int b = 1;
  while ((std::size_t{1} << b) < n_states) ++b;
  return b;
}

/// Incremental cost of state s having code c, against current assignment.
double state_cost(const MarkovAnalysis& ma,
                  const std::vector<std::uint64_t>& codes, std::size_t s,
                  std::uint64_t c) {
  double cost = 0.0;
  const std::size_t n = codes.size();
  for (std::size_t t = 0; t < n; ++t) {
    if (t == s) continue;
    double p = ma.state_prob[s] * ma.cond[s][t] +
               ma.state_prob[t] * ma.cond[t][s];
    if (p > 0.0)
      cost += p * static_cast<double>(std::popcount(c ^ codes[t]));
  }
  return cost;
}

}  // namespace

int encoding_bits(EncodingStyle style, std::size_t n_states) {
  if (style == EncodingStyle::OneHot) return static_cast<int>(n_states);
  return bits_for(n_states);
}

std::vector<std::uint64_t> encode_states(const Stg& stg, EncodingStyle style,
                                         const MarkovAnalysis* ma,
                                         std::uint64_t seed,
                                         const lint::LintOptions& lint) {
  lint::enforce_fsm(stg, lint, "encode_states");
  const std::size_t n = stg.num_states();
  std::vector<std::uint64_t> codes(n);
  switch (style) {
    case EncodingStyle::Binary:
      for (std::size_t i = 0; i < n; ++i) codes[i] = i;
      break;
    case EncodingStyle::Gray:
      for (std::size_t i = 0; i < n; ++i) codes[i] = i ^ (i >> 1);
      break;
    case EncodingStyle::OneHot:
      for (std::size_t i = 0; i < n; ++i) codes[i] = std::uint64_t{1} << i;
      break;
    case EncodingStyle::Random: {
      stats::Rng rng(seed);
      std::size_t space = std::size_t{1} << bits_for(n);
      std::vector<std::uint64_t> pool(space);
      std::iota(pool.begin(), pool.end(), std::uint64_t{0});
      std::shuffle(pool.begin(), pool.end(), rng.engine());
      for (std::size_t i = 0; i < n; ++i) codes[i] = pool[i];
      break;
    }
    case EncodingStyle::LowPower: {
      if (!ma)
        throw std::invalid_argument(
            "encode_states: LowPower needs a MarkovAnalysis");
      for (std::size_t i = 0; i < n; ++i) codes[i] = i;
      codes = reencode_low_power(stg, *ma, std::move(codes), bits_for(n),
                                 seed);
      break;
    }
  }
  return codes;
}

std::vector<std::uint64_t> reencode_low_power(
    const Stg& stg, const MarkovAnalysis& ma,
    std::vector<std::uint64_t> codes, int bits, std::uint64_t seed,
    int iterations) {
  (void)stg;
  const std::size_t n = codes.size();
  if (n < 2) return codes;
  stats::Rng rng(seed);
  const std::size_t space = std::size_t{1} << bits;

  // Track which codes are free (for move proposals).
  std::vector<bool> used(space, false);
  for (std::uint64_t c : codes) used[static_cast<std::size_t>(c)] = true;
  std::vector<std::uint64_t> free_codes;
  for (std::size_t c = 0; c < space; ++c)
    if (!used[c]) free_codes.push_back(c);

  double cur = expected_code_switching(ma, codes);
  double temp = std::max(0.5, cur * 0.2);
  const double cooling =
      std::pow(1e-3 / temp, 1.0 / std::max(1, iterations));

  for (int it = 0; it < iterations; ++it, temp *= cooling) {
    bool do_move = !free_codes.empty() && rng.bit(0.3);
    if (do_move) {
      // Move one state to an unused code.
      auto s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto fi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(free_codes.size()) - 1));
      std::uint64_t nc = free_codes[fi];
      double delta = state_cost(ma, codes, s, nc) -
                     state_cost(ma, codes, s, codes[s]);
      if (delta <= 0.0 || rng.uniform_real() < std::exp(-delta / temp)) {
        std::swap(free_codes[fi], codes[s]);  // nc -> codes[s], old -> pool
        cur += delta;
      }
    } else {
      // Swap the codes of two states.
      auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (a == b) continue;
      double before = state_cost(ma, codes, a, codes[a]) +
                      state_cost(ma, codes, b, codes[b]);
      std::swap(codes[a], codes[b]);
      double after = state_cost(ma, codes, a, codes[a]) +
                     state_cost(ma, codes, b, codes[b]);
      double delta = after - before;
      if (delta <= 0.0 || rng.uniform_real() < std::exp(-delta / temp)) {
        cur += delta;
      } else {
        std::swap(codes[a], codes[b]);  // reject
      }
    }
  }
  return codes;
}

}  // namespace hlp::fsm
