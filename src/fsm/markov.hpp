#pragma once

#include <span>
#include <vector>

#include "fsm/stg.hpp"
#include "lint/diagnostics.hpp"
#include "stats/entropy.hpp"
#include "stats/rng.hpp"

namespace hlp::fsm {

/// Markov-chain analysis of an STG under an i.i.d. input-symbol distribution
/// (Hachtel et al. [96] compute the same quantities symbolically; explicit
/// power iteration suffices at benchmark scale).
struct MarkovAnalysis {
  /// Steady-state probability per state.
  std::vector<double> state_prob;
  /// Conditional transition matrix P[s][t] = P(next = t | cur = s).
  std::vector<std::vector<double>> cond;

  /// Steady-state edge probability p_ij = pi_i * P(i -> j) (the p_{i,j} of
  /// Tyagi's bound, Section II-B1).
  double edge_prob(StateId i, StateId j) const {
    return state_prob[i] * cond[i][j];
  }
  /// Number of edges (i,j) with nonzero steady-state probability — the "t"
  /// in Tyagi's sparseness condition.
  std::size_t nonzero_edges() const;
  /// Entropy (bits) of the joint edge distribution p_ij — Tyagi's h(p_ij).
  double edge_entropy() const;
};

/// `input_probs` has one probability per input symbol (must sum to ~1);
/// empty means uniform. Power iteration runs `iters` sweeps from uniform.
/// `lint` optionally runs the FS-* design rules first: strict mode rejects
/// non-ergodic chains (FS-ERGODIC), whose steady state puts zero mass on
/// every transient state.
MarkovAnalysis analyze_markov(const Stg& stg,
                              std::span<const double> input_probs = {},
                              int iters = 2000,
                              const lint::LintOptions& lint = {});

/// Expected state-register switching per cycle for an encoding:
/// sum_{i,j} p_ij * Hamming(code_i, code_j).
double expected_code_switching(const MarkovAnalysis& ma,
                               std::span<const std::uint64_t> codes);

/// Monte Carlo run of the STG: draws input symbols i.i.d. from
/// `input_probs` (uniform if empty) and returns the visited state sequence.
std::vector<StateId> simulate_states(const Stg& stg, std::size_t cycles,
                                     stats::Rng& rng,
                                     std::span<const double> input_probs = {},
                                     StateId start = 0,
                                     std::vector<std::uint64_t>* inputs = nullptr,
                                     std::vector<std::uint64_t>* outputs = nullptr);

}  // namespace hlp::fsm
