#pragma once

#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "fsm/stg.hpp"
#include "lint/diagnostics.hpp"
#include "stats/entropy.hpp"
#include "stats/rng.hpp"

namespace hlp::fsm {

/// Markov-chain analysis of an STG under an i.i.d. input-symbol distribution
/// (Hachtel et al. [96] compute the same quantities symbolically; explicit
/// power iteration suffices at benchmark scale).
struct MarkovAnalysis {
  /// Steady-state probability per state.
  std::vector<double> state_prob;
  /// Conditional transition matrix P[s][t] = P(next = t | cur = s).
  std::vector<std::vector<double>> cond;

  /// Steady-state edge probability p_ij = pi_i * P(i -> j) (the p_{i,j} of
  /// Tyagi's bound, Section II-B1).
  double edge_prob(StateId i, StateId j) const {
    return state_prob[i] * cond[i][j];
  }
  /// Number of edges (i,j) with nonzero steady-state probability — the "t"
  /// in Tyagi's sparseness condition.
  std::size_t nonzero_edges() const;
  /// Entropy (bits) of the joint edge distribution p_ij — Tyagi's h(p_ij).
  double edge_entropy() const;

  /// Power-iteration sweeps actually executed.
  int iterations = 0;
  /// Final L1 residual ||pi_k - pi_{k-1}||_1 (0 when 0 or 1 sweeps ran).
  double residual = 0.0;
  /// True iff the residual fell below the convergence tolerance. False
  /// means the chain had not mixed when iteration stopped (non-mixing
  /// chain, iteration cap, or budget trip) and `state_prob` is the best
  /// available iterate, not the steady state.
  bool converged = false;
};

/// `input_probs` has one probability per input symbol (must sum to ~1);
/// empty means uniform. Throws std::invalid_argument when `input_probs` is
/// non-empty and its size differs from the STG's symbol count, when an
/// entry is negative, or when the sum is not within 1e-6 of 1.
///
/// Power iteration runs until the L1 residual drops below 1e-12 or
/// `max_iters` sweeps elapse; convergence state is reported in the result
/// (`iterations`/`residual`/`converged`) instead of being silently assumed.
/// `lint` optionally runs the FS-* design rules first: strict mode rejects
/// non-ergodic chains (FS-ERGODIC), whose steady state puts zero mass on
/// every transient state.
MarkovAnalysis analyze_markov(const Stg& stg,
                              std::span<const double> input_probs = {},
                              int max_iters = 2000,
                              const lint::LintOptions& lint = {});

/// Budgeted power iteration: one meter step per sweep. On a budget trip the
/// outcome carries the best iterate so far with `converged == false` and
/// the stop reason in the diag — an honest partial result, never a hang.
exec::Outcome<MarkovAnalysis> analyze_markov_budgeted(
    const Stg& stg, const exec::Budget& budget,
    std::span<const double> input_probs = {}, int max_iters = 2000,
    double tol = 1e-12, const lint::LintOptions& lint = {});

/// Expected state-register switching per cycle for an encoding:
/// sum_{i,j} p_ij * Hamming(code_i, code_j).
double expected_code_switching(const MarkovAnalysis& ma,
                               std::span<const std::uint64_t> codes);

/// Monte Carlo run of the STG: draws input symbols i.i.d. from
/// `input_probs` (uniform if empty) and returns the visited state sequence.
std::vector<StateId> simulate_states(const Stg& stg, std::size_t cycles,
                                     stats::Rng& rng,
                                     std::span<const double> input_probs = {},
                                     StateId start = 0,
                                     std::vector<std::uint64_t>* inputs = nullptr,
                                     std::vector<std::uint64_t>* outputs = nullptr);

}  // namespace hlp::fsm
