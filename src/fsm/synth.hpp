#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fsm/stg.hpp"
#include "netlist/netlist.hpp"

namespace hlp::fsm {

/// Result of synthesizing an STG into a gate-level netlist.
struct SynthesizedFsm {
  netlist::Netlist netlist;
  netlist::Word inputs;      ///< primary-input nets (one per FSM input bit)
  netlist::Word state;       ///< DFF outputs (one per state-code bit)
  netlist::Word outputs;     ///< output nets (marked as primary outputs)
  std::vector<std::uint64_t> codes;  ///< the state encoding used
  int state_bits = 0;
  /// Product-term gate per (state, input symbol) — exposed so downstream
  /// passes (e.g. gated-clock synthesis) can reuse the AND plane.
  std::vector<std::vector<netlist::GateId>> terms;
};

/// Two-level (PLA-style) synthesis: one product term per (state, symbol)
/// pair over full state/input literals, OR planes per next-state/output bit.
/// This is the "direct translation of the STG into gates" the paper's
/// Section III-H starts from; different encodings change both the logic and
/// the state-register activity, which is exactly what the encoding
/// experiments measure.
SynthesizedFsm synthesize_fsm(const Stg& stg,
                              std::span<const std::uint64_t> codes,
                              int state_bits);

}  // namespace hlp::fsm
