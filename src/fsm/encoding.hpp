#pragma once

#include <cstdint>
#include <vector>

#include "fsm/markov.hpp"
#include "fsm/stg.hpp"
#include "lint/diagnostics.hpp"
#include "stats/rng.hpp"

namespace hlp::fsm {

/// State-encoding styles compared by the Section III-H experiments.
enum class EncodingStyle {
  Binary,    ///< code_i = i
  Gray,      ///< code_i = i ^ (i >> 1)
  OneHot,    ///< code_i = 1 << i
  Random,    ///< random permutation of {0..2^b-1}
  LowPower,  ///< annealed hypercube embedding minimizing weighted Hamming
};

/// Number of state bits used by a style for `n_states` states.
int encoding_bits(EncodingStyle style, std::size_t n_states);

/// Assign a code to every state. `ma` is required for LowPower (the edge
/// probabilities are the optimization weights, following [90]-[95]);
/// `seed` drives Random and the annealer. `lint` optionally runs the FS-*
/// design rules first (strict mode rejects ill-formed / non-ergodic STGs,
/// whose edge weights would misdirect the optimizer).
std::vector<std::uint64_t> encode_states(
    const Stg& stg, EncodingStyle style, const MarkovAnalysis* ma = nullptr,
    std::uint64_t seed = 1, const lint::LintOptions& lint = {});

/// Low-power re-encoding (Section III-H "reencoding"): starts from the given
/// codes and anneals pairwise swaps (plus moves to unused codes) to minimize
/// sum p_ij * Hamming(c_i, c_j). Returns the improved assignment.
std::vector<std::uint64_t> reencode_low_power(
    const Stg& stg, const MarkovAnalysis& ma,
    std::vector<std::uint64_t> initial_codes, int bits, std::uint64_t seed,
    int iterations = 20000);

}  // namespace hlp::fsm
