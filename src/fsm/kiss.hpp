#pragma once

#include <string>
#include <string_view>

#include "fsm/stg.hpp"

namespace hlp::fsm {

/// KISS2 import/export — the interchange format of the MCNC FSM benchmarks
/// the Section III-H literature evaluates on.
///
/// Input fields may contain '-' (don't care, expanded over all matching
/// symbols); output '-' is read as 0. The reset state is the `.r`
/// directive's state (or the first present-state seen) and becomes state
/// id 0. Unspecified (state, symbol) pairs are completed as self-loops
/// with all-zero outputs, the usual completion for power analysis.
/// Character j (from the left) of an input/output field is bit j.

/// Parse a KISS2 description. Throws std::invalid_argument on malformed
/// input.
Stg parse_kiss2(std::string_view text);

/// Serialize an STG to KISS2 (one line per (state, symbol) pair; no
/// don't-care recompression).
std::string to_kiss2(const Stg& stg);

}  // namespace hlp::fsm
