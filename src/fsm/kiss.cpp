#include "fsm/kiss.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hlp::fsm {

namespace {

struct RawTransition {
  std::string in, from, to, out;
};

}  // namespace

Stg parse_kiss2(std::string_view text) {
  int n_in = -1, n_out = -1;
  std::string reset;
  std::vector<RawTransition> raw;

  std::istringstream ss{std::string(text)};
  std::string line;
  while (std::getline(ss, line)) {
    // Strip comments and whitespace.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == ".i") {
      ls >> n_in;
    } else if (tok == ".o") {
      ls >> n_out;
    } else if (tok == ".s" || tok == ".p") {
      int ignored;
      ls >> ignored;
    } else if (tok == ".r") {
      ls >> reset;
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      continue;  // unknown directive
    } else {
      RawTransition t;
      t.in = tok;
      if (!(ls >> t.from >> t.to >> t.out))
        throw std::invalid_argument("kiss2: malformed transition: " + line);
      raw.push_back(std::move(t));
    }
  }
  if (n_in < 0 || n_out < 0)
    throw std::invalid_argument("kiss2: missing .i/.o directives");
  if (n_in > 16)
    throw std::invalid_argument("kiss2: too many inputs for dense STG");
  if (n_out > 64)
    throw std::invalid_argument("kiss2: more than 64 outputs per word");

  // State table, reset first.
  std::map<std::string, StateId> id;
  std::vector<std::string> names;
  auto intern = [&](const std::string& name) {
    auto it = id.find(name);
    if (it != id.end()) return it->second;
    auto sid = static_cast<StateId>(names.size());
    id.emplace(name, sid);
    names.push_back(name);
    return sid;
  };
  if (!reset.empty()) intern(reset);
  for (const auto& t : raw) {
    intern(t.from);
    intern(t.to);
  }
  if (names.empty()) throw std::invalid_argument("kiss2: no transitions");

  Stg stg(n_in, n_out);
  for (const auto& name : names) stg.add_state(name);

  for (const auto& t : raw) {
    if (static_cast<int>(t.in.size()) != n_in)
      throw std::invalid_argument("kiss2: input width mismatch: " + t.in);
    if (static_cast<int>(t.out.size()) != n_out)
      throw std::invalid_argument("kiss2: output width mismatch: " + t.out);
    std::uint64_t out = 0;
    for (int b = 0; b < n_out; ++b)
      if (t.out[static_cast<std::size_t>(b)] == '1')
        out |= std::uint64_t{1} << b;
    // Expand input don't-cares.
    std::vector<int> free_bits;
    std::uint64_t base = 0;
    for (int b = 0; b < n_in; ++b) {
      char ch = t.in[static_cast<std::size_t>(b)];
      if (ch == '1')
        base |= std::uint64_t{1} << b;
      else if (ch == '-')
        free_bits.push_back(b);
      else if (ch != '0')
        throw std::invalid_argument("kiss2: bad input char in " + t.in);
    }
    std::uint64_t combos = std::uint64_t{1} << free_bits.size();
    for (std::uint64_t c = 0; c < combos; ++c) {
      std::uint64_t sym = base;
      for (std::size_t k = 0; k < free_bits.size(); ++k)
        if ((c >> k) & 1u)
          sym |= std::uint64_t{1} << free_bits[k];
      stg.set_transition(id[t.from], sym, id[t.to], out);
    }
  }
  return stg;
}

std::string to_kiss2(const Stg& stg) {
  std::ostringstream os;
  os << ".i " << stg.n_inputs() << "\n";
  os << ".o " << stg.n_outputs() << "\n";
  os << ".s " << stg.num_states() << "\n";
  os << ".p " << stg.num_states() * stg.n_symbols() << "\n";
  os << ".r " << stg.state_name(0) << "\n";
  for (std::size_t s = 0; s < stg.num_states(); ++s) {
    for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
      for (int b = 0; b < stg.n_inputs(); ++b)
        os << (((a >> b) & 1u) ? '1' : '0');
      os << ' ' << stg.state_name(static_cast<StateId>(s)) << ' '
         << stg.state_name(stg.next(static_cast<StateId>(s), a)) << ' ';
      std::uint64_t out = stg.output(static_cast<StateId>(s), a);
      for (int b = 0; b < stg.n_outputs(); ++b)
        os << (((out >> b) & 1u) ? '1' : '0');
      os << "\n";
    }
  }
  os << ".e\n";
  return os.str();
}

}  // namespace hlp::fsm
