#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "exec/exec.hpp"
#include "fsm/synth.hpp"

namespace hlp::fsm {

/// Section III-H: "symbolic techniques based on binary decision diagrams
/// [84] are often applied to the manipulation of large graphs ... To be
/// effective, symbolic algorithms must avoid explicit enumeration of the
/// elements of the sets." This module builds the transition relation of a
/// synthesized machine as a BDD and computes reachability by image
/// iteration — the machinery behind the re-encoding and Markov analyses of
/// [95],[96].

/// Symbolic view of a synthesized FSM. Variable order: inputs, then the
/// present-state block, then the next-state block — shifting the contiguous
/// s' block down onto s preserves relative order, so the rename after image
/// computation is safe.
struct SymbolicFsm {
  bdd::Manager* mgr = nullptr;
  bdd::NodeRef trans = bdd::kFalse;  ///< T(x, s, s')
  bdd::NodeRef init = bdd::kFalse;   ///< characteristic fn of the reset state
  std::vector<std::uint32_t> in_vars, s_vars, ns_vars;
  int state_bits = 0;
};

/// Build T and the initial-state predicate from a synthesized machine.
SymbolicFsm build_symbolic(bdd::Manager& mgr, const SynthesizedFsm& sf);

/// Least fixed point of R = init ∨ image(R): the reachable state set.
/// Returns its characteristic function over the present-state variables and
/// reports the iteration count (sequential depth + 1).
struct ReachResult {
  bdd::NodeRef reached = bdd::kFalse;
  int iterations = 0;
  /// Number of reachable state codes (2^state_bits * sat fraction).
  double count = 0.0;
};
ReachResult symbolic_reachability(const SymbolicFsm& sym);

/// Check whether a specific state code is in a reachable set.
bool code_reachable(const SymbolicFsm& sym, bdd::NodeRef reached,
                    std::uint64_t code);

/// Budgeted reachability with graceful degradation. The symbolic path runs
/// with `budget` metered on `mgr` (one step per ITE-cache miss, node cap
/// against the unique table). If the BDD blows the budget — or allocation
/// fails — the analysis falls back to an explicit breadth-first search of
/// the STG and rebuilds `reached` as the union of per-code cubes over the
/// present-state variables, so callers can keep using it with
/// `code_reachable`. On the degraded path `iterations` is the BFS depth and
/// `count` is the exact number of reachable codes. The manager is left with
/// no meter attached and stays usable either way.
exec::Outcome<ReachResult> reachability_budgeted(bdd::Manager& mgr,
                                                 const SynthesizedFsm& sf,
                                                 const Stg& stg,
                                                 const exec::Budget& budget);

}  // namespace hlp::fsm
