#include "fsm/stg.hpp"

#include <algorithm>

#include "stats/rng.hpp"
#include "util/hash.hpp"

namespace hlp::fsm {

StateId Stg::add_state(std::string_view name) {
  StateId id = static_cast<StateId>(next_.size());
  next_.emplace_back(n_symbols(), id);  // default: self-loop
  out_.emplace_back(n_symbols(), 0);
  std::string n(name);
  if (n.empty()) {
    n += 's';
    n += std::to_string(id);
  }
  names_.push_back(std::move(n));
  return id;
}

void Stg::set_transition(StateId from, std::uint64_t in, StateId to,
                         std::uint64_t out) {
  next_[from][static_cast<std::size_t>(in)] = to;
  out_[from][static_cast<std::size_t>(in)] = out;
}

void Stg::set_all_transitions(StateId from, StateId to, std::uint64_t out) {
  for (std::size_t in = 0; in < n_symbols(); ++in)
    set_transition(from, in, to, out);
}

bool Stg::complete() const {
  for (const auto& row : next_)
    for (StateId t : row)
      if (t >= num_states()) return false;
  return true;
}

Stg counter_fsm(int bits) {
  Stg stg(1, bits);
  std::size_t n = std::size_t{1} << bits;
  for (std::size_t s = 0; s < n; ++s) stg.add_state();
  for (std::size_t s = 0; s < n; ++s) {
    stg.set_transition(static_cast<StateId>(s), 0, static_cast<StateId>(s),
                       s);  // hold
    stg.set_transition(static_cast<StateId>(s), 1,
                       static_cast<StateId>((s + 1) % n), s);  // count
  }
  return stg;
}

Stg sequence_detector_fsm(std::uint64_t pattern, int len) {
  // State = number of matched prefix bits (0..len); match state emits 1 and
  // restarts via the standard KMP failure links.
  Stg stg(1, 1);
  for (int s = 0; s <= len; ++s) stg.add_state();
  // KMP failure function over the pattern bits.
  std::vector<int> fail(static_cast<std::size_t>(len) + 1, 0);
  for (int i = 1; i < len; ++i) {
    int k = fail[static_cast<std::size_t>(i)];
    bool bit = (pattern >> i) & 1u;
    while (k > 0 && (((pattern >> k) & 1u) != (bit ? 1u : 0u)))
      k = fail[static_cast<std::size_t>(k)];
    if (((pattern >> k) & 1u) == (bit ? 1u : 0u)) ++k;
    fail[static_cast<std::size_t>(i) + 1] = k;
  }
  auto advance = [&](int s, bool bit) {
    while (true) {
      if (s < len && (((pattern >> s) & 1u) == (bit ? 1u : 0u))) return s + 1;
      if (s == 0) return 0;
      s = fail[static_cast<std::size_t>(s)];
    }
  };
  for (int s = 0; s <= len; ++s) {
    int base = (s == len) ? fail[static_cast<std::size_t>(len)] : s;
    for (std::uint64_t in = 0; in <= 1; ++in) {
      int ns = advance(base, in & 1u);
      stg.set_transition(static_cast<StateId>(s), in,
                         static_cast<StateId>(ns), ns == len ? 1u : 0u);
    }
  }
  return stg;
}

Stg protocol_fsm(int burst_len) {
  // Inputs: bit0 = req, bit1 = data. Outputs: bit0 = busy, bits1.. = phase.
  Stg stg(2, 2);
  StateId idle = stg.add_state("idle");
  std::vector<StateId> burst;
  for (int i = 0; i < burst_len; ++i) {
    std::string bn(1, 'b');
    bn += std::to_string(i);
    burst.push_back(stg.add_state(bn));
  }
  // Idle: stay unless req.
  for (std::uint64_t in = 0; in < 4; ++in)
    stg.set_transition(idle, in, (in & 1u) ? burst[0] : idle, 0);
  for (int i = 0; i < burst_len; ++i) {
    StateId nxt = (i + 1 < burst_len) ? burst[static_cast<std::size_t>(i) + 1]
                                      : idle;
    for (std::uint64_t in = 0; in < 4; ++in) {
      std::uint64_t out = 1u | (((in >> 1) & 1u) << 1);  // busy | data echo
      stg.set_transition(burst[static_cast<std::size_t>(i)], in, nxt, out);
    }
  }
  return stg;
}

Stg random_fsm(std::size_t n_states, int n_inputs, int n_outputs,
               std::uint64_t seed) {
  stats::Rng rng(seed);
  Stg stg(n_inputs, n_outputs);
  for (std::size_t s = 0; s < n_states; ++s) stg.add_state();
  const std::uint64_t out_mask =
      n_outputs >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << n_outputs) - 1);
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t in = 0; in < stg.n_symbols(); ++in) {
      // Zipf-ish skew: prefer low-numbered states so steady-state
      // probabilities are nonuniform (realistic controllers have hot states).
      double u = rng.uniform_real();
      auto t = static_cast<std::size_t>(
          static_cast<double>(n_states) * u * u);
      t = std::min(t, n_states - 1);
      stg.set_transition(static_cast<StateId>(s), in,
                         static_cast<StateId>(t),
                         rng.uniform_bits(std::min(n_outputs, 63)) & out_mask);
    }
    // Guarantee reachability chain: s -> (s+1) mod n on symbol 0.
    stg.set_transition(static_cast<StateId>(s), 0,
                       static_cast<StateId>((s + 1) % n_states),
                       rng.uniform_bits(std::min(n_outputs, 63)) & out_mask);
  }
  return stg;
}

std::uint64_t structural_hash(const Stg& stg) {
  util::Fnv1a64 h;
  h.u32(static_cast<std::uint32_t>(stg.n_inputs()));
  h.u32(static_cast<std::uint32_t>(stg.n_outputs()));
  h.u64(stg.num_states());
  for (StateId s = 0; s < stg.num_states(); ++s)
    for (std::uint64_t in = 0; in < stg.n_symbols(); ++in) {
      h.u32(stg.next(s, in));
      h.u64(stg.output(s, in));
    }
  return h.digest();
}

}  // namespace hlp::fsm
