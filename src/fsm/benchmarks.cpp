#include "fsm/benchmarks.hpp"

#include <stdexcept>

#include "fsm/kiss.hpp"

namespace hlp::fsm {

namespace {

// Inputs: bit0 = car waiting on side road, bit1 = timer expired.
// Outputs: bit0 = main green, bit1 = side green (both low = yellow phase).
constexpr const char* kTrafficKiss = R"(
.i 2
.o 2
.r mgreen
-0 mgreen mgreen 01
01 mgreen mgreen 01
11 mgreen myel   00
-- myel   sgreen 10
-1 sgreen myel2  00
0- sgreen myel2  00
11 sgreen sgreen 10
-- myel2  mgreen 01
.e
)";

// Serial receiver. Inputs: bit0 = rx line, bit1 = baud tick.
// Outputs: bit0 = busy, bit1 = byte-ready strobe.
constexpr const char* kUartKiss = R"(
.i 2
.o 2
.r idle
-0 idle  idle  00
10 idle  idle  00
11 idle  idle  00
01 idle  start 01
-0 start start 01
-1 start d0    01
-0 d0 d0 01
-1 d0 d1 01
-0 d1 d1 01
-1 d1 d2 01
-0 d2 d2 01
-1 d2 d3 01
-0 d3 d3 01
-1 d3 d4 01
-0 d4 d4 01
-1 d4 d5 01
-0 d5 d5 01
-1 d5 d6 01
-0 d6 d6 01
-1 d6 d7 01
-0 d7 d7 01
-1 d7 stop 01
-0 stop stop 01
-1 stop idle 11
.e
)";

// DMA channel. Inputs: bit0 = request, bit1 = bus grant / ack.
// Outputs: bit0 = bus request, bit1 = transfer active.
constexpr const char* kDmaKiss = R"(
.i 2
.o 2
.r idle
0- idle idle 00
1- idle req  10
-0 req  req  10
-1 req  b0   01
-0 b0 err 00
-1 b0 b1 01
-0 b1 err 00
-1 b1 b2 01
-0 b2 err 00
-1 b2 b3 01
-- b3 done 01
-- done idle 00
-- err  req  10
.e
)";

// Elevator, two floors. Inputs: bit0 = call other floor, bit1 = door timer.
// Outputs: bit0 = motor, bit1 = door open.
constexpr const char* kElevatorKiss = R"(
.i 2
.o 2
.r f1
0- f1 f1 01
1- f1 c1 00
-0 c1 c1 00
-1 c1 up 10
-- up f2 01
0- f2 f2 01
1- f2 c2 00
-0 c2 c2 00
-1 c2 dn 10
-- dn f1 01
.e
)";

}  // namespace

Stg traffic_light_fsm() { return parse_kiss2(kTrafficKiss); }
Stg uart_rx_fsm() { return parse_kiss2(kUartKiss); }
Stg dma_fsm() { return parse_kiss2(kDmaKiss); }
Stg elevator_fsm() { return parse_kiss2(kElevatorKiss); }

std::vector<NamedFsm> controller_benchmarks() {
  std::vector<NamedFsm> out;
  out.push_back({"traffic", traffic_light_fsm()});
  out.push_back({"uart-rx", uart_rx_fsm()});
  out.push_back({"dma", dma_fsm()});
  out.push_back({"elevator", elevator_fsm()});
  return out;
}

Stg controller_by_name(const std::string& name) {
  if (name == "traffic") return traffic_light_fsm();
  if (name == "uart-rx") return uart_rx_fsm();
  if (name == "dma") return dma_fsm();
  if (name == "elevator") return elevator_fsm();
  throw std::invalid_argument(
      "unknown controller benchmark '" + name +
      "' (known: traffic, uart-rx, dma, elevator)");
}

}  // namespace hlp::fsm
