#pragma once

#include <string>
#include <vector>

#include "fsm/stg.hpp"

namespace hlp::fsm {

/// Curated controller benchmarks, distributed as KISS2 text (the MCNC
/// interchange format) and parsed at construction. These are original
/// machines written for this library in the style of the classic benchmark
/// suites: reactive controllers with hot idle states, bursty handshakes,
/// and mode registers — the structures the Section III-H/III-I experiments
/// care about.
struct NamedFsm {
  std::string name;
  Stg stg;
};

/// Traffic-light controller: car sensor + timer inputs, light outputs.
Stg traffic_light_fsm();

/// UART receiver: idle / start-bit check / 8 data bits / stop-bit check.
Stg uart_rx_fsm();

/// DMA channel: request/grant handshake, 4-beat burst, error recovery.
Stg dma_fsm();

/// Two-floor elevator controller with door timer.
Stg elevator_fsm();

/// All of the above.
std::vector<NamedFsm> controller_benchmarks();

/// Lookup by benchmark name ("traffic", "uart-rx", "dma", "elevator") —
/// the design handle used by hlp::jobs campaign specs, where a Markov job
/// names its STG rather than constructing it. Throws std::invalid_argument
/// listing the known names when `name` is not a benchmark.
Stg controller_by_name(const std::string& name);

}  // namespace hlp::fsm
