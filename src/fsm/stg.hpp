#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hlp::fsm {

using StateId = std::uint32_t;

/// State transition graph of a completely specified, deterministic Mealy
/// machine with a small binary input alphabet (n_inputs bits, dense over the
/// 2^n_inputs symbols) and up to 64 output bits.
///
/// This is the representation Section III-H of the paper synthesizes and
/// re-encodes; it is deliberately explicit (not symbolic) since our FSMs are
/// benchmark-sized, while the BDD package covers the symbolic algorithms.
class Stg {
 public:
  Stg(int n_inputs, int n_outputs)
      : n_inputs_(n_inputs), n_outputs_(n_outputs) {}

  StateId add_state(std::string_view name = {});

  /// Define the transition for `from` on input symbol `in`.
  void set_transition(StateId from, std::uint64_t in, StateId to,
                      std::uint64_t out = 0);
  /// Define the same transition for every input symbol (self-loop helpers).
  void set_all_transitions(StateId from, StateId to, std::uint64_t out = 0);

  StateId next(StateId s, std::uint64_t in) const {
    return next_[s][static_cast<std::size_t>(in)];
  }
  std::uint64_t output(StateId s, std::uint64_t in) const {
    return out_[s][static_cast<std::size_t>(in)];
  }

  std::size_t num_states() const { return next_.size(); }
  int n_inputs() const { return n_inputs_; }
  int n_outputs() const { return n_outputs_; }
  std::size_t n_symbols() const { return std::size_t{1} << n_inputs_; }
  const std::string& state_name(StateId s) const { return names_[s]; }

  /// True when every (state, symbol) pair has a defined successor.
  bool complete() const;

 private:
  int n_inputs_;
  int n_outputs_;
  std::vector<std::vector<StateId>> next_;
  std::vector<std::vector<std::uint64_t>> out_;
  std::vector<std::string> names_;
};

/// Canonical structural fingerprint: FNV-1a (splitmix-finalized) over the
/// alphabet sizes and the full transition/output tables in state order.
/// State names are excluded, so the fingerprint identifies machine content
/// — the key basis for the serve layer's result cache (DESIGN.md §9).
std::uint64_t structural_hash(const Stg& stg);

/// --- Benchmark FSM generators ------------------------------------------

/// Modulo-2^bits up/hold counter: input bit 0 = enable; outputs = count.
Stg counter_fsm(int bits);

/// Detector of the bit pattern `pattern` (LSB-first, `len` bits) on a serial
/// input; one output raised on match.
Stg sequence_detector_fsm(std::uint64_t pattern, int len);

/// Reactive protocol FSM with a large idle/wait region: from IDLE, a request
/// (input bit 0) starts a `burst_len`-state handshake, then returns to IDLE.
/// Input bit 1 is a "data" bit consumed during the burst. Designed so the
/// machine self-loops in IDLE most cycles — the clock-gating target workload.
Stg protocol_fsm(int burst_len);

/// Random strongly connected Mealy machine: `n_states` states, `n_inputs`
/// input bits, `n_outputs` output bits, transition targets zipf-skewed so
/// the steady-state distribution is nonuniform. Deterministic in `seed`.
Stg random_fsm(std::size_t n_states, int n_inputs, int n_outputs,
               std::uint64_t seed);

}  // namespace hlp::fsm
