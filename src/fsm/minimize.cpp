#include "fsm/minimize.hpp"

#include <map>
#include <vector>

namespace hlp::fsm {

std::vector<StateId> equivalence_classes(const Stg& stg) {
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  // Initial partition: states with identical output rows.
  std::vector<StateId> cls(n, 0);
  {
    std::map<std::vector<std::uint64_t>, StateId> index;
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<std::uint64_t> row;
      row.reserve(sym);
      for (std::size_t a = 0; a < sym; ++a)
        row.push_back(stg.output(static_cast<StateId>(s), a));
      auto [it, fresh] =
          index.try_emplace(std::move(row),
                            static_cast<StateId>(index.size()));
      cls[s] = it->second;
      (void)fresh;
    }
  }
  // Refine until stable: signature = (class, successor classes per symbol).
  for (;;) {
    std::map<std::vector<StateId>, StateId> index;
    std::vector<StateId> next_cls(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<StateId> sig;
      sig.reserve(sym + 1);
      sig.push_back(cls[s]);
      for (std::size_t a = 0; a < sym; ++a)
        sig.push_back(cls[stg.next(static_cast<StateId>(s), a)]);
      auto [it, fresh] =
          index.try_emplace(std::move(sig),
                            static_cast<StateId>(index.size()));
      next_cls[s] = it->second;
      (void)fresh;
    }
    bool changed = next_cls != cls;
    cls.swap(next_cls);
    if (!changed) break;
  }
  // Renumber so state 0's class is 0 while keeping ids dense.
  std::vector<StateId> remap(n, static_cast<StateId>(-1));
  StateId next_id = 0;
  remap[cls[0]] = next_id++;
  for (std::size_t s = 0; s < n; ++s)
    if (remap[cls[s]] == static_cast<StateId>(-1)) remap[cls[s]] = next_id++;
  for (std::size_t s = 0; s < n; ++s) cls[s] = remap[cls[s]];
  return cls;
}

Stg minimize(const Stg& stg) {
  auto cls = equivalence_classes(stg);
  StateId n_classes = 0;
  for (StateId c : cls) n_classes = std::max(n_classes, c + 1);
  Stg out(stg.n_inputs(), stg.n_outputs());
  for (StateId c = 0; c < n_classes; ++c) out.add_state();
  std::vector<bool> done(n_classes, false);
  for (std::size_t s = 0; s < stg.num_states(); ++s) {
    StateId c = cls[s];
    if (done[c]) continue;
    done[c] = true;
    for (std::size_t a = 0; a < stg.n_symbols(); ++a)
      out.set_transition(c, a, cls[stg.next(static_cast<StateId>(s), a)],
                         stg.output(static_cast<StateId>(s), a));
  }
  return out;
}

}  // namespace hlp::fsm
