#pragma once

#include <cstdint>
#include <vector>

#include "fsm/markov.hpp"
#include "fsm/stg.hpp"
#include "sim/engine.hpp"

namespace hlp::fsm {

/// Section III-H decomposition: split one FSM into interacting submachines
/// so that "only one is active at any point in time" and the inactive one
/// can be shut down (Benini et al. [87]); partitions are chosen to
/// "minimize the activity along the lines connecting the submachines".

/// Two-way state partition: block id (0/1) per state.
using Partition = std::vector<int>;

/// Greedy + local-swap partition minimizing the steady-state probability of
/// crossing edges, with a balance constraint (each block holds at least
/// `min_fraction` of the states).
Partition partition_min_crossing(const Stg& stg, const MarkovAnalysis& ma,
                                 double min_fraction = 0.25);

/// Steady-state probability that a cycle's transition crosses blocks.
double crossing_probability(const Stg& stg, const MarkovAnalysis& ma,
                            const Partition& part);

/// One submachine: the block's states plus a WAIT state, over the original
/// input alphabet (crossing edges are redirected to WAIT, which self-loops).
/// Re-entry after a wait uses a direct state-load interface added to the
/// synthesized netlist — a `go` strobe plus the target state code on `tgt`
/// lines muxed into the state registers (the interconnection lines of
/// [86]/[87], kept out of the two-level plane).
struct SubMachine {
  Stg stg{1, 1};                 ///< block states first, WAIT state last
  std::vector<StateId> members;  ///< original ids, in sub-state order
  StateId wait;                  ///< sub-state id of WAIT
};

/// Build the two submachines for a partition.
std::vector<SubMachine> build_submachines(const Stg& stg,
                                          const Partition& part);

/// Power comparison: monolithic synthesized FSM vs. the decomposed pair
/// with selective clocking (a submachine's clock and inputs freeze while it
/// waits). Communication cost is modeled as extra load on the go/target
/// lines at each crossing.
struct DecompositionEval {
  double mono_power = 0.0;
  double decomposed_power = 0.0;
  double crossing_rate = 0.0;      ///< crossings per cycle (measured)
  double active_fraction[2] = {0.0, 0.0};
  std::size_t mono_gates = 0;
  std::size_t sub_gates[2] = {0, 0};
  bool functionally_correct = true;  ///< submachine tracking verified
  double saving() const {
    return mono_power > 0.0 ? 1.0 - decomposed_power / mono_power : 0.0;
  }
};

/// FSM state recurrences are inherently serial: Auto resolves to the
/// scalar engine; forcing Packed throws.
DecompositionEval evaluate_decomposition(
    const Stg& stg, const Partition& part, std::size_t cycles,
    std::uint64_t seed, std::span<const double> input_probs = {},
    const sim::SimOptions& opts = {});

}  // namespace hlp::fsm
