#pragma once

#include <vector>

#include "fsm/stg.hpp"

namespace hlp::fsm {

/// Equivalence classes of a completely specified Mealy machine (partition
/// refinement; the explicit counterpart of the implicit BDD method of Lin &
/// Newton [88]). Returns class id per state; class ids are dense from 0.
std::vector<StateId> equivalence_classes(const Stg& stg);

/// Minimized machine: one state per equivalence class, transitions and
/// outputs inherited from any representative. State 0's class becomes the
/// new state 0 (reset preserved).
Stg minimize(const Stg& stg);

}  // namespace hlp::fsm
