#include "fsm/markov.hpp"

#include <bit>
#include <cmath>

#include "lint/lint.hpp"

namespace hlp::fsm {

std::size_t MarkovAnalysis::nonzero_edges() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < cond.size(); ++i)
    for (std::size_t j = 0; j < cond[i].size(); ++j)
      if (state_prob[i] * cond[i][j] > 0.0) ++n;
  return n;
}

double MarkovAnalysis::edge_entropy() const {
  double h = 0.0;
  for (std::size_t i = 0; i < cond.size(); ++i)
    for (std::size_t j = 0; j < cond[i].size(); ++j) {
      double p = state_prob[i] * cond[i][j];
      if (p > 0.0) h -= p * std::log2(p);
    }
  return h;
}

MarkovAnalysis analyze_markov(const Stg& stg,
                              std::span<const double> input_probs,
                              int iters, const lint::LintOptions& lint) {
  lint::enforce_fsm(stg, lint, "analyze_markov");
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  MarkovAnalysis ma;
  ma.cond.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t a = 0; a < sym; ++a) {
      double pa = input_probs.empty() ? 1.0 / static_cast<double>(sym)
                                      : input_probs[a];
      ma.cond[s][stg.next(static_cast<StateId>(s), a)] += pa;
    }
  ma.state_prob.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> nxt(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(nxt.begin(), nxt.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      if (ma.state_prob[s] == 0.0) continue;
      for (std::size_t t = 0; t < n; ++t)
        nxt[t] += ma.state_prob[s] * ma.cond[s][t];
    }
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      diff += std::abs(nxt[s] - ma.state_prob[s]);
    ma.state_prob.swap(nxt);
    if (diff < 1e-12) break;
  }
  return ma;
}

double expected_code_switching(const MarkovAnalysis& ma,
                               std::span<const std::uint64_t> codes) {
  double total = 0.0;
  for (std::size_t i = 0; i < ma.cond.size(); ++i) {
    if (ma.state_prob[i] == 0.0) continue;
    for (std::size_t j = 0; j < ma.cond[i].size(); ++j) {
      double p = ma.state_prob[i] * ma.cond[i][j];
      if (p == 0.0) continue;
      total += p * static_cast<double>(std::popcount(codes[i] ^ codes[j]));
    }
  }
  return total;
}

std::vector<StateId> simulate_states(const Stg& stg, std::size_t cycles,
                                     stats::Rng& rng,
                                     std::span<const double> input_probs,
                                     StateId start,
                                     std::vector<std::uint64_t>* inputs,
                                     std::vector<std::uint64_t>* outputs) {
  std::vector<StateId> seq;
  seq.reserve(cycles);
  if (inputs) inputs->clear();
  if (outputs) outputs->clear();
  StateId s = start;
  const std::size_t sym = stg.n_symbols();
  for (std::size_t c = 0; c < cycles; ++c) {
    seq.push_back(s);
    std::uint64_t a;
    if (input_probs.empty()) {
      a = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sym) - 1));
    } else {
      double u = rng.uniform_real();
      std::size_t pick = 0;
      double acc = 0.0;
      for (std::size_t k = 0; k < sym; ++k) {
        acc += input_probs[k];
        if (u <= acc) {
          pick = k;
          break;
        }
        pick = k;
      }
      a = pick;
    }
    if (inputs) inputs->push_back(a);
    if (outputs) outputs->push_back(stg.output(s, a));
    s = stg.next(s, a);
  }
  return seq;
}

}  // namespace hlp::fsm
