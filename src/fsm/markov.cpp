#include "fsm/markov.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "exec/fi.hpp"
#include "lint/lint.hpp"

namespace hlp::fsm {

std::size_t MarkovAnalysis::nonzero_edges() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < cond.size(); ++i)
    for (std::size_t j = 0; j < cond[i].size(); ++j)
      if (state_prob[i] * cond[i][j] > 0.0) ++n;
  return n;
}

double MarkovAnalysis::edge_entropy() const {
  double h = 0.0;
  for (std::size_t i = 0; i < cond.size(); ++i)
    for (std::size_t j = 0; j < cond[i].size(); ++j) {
      double p = state_prob[i] * cond[i][j];
      if (p > 0.0) h -= p * std::log2(p);
    }
  return h;
}

namespace {

void validate_input_probs(std::span<const double> input_probs,
                          std::size_t sym) {
  if (input_probs.empty()) return;
  if (input_probs.size() != sym)
    throw std::invalid_argument(
        "analyze_markov: input_probs has " +
        std::to_string(input_probs.size()) + " entries but the STG has " +
        std::to_string(sym) + " input symbols");
  double sum = 0.0;
  for (double p : input_probs) {
    if (p < 0.0)
      throw std::invalid_argument(
          "analyze_markov: input_probs contains a negative probability (" +
          std::to_string(p) + ")");
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-6)
    throw std::invalid_argument(
        "analyze_markov: input_probs sums to " + std::to_string(sum) +
        ", expected 1 (within 1e-6) over " + std::to_string(sym) +
        " symbols");
}

MarkovAnalysis analyze_markov_impl(const Stg& stg,
                                   std::span<const double> input_probs,
                                   int max_iters, double tol,
                                   const lint::LintOptions& lint,
                                   exec::Meter* meter) {
  lint::enforce_fsm(stg, lint, "analyze_markov");
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  validate_input_probs(input_probs, sym);
  MarkovAnalysis ma;
  fi::alloc_checkpoint();
  ma.cond.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t a = 0; a < sym; ++a) {
      double pa = input_probs.empty() ? 1.0 / static_cast<double>(sym)
                                      : input_probs[a];
      ma.cond[s][stg.next(static_cast<StateId>(s), a)] += pa;
    }
  ma.state_prob.assign(n, 1.0 / static_cast<double>(n));
  fi::alloc_checkpoint();
  std::vector<double> nxt(n);
  for (int it = 0; it < max_iters; ++it) {
    // The probe keeps the best iterate so far on a trip: ma.state_prob is
    // always a valid (normalized) distribution, just not yet stationary.
    if (meter && meter->over_budget(1)) break;
    std::fill(nxt.begin(), nxt.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      if (ma.state_prob[s] == 0.0) continue;
      for (std::size_t t = 0; t < n; ++t)
        nxt[t] += ma.state_prob[s] * ma.cond[s][t];
    }
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      diff += std::abs(nxt[s] - ma.state_prob[s]);
    ma.state_prob.swap(nxt);
    ma.residual = diff;
    ma.iterations = it + 1;
    if (diff < tol) {
      ma.converged = true;
      break;
    }
  }
  return ma;
}

}  // namespace

MarkovAnalysis analyze_markov(const Stg& stg,
                              std::span<const double> input_probs,
                              int max_iters, const lint::LintOptions& lint) {
  return analyze_markov_impl(stg, input_probs, max_iters, 1e-12, lint,
                             nullptr);
}

exec::Outcome<MarkovAnalysis> analyze_markov_budgeted(
    const Stg& stg, const exec::Budget& budget,
    std::span<const double> input_probs, int max_iters, double tol,
    const lint::LintOptions& lint) {
  exec::Meter meter(budget);
  exec::Outcome<MarkovAnalysis> out;
  out.value = analyze_markov_impl(stg, input_probs, max_iters, tol, lint,
                                  &meter);
  out.diag = meter.diag();
  if (!out.value.converged && out.diag.stop == exec::StopReason::None)
    out.diag.note = "did not converge within " + std::to_string(max_iters) +
                    " sweeps (residual " + std::to_string(out.value.residual) +
                    ")";
  if (out.diag.stop != exec::StopReason::None)
    out.diag.note = "stopped after " + std::to_string(out.value.iterations) +
                    " sweeps (residual " + std::to_string(out.value.residual) +
                    "); state_prob is the best iterate, not the steady state";
  return out;
}

double expected_code_switching(const MarkovAnalysis& ma,
                               std::span<const std::uint64_t> codes) {
  double total = 0.0;
  for (std::size_t i = 0; i < ma.cond.size(); ++i) {
    if (ma.state_prob[i] == 0.0) continue;
    for (std::size_t j = 0; j < ma.cond[i].size(); ++j) {
      double p = ma.state_prob[i] * ma.cond[i][j];
      if (p == 0.0) continue;
      total += p * static_cast<double>(std::popcount(codes[i] ^ codes[j]));
    }
  }
  return total;
}

std::vector<StateId> simulate_states(const Stg& stg, std::size_t cycles,
                                     stats::Rng& rng,
                                     std::span<const double> input_probs,
                                     StateId start,
                                     std::vector<std::uint64_t>* inputs,
                                     std::vector<std::uint64_t>* outputs) {
  std::vector<StateId> seq;
  seq.reserve(cycles);
  if (inputs) inputs->clear();
  if (outputs) outputs->clear();
  StateId s = start;
  const std::size_t sym = stg.n_symbols();
  for (std::size_t c = 0; c < cycles; ++c) {
    seq.push_back(s);
    std::uint64_t a;
    if (input_probs.empty()) {
      a = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sym) - 1));
    } else {
      double u = rng.uniform_real();
      std::size_t pick = 0;
      double acc = 0.0;
      for (std::size_t k = 0; k < sym; ++k) {
        acc += input_probs[k];
        if (u <= acc) {
          pick = k;
          break;
        }
        pick = k;
      }
      a = pick;
    }
    if (inputs) inputs->push_back(a);
    if (outputs) outputs->push_back(stg.output(s, a));
    s = stg.next(s, a);
  }
  return seq;
}

}  // namespace hlp::fsm
