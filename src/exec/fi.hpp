#pragma once

#include <cstdint>

#include "exec/exec.hpp"

namespace hlp::fi {

/// --- Deterministic fault injection ----------------------------------------
///
/// Test harness proving the kernels keep their invariants under resource
/// faults. Two fault kinds, both deterministic and replayable:
///
///  * allocation failure: the N-th allocation checkpoint after arming
///    throws std::bad_alloc (the checkpoint sits immediately before the
///    real allocation, so the failure is indistinguishable from the
///    allocator refusing);
///  * cancellation: the N-th meter step after arming requests cancellation
///    on the running kernel's CancelToken, which the kernel observes at
///    that exact step.
///
/// Checkpoints count even while disarmed, so a sweep first runs the kernel
/// once to learn how many injection points it passes, then replays it once
/// per point (see tests/test_fi.cpp). All state is thread-local; production
/// builds pay one thread-local increment per checkpoint.
///
/// Threading contract: arming is strictly **per-thread**. `arm_*` mutates
/// only the calling thread's `State`, and checkpoints consult only their
/// own thread's counters, so kernels running on other worker threads (e.g.
/// an `hlp::jobs` pool executing under an armed sweep on the test thread)
/// never observe the fault and never race on the counters — ThreadSanitizer
/// sees one thread-local object per thread, no sharing. A sweep that wants
/// to inject into pool workers must arm *on the worker* (run the arming
/// call inside the job body). The only cross-thread effect a fired
/// cancellation fault has is through `CancelToken`, which is atomic with
/// acquire/release ordering (see exec.hpp).

struct State {
  bool alloc_armed = false;
  std::uint64_t alloc_at = 0;
  std::uint64_t alloc_count = 0;
  bool cancel_armed = false;
  std::uint64_t cancel_at = 0;
  std::uint64_t step_count = 0;
};

State& state();

/// Throw std::bad_alloc at the `at_call`-th (0-based) allocation checkpoint
/// from now. Resets the checkpoint counter.
void arm_alloc_failure(std::uint64_t at_call);
/// Request cancellation at the `at_step`-th (0-based) meter step from now.
/// Resets the step counter. The request fires on the token of whichever
/// metered kernel reaches that step (sticky: later steps keep requesting).
/// Batched kernels charge many steps per meter probe; the fault fires on
/// the probe whose charge range covers `at_step`, so the observable
/// cancellation granularity is the kernel's batch size.
void arm_cancel_at_step(std::uint64_t at_step);
/// Disarm both faults and reset both counters.
void disarm();

/// Checkpoints passed since the last arm/disarm — the sweep bound.
std::uint64_t alloc_checkpoints();
std::uint64_t step_checkpoints();

inline bool alloc_armed() { return state().alloc_armed; }
inline bool cancel_armed() { return state().cancel_armed; }

/// Called by instrumented kernels immediately before an allocation that is
/// allowed to fail. Throws std::bad_alloc when armed and at the target.
void alloc_checkpoint();

/// Called by exec::Meter::step / over_budget on behalf of the running
/// kernel; `n` is the number of steps the probe charges (the step counter
/// advances by n, and an armed fault inside [count, count+n) fires).
void step_checkpoint(exec::CancelToken& tok, std::uint64_t n = 1);

/// --- Serve-path fault schedule (process-global) ---------------------------
///
/// The per-thread faults above cannot reach the serve tier: its kernels run
/// on pool worker threads the arming test thread never executes on. These
/// faults are therefore armed **process-globally** with atomic counters, so
/// a chaos schedule armed on the test thread fires inside whichever worker
/// happens to reach the target checkpoint — exactly the nondeterminism a
/// production fault has, while the (fault, hit-index) pair keeps the
/// schedule itself replayable.
///
/// Each fault is one-shot: it fires at the `at_hit`-th (0-based) checkpoint
/// after arming and disarms itself, so exactly one request in a schedule
/// takes the hit. Hit counters advance even while disarmed (and reset on
/// arm), so a sweep can first count a fault's checkpoints, then replay once
/// per index — the same protocol as the thread-local faults.
enum class ServeFault : std::uint8_t {
  WorkerThrow = 0,  ///< worker "crash": throw before the kernel runs
  WorkerAlloc,      ///< allocation failure under load: throw std::bad_alloc
  KernelStall,      ///< kernel stuck between meter steps (param = max ms)
  CacheTornWrite,   ///< persist only a record prefix, then wedge the file
  /// Sandbox crash faults, claimed by the *parent* immediately before
  /// fork() (the slots are process-global one-shots; a child claiming one
  /// would only disarm its copy-on-write copy) and executed in the child:
  ChildSegv,   ///< child raises SIGSEGV before running the kernel
  ChildOom,    ///< child raises SIGKILL, modelling the kernel OOM killer
  ChildWedge,  ///< child spins non-cooperatively until the wall SIGKILL
};
inline constexpr int kServeFaultCount = 7;

/// Arm `f` to fire at its `at_hit`-th checkpoint from now; `param` is
/// fault-specific (stall duration in ms, torn-write cut in bytes).
void arm_serve_fault(ServeFault f, std::uint64_t at_hit,
                     std::uint64_t param = 0);
/// Disarm every serve fault and reset every hit counter.
void disarm_serve_faults();
/// Checkpoints passed for `f` since the last arm/disarm — the sweep bound.
std::uint64_t serve_fault_hits(ServeFault f);

/// Called by serve-layer instrumentation at each injection point. Returns
/// true when the armed target is reached (claiming the one-shot), with the
/// armed `param` stored through `param_out` when non-null.
bool serve_fault_checkpoint(ServeFault f, std::uint64_t* param_out = nullptr);

}  // namespace hlp::fi
