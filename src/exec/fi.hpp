#pragma once

#include <cstdint>

#include "exec/exec.hpp"

namespace hlp::fi {

/// --- Deterministic fault injection ----------------------------------------
///
/// Test harness proving the kernels keep their invariants under resource
/// faults. Two fault kinds, both deterministic and replayable:
///
///  * allocation failure: the N-th allocation checkpoint after arming
///    throws std::bad_alloc (the checkpoint sits immediately before the
///    real allocation, so the failure is indistinguishable from the
///    allocator refusing);
///  * cancellation: the N-th meter step after arming requests cancellation
///    on the running kernel's CancelToken, which the kernel observes at
///    that exact step.
///
/// Checkpoints count even while disarmed, so a sweep first runs the kernel
/// once to learn how many injection points it passes, then replays it once
/// per point (see tests/test_fi.cpp). All state is thread-local; production
/// builds pay one thread-local increment per checkpoint.
///
/// Threading contract: arming is strictly **per-thread**. `arm_*` mutates
/// only the calling thread's `State`, and checkpoints consult only their
/// own thread's counters, so kernels running on other worker threads (e.g.
/// an `hlp::jobs` pool executing under an armed sweep on the test thread)
/// never observe the fault and never race on the counters — ThreadSanitizer
/// sees one thread-local object per thread, no sharing. A sweep that wants
/// to inject into pool workers must arm *on the worker* (run the arming
/// call inside the job body). The only cross-thread effect a fired
/// cancellation fault has is through `CancelToken`, which is atomic with
/// acquire/release ordering (see exec.hpp).

struct State {
  bool alloc_armed = false;
  std::uint64_t alloc_at = 0;
  std::uint64_t alloc_count = 0;
  bool cancel_armed = false;
  std::uint64_t cancel_at = 0;
  std::uint64_t step_count = 0;
};

State& state();

/// Throw std::bad_alloc at the `at_call`-th (0-based) allocation checkpoint
/// from now. Resets the checkpoint counter.
void arm_alloc_failure(std::uint64_t at_call);
/// Request cancellation at the `at_step`-th (0-based) meter step from now.
/// Resets the step counter. The request fires on the token of whichever
/// metered kernel reaches that step (sticky: later steps keep requesting).
/// Batched kernels charge many steps per meter probe; the fault fires on
/// the probe whose charge range covers `at_step`, so the observable
/// cancellation granularity is the kernel's batch size.
void arm_cancel_at_step(std::uint64_t at_step);
/// Disarm both faults and reset both counters.
void disarm();

/// Checkpoints passed since the last arm/disarm — the sweep bound.
std::uint64_t alloc_checkpoints();
std::uint64_t step_checkpoints();

inline bool alloc_armed() { return state().alloc_armed; }
inline bool cancel_armed() { return state().cancel_armed; }

/// Called by instrumented kernels immediately before an allocation that is
/// allowed to fail. Throws std::bad_alloc when armed and at the target.
void alloc_checkpoint();

/// Called by exec::Meter::step / over_budget on behalf of the running
/// kernel; `n` is the number of steps the probe charges (the step counter
/// advances by n, and an armed fault inside [count, count+n) fires).
void step_checkpoint(exec::CancelToken& tok, std::uint64_t n = 1);

}  // namespace hlp::fi
