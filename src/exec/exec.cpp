#include "exec/exec.hpp"

#include <algorithm>

#include "exec/fi.hpp"

namespace hlp::exec {

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Deadline: return "deadline";
    case StopReason::NodeCap: return "node-cap";
    case StopReason::MemoryCap: return "memory-cap";
    case StopReason::StepQuota: return "step-quota";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::AllocFailure: return "alloc-failure";
  }
  return "unknown";
}

Meter::Meter(Budget b)
    : budget_(std::move(b)), start_(std::chrono::steady_clock::now()) {
  if (budget_.deadline_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 budget_.deadline_seconds));
    last_clock_poll_ = start_;
  }
}

double Meter::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

StopReason Meter::poll() {
  if (budget_.step_quota && steps_ > budget_.step_quota)
    return StopReason::StepQuota;
  if (budget_.cancel.cancel_requested()) return StopReason::Cancelled;
  if (has_deadline_ && ticks_ >= next_clock_poll_) {
    const auto now = std::chrono::steady_clock::now();
    const auto since = now - last_clock_poll_;
    if (since * 2 < kClockPollTargetNs) {
      clock_stride_ = std::min(clock_stride_ * 2, kMaxClockStride);
    } else if (since > kClockPollTargetNs * 2 && clock_stride_ > 1) {
      // Proportional back-off: one overshoot is enough to re-land the
      // stride near the target, so a loop that suddenly slows down still
      // sees its deadline within roughly one poll interval.
      const double ratio =
          std::chrono::duration<double>(kClockPollTargetNs).count() /
          std::chrono::duration<double>(since).count();
      clock_stride_ = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(clock_stride_) * ratio * 2.0));
    }
    last_clock_poll_ = now;
    next_clock_poll_ = ticks_ + clock_stride_;
    if (now >= deadline_) return StopReason::Deadline;
  }
  return StopReason::None;
}

void Meter::step(std::size_t n) {
  steps_ += n;
  ticks_ += n ? n : 1;
  fi::step_checkpoint(budget_.cancel, n ? n : 1);
  StopReason r = poll();
  if (r != StopReason::None)
    trip(r, "after " + std::to_string(steps_) + " steps");
}

bool Meter::over_budget(std::size_t charge_steps) {
  if (charge_steps) {
    steps_ += charge_steps;
    fi::step_checkpoint(budget_.cancel, charge_steps);
  }
  ticks_ += charge_steps ? charge_steps : 1;
  if (tripped_ != StopReason::None) return true;
  StopReason r = poll();
  if (r == StopReason::None) return false;
  tripped_ = r;
  return true;
}

void Meter::check_nodes(std::size_t live_nodes) {
  if (budget_.node_cap && live_nodes > budget_.node_cap)
    trip(StopReason::NodeCap,
         std::to_string(live_nodes) + " live nodes > cap " +
             std::to_string(budget_.node_cap));
}

void Meter::charge_bytes(std::size_t n) {
  bytes_ += n;
  if (budget_.memory_cap_bytes && bytes_ > budget_.memory_cap_bytes)
    trip(StopReason::MemoryCap,
         std::to_string(bytes_) + " bytes charged > cap " +
             std::to_string(budget_.memory_cap_bytes));
}

void Meter::trip(StopReason r, const std::string& detail) {
  tripped_ = r;
  throw BudgetExceeded(
      r, std::string("budget exceeded (") + to_string(r) + "): " + detail);
}

Diag Meter::diag() const {
  Diag d;
  d.stop = tripped_;
  d.steps = steps_;
  d.elapsed_seconds = elapsed_seconds();
  return d;
}

}  // namespace hlp::exec
