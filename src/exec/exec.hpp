#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace hlp::exec {

/// --- Execution control ----------------------------------------------------
///
/// Every technique the toolkit reproduces has a known blow-up mode that used
/// to run open-loop: ROBDD construction is worst-case exponential in the
/// variable order (the paper's II-B1 / III-I symbolic methods), power
/// iteration on a non-mixing chain never settles, and Monte Carlo
/// co-simulation (Burch et al., II-C) can exhaust its pair budget without
/// converging. `exec` closes the loop: a kernel invocation carries a
/// `Budget`, charges work against a `Meter`, and returns an `Outcome<T>`
/// that either holds a complete result or an honest partial/degraded one —
/// it never hangs and never aborts the process.

/// Why a kernel stopped before finishing. `None` means it ran to completion.
enum class StopReason : std::uint8_t {
  None = 0,      ///< ran to completion within budget
  Deadline,      ///< wall-clock deadline exceeded
  NodeCap,       ///< BDD live-node cap exceeded
  MemoryCap,     ///< tracked-allocation cap exceeded
  StepQuota,     ///< kernel step quota exhausted
  Cancelled,     ///< cooperative cancellation requested
  AllocFailure,  ///< std::bad_alloc surfaced and was absorbed
};

const char* to_string(StopReason r);

/// Shared cooperative-cancellation handle. Copies alias one flag; any copy
/// can request cancellation and every metered kernel holding a copy observes
/// it at its next step.
///
/// Thread-safety / memory-order contract: the flag is a single atomic bool
/// written with release and read with acquire ordering, so a thread that
/// observes `cancel_requested() == true` also observes every write the
/// cancelling thread made *before* requesting cancellation (e.g. a
/// supervisor recording *why* it cancelled — a deadline-trip flag — before
/// tripping the token). This is the cross-thread signalling primitive the
/// `hlp::jobs` supervisor uses to enforce per-job wall deadlines on worker
/// threads; relaxed ordering would let the worker see the cancellation but
/// not the reason. Copying a token concurrently with signalling it is safe
/// (the shared_ptr control block is internally synchronized and copies are
/// by-value); assigning *to* the same CancelToken object from two threads
/// is not, and no code here does that.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void request_cancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Declarative resource budget for one kernel invocation. Zero means
/// unlimited for every numeric field; the default budget never trips.
struct Budget {
  double deadline_seconds = 0.0;    ///< wall clock from Meter construction
  std::size_t node_cap = 0;         ///< max live BDD nodes in a Manager
  std::size_t memory_cap_bytes = 0; ///< max bytes charged via charge_bytes()
  std::size_t step_quota = 0;       ///< max kernel-defined steps
  CancelToken cancel;               ///< shared cancellation handle

  bool unlimited() const {
    return deadline_seconds <= 0.0 && node_cap == 0 &&
           memory_cap_bytes == 0 && step_quota == 0;
  }

  static Budget with_deadline(double seconds) {
    Budget b;
    b.deadline_seconds = seconds;
    return b;
  }
  static Budget with_node_cap(std::size_t nodes) {
    Budget b;
    b.node_cap = nodes;
    return b;
  }
  static Budget with_step_quota(std::size_t steps) {
    Budget b;
    b.step_quota = steps;
    return b;
  }
};

/// Thrown by Meter when a budget dimension trips. Kernels that cannot
/// accumulate partial state simply unwind (the BDD manager guarantees its
/// tables stay consistent); wrappers catch it and degrade.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(StopReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  StopReason reason() const { return reason_; }

 private:
  StopReason reason_;
};

/// Diagnostics attached to every Outcome: what stopped the kernel (if
/// anything), whether and how it degraded, and how much work was done.
struct Diag {
  StopReason stop = StopReason::None;
  bool degraded = false;
  std::string degraded_from;  ///< method abandoned (e.g. "bdd-quantification")
  std::string degraded_to;    ///< method that produced the value
  std::size_t steps = 0;      ///< meter steps charged
  double elapsed_seconds = 0.0;
  std::string note;           ///< human-readable detail (partial extents etc.)
};

/// Result-or-degradation carrier. `value` is always usable: either the
/// complete answer (complete() == true), a partial-but-honest answer (stop
/// reason recorded), or the output of a cheaper fallback method
/// (degraded() == true, with from/to named in the diag).
template <typename T>
struct Outcome {
  T value{};
  Diag diag;

  bool complete() const {
    return diag.stop == StopReason::None && !diag.degraded;
  }
  bool degraded() const { return diag.degraded; }
  const T& operator*() const { return value; }
  const T* operator->() const { return &value; }
};

/// Runtime meter bound to one kernel invocation. Kernels charge work via
/// step()/check_nodes()/charge_bytes(); the meter throws BudgetExceeded on
/// any trip. Loops that accumulate resumable state use the non-throwing
/// over_budget() probe instead and return a partial result.
///
/// Cost model: step() is one thread-local increment, two compares, and one
/// relaxed atomic load; the wall clock is polled on an adaptive tick grid
/// that aims for roughly one clock read per `kClockPollTargetNs` of work —
/// a loop metering millions of steps per second settles on a
/// multi-thousand-step stride while a seconds-per-iteration sweep stays at
/// stride 1 — so metering a hot loop at step granularity stays well under
/// the 2% overhead target (see bench/bench_exec.cpp) and a deadline is
/// still observed within a few milliseconds. Batched kernels go one step
/// further and charge a whole batch in a single over_budget(n) probe (the
/// packed Monte Carlo engine pays one probe per 64·W-pair block), which
/// makes metering cost independent of the per-item rate at the price of
/// batch-granular deadline/cancel responsiveness.
class Meter {
 public:
  Meter() : Meter(Budget{}) {}
  explicit Meter(Budget b);

  /// Charge `n` steps; throws BudgetExceeded on quota/deadline/cancel trip.
  void step(std::size_t n = 1);
  /// Non-throwing probe: charges `charge_steps` steps, polls every
  /// dimension except nodes/bytes, records the trip reason, and returns
  /// true when the budget is exhausted. Sticky. This is the check used by
  /// loops that keep resumable partial state (Markov sweeps, Monte Carlo
  /// pairs, glitch cycles): they break and return what they have. A
  /// zero-charge probe still advances the clock-poll grid, so deadline
  /// trips are observed even by loops that never charge steps.
  bool over_budget(std::size_t charge_steps = 0);
  /// BDD live-node check (throws StopReason::NodeCap).
  void check_nodes(std::size_t live_nodes);
  /// Charge tracked allocations (throws StopReason::MemoryCap).
  void charge_bytes(std::size_t n);

  std::size_t steps() const { return steps_; }
  /// Steps that can still be charged before the quota trips (SIZE_MAX when
  /// no quota is set). Batched kernels use this to avoid working — or
  /// drawing from a shared generator — past the stopping point, so a
  /// quota-stopped run consumes exactly as much input as a scalar one.
  std::size_t steps_remaining() const {
    if (tripped_ != StopReason::None) return 0;
    if (!budget_.step_quota) return static_cast<std::size_t>(-1);
    return steps_ < budget_.step_quota ? budget_.step_quota - steps_ : 0;
  }
  std::size_t bytes_charged() const { return bytes_; }
  double elapsed_seconds() const;
  /// Reason recorded by the last trip (None if the budget never tripped).
  StopReason tripped() const { return tripped_; }
  const Budget& budget() const { return budget_; }

  /// Snapshot diagnostics (steps/elapsed/stop) for an Outcome.
  Diag diag() const;

  /// Target spacing between wall-clock reads; the poll stride doubles while
  /// polls land closer together than half this and shrinks proportionally
  /// when they land further apart, bounding deadline-detection latency to a
  /// few milliseconds regardless of per-step cost.
  static constexpr std::chrono::nanoseconds kClockPollTargetNs{1'000'000};
  static constexpr std::size_t kMaxClockStride = std::size_t{1} << 20;

 private:
  [[noreturn]] void trip(StopReason r, const std::string& detail);
  StopReason poll();

  Budget budget_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_{};
  std::chrono::steady_clock::time_point last_clock_poll_{};
  bool has_deadline_ = false;
  std::size_t steps_ = 0;
  std::size_t bytes_ = 0;
  std::size_t ticks_ = 0;  ///< steps plus zero-charge probes; drives polling
  std::size_t next_clock_poll_ = 0;
  std::size_t clock_stride_ = 1;
  StopReason tripped_ = StopReason::None;
};

}  // namespace hlp::exec
