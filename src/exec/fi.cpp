#include "exec/fi.hpp"

#include <new>

namespace hlp::fi {

State& state() {
  thread_local State st;
  return st;
}

void arm_alloc_failure(std::uint64_t at_call) {
  State& st = state();
  st.alloc_armed = true;
  st.alloc_at = at_call;
  st.alloc_count = 0;
}

void arm_cancel_at_step(std::uint64_t at_step) {
  State& st = state();
  st.cancel_armed = true;
  st.cancel_at = at_step;
  st.step_count = 0;
}

void disarm() {
  State& st = state();
  st.alloc_armed = false;
  st.cancel_armed = false;
  st.alloc_count = 0;
  st.step_count = 0;
}

std::uint64_t alloc_checkpoints() { return state().alloc_count; }
std::uint64_t step_checkpoints() { return state().step_count; }

void alloc_checkpoint() {
  State& st = state();
  std::uint64_t idx = st.alloc_count++;
  if (st.alloc_armed && idx == st.alloc_at) throw std::bad_alloc{};
}

void step_checkpoint(exec::CancelToken& tok, std::uint64_t n) {
  State& st = state();
  st.step_count += n;
  // Fires once the counter has passed the armed step, i.e. when the probe's
  // charge range [count, count+n) covers it. Sticky by construction.
  if (st.cancel_armed && st.step_count > st.cancel_at) tok.request_cancel();
}

}  // namespace hlp::fi
