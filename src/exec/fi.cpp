#include "exec/fi.hpp"

#include <array>
#include <atomic>
#include <new>

namespace hlp::fi {

State& state() {
  thread_local State st;
  return st;
}

void arm_alloc_failure(std::uint64_t at_call) {
  State& st = state();
  st.alloc_armed = true;
  st.alloc_at = at_call;
  st.alloc_count = 0;
}

void arm_cancel_at_step(std::uint64_t at_step) {
  State& st = state();
  st.cancel_armed = true;
  st.cancel_at = at_step;
  st.step_count = 0;
}

void disarm() {
  State& st = state();
  st.alloc_armed = false;
  st.cancel_armed = false;
  st.alloc_count = 0;
  st.step_count = 0;
}

std::uint64_t alloc_checkpoints() { return state().alloc_count; }
std::uint64_t step_checkpoints() { return state().step_count; }

void alloc_checkpoint() {
  State& st = state();
  std::uint64_t idx = st.alloc_count++;
  if (st.alloc_armed && idx == st.alloc_at) throw std::bad_alloc{};
}

void step_checkpoint(exec::CancelToken& tok, std::uint64_t n) {
  State& st = state();
  st.step_count += n;
  // Fires once the counter has passed the armed step, i.e. when the probe's
  // charge range [count, count+n) covers it. Sticky by construction.
  if (st.cancel_armed && st.step_count > st.cancel_at) tok.request_cancel();
}

namespace {

/// One process-global slot per ServeFault. `armed` is written last with
/// release ordering on arm, so a checkpoint that acquires it also sees the
/// target index and param written before it.
struct ServeSlot {
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> at{0};
  std::atomic<std::uint64_t> param{0};
  std::atomic<std::uint64_t> hits{0};
};

std::array<ServeSlot, kServeFaultCount>& serve_slots() {
  static std::array<ServeSlot, kServeFaultCount> slots;
  return slots;
}

ServeSlot& slot(ServeFault f) {
  return serve_slots()[static_cast<std::size_t>(f)];
}

}  // namespace

void arm_serve_fault(ServeFault f, std::uint64_t at_hit, std::uint64_t param) {
  ServeSlot& s = slot(f);
  s.armed.store(false, std::memory_order_release);
  s.at.store(at_hit, std::memory_order_relaxed);
  s.param.store(param, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void disarm_serve_faults() {
  for (int i = 0; i < kServeFaultCount; ++i) {
    ServeSlot& s = serve_slots()[static_cast<std::size_t>(i)];
    s.armed.store(false, std::memory_order_release);
    s.hits.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t serve_fault_hits(ServeFault f) {
  return slot(f).hits.load(std::memory_order_relaxed);
}

bool serve_fault_checkpoint(ServeFault f, std::uint64_t* param_out) {
  ServeSlot& s = slot(f);
  const std::uint64_t idx = s.hits.fetch_add(1, std::memory_order_acq_rel);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  if (idx != s.at.load(std::memory_order_relaxed)) return false;
  // Claim the one-shot: only the thread whose exchange observes true fires,
  // even if two checkpoints race on the same index after a re-arm.
  if (!s.armed.exchange(false, std::memory_order_acq_rel)) return false;
  if (param_out) *param_out = s.param.load(std::memory_order_relaxed);
  return true;
}

}  // namespace hlp::fi
