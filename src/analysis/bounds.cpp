#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace hlp::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

constexpr double kSeqSlack = 1e-9;  ///< absorbs asymptotic-stop error of the
                                    ///< tolerance-terminated hull iteration

double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

struct PInt {
  double lo, hi;
};

PInt pnot(PInt a) { return {1.0 - a.hi, 1.0 - a.lo}; }

/// Fréchet bounds: valid for ANY joint distribution of the operands, which
/// is the whole point — no independence assumption survives reconvergent
/// fanout, but these do.
PInt pand(PInt a, PInt b) {
  return {std::max(0.0, a.lo + b.lo - 1.0), std::min(a.hi, b.hi)};
}
PInt por(PInt a, PInt b) {
  return {std::max(a.lo, b.lo), std::min(1.0, a.hi + b.hi)};
}
PInt pxor(PInt a, PInt b) {
  // Pointwise P(a^b) ∈ [|pa-pb|, min(pa+pb, 2-pa-pb)]; take the hull over
  // the operand intervals.
  const double lo = std::max({a.lo - b.hi, b.lo - a.hi, 0.0});
  const double slo = a.lo + b.lo;
  const double shi = a.hi + b.hi;
  const double hi = (slo <= 1.0 && 1.0 <= shi)
                        ? 1.0
                        : std::max(std::min(slo, 2.0 - slo),
                                   std::min(shi, 2.0 - shi));
  return {clamp01(lo), clamp01(hi)};
}

/// Image of t = 2p(1-p) over a probability interval — exact toggle interval
/// for a net whose two evaluations are independent draws.
void indep_toggle(double p_lo, double p_hi, double& t_lo, double& t_hi) {
  const double f_lo = 2.0 * p_lo * (1.0 - p_lo);
  const double f_hi = 2.0 * p_hi * (1.0 - p_hi);
  t_lo = std::min(f_lo, f_hi);
  t_hi = (p_lo <= 0.5 && 0.5 <= p_hi) ? 0.5 : std::max(f_lo, f_hi);
}

struct BoundsDomain {
  using Value = BoundsValue;

  const InputModel* model;
  const std::vector<std::uint32_t>* input_pos;
  const ActivityResult* exact = nullptr;
  /// Soundness fallback when the hull iteration hits max_passes: register
  /// outputs drop to top so one more (now converging) run re-derives the
  /// combinational part from guaranteed-valid sources.
  bool pin_top_sequential = false;
  double tol = 1e-12;

  static BoundsValue top() { return {0.0, 1.0, 0.0, 1.0, false}; }

  BoundsValue fanin(const std::vector<BoundsValue>& values, GateId f) const {
    if (f == netlist::kNullGate || f >= values.size()) return top();
    return values[f];
  }

  BoundsValue make_indep(double p_lo, double p_hi) const {
    BoundsValue v{p_lo, p_hi, 0.0, 0.0, true};
    indep_toggle(p_lo, p_hi, v.t_lo, v.t_hi);
    return v;
  }

  Value initial(const Netlist& nl, GateId g) const {
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input: {
        const std::size_t i = (*input_pos)[g];
        const PairDist d = model->dist(i);
        if (model->pair_mode) return make_indep(d.p(), d.p());
        return {d.p(), d.p(), d.t(), d.t(), false};
      }
      case GateKind::Const0:
        return {0.0, 0.0, 0.0, 0.0, true};
      case GateKind::Const1:
        return {1.0, 1.0, 0.0, 0.0, true};
      case GateKind::Dff: {
        const double pi = nl.dff_init(g) ? 1.0 : 0.0;
        return {pi, pi, 0.0, 0.0, false};  // grows toward lfp via hull
      }
      default:
        return top();  // overwritten by first transfer
    }
  }

  Value transfer(const Netlist& nl, GateId g,
                 const std::vector<BoundsValue>& values) const {
    const Gate& gate = nl.gate(g);
    if (exact != nullptr && g < exact->refined.size() &&
        exact->refined[g] != 0) {
      // BDD-exact joint: the enclosure collapses to the exact point (both
      // marginals of the pair coincide — same function over identically
      // distributed draws).
      const PairDist& d = exact->dist[g];
      return {d.p(), d.p(), d.t(), d.t(), model->pair_mode};
    }
    switch (gate.kind) {
      case GateKind::Input:
      case GateKind::Const0:
      case GateKind::Const1:
        return values[g];
      case GateKind::Dff: {
        if (pin_top_sequential) return top();
        const double pi = nl.dff_init(g) ? 1.0 : 0.0;
        if (gate.fanins.empty() || gate.fanins[0] == netlist::kNullGate)
          return {pi, pi, 0.0, 0.0, false};
        const BoundsValue d = fanin(values, gate.fanins[0]);
        // p: hull over every per-cycle marginal the consumers can see
        // (init at the first evaluation, a registered D marginal after).
        // t (consumer-facing): P(state != init) derived from D's marginal.
        BoundsValue v;
        v.p_lo = std::min(pi, d.p_lo);
        v.p_hi = std::max(pi, d.p_hi);
        if (pi > 0.5) {
          v.t_lo = 1.0 - d.p_hi;
          v.t_hi = 1.0 - d.p_lo;
        } else {
          v.t_lo = d.p_lo;
          v.t_hi = d.p_hi;
        }
        v.indep = false;
        return v;
      }
      case GateKind::Buf:
        return gate.fanins.empty() ? values[g] : fanin(values, gate.fanins[0]);
      case GateKind::Not: {
        if (gate.fanins.empty()) return values[g];
        BoundsValue v = fanin(values, gate.fanins[0]);
        const PInt p = pnot({v.p_lo, v.p_hi});
        v.p_lo = p.lo;
        v.p_hi = p.hi;
        return v;  // toggle and independence are inversion-invariant
      }
      default:
        break;
    }
    // n-ary logic: fold probability intervals through Fréchet combiners,
    // then derive the toggle interval.
    PInt p{0.0, 1.0};
    bool indep = true;
    double t_sum = 0.0;
    bool first = true;
    const bool is_or = gate.kind == GateKind::Or || gate.kind == GateKind::Nor;
    const bool is_xor =
        gate.kind == GateKind::Xor || gate.kind == GateKind::Xnor;
    const bool neg = gate.kind == GateKind::Nand ||
                     gate.kind == GateKind::Nor ||
                     gate.kind == GateKind::Xnor;
    if (gate.kind == GateKind::Mux) {
      if (gate.fanins.size() < 3) return top();
      const BoundsValue s = fanin(values, gate.fanins[0]);
      const BoundsValue d0 = fanin(values, gate.fanins[1]);
      const BoundsValue d1 = fanin(values, gate.fanins[2]);
      // (s & d1) | (~s & d0); Fréchet tolerates the shared select.
      p = por(pand({s.p_lo, s.p_hi}, {d1.p_lo, d1.p_hi}),
              pand(pnot({s.p_lo, s.p_hi}), {d0.p_lo, d0.p_hi}));
      indep = s.indep && d0.indep && d1.indep;
      t_sum = s.t_hi + d0.t_hi + d1.t_hi;
    } else {
      for (GateId f : gate.fanins) {
        const BoundsValue v = fanin(values, f);
        const PInt pf{v.p_lo, v.p_hi};
        if (first) {
          p = pf;
          first = false;
        } else if (is_xor) {
          p = pxor(p, pf);
        } else if (is_or) {
          p = por(p, pf);
        } else {
          p = pand(p, pf);
        }
        indep = indep && v.indep;
        t_sum += v.t_hi;
      }
      if (first) return values[g];  // no fanins: hold
      if (neg) p = pnot(p);
    }
    BoundsValue out;
    out.p_lo = clamp01(p.lo);
    out.p_hi = clamp01(p.hi);
    out.indep = indep;
    if (indep) {
      indep_toggle(out.p_lo, out.p_hi, out.t_lo, out.t_hi);
    } else {
      out.t_lo = 0.0;
      out.t_hi = std::min(1.0, t_sum);
    }
    return out;
  }

  bool changed(const BoundsValue& a, const BoundsValue& b) const {
    return std::fabs(a.p_lo - b.p_lo) > tol || std::fabs(a.p_hi - b.p_hi) > tol ||
           std::fabs(a.t_lo - b.t_lo) > tol || std::fabs(a.t_hi - b.t_hi) > tol ||
           a.indep != b.indep;
  }
};

}  // namespace

BoundsResult run_bounds(const netlist::Netlist& nl,
                        const netlist::NetlistIndex& ix,
                        const BoundsOptions& opts, exec::Meter* meter) {
  const std::size_t n = nl.gate_count();
  BoundsResult res;

  std::vector<std::uint32_t> input_pos(n, 0xffffffffu);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    input_pos[nl.inputs()[i]] = static_cast<std::uint32_t>(i);

  BoundsDomain dom{&opts.inputs, &input_pos, opts.exact};
  res.stats = run_fixpoint(nl, ix, dom, res.value, opts.fixpoint, meter);

  const std::vector<std::uint8_t> seq = sequential_taint(nl, ix);
  if (!res.stats.converged) {
    // The growing hull iteration was cut off, so sequential enclosures may
    // be too narrow. Drop register outputs to top and re-run: the comb part
    // now converges in one pass from unconditionally sound sources.
    BoundsDomain wide = dom;
    wide.pin_top_sequential = true;
    res.stats = run_fixpoint(nl, ix, wide, res.value, opts.fixpoint, meter);
  }
  for (std::size_t g = 0; g < n; ++g) {
    if (seq[g] == 0) continue;
    BoundsValue& v = res.value[g];
    v.p_lo = clamp01(v.p_lo - kSeqSlack);
    v.p_hi = clamp01(v.p_hi + kSeqSlack);
    v.t_lo = clamp01(v.t_lo - kSeqSlack);
    v.t_hi = clamp01(v.t_hi + kSeqSlack);
  }
  return res;
}

}  // namespace hlp::analysis
