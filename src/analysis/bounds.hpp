#pragma once

#include <cstdint>
#include <vector>

#include "analysis/activity.hpp"
#include "analysis/fixpoint.hpp"
#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Guaranteed probability / toggle intervals ------------------------------
///
/// Interval abstraction that makes NO spatial-independence assumption:
/// signal probabilities combine through Fréchet bounds (valid under any
/// correlation between fanins), so [p_lo, p_hi] is a guaranteed enclosure
/// of the true signal probability, and [t_lo, t_hi] of the true toggle
/// probability, under the declared input model. These are what turn the
/// static estimator's output into *provable* upper/lower power bounds.
///
/// Toggle intervals come from two mechanisms:
///  - `indep` gates (combinational cone free of DFFs under the pair input
///    model): the two evaluations are independent draws, so
///    t = 2p(1-p) exactly, and the toggle interval is the image of the
///    probability interval under that map.
///  - everything else: 0 <= t <= min(1, sum of fanin toggles) — an output
///    can only change when some input changed (zero-delay union bound).
struct BoundsValue {
  double p_lo = 0.0, p_hi = 1.0;
  double t_lo = 0.0, t_hi = 1.0;
  /// Pair-mode independence of the two evaluations holds for this net.
  bool indep = false;
};

struct BoundsResult {
  std::vector<BoundsValue> value;
  FixpointStats stats;
};

struct BoundsOptions {
  InputModel inputs;
  FixpointOptions fixpoint;
  /// Collapse p-intervals of gates whose exact joint was computed by the
  /// activity analysis's BDD mode (pass its result); exactness shrinks the
  /// enclosure to a point without weakening the guarantee.
  const ActivityResult* exact = nullptr;
};

BoundsResult run_bounds(const netlist::Netlist& nl,
                        const netlist::NetlistIndex& ix,
                        const BoundsOptions& opts = {},
                        exec::Meter* meter = nullptr);

}  // namespace hlp::analysis
