#pragma once

#include <cstdint>
#include <vector>

#include "analysis/fixpoint.hpp"
#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Arrival-window / glitch-activity bound --------------------------------
///
/// Unit-delay timing abstraction: each net settles somewhere in an arrival
/// window [lo, hi] (gate delays = 1, sources and register outputs arrive at
/// 0). The window width bounds how many times the net can change per cycle:
/// a zero-width window means at most the single functional transition; every
/// extra slot is glitch headroom. `max_transitions` combines the two sound
/// bounds — a gate's output can only change when an input change reaches it
/// (sum of fanin bounds) and only at distinct arrival times within its
/// window — so it is a guaranteed per-cycle transition ceiling under unit
/// delay.
struct ArrivalWindow {
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  std::uint32_t max_transitions = 1;

  std::int32_t width() const { return hi - lo; }
};

struct ArrivalResult {
  std::vector<ArrivalWindow> window;
  FixpointStats stats;
};

ArrivalResult run_arrival(const netlist::Netlist& nl,
                          const netlist::NetlistIndex& ix,
                          const FixpointOptions& opts = {},
                          exec::Meter* meter = nullptr);

}  // namespace hlp::analysis
