#pragma once

#include <cstdint>
#include <vector>

#include "analysis/fixpoint.hpp"
#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Constant / dead-logic propagation -------------------------------------
///
/// Ternary lattice Zero < Varying, One < Varying. Inputs start Varying,
/// constants at their value, DFFs optimistically at their init value (a
/// register is constant iff its D input can never disagree with the init —
/// the least fixpoint of the joined iteration proves exactly that).
enum class ConstValue : std::uint8_t { Zero = 0, One = 1, Varying = 2 };

struct ConstResult {
  std::vector<ConstValue> value;
  std::size_t constant_gates = 0;  ///< logic/DFF gates proven constant
  FixpointStats stats;
};

ConstResult run_const_prop(const netlist::Netlist& nl,
                           const netlist::NetlistIndex& ix,
                           const FixpointOptions& opts = {},
                           exec::Meter* meter = nullptr);

}  // namespace hlp::analysis
