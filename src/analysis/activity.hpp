#pragma once

#include <cstdint>
#include <vector>

#include "analysis/fixpoint.hpp"
#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Signal probability + transition density (point estimates) -------------
///
/// Each net carries the joint distribution of its value at two consecutive
/// observation points — the lag-one temporal correlation model from the
/// paper: a signal is not just P(v=1) but the 2x2 joint
/// P(prev=a, cur=b), from which both the signal probability
/// p = P(cur=1) and the transition density t = P(prev != cur) fall out.
struct PairDist {
  double p00 = 1.0, p01 = 0.0, p10 = 0.0, p11 = 0.0;

  double p() const { return p01 + p11; }       ///< P(cur = 1)
  double p_prev() const { return p10 + p11; }  ///< P(prev = 1)
  double t() const { return p01 + p10; }       ///< toggle probability

  /// Marginals-only joint under the lag-one model: P(0->1)=P(1->0)=t/2.
  static PairDist from_marginals(double p, double t);
  static PairDist constant(bool v) {
    return v ? PairDist{0, 0, 0, 1} : PairDist{1, 0, 0, 0};
  }
};

/// Primary-input statistics. The default (`pair_mode`) matches the packed
/// Monte Carlo and symbolic estimators exactly: each evaluation pair draws
/// two *independent* uniform vectors, so every input has p = 0.5 and
/// t = 2p(1-p) = 0.5 with prev and cur independent. Turning pair_mode off
/// admits arbitrary per-input (p, t) lag-one streams.
struct InputModel {
  bool pair_mode = true;
  double default_p = 0.5;
  double default_t = 0.5;        ///< ignored in pair_mode (t = 2p(1-p))
  std::vector<double> p;         ///< optional per-input override (by position
                                 ///< in Netlist::inputs())
  std::vector<double> t;         ///< per-input toggle override (!pair_mode)

  PairDist dist(std::size_t input_index) const;
};

struct ActivityOptions {
  InputModel inputs;
  FixpointOptions fixpoint;
  /// Exact-mode budget: total BDD nodes the refinement pass may allocate
  /// before it stops (0 disables exact mode). Deliberately a fixed
  /// analysis-level knob, NOT derived from any request budget, so a given
  /// (netlist, options) pair always produces the same values — the serve
  /// cache depends on that.
  std::size_t refine_node_budget = 20000;
};

struct ActivityResult {
  std::vector<PairDist> dist;  ///< per gate; DFF entries are the
                               ///< consumer-facing view (prev = init value,
                               ///< cur = D's marginal); the DFF's *own*
                               ///< toggle is its D fanin's t()
  /// Gate's cone reaches a DFF: its two evaluations are correlated through
  /// the state update, so pair-mode independence does not apply.
  std::vector<std::uint8_t> sequential;
  /// Exact (BDD-computed) joint replaced the decorrelated estimate.
  std::vector<std::uint8_t> refined;
  std::size_t refined_gates = 0;
  std::size_t bdd_nodes = 0;        ///< nodes the refinement actually built
  bool refine_budget_hit = false;   ///< stopped early at refine_node_budget
  FixpointStats stats;              ///< decorrelated propagation
  FixpointStats repropagate_stats;  ///< post-refinement re-propagation
};

/// Propagate pair distributions to fixpoint (fast decorrelated mode:
/// fanins treated as spatially independent, exact otherwise), then — under
/// `refine_node_budget` — rebuild a topological prefix of DFF-free cones as
/// BDDs over doubled variables (prev_i = 2i, cur_i = 2i+1) and replace
/// those gates' joints with exact weighted model counts, which repairs
/// reconvergent-fanout correlation error. Results for refined gates are
/// exact under the input model; unrefined tree-shaped (non-reconvergent)
/// gates are exact already by independence.
ActivityResult run_activity(const netlist::Netlist& nl,
                            const netlist::NetlistIndex& ix,
                            const ActivityOptions& opts = {},
                            exec::Meter* meter = nullptr);

/// Cone-reaches-a-DFF taint, one topo pass (exposed for the bounds
/// analysis, which needs the same flag).
std::vector<std::uint8_t> sequential_taint(const netlist::Netlist& nl,
                                           const netlist::NetlistIndex& ix);

}  // namespace hlp::analysis
