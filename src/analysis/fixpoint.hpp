#pragma once

#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Worklist fixpoint engine over the netlist IR --------------------------
///
/// Every static analysis in this directory (constant propagation, arrival
/// windows, activity point estimates, probability bounds) is a dataflow
/// problem: a value per net from some lattice, a transfer function per gate,
/// iterate until nothing changes. This engine factors the iteration out so a
/// new analysis is just a Domain:
///
///   struct Domain {
///     using Value = ...;
///     /// Value a gate starts from (sources carry their model here; logic
///     /// gates may return anything — their first transfer overwrites it).
///     Value initial(const netlist::Netlist&, netlist::GateId) const;
///     /// Pure function of the current value vector (reads its fanins, and
///     /// for sequential nodes its own current value). Must be monotone in
///     /// the domain's lattice order for the fixpoint to be unique.
///     Value transfer(const netlist::Netlist&, netlist::GateId,
///                    const std::vector<Value>& values) const;
///     /// Convergence test; returning false stops re-propagation from g.
///     bool changed(const Value& before, const Value& after) const;
///   };
///
/// Iteration is chaotic-but-fair: gates are visited in a fixed order per
/// pass, any gate whose value changed marks all its fanouts (including
/// sequential D-pin sinks, so DFF feedback loops propagate) dirty for the
/// next pass, and the run ends at quiescence — every gate satisfies
/// v_g == transfer(g). On a DAG that fixpoint is unique (induction over
/// topological order), so the result is independent of visit order; with
/// sequential feedback, monotone transfer functions make every fair order
/// converge to the same extremal fixpoint (Kleene/chaotic iteration). The
/// default visit order is topological — one pass suffices for the
/// combinational part — and `worklist_salt` applies a deterministic
/// permutation on top, existing so tests can *prove* order-independence
/// rather than assume it.
struct FixpointOptions {
  /// Hard cap on full passes; hitting it is reported, not thrown, because
  /// every intermediate iterate of a monotone narrowing is already sound
  /// (just looser than the fixpoint). Sized so that even a fully permuted
  /// visit order — which may move values only one logic level per pass —
  /// quiesces on realistic depths; topological order rarely needs more
  /// than a handful of passes.
  std::size_t max_passes = 512;
  /// 0: pure topological visit order. Nonzero: deterministic pseudo-random
  /// permutation of that order (splitmix64-driven Fisher-Yates).
  std::uint64_t worklist_salt = 0;
};

struct FixpointStats {
  std::size_t node_evals = 0;  ///< transfer applications (meter steps)
  std::size_t passes = 0;
  bool converged = false;  ///< quiescent before max_passes / budget trip
  exec::StopReason stop = exec::StopReason::None;
};

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Visit order: topological, with gates a cycle kept out of the topo order
/// appended in id order (so even malformed netlists get fair iteration),
/// then salt-permuted.
inline std::vector<netlist::GateId> visit_order(
    const netlist::NetlistIndex& ix, std::size_t n, std::uint64_t salt) {
  std::vector<netlist::GateId> order = ix.topo;
  if (order.size() < n) {
    for (netlist::GateId g = 0; g < n; ++g)
      if (ix.topo_rank[g] == netlist::NetlistIndex::kNoRank)
        order.push_back(g);
  }
  if (salt != 0) {
    std::uint64_t s = salt;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(splitmix64(s) % i);
      std::swap(order[i - 1], order[j]);
    }
  }
  return order;
}

}  // namespace detail

/// Run `dom` to fixpoint. `values` is resized and overwritten; on a budget
/// trip (recorded in stats.stop, never thrown) the values present are a
/// sound intermediate iterate. One meter step is charged per transfer
/// application, so runaway iteration trips deadlines/quotas like any other
/// kernel.
template <class Domain>
FixpointStats run_fixpoint(const netlist::Netlist& nl,
                           const netlist::NetlistIndex& ix, const Domain& dom,
                           std::vector<typename Domain::Value>& values,
                           const FixpointOptions& opts = {},
                           exec::Meter* meter = nullptr) {
  const std::size_t n = nl.gate_count();
  FixpointStats stats;
  values.resize(n);
  for (netlist::GateId g = 0; g < n; ++g) values[g] = dom.initial(nl, g);

  const std::vector<netlist::GateId> order =
      detail::visit_order(ix, n, opts.worklist_salt);
  std::vector<std::uint8_t> dirty(n, 1);
  std::size_t dirty_count = n;

  while (dirty_count > 0 && stats.passes < opts.max_passes) {
    ++stats.passes;
    for (netlist::GateId g : order) {
      if (!dirty[g]) continue;
      dirty[g] = 0;
      --dirty_count;
      if (meter && meter->over_budget(1)) {
        stats.stop = meter->tripped();
        return stats;
      }
      typename Domain::Value next = dom.transfer(nl, g, values);
      ++stats.node_evals;
      if (!dom.changed(values[g], next)) continue;
      values[g] = next;
      for (netlist::GateId s : ix.fanouts(g)) {
        if (!dirty[s]) {
          dirty[s] = 1;
          ++dirty_count;
        }
      }
    }
  }
  stats.converged = dirty_count == 0;
  return stats;
}

}  // namespace hlp::analysis
