#include "analysis/estimate.hpp"

#include <algorithm>

namespace hlp::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

exec::StopReason first_stop(exec::StopReason a, exec::StopReason b) {
  return a != exec::StopReason::None ? a : b;
}

}  // namespace

StaticEstimate static_estimate(const netlist::Netlist& nl,
                               const netlist::NetlistIndex& ix,
                               const StaticOptions& opts, exec::Meter* meter) {
  const std::size_t n = nl.gate_count();
  StaticEstimate est;

  est.constants = run_const_prop(nl, ix, opts.fixpoint, meter);
  est.arrival = run_arrival(nl, ix, opts.fixpoint, meter);
  ActivityOptions aopts;
  aopts.inputs = opts.inputs;
  aopts.fixpoint = opts.fixpoint;
  aopts.refine_node_budget = opts.refine_node_budget;
  est.activity = run_activity(nl, ix, aopts, meter);
  BoundsOptions bopts;
  bopts.inputs = opts.inputs;
  bopts.fixpoint = opts.fixpoint;
  bopts.exact = &est.activity;
  est.bounds = run_bounds(nl, ix, bopts, meter);

  // Constant collapse: a proven-constant net has exact probability and zero
  // toggle; fold that into the activity/bounds/arrival views so every
  // consumer (energy sums below, lint annotations) sees it.
  for (GateId g = 0; g < n; ++g) {
    const ConstValue cv = est.constants.value[g];
    if (cv == ConstValue::Varying) continue;
    const bool one = cv == ConstValue::One;
    est.activity.dist[g] = PairDist::constant(one);
    est.bounds.value[g] = {one ? 1.0 : 0.0, one ? 1.0 : 0.0, 0.0, 0.0, true};
    est.arrival.window[g].max_transitions = 0;
  }

  est.gate_point.assign(n, 0.0);
  est.gate_lower.assign(n, 0.0);
  est.gate_upper.assign(n, 0.0);
  const bool windows_valid = ix.acyclic && est.arrival.stats.converged;
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = nl.gate(g);
    double tp = 0.0, t_lo = 0.0, t_hi = 0.0;
    if (est.constants.value[g] != ConstValue::Varying) {
      // stays zero
    } else if (gate.kind == GateKind::Dff) {
      // The register's own dissipation toggle is state(1) vs state(2) —
      // exactly its D net's value across the two evaluations.
      if (!gate.fanins.empty() && gate.fanins[0] != netlist::kNullGate) {
        const GateId d = gate.fanins[0];
        tp = est.activity.dist[d].t();
        t_lo = est.bounds.value[d].t_lo;
        t_hi = est.bounds.value[d].t_hi;
      }
    } else {
      tp = est.activity.dist[g].t();
      t_lo = est.bounds.value[g].t_lo;
      t_hi = est.bounds.value[g].t_hi;
    }
    const double load = ix.load[g];
    est.gate_point[g] = load * tp;
    est.gate_lower[g] = load * t_lo;
    est.gate_upper[g] = load * t_hi;
    est.point += est.gate_point[g];
    est.lower += est.gate_lower[g];
    est.upper += est.gate_upper[g];
    // Unit-delay ceiling: every transition slot the arrival window admits,
    // at full load. Falls back to the zero-delay bound when windows are
    // unavailable (cyclic netlist).
    const double slots =
        windows_valid
            ? static_cast<double>(est.arrival.window[g].max_transitions)
            : t_hi;
    est.glitch_upper += load * std::max(slots, t_hi);
  }

  est.stop = first_stop(
      est.constants.stats.stop,
      first_stop(est.arrival.stats.stop,
                 first_stop(est.activity.stats.stop,
                            first_stop(est.activity.repropagate_stats.stop,
                                       est.bounds.stats.stop))));
  est.complete = est.stop == exec::StopReason::None &&
                 est.constants.stats.converged && est.activity.stats.converged &&
                 est.bounds.stats.converged;
  return est;
}

}  // namespace hlp::analysis
