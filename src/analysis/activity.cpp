#include "analysis/activity.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdd/bdd.hpp"

namespace hlp::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

constexpr std::uint32_t kNotInput = 0xffffffffu;

double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

/// Output joint of a 2-input gate under spatial independence of its fanins:
/// exact 16-term enumeration of both time points.
template <class F>
PairDist combine2(const PairDist& a, const PairDist& b, F f) {
  const double pa[2][2] = {{a.p00, a.p01}, {a.p10, a.p11}};
  const double pb[2][2] = {{b.p00, b.p01}, {b.p10, b.p11}};
  double out[2][2] = {{0, 0}, {0, 0}};
  for (int ap = 0; ap < 2; ++ap)
    for (int ac = 0; ac < 2; ++ac)
      for (int bp = 0; bp < 2; ++bp)
        for (int bc = 0; bc < 2; ++bc)
          out[f(ap, bp)][f(ac, bc)] += pa[ap][ac] * pb[bp][bc];
  return {out[0][0], out[0][1], out[1][0], out[1][1]};
}

PairDist invert(const PairDist& a) { return {a.p11, a.p10, a.p01, a.p00}; }

/// Mux needs direct 3-input enumeration: folding it as (s&d1)|(~s&d0)
/// would use the select twice and double-count its distribution.
PairDist mux3(const PairDist& s, const PairDist& d0, const PairDist& d1) {
  const double ps[2][2] = {{s.p00, s.p01}, {s.p10, s.p11}};
  const double pa[2][2] = {{d0.p00, d0.p01}, {d0.p10, d0.p11}};
  const double pb[2][2] = {{d1.p00, d1.p01}, {d1.p10, d1.p11}};
  double out[2][2] = {{0, 0}, {0, 0}};
  for (int sp = 0; sp < 2; ++sp)
    for (int sc = 0; sc < 2; ++sc)
      for (int ap = 0; ap < 2; ++ap)
        for (int ac = 0; ac < 2; ++ac)
          for (int bp = 0; bp < 2; ++bp)
            for (int bc = 0; bc < 2; ++bc)
              out[sp != 0 ? bp : ap][sc != 0 ? bc : ac] +=
                  ps[sp][sc] * pa[ap][ac] * pb[bp][bc];
  return {out[0][0], out[0][1], out[1][0], out[1][1]};
}

struct ActivityDomain {
  using Value = PairDist;

  const InputModel* model;
  const std::vector<std::uint32_t>* input_pos;
  /// When set, transfer(g) returns pinned[g] for masked gates — used to
  /// hold BDD-exact joints fixed while the decorrelated values downstream
  /// of them re-propagate.
  const std::vector<PairDist>* pinned = nullptr;
  const std::vector<std::uint8_t>* pin_mask = nullptr;
  double tol = 1e-12;

  PairDist fanin(const std::vector<PairDist>& values, GateId f) const {
    if (f == netlist::kNullGate || f >= values.size())
      return PairDist::constant(false);
    return values[f];
  }

  Value initial(const Netlist& nl, GateId g) const {
    if (pin_mask && (*pin_mask)[g]) return (*pinned)[g];
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input:
        return model->dist((*input_pos)[g]);
      case GateKind::Const0:
        return PairDist::constant(false);
      case GateKind::Const1:
        return PairDist::constant(true);
      case GateKind::Dff:
        return PairDist::constant(nl.dff_init(g));
      default:
        return PairDist::constant(false);  // overwritten by first transfer
    }
  }

  Value transfer(const Netlist& nl, GateId g,
                 const std::vector<PairDist>& values) const {
    if (pin_mask && (*pin_mask)[g]) return (*pinned)[g];
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input:
      case GateKind::Const0:
      case GateKind::Const1:
        return values[g];  // sources hold their model
      case GateKind::Dff: {
        // Consumer view: prev = the init value (pre-update state), cur = the
        // registered D marginal; the components decorrelate across the state
        // update boundary.
        const double pi = nl.dff_init(g) ? 1.0 : 0.0;
        const double pd = gate.fanins.empty()
                              ? pi
                              : fanin(values, gate.fanins[0]).p();
        return {(1 - pi) * (1 - pd), (1 - pi) * pd, pi * (1 - pd), pi * pd};
      }
      case GateKind::Buf:
        return gate.fanins.empty() ? values[g] : fanin(values, gate.fanins[0]);
      case GateKind::Not:
        return gate.fanins.empty() ? values[g]
                                   : invert(fanin(values, gate.fanins[0]));
      case GateKind::And:
      case GateKind::Nand:
      case GateKind::Or:
      case GateKind::Nor:
      case GateKind::Xor:
      case GateKind::Xnor: {
        const bool is_or =
            gate.kind == GateKind::Or || gate.kind == GateKind::Nor;
        const bool is_xor =
            gate.kind == GateKind::Xor || gate.kind == GateKind::Xnor;
        const bool neg = gate.kind == GateKind::Nand ||
                         gate.kind == GateKind::Nor ||
                         gate.kind == GateKind::Xnor;
        PairDist acc = PairDist::constant(!is_or && !is_xor);
        bool first = true;
        for (GateId f : gate.fanins) {
          PairDist v = fanin(values, f);
          if (first) {
            acc = v;
            first = false;
          } else if (is_xor) {
            acc = combine2(acc, v, [](int a, int b) { return a ^ b; });
          } else if (is_or) {
            acc = combine2(acc, v, [](int a, int b) { return a | b; });
          } else {
            acc = combine2(acc, v, [](int a, int b) { return a & b; });
          }
        }
        return neg ? invert(acc) : acc;
      }
      case GateKind::Mux: {
        if (gate.fanins.size() < 3) return values[g];
        return mux3(fanin(values, gate.fanins[0]),
                    fanin(values, gate.fanins[1]),
                    fanin(values, gate.fanins[2]));
      }
    }
    return values[g];
  }

  bool changed(const PairDist& a, const PairDist& b) const {
    return std::fabs(a.p00 - b.p00) > tol || std::fabs(a.p01 - b.p01) > tol ||
           std::fabs(a.p10 - b.p10) > tol || std::fabs(a.p11 - b.p11) > tol;
  }
};

/// Weighted model counting over doubled-variable BDDs. Variable 2k is
/// input k at the previous time point, 2k+1 at the current one; the pair
/// is adjacent in the order, so one recursion step consumes both and
/// applies the input's lag-one joint as the weight. Distinct input pairs
/// are mutually independent, which is what makes the per-node memo valid.
class PairCounter {
 public:
  PairCounter(bdd::Manager& mgr, const std::vector<PairDist>& input_dist)
      : mgr_(mgr), dist_(input_dist) {}

  double count(bdd::NodeRef f) {
    if (f == bdd::kFalse) return 0.0;
    if (f == bdd::kTrue) return 1.0;
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    const std::uint32_t v = mgr_.node_var(f);
    const std::uint32_t k = v >> 1;
    const PairDist& d = dist_[k];
    double r;
    if ((v & 1u) != 0) {
      // Top var is cur_k with no prev_k above it; ordered BDDs place prev_k
      // (the smaller var) only above, so f is independent of prev_k and the
      // marginal P(cur_k = 1) is the right weight.
      r = d.p() * count(mgr_.node_hi(f)) +
          (1.0 - d.p()) * count(mgr_.node_lo(f));
    } else {
      const double joint[2][2] = {{d.p00, d.p01}, {d.p10, d.p11}};
      r = 0.0;
      for (int a = 0; a < 2; ++a) {
        bdd::NodeRef fa = a != 0 ? mgr_.node_hi(f) : mgr_.node_lo(f);
        bdd::NodeRef fb[2] = {fa, fa};
        if (!mgr_.is_terminal(fa) && mgr_.node_var(fa) == v + 1) {
          fb[0] = mgr_.node_lo(fa);
          fb[1] = mgr_.node_hi(fa);
        }
        r += joint[a][0] * count(fb[0]) + joint[a][1] * count(fb[1]);
      }
    }
    memo_.emplace(f, r);
    return r;
  }

 private:
  bdd::Manager& mgr_;
  const std::vector<PairDist>& dist_;
  std::unordered_map<bdd::NodeRef, double> memo_;
};

}  // namespace

PairDist PairDist::from_marginals(double p, double t) {
  p = clamp01(p);
  // The joint must be a distribution: t/2 <= min(p, 1-p).
  t = std::min(clamp01(t), 2.0 * std::min(p, 1.0 - p));
  const double h = t / 2.0;
  return {1.0 - p - h, h, h, p - h};
}

PairDist InputModel::dist(std::size_t input_index) const {
  const double pi =
      input_index < p.size() ? clamp01(p[input_index]) : clamp01(default_p);
  if (pair_mode) {
    // Two independent draws: joint = product of identical marginals.
    return {(1 - pi) * (1 - pi), (1 - pi) * pi, pi * (1 - pi), pi * pi};
  }
  const double ti = input_index < t.size() ? t[input_index] : default_t;
  return PairDist::from_marginals(pi, ti);
}

std::vector<std::uint8_t> sequential_taint(const netlist::Netlist& nl,
                                           const netlist::NetlistIndex& ix) {
  const std::size_t n = nl.gate_count();
  std::vector<std::uint8_t> seq(n, 0);
  for (GateId g = 0; g < n; ++g)
    if (nl.gate(g).kind == GateKind::Dff) seq[g] = 1;
  for (GateId g : ix.topo) {
    const Gate& gate = nl.gate(g);
    if (!netlist::is_logic(gate.kind)) continue;
    for (GateId f : gate.fanins)
      if (f != netlist::kNullGate && f < n && seq[f] != 0) {
        seq[g] = 1;
        break;
      }
  }
  // Gates on combinational cycles never enter the topo order; taint them so
  // no caller treats their pair statistics as independent.
  for (GateId g = 0; g < n; ++g)
    if (ix.topo_rank[g] == netlist::NetlistIndex::kNoRank) seq[g] = 1;
  return seq;
}

ActivityResult run_activity(const netlist::Netlist& nl,
                            const netlist::NetlistIndex& ix,
                            const ActivityOptions& opts, exec::Meter* meter) {
  const std::size_t n = nl.gate_count();
  ActivityResult res;

  std::vector<std::uint32_t> input_pos(n, kNotInput);
  std::vector<PairDist> input_dist(nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    input_pos[nl.inputs()[i]] = static_cast<std::uint32_t>(i);
    input_dist[i] = opts.inputs.dist(i);
  }

  ActivityDomain dom{&opts.inputs, &input_pos};
  res.stats = run_fixpoint(nl, ix, dom, res.dist, opts.fixpoint, meter);
  res.sequential = sequential_taint(nl, ix);
  res.refined.assign(n, 0);
  if (opts.refine_node_budget == 0 || res.stats.stop != exec::StopReason::None)
    return res;

  // --- Exact mode: rebuild DFF-free cones as doubled-variable BDDs -------
  // Deterministic: topo prefix, fixed node budget, no wall-clock influence
  // on which gates get refined. A 4x backstop meter guards against a single
  // ITE blowing far past the budget between checks.
  bdd::Manager mgr;
  exec::Budget backstop_budget;
  backstop_budget.node_cap = 4 * opts.refine_node_budget + 1024;
  exec::Meter backstop(backstop_budget);
  mgr.set_meter(&backstop);
  std::vector<bdd::NodeRef> fprev(n, bdd::kFalse), fcur(n, bdd::kFalse);
  std::vector<std::uint8_t> built(n, 0);
  PairCounter counter(mgr, input_dist);

  for (GateId g : ix.topo) {
    if (res.sequential[g] != 0) continue;
    if (meter && meter->over_budget(1)) {
      res.refine_budget_hit = true;
      break;
    }
    const Gate& gate = nl.gate(g);
    bool ok = true;
    for (GateId f : gate.fanins)
      ok = ok && f != netlist::kNullGate && f < n && built[f] != 0;
    if (!ok) continue;
    try {
      bdd::NodeRef pcur = bdd::kFalse;
      bdd::NodeRef pprev = bdd::kFalse;
      switch (gate.kind) {
        case GateKind::Input: {
          const std::uint32_t i = input_pos[g];
          pprev = mgr.var(2 * i);
          pcur = mgr.var(2 * i + 1);
          break;
        }
        case GateKind::Const0:
          break;
        case GateKind::Const1:
          pprev = pcur = bdd::kTrue;
          break;
        case GateKind::Buf:
        case GateKind::Not: {
          if (gate.fanins.empty()) continue;
          pprev = fprev[gate.fanins[0]];
          pcur = fcur[gate.fanins[0]];
          if (gate.kind == GateKind::Not) {
            pprev = mgr.bdd_not(pprev);
            pcur = mgr.bdd_not(pcur);
          }
          break;
        }
        case GateKind::And:
        case GateKind::Nand:
        case GateKind::Or:
        case GateKind::Nor:
        case GateKind::Xor:
        case GateKind::Xnor: {
          if (gate.fanins.empty()) continue;
          const bool is_or =
              gate.kind == GateKind::Or || gate.kind == GateKind::Nor;
          const bool is_xor =
              gate.kind == GateKind::Xor || gate.kind == GateKind::Xnor;
          const bool neg = gate.kind == GateKind::Nand ||
                           gate.kind == GateKind::Nor ||
                           gate.kind == GateKind::Xnor;
          pprev = fprev[gate.fanins[0]];
          pcur = fcur[gate.fanins[0]];
          for (std::size_t i = 1; i < gate.fanins.size(); ++i) {
            const GateId f = gate.fanins[i];
            if (is_xor) {
              pprev = mgr.bdd_xor(pprev, fprev[f]);
              pcur = mgr.bdd_xor(pcur, fcur[f]);
            } else if (is_or) {
              pprev = mgr.bdd_or(pprev, fprev[f]);
              pcur = mgr.bdd_or(pcur, fcur[f]);
            } else {
              pprev = mgr.bdd_and(pprev, fprev[f]);
              pcur = mgr.bdd_and(pcur, fcur[f]);
            }
          }
          if (neg) {
            pprev = mgr.bdd_not(pprev);
            pcur = mgr.bdd_not(pcur);
          }
          break;
        }
        case GateKind::Mux: {
          if (gate.fanins.size() < 3) continue;
          pprev = mgr.ite(fprev[gate.fanins[0]], fprev[gate.fanins[2]],
                          fprev[gate.fanins[1]]);
          pcur = mgr.ite(fcur[gate.fanins[0]], fcur[gate.fanins[2]],
                         fcur[gate.fanins[1]]);
          break;
        }
        case GateKind::Dff:
          continue;  // sequential; never reached (taint), kept for the enum
      }
      fprev[g] = pprev;
      fcur[g] = pcur;
      built[g] = 1;
      if (netlist::is_logic(gate.kind)) {
        const double pp = counter.count(pprev);
        const double pc = counter.count(pcur);
        const double p11 = counter.count(mgr.bdd_and(pprev, pcur));
        res.dist[g] = {clamp01(1.0 - pp - pc + p11), clamp01(pc - p11),
                       clamp01(pp - p11), clamp01(p11)};
        res.refined[g] = 1;
        ++res.refined_gates;
      }
    } catch (const exec::BudgetExceeded&) {
      res.refine_budget_hit = true;
      break;
    }
    if (mgr.total_nodes() > opts.refine_node_budget) {
      res.refine_budget_hit = true;
      break;
    }
  }
  res.bdd_nodes = mgr.total_nodes();

  // Re-propagate so decorrelated gates downstream of refined ones see the
  // corrected joints; refined gates stay pinned to their exact values.
  if (res.refined_gates > 0) {
    std::vector<PairDist> pins = res.dist;
    ActivityDomain dom2 = dom;
    dom2.pinned = &pins;
    dom2.pin_mask = &res.refined;
    res.repropagate_stats =
        run_fixpoint(nl, ix, dom2, res.dist, opts.fixpoint, meter);
  }
  return res;
}

}  // namespace hlp::analysis
