#pragma once

#include <cstdint>
#include <vector>

#include "analysis/activity.hpp"
#include "analysis/arrival.hpp"
#include "analysis/bounds.hpp"
#include "analysis/const_prop.hpp"
#include "exec/exec.hpp"
#include "netlist/index.hpp"
#include "netlist/netlist.hpp"

namespace hlp::analysis {

/// --- Static switched-capacitance estimator ----------------------------------
///
/// Composes the four dataflow analyses into the same quantity the
/// simulation/symbolic kernels report — expected switched capacitance per
/// evaluation pair, sum over all gates of load(g) * P(g toggles) — but with
/// zero simulation:
///
///   point  : decorrelated/BDD-exact transition densities (activity.hpp)
///   bounds : guaranteed [lower, upper] from Fréchet intervals (bounds.hpp);
///            for any input distribution matching the model, the true
///            expectation — and hence the symbolic kernel's value and the
///            packed Monte Carlo estimate's mean — lies inside
///   glitch_upper : worst-case unit-delay transition ceiling (arrival.hpp),
///            an upper bound on real-hardware glitching the zero-delay
///            kernels cannot see
///
/// Constant-proven gates (const_prop.hpp) collapse to zero activity exactly,
/// tightening every figure. Bound tightness degrades with reconvergent
/// fanout outside the BDD refinement prefix and across register boundaries
/// (pair-independence is lost there; only the union bound survives).
struct StaticOptions {
  InputModel inputs;
  FixpointOptions fixpoint;
  /// BDD node budget for the exact refinement prefix (see ActivityOptions);
  /// fixed per options, never derived from a request budget.
  std::size_t refine_node_budget = 20000;
  netlist::CapacitanceModel cap{};
};

struct StaticEstimate {
  double point = 0.0;   ///< expected switched cap per evaluation pair
  double lower = 0.0;   ///< guaranteed bounds bracketing the true mean
  double upper = 0.0;
  double glitch_upper = 0.0;  ///< unit-delay worst-case (glitch) ceiling

  std::vector<double> gate_point;  ///< load(g) * t_point(g)
  std::vector<double> gate_lower;
  std::vector<double> gate_upper;

  ConstResult constants;  ///< post-collapse views of the sub-analyses
  ArrivalResult arrival;
  ActivityResult activity;
  BoundsResult bounds;

  bool complete = true;  ///< all fixpoints converged, no budget trip
  exec::StopReason stop = exec::StopReason::None;

  /// Relative bound spread (upper-lower)/point; 0 when point is 0.
  double spread() const {
    return point > 0.0 ? (upper - lower) / point : 0.0;
  }
};

StaticEstimate static_estimate(const netlist::Netlist& nl,
                               const netlist::NetlistIndex& ix,
                               const StaticOptions& opts = {},
                               exec::Meter* meter = nullptr);

}  // namespace hlp::analysis
