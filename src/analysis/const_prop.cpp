#include "analysis/const_prop.hpp"

namespace hlp::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

ConstValue join(ConstValue a, ConstValue b) {
  return a == b ? a : ConstValue::Varying;
}

struct ConstDomain {
  using Value = ConstValue;

  Value fanin(const std::vector<Value>& values, GateId f) const {
    if (f == netlist::kNullGate || f >= values.size())
      return ConstValue::Varying;
    return values[f];
  }

  Value initial(const Netlist& nl, GateId g) const {
    switch (nl.gate(g).kind) {
      case GateKind::Const0:
        return ConstValue::Zero;
      case GateKind::Const1:
        return ConstValue::One;
      case GateKind::Dff:
        // Optimistic: stays at init unless D can disagree (least fixpoint).
        return nl.dff_init(g) ? ConstValue::One : ConstValue::Zero;
      case GateKind::Input:
        return ConstValue::Varying;
      default:
        return ConstValue::Varying;  // pessimistic seed; first transfer
                                     // recomputes from fanins
    }
  }

  Value transfer(const Netlist& nl, GateId g,
                 const std::vector<Value>& values) const {
    const Gate& gate = nl.gate(g);
    switch (gate.kind) {
      case GateKind::Input:
      case GateKind::Const0:
      case GateKind::Const1:
        return values[g];
      case GateKind::Dff: {
        const ConstValue init =
            nl.dff_init(g) ? ConstValue::One : ConstValue::Zero;
        if (gate.fanins.empty() || gate.fanins[0] == netlist::kNullGate)
          return init;
        return join(init, fanin(values, gate.fanins[0]));
      }
      default:
        break;
    }
    // Ternary evaluation: exact when all fanins are constant, absorbing
    // shortcuts otherwise (And with a 0, Or with a 1, Mux with constant
    // select), Varying where a Varying fanin can influence the output.
    bool all_const = true;
    for (GateId f : gate.fanins)
      all_const = all_const && fanin(values, f) != ConstValue::Varying;
    if (all_const && !gate.fanins.empty()) {
      std::vector<std::uint8_t> bits(gate.fanins.size());
      for (std::size_t i = 0; i < gate.fanins.size(); ++i)
        bits[i] =
            fanin(values, gate.fanins[i]) == ConstValue::One ? 1 : 0;
      return netlist::eval_gate(gate.kind, bits) ? ConstValue::One
                                                 : ConstValue::Zero;
    }
    switch (gate.kind) {
      case GateKind::And:
      case GateKind::Nand: {
        for (GateId f : gate.fanins)
          if (fanin(values, f) == ConstValue::Zero)
            return gate.kind == GateKind::And ? ConstValue::Zero
                                              : ConstValue::One;
        return ConstValue::Varying;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        for (GateId f : gate.fanins)
          if (fanin(values, f) == ConstValue::One)
            return gate.kind == GateKind::Or ? ConstValue::One
                                             : ConstValue::Zero;
        return ConstValue::Varying;
      }
      case GateKind::Mux: {
        if (gate.fanins.size() < 3) return ConstValue::Varying;
        const ConstValue sel = fanin(values, gate.fanins[0]);
        const ConstValue d0 = fanin(values, gate.fanins[1]);
        const ConstValue d1 = fanin(values, gate.fanins[2]);
        if (sel == ConstValue::Zero) return d0;
        if (sel == ConstValue::One) return d1;
        return join(d0, d1);  // constant only if both branches agree
      }
      default:
        return ConstValue::Varying;  // Buf/Not/Xor/Xnor with a Varying fanin
    }
  }

  bool changed(ConstValue a, ConstValue b) const { return a != b; }
};

}  // namespace

ConstResult run_const_prop(const netlist::Netlist& nl,
                           const netlist::NetlistIndex& ix,
                           const FixpointOptions& opts, exec::Meter* meter) {
  ConstResult res;
  ConstDomain dom;
  res.stats = run_fixpoint(nl, ix, dom, res.value, opts, meter);
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    const GateKind k = nl.gate(g).kind;
    const bool reducible = netlist::is_logic(k) || k == GateKind::Dff;
    if (reducible && res.value[g] != ConstValue::Varying) ++res.constant_gates;
  }
  return res;
}

}  // namespace hlp::analysis
