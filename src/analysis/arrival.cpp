#include "analysis/arrival.hpp"

#include <algorithm>
#include <limits>

namespace hlp::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

constexpr std::uint32_t kTransitionCap = 1u << 20;

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t s = std::uint64_t{a} + b;
  return s > kTransitionCap ? kTransitionCap : static_cast<std::uint32_t>(s);
}

struct ArrivalDomain {
  using Value = ArrivalWindow;

  Value fanin(const std::vector<Value>& values, GateId f) const {
    if (f == netlist::kNullGate || f >= values.size()) return {};
    return values[f];
  }

  Value initial(const Netlist& nl, GateId g) const {
    switch (nl.gate(g).kind) {
      case GateKind::Const0:
      case GateKind::Const1:
        return {0, 0, 0};  // constants never transition
      default:
        return {0, 0, 1};  // inputs and register outputs: settled at t=0,
                           // at most the single functional transition
    }
  }

  Value transfer(const Netlist& nl, GateId g,
                 const std::vector<Value>& values) const {
    const Gate& gate = nl.gate(g);
    if (!netlist::is_logic(gate.kind) || gate.fanins.empty())
      return values[g];  // sources hold their initial window
    ArrivalWindow w;
    w.lo = std::numeric_limits<std::int32_t>::max();
    w.hi = 0;
    std::uint32_t sum = 0;
    for (GateId f : gate.fanins) {
      const ArrivalWindow fw = fanin(values, f);
      w.lo = std::min(w.lo, fw.lo);
      w.hi = std::max(w.hi, fw.hi);
      sum = sat_add(sum, fw.max_transitions);
    }
    w.lo = std::min(w.lo + 1, static_cast<std::int32_t>(kTransitionCap));
    w.hi = std::min(w.hi + 1, static_cast<std::int32_t>(kTransitionCap));
    // Two independent ceilings: changes must arrive from some fanin change,
    // and land on distinct unit-delay slots inside the window.
    w.max_transitions =
        std::min(sum, static_cast<std::uint32_t>(w.width()) + 1);
    return w;
  }

  bool changed(const ArrivalWindow& a, const ArrivalWindow& b) const {
    return a.lo != b.lo || a.hi != b.hi ||
           a.max_transitions != b.max_transitions;
  }
};

}  // namespace

ArrivalResult run_arrival(const netlist::Netlist& nl,
                          const netlist::NetlistIndex& ix,
                          const FixpointOptions& opts, exec::Meter* meter) {
  // Windows are only meaningful on an acyclic netlist; on a cyclic one the
  // clamped iteration still terminates (value growth is capped and
  // max_passes bounds the passes) but stats.converged reports false and
  // callers must not trust windows of gates on the cycle.
  ArrivalResult res;
  ArrivalDomain dom;
  res.stats = run_fixpoint(nl, ix, dom, res.window, opts, meter);
  return res;
}

}  // namespace hlp::analysis
