#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace hlp::lint {

namespace {

using cdfg::Cdfg;
using cdfg::OpId;
using cdfg::OpKind;

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Input: return "input";
    case OpKind::Const: return "const";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Shift: return "shift";
    case OpKind::Cmp: return "cmp";
    case OpKind::Mux: return "mux";
    case OpKind::Output: return "output";
  }
  return "?";
}

void emit(Report& rep, const LintOptions& opts, std::string_view rule,
          const Cdfg& g, OpId id, std::string message) {
  if (!opts.enabled(rule)) return;
  Diagnostic d;
  d.rule_id = std::string(rule);
  d.severity = RuleRegistry::global().severity(rule);
  d.loc.ir = Ir::Cdfg;
  d.loc.object = id;
  if (id != kNoObject && id < g.size()) d.loc.name = g.op(id).name;
  d.message = std::move(message);
  rep.diags.push_back(std::move(d));
}

std::string op_label(const Cdfg& g, OpId id) {
  std::string s = "op";
  s += std::to_string(id);
  s += '(';
  s += op_kind_name(g.op(id).kind);
  if (!g.op(id).name.empty()) {
    s += ' ';
    s += g.op(id).name;
  }
  s += ')';
  return s;
}

/// CD-REF + CD-ARITY; returns false when any operand reference is invalid.
bool check_refs_and_arity(const Cdfg& g, const LintOptions& opts,
                          Report& rep) {
  bool ok = true;
  for (OpId id = 0; id < g.size(); ++id) {
    const cdfg::Op& op = g.op(id);
    for (OpId p : op.preds) {
      // Ops are topologically ordered by construction, so any operand id
      // at or beyond the op itself is a use before its definition.
      if (p >= id) {
        emit(rep, opts, "CD-REF", g, id,
             op_label(g, id) + " uses operand " + std::to_string(p) +
                 (p >= g.size() ? " which does not exist"
                                : " before it is defined"));
        ok = false;
      }
    }
    const std::size_t k = op.preds.size();
    std::size_t want_lo = 0, want_hi = 0;
    switch (op.kind) {
      case OpKind::Input:
      case OpKind::Const: want_lo = want_hi = 0; break;
      case OpKind::Output: want_lo = want_hi = 1; break;
      case OpKind::Mux: want_lo = want_hi = 3; break;
      case OpKind::Shift: want_lo = 1; want_hi = 2; break;  // constant shift
      default: want_lo = want_hi = 2; break;  // Add/Sub/Mul/Cmp
    }
    if (k < want_lo || k > want_hi)
      emit(rep, opts, "CD-ARITY", g, id,
           op_label(g, id) + " has " + std::to_string(k) +
               " operand(s), expected " +
               (want_lo == want_hi
                    ? std::to_string(want_lo)
                    : std::to_string(want_lo) + ".." +
                          std::to_string(want_hi)));
  }
  return ok;
}

void check_widths_and_liveness(const Cdfg& g, const LintOptions& opts,
                               Report& rep) {
  // CD-WIDTH: binary compute ops whose operand widths disagree; the energy
  // models are width-driven, so a silent width mixup skews estimates.
  for (OpId id = 0; id < g.size(); ++id) {
    const cdfg::Op& op = g.op(id);
    if (op.preds.size() == 2 && Cdfg::is_compute(op.kind) &&
        op.kind != OpKind::Shift) {
      int w0 = g.op(op.preds[0]).width;
      int w1 = g.op(op.preds[1]).width;
      if (w0 != w1)
        emit(rep, opts, "CD-WIDTH", g, id,
             op_label(g, id) + " mixes operand widths " +
                 std::to_string(w0) + " and " + std::to_string(w1));
    }
  }

  // CD-DEAD: values never consumed (and not outputs) are scheduled,
  // bound, and powered for nothing.
  std::vector<std::uint32_t> uses(g.size(), 0);
  for (OpId id = 0; id < g.size(); ++id)
    for (OpId p : g.op(id).preds) ++uses[p];
  for (OpId id = 0; id < g.size(); ++id)
    if (uses[id] == 0 && g.op(id).kind != OpKind::Output)
      emit(rep, opts, "CD-DEAD", g, id,
           op_label(g, id) + " result is never consumed");
}

}  // namespace

Report run_cdfg(const Cdfg& g, const LintOptions& opts) {
  Report rep;
  if (!check_refs_and_arity(g, opts, rep)) return rep;
  check_widths_and_liveness(g, opts, rep);
  return rep;
}

Report run_cdfg(const Cdfg& g, const cdfg::Schedule& s,
                const std::map<OpKind, int>& limits,
                const cdfg::OpDelays& delays, const LintOptions& opts) {
  Report rep = run_cdfg(g, opts);
  if (rep.has_errors()) return rep;

  // CD-UNSCHED: every op needs a start step, and no op may start before
  // all of its operands finish.
  if (s.start.size() != g.size()) {
    emit(rep, opts, "CD-UNSCHED", g, kNoObject,
         "schedule covers " + std::to_string(s.start.size()) + " of " +
             std::to_string(g.size()) + " ops");
    return rep;
  }
  for (OpId id = 0; id < g.size(); ++id) {
    if (s.start[id] < 0) {
      emit(rep, opts, "CD-UNSCHED", g, id,
           op_label(g, id) + " has no start step");
      continue;
    }
    for (OpId p : g.op(id).preds) {
      int ready = s.start[p] + delays.of(g.op(p).kind);
      if (s.start[id] < ready)
        emit(rep, opts, "CD-UNSCHED", g, id,
             op_label(g, id) + " starts at step " +
                 std::to_string(s.start[id]) + " before operand " +
                 op_label(g, p) + " finishes at step " +
                 std::to_string(ready));
    }
  }
  if (rep.has_errors()) return rep;

  // CD-RESOURCE: concurrent occupancy per op kind against the binding
  // limits (sweep-line over start/finish events).
  for (const auto& [kind, limit] : limits) {
    if (limit <= 0) continue;
    std::map<int, int> delta;
    for (OpId id = 0; id < g.size(); ++id) {
      if (g.op(id).kind != kind) continue;
      int dur = delays.of(kind);
      if (dur <= 0) continue;
      ++delta[s.start[id]];
      --delta[s.start[id] + dur];
    }
    int busy = 0;
    for (const auto& [step, d] : delta) {
      busy += d;
      if (busy > limit) {
        emit(rep, opts, "CD-RESOURCE", g, kNoObject,
             std::string(op_kind_name(kind)) + " occupancy " +
                 std::to_string(busy) + " at step " + std::to_string(step) +
                 " exceeds the limit of " + std::to_string(limit));
        break;
      }
    }
  }
  return rep;
}

}  // namespace hlp::lint
