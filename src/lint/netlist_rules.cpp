#include <algorithm>
#include <charconv>
#include <string>
#include <vector>

#include "analysis/activity.hpp"
#include "analysis/arrival.hpp"
#include "analysis/const_prop.hpp"
#include "lint/lint.hpp"
#include "netlist/index.hpp"

namespace hlp::lint {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

class NetlistLinter {
 public:
  NetlistLinter(const Netlist& nl, const LintOptions& opts)
      : nl_(nl), opts_(opts), n_(static_cast<GateId>(nl.gate_count())) {}

  Report run() {
    if (!check_refs_and_arity()) return finish();
    // One shared structural index for every rule below: CSR fanouts,
    // cycle-tolerant topo order, logic levels, and capacitive loads, built
    // once in O(V + E). The rules used to each rebuild their own slice of
    // this (three separate fanout walks per run), which is where the
    // bench_lint throughput sweep lost linearity.
    ix_ = netlist::build_index(nl_);
    const bool acyclic = check_cycles();
    check_outputs();
    check_liveness();
    check_fanout_cap();
    // The dataflow analyses only pay their way when some enabled rule
    // consumes them: activity + arrival back the quantitative power tier
    // (opts.quantify), const-propagation backs NL-CONST.
    const bool need_quant =
        opts_.quantify && opts_.power_rules &&
        (opts_.enabled("PW-BOUND") || opts_.enabled("PW-GLITCH") ||
         opts_.enabled("PW-GATE") || opts_.enabled("PW-HOTCAP"));
    if (arity_ok_ && acyclic)
      run_analyses(need_quant, opts_.enabled("NL-CONST"));
    if (have_const_) {
      // The quantitative tiers can emit one diagnostic per gate; an exact
      // string-free pre-count makes the report vector grow once instead of
      // through repeated reallocation-and-move of every diagnostic.
      rep_.diags.reserve(rep_.diags.size() + quant_candidates());
      check_const();
    }
    if (opts_.power_rules && acyclic) power_rules();
    return finish();
  }

 private:
  /// Rank the power tier: move Power diagnostics after the functional ones
  /// and order them by estimated waste, largest first, so consumers (CLI,
  /// serve) read them as a prioritized optimization worklist. Sorts an
  /// index permutation and moves each Diagnostic exactly once — sorting the
  /// ~150-byte structs directly costs n log n moves, which dominated lint
  /// time on diag-heavy netlists.
  Report finish() {
    std::vector<Diagnostic>& diags = rep_.diags;
    std::size_t n_power = 0;
    for (const Diagnostic& d : diags)
      if (d.severity == Severity::Power) ++n_power;
    std::vector<Diagnostic> power;
    power.reserve(n_power);
    std::size_t w = 0;
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (diags[i].severity == Severity::Power)
        power.push_back(std::move(diags[i]));
      else if (w++ != i)
        diags[w - 1] = std::move(diags[i]);
    }
    diags.resize(w);
    std::vector<std::uint32_t> ord(power.size());
    for (std::uint32_t i = 0; i < ord.size(); ++i) ord[i] = i;
    std::stable_sort(ord.begin(), ord.end(),
                     [&power](std::uint32_t a, std::uint32_t b) {
                       return power[a].waste > power[b].waste;
                     });
    for (std::uint32_t i : ord) diags.push_back(std::move(power[i]));
    return std::move(rep_);
  }

  void emit(std::string_view rule, GateId g, std::string message,
            double waste = 0.0) {
    if (!opts_.enabled(rule)) return;
    // Rules emit in runs (one rule, many gates), so a one-entry memo on the
    // id pointer avoids a registry scan per diagnostic — measurable when a
    // large netlist produces tens of thousands of them.
    if (rule.data() != memo_rule_) {
      memo_rule_ = rule.data();
      memo_severity_ = RuleRegistry::global().severity(rule);
    }
    Diagnostic& d = rep_.diags.emplace_back();
    d.rule_id.assign(rule.data(), rule.size());
    d.severity = memo_severity_;
    d.loc.ir = Ir::Netlist;
    d.loc.object = g;
    if (g != netlist::kNullGate && g < n_) d.loc.name = nl_.gate(g).name;
    d.message = std::move(message);
    d.waste = waste;
  }

  /// Append a decimal integer via to_chars (snprintf's locale machinery is
  /// measurable at tens of thousands of diagnostics per run).
  template <typename Int>
  static void num_to(std::string& out, Int v) {
    char buf[24];
    char* end = std::to_chars(buf, buf + sizeof buf, v).ptr;
    out.append(buf, end);
  }

  /// Append "n<id>(<kind> <name>)" to `out` without intermediate strings
  /// (diagnostic formatting dominates lint time on diag-heavy netlists).
  void net_label_to(std::string& out, GateId g) const {
    const Gate& gate = nl_.gate(g);
    out += 'n';
    num_to(out, g);
    out += '(';
    out += netlist::kind_name(gate.kind);
    if (!gate.name.empty()) {
      out += ' ';
      out += gate.name;
    }
    out += ')';
  }

  std::string net_label(GateId g) const {
    std::string s;
    net_label_to(s, g);
    return s;
  }

  /// Reusable message buffer: `msg()` clears and returns it; pass the
  /// result to emit() via std::move (the moved-from string keeps its
  /// capacity heuristically on most implementations, but correctness never
  /// depends on that).
  std::string& msg() {
    msg_.clear();
    return msg_;
  }

  /// NL-REF, NL-ARITY, NL-DFF-D. Returns false when any fanin reference is
  /// invalid: the graph passes cannot run over dangling ids.
  bool check_refs_and_arity() {
    bool refs_ok = true;
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      for (GateId f : g.fanins) {
        if (f >= n_) {
          emit("NL-REF", id,
               "fanin " + std::to_string(f) + " of " + net_label(id) +
                   " does not exist (netlist has " + std::to_string(n_) +
                   " nets)");
          refs_ok = false;
        }
      }
      const std::size_t k = g.fanins.size();
      switch (g.kind) {
        case GateKind::Input:
        case GateKind::Const0:
        case GateKind::Const1:
          if (k != 0) {
            emit("NL-ARITY", id, net_label(id) + " must have no fanins");
            arity_ok_ = false;
          }
          break;
        case GateKind::Buf:
        case GateKind::Not:
          if (k != 1) {
            emit("NL-ARITY", id,
                 net_label(id) + " needs exactly 1 fanin, has " +
                     std::to_string(k));
            arity_ok_ = false;
          }
          break;
        case GateKind::Mux:
          if (k != 3) {
            emit("NL-ARITY", id,
                 net_label(id) + " needs {sel, d0, d1}, has " +
                     std::to_string(k) + " fanins");
            arity_ok_ = false;
          }
          break;
        case GateKind::Dff:
          if (k == 0) {
            emit("NL-DFF-D", id,
                 net_label(id) + " has no D input; its state can never "
                                 "change from the init value");
            arity_ok_ = false;
          } else if (k > 1) {
            emit("NL-ARITY", id,
                 net_label(id) + " takes one D input, has " +
                     std::to_string(k));
            arity_ok_ = false;
          }
          break;
        default:  // And/Or/Nand/Nor/Xor/Xnor
          if (k < 2) {
            emit("NL-ARITY", id,
                 net_label(id) + " needs at least 2 fanins, has " +
                     std::to_string(k));
            arity_ok_ = false;
          }
          break;
      }
    }
    return refs_ok;
  }

  /// NL-CYCLE via iterative Tarjan SCC over the combinational edges. Every
  /// nontrivial SCC (or self-loop) is reported as an explicit cycle path —
  /// the diagnostic topo_order() cannot give when it bails out.
  /// Returns true when the combinational graph is acyclic.
  bool check_cycles() {
    if (ix_.acyclic) return true;  // Kahn already proved it; skip the SCC pass
    constexpr std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> index(n_, kUnvisited), low(n_, 0);
    std::vector<bool> on_stack(n_, false);
    std::vector<GateId> stack;
    std::uint32_t next_index = 0;
    std::vector<std::vector<GateId>> cyclic_sccs;

    struct Frame {
      GateId v;
      std::size_t edge;
    };
    std::vector<Frame> dfs;
    for (GateId root = 0; root < n_; ++root) {
      if (index[root] != kUnvisited) continue;
      dfs.push_back({root, 0});
      while (!dfs.empty()) {
        Frame& fr = dfs.back();
        GateId v = fr.v;
        if (fr.edge == 0) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        const auto succs = ix_.comb_fanouts(v);
        if (fr.edge < succs.size()) {
          GateId w = succs[fr.edge++];
          if (index[w] == kUnvisited) {
            dfs.push_back({w, 0});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], index[w]);
          }
        } else {
          if (low[v] == index[v]) {
            std::vector<GateId> scc;
            GateId w;
            do {
              w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              scc.push_back(w);
            } while (w != v);
            bool self_loop = false;
            for (GateId u : ix_.comb_fanouts(v))
              if (u == v) self_loop = true;
            if (scc.size() > 1 || self_loop)
              cyclic_sccs.push_back(std::move(scc));
          }
          dfs.pop_back();
          if (!dfs.empty()) {
            Frame& parent = dfs.back();
            low[parent.v] = std::min(low[parent.v], low[v]);
          }
        }
      }
    }

    for (const std::vector<GateId>& scc : cyclic_sccs) {
      // Walk edges inside the SCC until a node repeats: an explicit cycle.
      std::vector<bool> in_scc(n_, false);
      for (GateId g : scc) in_scc[g] = true;
      std::vector<GateId> path;
      std::vector<bool> seen(n_, false);
      GateId cur = *std::min_element(scc.begin(), scc.end());
      while (!seen[cur]) {
        seen[cur] = true;
        path.push_back(cur);
        for (GateId w : ix_.comb_fanouts(cur)) {
          if (in_scc[w]) {
            cur = w;
            break;
          }
        }
      }
      // Trim the lead-in so the path starts at the repeated node.
      auto it = std::find(path.begin(), path.end(), cur);
      path.erase(path.begin(), it);
      std::string msg = "combinational cycle through " +
                        std::to_string(scc.size()) + " gate(s): ";
      constexpr std::size_t kMaxShown = 12;
      for (std::size_t i = 0; i < path.size() && i < kMaxShown; ++i) {
        msg += net_label(path[i]);
        msg += " -> ";
      }
      if (path.size() > kMaxShown) msg += "... -> ";
      msg += net_label(path.front());
      emit("NL-CYCLE", path.front(), std::move(msg));
    }
    return cyclic_sccs.empty();
  }

  /// NL-MULTIOUT.
  void check_outputs() {
    std::vector<std::uint32_t> marked(n_, 0);
    for (GateId g : nl_.outputs())
      if (g < n_) ++marked[g];
    for (GateId id = 0; id < n_; ++id)
      if (marked[id] > 1)
        emit("NL-MULTIOUT", id,
             net_label(id) + " is marked as a primary output " +
                 std::to_string(marked[id]) + " times");
  }

  /// NL-FLOAT (no sinks at all) and NL-DEAD (has sinks, but none of them
  /// can reach a primary output or DFF). Both burn switched capacitance
  /// for nothing. Skipped when the netlist declares no outputs and no DFFs
  /// (a netlist still under construction has no liveness roots).
  void check_liveness() {
    if (nl_.outputs().empty() && nl_.dffs().empty()) return;
    std::vector<bool> live(n_, false);
    std::vector<GateId> work;
    auto seed = [&](GateId g) {
      if (g < n_ && !live[g]) {
        live[g] = true;
        work.push_back(g);
      }
    };
    for (GateId g : nl_.outputs()) seed(g);
    for (GateId g : nl_.dffs()) seed(g);
    while (!work.empty()) {
      GateId g = work.back();
      work.pop_back();
      for (GateId f : nl_.gate(g).fanins) seed(f);
    }
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      if (g.kind == GateKind::Input || g.kind == GateKind::Const0 ||
          g.kind == GateKind::Const1)
        continue;  // unused inputs/constants are a module-port concern
      if (live[id]) continue;
      std::string& m = msg();
      net_label_to(m, id);
      if (ix_.fanout_count[id] == 0) {
        m += " drives nothing and is not a primary output";
        emit("NL-FLOAT", id, std::move(m));
      } else {
        m += " cannot reach any primary output or DFF "
             "(dead logic still switches)";
        emit("NL-DEAD", id, std::move(m));
      }
    }
  }

  /// NL-FANOUT against the statistical wire-load model.
  void check_fanout_cap() {
    if (opts_.fanout_cap <= 0) return;
    const auto cap = static_cast<std::uint32_t>(opts_.fanout_cap);
    for (GateId id = 0; id < n_; ++id)
      if (ix_.fanout_count[id] > cap) {
        std::string& m = msg();
        net_label_to(m, id);
        m += " has fanout ";
        num_to(m, ix_.fanout_count[id]);
        m += " (cap ";
        num_to(m, cap);
        m += "); wire load grows linearly with fanout";
        emit("NL-FANOUT", id, std::move(m));
      }
  }

  /// Exact count of diagnostics the analysis-backed rules (NL-CONST,
  /// PW-GLITCH, PW-BOUND) will emit — the same predicates, minus the
  /// message formatting. PW-GATE/PW-HOTCAP counts are small; they ride on
  /// the vector's slack.
  std::size_t quant_candidates() const {
    std::size_t c = 0;
    const bool glitch = have_analyses_ && opts_.power_rules &&
                        opts_.glitch_depth_spread > 0;
    const bool bounds = have_analyses_ && opts_.power_rules &&
                        opts_.transition_bound > 0;
    const auto bound = static_cast<std::uint32_t>(
        opts_.transition_bound > 0 ? opts_.transition_bound : 0);
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      const bool logic = netlist::is_logic(g.kind);
      if ((logic || g.kind == GateKind::Dff) &&
          cst_.value[id] != analysis::ConstValue::Varying)
        ++c;
      if (!logic) continue;
      if (bounds && arr_.window[id].max_transitions > bound) ++c;
      if (glitch && g.fanins.size() >= 2) {
        int lo = ix_.level[g.fanins[0]], hi = lo;
        for (GateId f : g.fanins) {
          lo = std::min(lo, ix_.level[f]);
          hi = std::max(hi, ix_.level[f]);
        }
        if (hi - lo >= opts_.glitch_depth_spread) ++c;
      }
    }
    return c;
  }

  /// Static analyses backing the quantitative rules: decorrelated activity
  /// (no BDD refinement — lint stays O(V + E)), arrival windows, and
  /// const-propagation. Only run on well-formed acyclic input; elsewhere
  /// the rules fall back to waste = 0.
  void run_analyses(bool quant, bool want_const) {
    if (quant) {
      analysis::ActivityOptions ao;
      ao.refine_node_budget = 0;
      act_ = analysis::run_activity(nl_, ix_, ao);
      arr_ = analysis::run_arrival(nl_, ix_);
      have_analyses_ = act_.stats.converged && arr_.stats.converged;
    }
    if (quant || want_const) {
      cst_ = analysis::run_const_prop(nl_, ix_);
      have_const_ = want_const && cst_.stats.converged;
      have_analyses_ = have_analyses_ && cst_.stats.converged;
    }
  }

  /// Toggle-probability point estimate for the switching at g's *output*:
  /// a DFF's own switching is its D fanin's consumer-facing toggle.
  double toggle_of(GateId g) const {
    const Gate& gate = nl_.gate(g);
    if (gate.kind == GateKind::Dff && !gate.fanins.empty())
      return act_.dist[gate.fanins[0]].t();
    return act_.dist[g].t();
  }

  /// NL-CONST: logic or state proven constant by const-propagation. The
  /// waste estimate charges the switched capacitance its fanins deliver
  /// into a net that can never change (per-sink share of each fanin's
  /// load), which is exactly what folding the gate to a constant reclaims.
  void check_const() {
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      const bool foldable = netlist::is_logic(g.kind) ||
                            g.kind == GateKind::Dff;
      if (!foldable || cst_.value[id] == analysis::ConstValue::Varying)
        continue;
      double waste = 0.0;
      if (have_analyses_)
        for (GateId f : g.fanins)
          if (ix_.fanout_count[f] > 0)
            waste += ix_.load[f] / ix_.fanout_count[f] * toggle_of(f);
      const char* v = cst_.value[id] == analysis::ConstValue::One ? "1" : "0";
      std::string& m = msg();
      net_label_to(m, id);
      if (g.kind == GateKind::Dff) {
        m += " register provably holds ";
        m += v;
        m += " every cycle";
      } else {
        m += " always evaluates to ";
        m += v;
      }
      m += "; fold to a constant and let its fanin cone go dead";
      emit("NL-CONST", id, std::move(m), waste);
    }
  }

  /// The power-lint tier: PW-GLITCH, PW-GATE, PW-HOTCAP, PW-BOUND.
  /// Requires an acyclic combinational graph (levels and arrival windows
  /// are defined). Each diagnostic carries an estimated-waste figure in
  /// switched-capacitance units so the report doubles as a ranked
  /// optimization worklist.
  void power_rules() {
    const std::vector<int>& depth = ix_.level;

    // PW-GLITCH: unequal reconverging path depths at one gate generate
    // spurious transitions before the late input settles (the glitch power
    // the zero-delay model cannot see; cross-check with sim/glitch_sim).
    // Waste: the gate's load times its activity times the extra transition
    // slots the arrival window proves possible beyond the functional one.
    if (opts_.glitch_depth_spread > 0) {
      for (GateId id = 0; id < n_; ++id) {
        const Gate& g = nl_.gate(id);
        if (!netlist::is_logic(g.kind) || g.fanins.size() < 2) continue;
        int lo = depth[g.fanins[0]], hi = lo;
        for (GateId f : g.fanins) {
          lo = std::min(lo, depth[f]);
          hi = std::max(hi, depth[f]);
        }
        if (hi - lo >= opts_.glitch_depth_spread) {
          double waste = 0.0;
          if (have_analyses_) {
            const double slots = arr_.window[id].max_transitions > 1
                                     ? arr_.window[id].max_transitions - 1.0
                                     : 0.0;
            waste = ix_.load[id] * toggle_of(id) * slots;
          }
          std::string& m = msg();
          net_label_to(m, id);
          m += " merges paths of depth ";
          num_to(m, lo);
          m += " and ";
          num_to(m, hi);
          m += "; unequal arrivals make it glitch-prone";
          emit("PW-GLITCH", id, std::move(m), waste);
        }
      }
    }

    // PW-GATE: DFF fed by a hold mux that recirculates its own output —
    // the textbook clock-gating candidate (Section III-G): gate the clock
    // with the select instead of re-clocking the held value every cycle.
    // Savings proxy: the hold-branch probability (from the activity
    // analysis) times the register's load — the recapture energy spent on
    // cycles where the state provably does not change.
    for (GateId dff : nl_.dffs()) {
      const Gate& g = nl_.gate(dff);
      if (g.fanins.empty()) continue;
      GateId d = g.fanins[0];
      if (d >= n_) continue;
      const Gate& m = nl_.gate(d);
      if (m.kind == GateKind::Mux && m.fanins.size() == 3 &&
          (m.fanins[1] == dff || m.fanins[2] == dff)) {
        double waste = 0.0;
        if (have_analyses_) {
          const double p_sel = act_.dist[m.fanins[0]].p();
          const double hold_p = m.fanins[1] == dff ? 1.0 - p_sel : p_sel;
          waste = hold_p * (ix_.load[dff] + ix_.load[d]);
        }
        emit("PW-GATE", dff,
             net_label(dff) + " recirculates through hold mux " +
                 net_label(d) + ": clock-gating candidate",
             waste);
      }
    }

    // PW-HOTCAP: nets carrying a dominating share of total capacitance —
    // where any activity reduction buys the most sum(C_i * E_i). Waste:
    // the switched capacitance actually estimated on the net, C_g * t_g.
    if (opts_.hot_load_fraction > 0.0 && ix_.total_load > 0.0) {
      for (GateId id = 0; id < n_; ++id)
        if (ix_.load[id] >= opts_.hot_load_fraction * ix_.total_load) {
          const double waste =
              have_analyses_ ? ix_.load[id] * toggle_of(id) : 0.0;
          std::string& m = msg();
          net_label_to(m, id);
          char buf[64];
          std::snprintf(buf, sizeof buf,
                        " carries %.4f%% of total capacitance",
                        100.0 * ix_.load[id] / ix_.total_load);
          m += buf;
          emit("PW-HOTCAP", id, std::move(m), waste);
        }
    }

    // PW-BOUND: the arrival-window analysis proves the net can transition
    // more than the configured budget per cycle — guaranteed glitch
    // headroom that path balancing or retiming would remove. Waste: the
    // worst-case extra transitions times the net's load.
    if (have_analyses_ && opts_.transition_bound > 0) {
      const auto bound =
          static_cast<std::uint32_t>(opts_.transition_bound);
      for (GateId id = 0; id < n_; ++id) {
        if (!netlist::is_logic(nl_.gate(id).kind)) continue;
        const analysis::ArrivalWindow& w = arr_.window[id];
        if (w.max_transitions <= bound) continue;
        std::string& m = msg();
        net_label_to(m, id);
        m += " can transition up to ";
        num_to(m, w.max_transitions);
        m += " times per cycle (budget ";
        num_to(m, bound);
        m += "; arrival window [";
        num_to(m, w.lo);
        m += ", ";
        num_to(m, w.hi);
        m += "])";
        emit("PW-BOUND", id, std::move(m),
             ix_.load[id] * (w.max_transitions - 1.0));
      }
    }
  }

  const Netlist& nl_;
  const LintOptions& opts_;
  const GateId n_;
  Report rep_;
  netlist::NetlistIndex ix_;
  analysis::ActivityResult act_;
  analysis::ArrivalResult arr_;
  analysis::ConstResult cst_;
  bool arity_ok_ = true;
  bool have_analyses_ = false;  ///< activity + arrival + const-prop valid
  bool have_const_ = false;     ///< const-prop valid and NL-CONST enabled
  const char* memo_rule_ = nullptr;  ///< emit() severity memo key
  Severity memo_severity_ = Severity::Error;
  std::string msg_;  ///< reusable diagnostic message buffer

};

}  // namespace

Report run_netlist(const netlist::Netlist& nl, const LintOptions& opts) {
  return NetlistLinter(nl, opts).run();
}

Report run_module(const netlist::Module& mod, const LintOptions& opts) {
  Report rep = run_netlist(mod.netlist, opts);
  if (!opts.enabled("NL-PORT")) return rep;
  const auto n = static_cast<GateId>(mod.netlist.gate_count());
  auto emit = [&](GateId g, std::string msg) {
    Diagnostic d;
    d.rule_id = "NL-PORT";
    d.severity = RuleRegistry::global().severity("NL-PORT");
    d.loc.ir = Ir::Netlist;
    d.loc.object = g;
    d.message = std::move(msg);
    rep.diags.push_back(std::move(d));
  };

  std::vector<std::uint8_t> in_word_bit(n, 0);
  for (std::size_t w = 0; w < mod.input_words.size(); ++w) {
    for (GateId g : mod.input_words[w]) {
      if (g >= n) {
        emit(g, "input word " + std::to_string(w) +
                    " references nonexistent net " + std::to_string(g));
        continue;
      }
      if (mod.netlist.gate(g).kind != GateKind::Input)
        emit(g, "input word " + std::to_string(w) + " bit n" +
                    std::to_string(g) + " is a " +
                    netlist::kind_name(mod.netlist.gate(g).kind) +
                    ", not a primary input");
      if (in_word_bit[g]++)
        emit(g, "net n" + std::to_string(g) +
                    " appears in more than one input word position "
                    "(multiply-driven port bit)");
    }
  }
  // Every primary input must be drivable through some port word, or the
  // word-level stimulus APIs and the netlist-level ones disagree.
  for (GateId g : mod.netlist.inputs())
    if (g < n && !in_word_bit[g])
      emit(g, "primary input n" + std::to_string(g) + " (" +
                  mod.netlist.gate(g).name +
                  ") is not covered by any input word");
  for (std::size_t w = 0; w < mod.output_words.size(); ++w)
    for (GateId g : mod.output_words[w])
      if (g >= n)
        emit(g, "output word " + std::to_string(w) +
                    " references nonexistent net " + std::to_string(g));
  return rep;
}

}  // namespace hlp::lint
