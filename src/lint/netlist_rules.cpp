#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace hlp::lint {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

class NetlistLinter {
 public:
  NetlistLinter(const Netlist& nl, const LintOptions& opts)
      : nl_(nl), opts_(opts), n_(static_cast<GateId>(nl.gate_count())) {}

  Report run() {
    if (!check_refs_and_arity()) return std::move(rep_);
    build_fanouts();
    const bool acyclic = check_cycles();
    check_outputs();
    check_liveness();
    check_fanout_cap();
    if (opts_.power_rules && acyclic) power_rules();
    return std::move(rep_);
  }

 private:
  void emit(std::string_view rule, GateId g, std::string message) {
    if (!opts_.enabled(rule)) return;
    Diagnostic d;
    d.rule_id = std::string(rule);
    d.severity = RuleRegistry::global().severity(rule);
    d.loc.ir = Ir::Netlist;
    d.loc.object = g;
    if (g != netlist::kNullGate && g < n_) d.loc.name = nl_.gate(g).name;
    d.message = std::move(message);
    rep_.diags.push_back(std::move(d));
  }

  std::string net_label(GateId g) const {
    const Gate& gate = nl_.gate(g);
    std::string s = "n";
    s += std::to_string(g);
    s += '(';
    s += netlist::kind_name(gate.kind);
    if (!gate.name.empty()) {
      s += ' ';
      s += gate.name;
    }
    s += ')';
    return s;
  }

  /// NL-REF, NL-ARITY, NL-DFF-D. Returns false when any fanin reference is
  /// invalid: the graph passes cannot run over dangling ids.
  bool check_refs_and_arity() {
    bool refs_ok = true;
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      for (GateId f : g.fanins) {
        if (f >= n_) {
          emit("NL-REF", id,
               "fanin " + std::to_string(f) + " of " + net_label(id) +
                   " does not exist (netlist has " + std::to_string(n_) +
                   " nets)");
          refs_ok = false;
        }
      }
      const std::size_t k = g.fanins.size();
      switch (g.kind) {
        case GateKind::Input:
        case GateKind::Const0:
        case GateKind::Const1:
          if (k != 0)
            emit("NL-ARITY", id, net_label(id) + " must have no fanins");
          break;
        case GateKind::Buf:
        case GateKind::Not:
          if (k != 1)
            emit("NL-ARITY", id,
                 net_label(id) + " needs exactly 1 fanin, has " +
                     std::to_string(k));
          break;
        case GateKind::Mux:
          if (k != 3)
            emit("NL-ARITY", id,
                 net_label(id) + " needs {sel, d0, d1}, has " +
                     std::to_string(k) + " fanins");
          break;
        case GateKind::Dff:
          if (k == 0)
            emit("NL-DFF-D", id,
                 net_label(id) + " has no D input; its state can never "
                                 "change from the init value");
          else if (k > 1)
            emit("NL-ARITY", id,
                 net_label(id) + " takes one D input, has " +
                     std::to_string(k));
          break;
        default:  // And/Or/Nand/Nor/Xor/Xnor
          if (k < 2)
            emit("NL-ARITY", id,
                 net_label(id) + " needs at least 2 fanins, has " +
                     std::to_string(k));
          break;
      }
    }
    return refs_ok;
  }

  /// Combinational fanout adjacency: edges f -> u for logic consumers u
  /// only (a DFF's D pin is a sequential sink, not a combinational edge —
  /// the same edge set topo_order() uses).
  void build_fanouts() {
    comb_fo_.assign(n_, {});
    fanout_count_.assign(n_, 0);
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      for (GateId f : g.fanins) {
        ++fanout_count_[f];
        if (netlist::is_logic(g.kind)) comb_fo_[f].push_back(id);
      }
    }
  }

  /// NL-CYCLE via iterative Tarjan SCC over the combinational edges. Every
  /// nontrivial SCC (or self-loop) is reported as an explicit cycle path —
  /// the diagnostic topo_order() cannot give when it bails out.
  /// Returns true when the combinational graph is acyclic.
  bool check_cycles() {
    constexpr std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> index(n_, kUnvisited), low(n_, 0);
    std::vector<bool> on_stack(n_, false);
    std::vector<GateId> stack;
    std::vector<std::uint32_t> comp(n_, kUnvisited);
    std::uint32_t next_index = 0, n_comps = 0;
    std::vector<std::vector<GateId>> cyclic_sccs;

    struct Frame {
      GateId v;
      std::size_t edge;
    };
    std::vector<Frame> dfs;
    for (GateId root = 0; root < n_; ++root) {
      if (index[root] != kUnvisited) continue;
      dfs.push_back({root, 0});
      while (!dfs.empty()) {
        Frame& fr = dfs.back();
        GateId v = fr.v;
        if (fr.edge == 0) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        if (fr.edge < comb_fo_[v].size()) {
          GateId w = comb_fo_[v][fr.edge++];
          if (index[w] == kUnvisited) {
            dfs.push_back({w, 0});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], index[w]);
          }
        } else {
          if (low[v] == index[v]) {
            std::vector<GateId> scc;
            GateId w;
            do {
              w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              comp[w] = n_comps;
              scc.push_back(w);
            } while (w != v);
            ++n_comps;
            bool self_loop = false;
            for (GateId u : comb_fo_[v])
              if (u == v) self_loop = true;
            if (scc.size() > 1 || self_loop)
              cyclic_sccs.push_back(std::move(scc));
          }
          dfs.pop_back();
          if (!dfs.empty()) {
            Frame& parent = dfs.back();
            low[parent.v] = std::min(low[parent.v], low[v]);
          }
        }
      }
    }

    for (const std::vector<GateId>& scc : cyclic_sccs) {
      // Walk edges inside the SCC until a node repeats: an explicit cycle.
      std::vector<bool> in_scc(n_, false);
      for (GateId g : scc) in_scc[g] = true;
      std::vector<GateId> path;
      std::vector<bool> seen(n_, false);
      GateId cur = *std::min_element(scc.begin(), scc.end());
      while (!seen[cur]) {
        seen[cur] = true;
        path.push_back(cur);
        for (GateId w : comb_fo_[cur]) {
          if (in_scc[w]) {
            cur = w;
            break;
          }
        }
      }
      // Trim the lead-in so the path starts at the repeated node.
      auto it = std::find(path.begin(), path.end(), cur);
      path.erase(path.begin(), it);
      std::string msg = "combinational cycle through " +
                        std::to_string(scc.size()) + " gate(s): ";
      constexpr std::size_t kMaxShown = 12;
      for (std::size_t i = 0; i < path.size() && i < kMaxShown; ++i) {
        msg += net_label(path[i]);
        msg += " -> ";
      }
      if (path.size() > kMaxShown) msg += "... -> ";
      msg += net_label(path.front());
      emit("NL-CYCLE", path.front(), std::move(msg));
    }
    return cyclic_sccs.empty();
  }

  /// NL-MULTIOUT.
  void check_outputs() {
    std::vector<std::uint32_t> marked(n_, 0);
    for (GateId g : nl_.outputs())
      if (g < n_) ++marked[g];
    for (GateId id = 0; id < n_; ++id)
      if (marked[id] > 1)
        emit("NL-MULTIOUT", id,
             net_label(id) + " is marked as a primary output " +
                 std::to_string(marked[id]) + " times");
  }

  /// NL-FLOAT (no sinks at all) and NL-DEAD (has sinks, but none of them
  /// can reach a primary output or DFF). Both burn switched capacitance
  /// for nothing. Skipped when the netlist declares no outputs and no DFFs
  /// (a netlist still under construction has no liveness roots).
  void check_liveness() {
    if (nl_.outputs().empty() && nl_.dffs().empty()) return;
    std::vector<bool> live(n_, false);
    std::vector<GateId> work;
    auto seed = [&](GateId g) {
      if (g < n_ && !live[g]) {
        live[g] = true;
        work.push_back(g);
      }
    };
    for (GateId g : nl_.outputs()) seed(g);
    for (GateId g : nl_.dffs()) seed(g);
    while (!work.empty()) {
      GateId g = work.back();
      work.pop_back();
      for (GateId f : nl_.gate(g).fanins) seed(f);
    }
    for (GateId id = 0; id < n_; ++id) {
      const Gate& g = nl_.gate(id);
      if (g.kind == GateKind::Input || g.kind == GateKind::Const0 ||
          g.kind == GateKind::Const1)
        continue;  // unused inputs/constants are a module-port concern
      if (live[id]) continue;
      if (fanout_count_[id] == 0)
        emit("NL-FLOAT", id,
             net_label(id) + " drives nothing and is not a primary output");
      else
        emit("NL-DEAD", id,
             net_label(id) + " cannot reach any primary output or DFF "
                             "(dead logic still switches)");
    }
  }

  /// NL-FANOUT against the statistical wire-load model.
  void check_fanout_cap() {
    if (opts_.fanout_cap <= 0) return;
    const auto cap = static_cast<std::uint32_t>(opts_.fanout_cap);
    for (GateId id = 0; id < n_; ++id)
      if (fanout_count_[id] > cap)
        emit("NL-FANOUT", id,
             net_label(id) + " has fanout " +
                 std::to_string(fanout_count_[id]) + " (cap " +
                 std::to_string(cap) +
                 "); wire load grows linearly with fanout");
  }

  /// The power-lint tier: PW-GLITCH, PW-GATE, PW-HOTCAP. Requires an
  /// acyclic combinational graph (depths are defined).
  void power_rules() {
    // Arrival depth per net, as in Netlist::depth().
    std::vector<int> depth(n_, 0);
    for (GateId id : nl_.topo_order()) {
      const Gate& g = nl_.gate(id);
      if (!netlist::is_logic(g.kind)) continue;
      int m = 0;
      for (GateId f : g.fanins) m = std::max(m, depth[f]);
      depth[id] = m + 1;
    }

    // PW-GLITCH: unequal reconverging path depths at one gate generate
    // spurious transitions before the late input settles (the glitch power
    // the zero-delay model cannot see; cross-check with sim/glitch_sim).
    if (opts_.glitch_depth_spread > 0) {
      for (GateId id = 0; id < n_; ++id) {
        const Gate& g = nl_.gate(id);
        if (!netlist::is_logic(g.kind) || g.fanins.size() < 2) continue;
        int lo = depth[g.fanins[0]], hi = lo;
        for (GateId f : g.fanins) {
          lo = std::min(lo, depth[f]);
          hi = std::max(hi, depth[f]);
        }
        if (hi - lo >= opts_.glitch_depth_spread)
          emit("PW-GLITCH", id,
               net_label(id) + " merges paths of depth " +
                   std::to_string(lo) + " and " + std::to_string(hi) +
                   "; unequal arrivals make it glitch-prone");
      }
    }

    // PW-GATE: DFF fed by a hold mux that recirculates its own output —
    // the textbook clock-gating candidate (Section III-G): gate the clock
    // with the select instead of re-clocking the held value every cycle.
    for (GateId dff : nl_.dffs()) {
      const Gate& g = nl_.gate(dff);
      if (g.fanins.empty()) continue;
      GateId d = g.fanins[0];
      if (d >= n_) continue;
      const Gate& m = nl_.gate(d);
      if (m.kind == GateKind::Mux && m.fanins.size() == 3 &&
          (m.fanins[1] == dff || m.fanins[2] == dff))
        emit("PW-GATE", dff,
             net_label(dff) + " recirculates through hold mux " +
                 net_label(d) + ": clock-gating candidate");
    }

    // PW-HOTCAP: nets carrying a dominating share of total capacitance —
    // where any activity reduction buys the most sum(C_i * E_i).
    if (opts_.hot_load_fraction > 0.0) {
      auto loads = nl_.loads();
      double total = 0.0;
      for (double l : loads) total += l;
      if (total > 0.0) {
        for (GateId id = 0; id < n_; ++id)
          if (loads[id] >= opts_.hot_load_fraction * total)
            emit("PW-HOTCAP", id,
                 net_label(id) + " carries " +
                     std::to_string(100.0 * loads[id] / total) +
                     "% of total capacitance");
      }
    }
  }

  const Netlist& nl_;
  const LintOptions& opts_;
  const GateId n_;
  Report rep_;
  std::vector<std::vector<GateId>> comb_fo_;
  std::vector<std::uint32_t> fanout_count_;
};

}  // namespace

Report run_netlist(const netlist::Netlist& nl, const LintOptions& opts) {
  return NetlistLinter(nl, opts).run();
}

Report run_module(const netlist::Module& mod, const LintOptions& opts) {
  Report rep = run_netlist(mod.netlist, opts);
  if (!opts.enabled("NL-PORT")) return rep;
  const auto n = static_cast<GateId>(mod.netlist.gate_count());
  auto emit = [&](GateId g, std::string msg) {
    Diagnostic d;
    d.rule_id = "NL-PORT";
    d.severity = RuleRegistry::global().severity("NL-PORT");
    d.loc.ir = Ir::Netlist;
    d.loc.object = g;
    d.message = std::move(msg);
    rep.diags.push_back(std::move(d));
  };

  std::vector<std::uint8_t> in_word_bit(n, 0);
  for (std::size_t w = 0; w < mod.input_words.size(); ++w) {
    for (GateId g : mod.input_words[w]) {
      if (g >= n) {
        emit(g, "input word " + std::to_string(w) +
                    " references nonexistent net " + std::to_string(g));
        continue;
      }
      if (mod.netlist.gate(g).kind != GateKind::Input)
        emit(g, "input word " + std::to_string(w) + " bit n" +
                    std::to_string(g) + " is a " +
                    netlist::kind_name(mod.netlist.gate(g).kind) +
                    ", not a primary input");
      if (in_word_bit[g]++)
        emit(g, "net n" + std::to_string(g) +
                    " appears in more than one input word position "
                    "(multiply-driven port bit)");
    }
  }
  // Every primary input must be drivable through some port word, or the
  // word-level stimulus APIs and the netlist-level ones disagree.
  for (GateId g : mod.netlist.inputs())
    if (g < n && !in_word_bit[g])
      emit(g, "primary input n" + std::to_string(g) + " (" +
                  mod.netlist.gate(g).name +
                  ") is not covered by any input word");
  for (std::size_t w = 0; w < mod.output_words.size(); ++w)
    for (GateId g : mod.output_words[w])
      if (g >= n)
        emit(g, "output word " + std::to_string(w) +
                    " references nonexistent net " + std::to_string(g));
  return rep;
}

}  // namespace hlp::lint
