#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace hlp::lint {

namespace {

using fsm::StateId;
using fsm::Stg;

void emit(Report& rep, const LintOptions& opts, std::string_view rule,
          const Stg& stg, StateId s, std::string message) {
  if (!opts.enabled(rule)) return;
  Diagnostic d;
  d.rule_id = std::string(rule);
  d.severity = RuleRegistry::global().severity(rule);
  d.loc.ir = Ir::Fsm;
  d.loc.object = s;
  if (s != kNoObject && s < stg.num_states()) d.loc.name = stg.state_name(s);
  d.message = std::move(message);
  rep.diags.push_back(std::move(d));
}

/// SCC count over the reachable transition graph (iterative Tarjan),
/// plus the id of one state inside an absorbing SCC that is a proper
/// subset of the reachable set. The chain (under any full-support input
/// distribution) is ergodic iff the reachable states form one SCC.
struct SccSummary {
  std::size_t n_sccs = 0;
  std::size_t absorbing_size = 0;
  StateId absorbing_example = 0;
};

SccSummary scc_over_reachable(const Stg& stg,
                              const std::vector<bool>& reachable) {
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0), comp(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  std::uint32_t next_index = 0, n_comps = 0;
  std::vector<std::vector<StateId>> sccs;

  struct Frame {
    StateId v;
    std::size_t edge;
  };
  std::vector<Frame> dfs;
  for (StateId root = 0; root < n; ++root) {
    if (!reachable[root] || index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& fr = dfs.back();
      StateId v = fr.v;
      if (fr.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (fr.edge < sym) {
        StateId w = stg.next(v, fr.edge++);
        if (w >= n || !reachable[w]) continue;
        if (index[w] == kUnvisited) {
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<StateId> scc;
          StateId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = n_comps;
            scc.push_back(w);
          } while (w != v);
          ++n_comps;
          sccs.push_back(std::move(scc));
        }
        dfs.pop_back();
        if (!dfs.empty())
          low[dfs.back().v] = std::min(low[dfs.back().v], low[v]);
      }
    }
  }

  SccSummary out;
  out.n_sccs = sccs.size();
  // An absorbing SCC has no edge leaving it; with more than one SCC at
  // least one exists and the steady state collapses into it.
  for (const std::vector<StateId>& scc : sccs) {
    bool escapes = false;
    for (StateId s : scc) {
      for (std::size_t a = 0; a < sym && !escapes; ++a) {
        StateId t = stg.next(s, a);
        if (t < n && reachable[t] && comp[t] != comp[s]) escapes = true;
      }
      if (escapes) break;
    }
    if (!escapes && scc.size() > out.absorbing_size) {
      out.absorbing_size = scc.size();
      out.absorbing_example = scc.front();
    }
  }
  return out;
}

}  // namespace

Report run_fsm(const Stg& stg, const LintOptions& opts) {
  Report rep;
  const std::size_t n = stg.num_states();
  const std::size_t sym = stg.n_symbols();
  if (n == 0) return rep;

  // FS-RANGE: in this dense representation an undefined or corrupted
  // transition shows up as an out-of-range target (the incomplete /
  // ill-formed transition relation case).
  bool ranges_ok = true;
  for (StateId s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < sym; ++a) {
      StateId t = stg.next(s, a);
      if (t >= n) {
        emit(rep, opts, "FS-RANGE", stg, s,
             "transition (" + stg.state_name(s) + ", in=" +
                 std::to_string(a) + ") targets nonexistent state " +
                 std::to_string(t));
        ranges_ok = false;
        break;  // one per state is enough
      }
    }
  }

  // FS-OUT-WIDTH: outputs wider than the declared width silently truncate
  // in the synthesized netlist.
  if (stg.n_outputs() < 64) {
    const std::uint64_t mask =
        (std::uint64_t{1} << stg.n_outputs()) - 1;
    for (StateId s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < sym; ++a) {
        if (stg.output(s, a) & ~mask) {
          emit(rep, opts, "FS-OUT-WIDTH", stg, s,
               "output " + std::to_string(stg.output(s, a)) + " on (" +
                   stg.state_name(s) + ", in=" + std::to_string(a) +
                   ") exceeds the declared " +
                   std::to_string(stg.n_outputs()) + "-bit width");
          break;
        }
      }
    }
  }

  if (!ranges_ok) return rep;  // graph passes need valid targets

  // FS-TRAP: a state whose every transition self-loops can never be left.
  // Freshly added states default to self-loops, so this is also the
  // signature of a state that was never wired up.
  if (n > 1) {
    for (StateId s = 0; s < n; ++s) {
      bool trap = true;
      for (std::size_t a = 0; a < sym; ++a)
        if (stg.next(s, a) != s) {
          trap = false;
          break;
        }
      if (trap)
        emit(rep, opts, "FS-TRAP", stg, s,
             "state " + stg.state_name(s) +
                 " self-loops on every input symbol (trap / never-wired "
                 "state)");
    }
  }

  // FS-UNREACH: BFS from the reset state (state 0).
  std::vector<bool> reachable(n, false);
  std::vector<StateId> work{0};
  reachable[0] = true;
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    for (std::size_t a = 0; a < sym; ++a) {
      StateId t = stg.next(s, a);
      if (!reachable[t]) {
        reachable[t] = true;
        work.push_back(t);
      }
    }
  }
  for (StateId s = 0; s < n; ++s)
    if (!reachable[s])
      emit(rep, opts, "FS-UNREACH", stg, s,
           "state " + stg.state_name(s) +
               " is unreachable from the reset state; it still costs "
               "encoding bits and next-state logic");

  // FS-ERGODIC: steady-state analysis (analyze_markov, Tyagi's bound, the
  // encoding optimizers) assumes an irreducible chain over the reachable
  // states. More than one reachable SCC means the chain drains into an
  // absorbing component and transient states get probability zero.
  SccSummary scc = scc_over_reachable(stg, reachable);
  if (scc.n_sccs > 1)
    emit(rep, opts, "FS-ERGODIC", stg, scc.absorbing_example,
         "reachable states split into " + std::to_string(scc.n_sccs) +
             " SCCs; the chain is absorbed into a component of " +
             std::to_string(scc.absorbing_size) + " state(s) around " +
             stg.state_name(scc.absorbing_example) +
             ", so steady-state probabilities are invalid");
  return rep;
}

}  // namespace hlp::lint
