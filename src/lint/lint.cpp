#include "lint/lint.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace hlp::lint {

namespace {

/// The built-in catalog. Kept in one table so DESIGN.md §6, the registry,
/// and the checkers cannot disagree about id or severity.
constexpr std::array<RuleInfo, 25> kRules{{
    // Netlist structural rules.
    {"NL-CYCLE", Ir::Netlist, Severity::Error,
     "combinational cycle (reported as the cycle path)"},
    {"NL-REF", Ir::Netlist, Severity::Error,
     "fanin references a nonexistent net"},
    {"NL-ARITY", Ir::Netlist, Severity::Error,
     "fanin count inconsistent with the gate kind"},
    {"NL-DFF-D", Ir::Netlist, Severity::Error,
     "DFF with no D input (floating state element)"},
    {"NL-FLOAT", Ir::Netlist, Severity::Warning,
     "gate output drives nothing and is not a primary output"},
    {"NL-DEAD", Ir::Netlist, Severity::Warning,
     "gate cannot reach any primary output or DFF (dead logic)"},
    {"NL-MULTIOUT", Ir::Netlist, Severity::Warning,
     "same net marked as a primary output more than once"},
    {"NL-FANOUT", Ir::Netlist, Severity::Warning,
     "fanout exceeds the configured cap under the wire-load model"},
    {"NL-PORT", Ir::Netlist, Severity::Error,
     "module port word malformed (non-input bit or multiply-driven bit)"},
    {"NL-CONST", Ir::Netlist, Severity::Warning,
     "gate provably constant under const-propagation; fold it and let its "
     "fanin cone go dead"},
    // Netlist power-lint tier.
    {"PW-GLITCH", Ir::Netlist, Severity::Power,
     "reconvergent fanin with unequal path depths (glitch-prone)"},
    {"PW-GATE", Ir::Netlist, Severity::Power,
     "hold-mux register feedback: clock-gating candidate (Section III)"},
    {"PW-HOTCAP", Ir::Netlist, Severity::Power,
     "net carries a dominating share of total capacitance"},
    {"PW-BOUND", Ir::Netlist, Severity::Power,
     "static arrival-window transition bound exceeds the configured "
     "per-cycle budget (guaranteed glitch headroom)"},
    // FSM / STG rules.
    {"FS-RANGE", Ir::Fsm, Severity::Error,
     "transition target out of range (ill-formed transition relation)"},
    {"FS-OUT-WIDTH", Ir::Fsm, Severity::Warning,
     "output value exceeds the declared output width"},
    {"FS-UNREACH", Ir::Fsm, Severity::Warning,
     "state unreachable from the reset state"},
    {"FS-TRAP", Ir::Fsm, Severity::Error,
     "trap state: every transition is a self-loop (never-wired state)"},
    {"FS-ERGODIC", Ir::Fsm, Severity::Error,
     "reachable chain is not ergodic (absorbing SCC); steady-state "
     "probabilities are invalid"},
    // CDFG rules.
    {"CD-REF", Ir::Cdfg, Severity::Error,
     "operand references a later or nonexistent op (use before def)"},
    {"CD-ARITY", Ir::Cdfg, Severity::Error,
     "operand count inconsistent with the op kind"},
    {"CD-WIDTH", Ir::Cdfg, Severity::Warning,
     "operand widths disagree with the op width"},
    {"CD-DEAD", Ir::Cdfg, Severity::Warning,
     "op result is never consumed and is not an output"},
    {"CD-UNSCHED", Ir::Cdfg, Severity::Error,
     "op unscheduled or scheduled before an operand finishes"},
    {"CD-RESOURCE", Ir::Cdfg, Severity::Error,
     "concurrent ops of one kind exceed the resource limit"},
}};

}  // namespace

const RuleRegistry& RuleRegistry::global() {
  static const RuleRegistry reg{std::span<const RuleInfo>(kRules)};
  return reg;
}

const RuleInfo* RuleRegistry::find(std::string_view id) const {
  for (const RuleInfo& r : rules_)
    if (r.id == id) return &r;
  return nullptr;
}

Severity RuleRegistry::severity(std::string_view id) const {
  const RuleInfo* r = find(id);
  if (!r) throw std::out_of_range("lint: unknown rule id " + std::string(id));
  return r->severity;
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Power: return "power";
  }
  return "?";
}

const char* ir_name(Ir ir) {
  switch (ir) {
    case Ir::Netlist: return "netlist";
    case Ir::Fsm: return "fsm";
    case Ir::Cdfg: return "cdfg";
  }
  return "?";
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.rule_id;
    out += ' ';
    out += severity_name(d.severity);
    out += ' ';
    out += ir_name(d.loc.ir);
    if (d.loc.object != kNoObject) {
      out += '#';
      out += std::to_string(d.loc.object);
    }
    if (!d.loc.name.empty()) {
      out += " (";
      out += d.loc.name;
      out += ')';
    }
    out += ": ";
    out += d.message;
    if (d.waste > 0.0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " [est waste %.4g]", d.waste);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void enforce(Report report, const LintOptions& opts,
             std::string_view context) {
  if (opts.mode == LintMode::Off || report.clean()) return;
  const bool strict = opts.mode == LintMode::Strict;
  bool errors = strict && report.has_errors();
  if (opts.sink) {
    for (const Diagnostic& d : report.diags) opts.sink->push_back(d);
  } else if (!errors) {
    // Warn mode without a sink: report on stderr, once per diagnostic.
    for (const Diagnostic& d : report.diags)
      std::fprintf(stderr, "[hlp::lint] %.*s: %s %s: %s\n",
                   static_cast<int>(context.size()), context.data(),
                   d.rule_id.c_str(), severity_name(d.severity),
                   d.message.c_str());
  }
  if (errors) {
    std::string what = "lint: ";
    what += context;
    what += ": input rejected in strict mode:\n";
    what += report.to_string();
    throw LintError(std::move(what), std::move(report));
  }
}

void enforce_netlist(const netlist::Netlist& nl, const LintOptions& opts,
                     std::string_view context) {
  if (opts.mode == LintMode::Off) return;
  enforce(run_netlist(nl, opts), opts, context);
}

void enforce_module(const netlist::Module& mod, const LintOptions& opts,
                    std::string_view context) {
  if (opts.mode == LintMode::Off) return;
  enforce(run_module(mod, opts), opts, context);
}

void enforce_fsm(const fsm::Stg& stg, const LintOptions& opts,
                 std::string_view context) {
  if (opts.mode == LintMode::Off) return;
  enforce(run_fsm(stg, opts), opts, context);
}

void enforce_cdfg(const cdfg::Cdfg& g, const LintOptions& opts,
                  std::string_view context) {
  if (opts.mode == LintMode::Off) return;
  enforce(run_cdfg(g, opts), opts, context);
}

}  // namespace hlp::lint
