#pragma once

#include <map>
#include <span>
#include <string_view>

#include "cdfg/cdfg.hpp"
#include "fsm/stg.hpp"
#include "lint/diagnostics.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"

namespace hlp::lint {

/// --- Rule registry -------------------------------------------------------

/// Static descriptor of one design rule. The registry is the single source
/// of truth for ids, severities, and the DESIGN.md §6 catalog; the checkers
/// look their severity up here so a rule cannot drift between the docs and
/// the diagnostics it emits.
struct RuleInfo {
  std::string_view id;
  Ir ir;
  Severity severity;
  std::string_view summary;
};

class RuleRegistry {
 public:
  /// The built-in rule set (immutable, shared).
  static const RuleRegistry& global();

  std::span<const RuleInfo> rules() const { return rules_; }
  const RuleInfo* find(std::string_view id) const;
  /// Severity for `id`; throws std::out_of_range on unknown rules.
  Severity severity(std::string_view id) const;

 private:
  explicit RuleRegistry(std::span<const RuleInfo> rules) : rules_(rules) {}
  std::span<const RuleInfo> rules_;
};

/// --- Lint entry points ---------------------------------------------------
///
/// All run in O(V + E) over the IR (bench/bench_lint.cpp tracks gates/sec).
/// They never throw on malformed input — malformed structure is the thing
/// they report. `opts.mode` is ignored by run_* (they always run); it only
/// matters to the enforce_* wrappers below.

/// Netlist structural + power rules (NL-*, PW-*).
Report run_netlist(const netlist::Netlist& nl, const LintOptions& opts = {});

/// run_netlist plus module port-word rules (NL-PORT).
Report run_module(const netlist::Module& mod, const LintOptions& opts = {});

/// STG rules (FS-*): transition-relation validity, reachability, ergodicity.
Report run_fsm(const fsm::Stg& stg, const LintOptions& opts = {});

/// CDFG dataflow rules (CD-REF, CD-ARITY, CD-WIDTH, CD-DEAD).
Report run_cdfg(const cdfg::Cdfg& g, const LintOptions& opts = {});

/// Dataflow rules plus schedule rules: unscheduled ops / precedence
/// violations (CD-UNSCHED) and per-step resource conflicts against `limits`
/// (CD-RESOURCE).
Report run_cdfg(const cdfg::Cdfg& g, const cdfg::Schedule& s,
                const std::map<cdfg::OpKind, int>& limits = {},
                const cdfg::OpDelays& delays = {},
                const LintOptions& opts = {});

/// --- Enforcement wrappers (the estimator-entry-point glue) ---------------
///
/// Off: no-op (the rules never even run). Warn: diagnostics go to
/// opts.sink, or stderr when no sink is given. Strict: Error-severity
/// diagnostics throw LintError; warnings are still routed to the sink.
/// `context` names the calling estimator in messages.

void enforce(Report report, const LintOptions& opts, std::string_view context);
void enforce_netlist(const netlist::Netlist& nl, const LintOptions& opts,
                     std::string_view context);
void enforce_module(const netlist::Module& mod, const LintOptions& opts,
                    std::string_view context);
void enforce_fsm(const fsm::Stg& stg, const LintOptions& opts,
                 std::string_view context);
void enforce_cdfg(const cdfg::Cdfg& g, const LintOptions& opts,
                  std::string_view context);

const char* severity_name(Severity s);
const char* ir_name(Ir ir);

}  // namespace hlp::lint
