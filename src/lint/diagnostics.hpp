#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hlp::lint {

/// --- Diagnostics framework ----------------------------------------------
///
/// The survey's estimators are only defined on well-formed inputs: acyclic
/// combinational logic, ergodic FSM Markov chains, consistently scheduled
/// CDFGs. `hlp::lint` is the static pass that checks those preconditions
/// before any simulation cycles are spent, reporting violations as
/// structured `Diagnostic`s instead of hangs, asserts, or bad estimates.
/// See DESIGN.md §6 for the rule catalog.

/// Severity tiers. `Power` is the "power-lint" tier: the design is
/// functionally well formed but contains a structure the paper identifies
/// as power-relevant (glitch-prone reconvergence, clock-gating candidates,
/// capacitance hot spots). Power diagnostics never fail strict mode.
enum class Severity : std::uint8_t {
  Error,    ///< estimator precondition violated; strict mode throws
  Warning,  ///< suspicious structure; estimate may be misleading
  Power,    ///< power design-rule hint (Section II/III opportunities)
};

/// Which IR a rule inspects.
enum class Ir : std::uint8_t { Netlist, Fsm, Cdfg };

inline constexpr std::uint32_t kNoObject = 0xffffffffu;

/// Where a diagnostic points: an object id within one IR instance plus the
/// object's diagnostic name when it has one.
struct Location {
  Ir ir = Ir::Netlist;
  std::uint32_t object = kNoObject;  ///< GateId / StateId / OpId
  std::string name;                  ///< optional object name
};

struct Diagnostic {
  std::string rule_id;  ///< stable id, e.g. "NL-CYCLE"
  Severity severity = Severity::Error;
  Location loc;
  std::string message;
  /// Quantitative severity: estimated switched capacitance wasted per cycle
  /// (or savable, for optimization hints like PW-GATE), in the same
  /// C·activity units the estimators report. Computed from the static
  /// activity/arrival analyses (src/analysis) when they are available for
  /// the input; 0 when the rule has no quantitative model or the analyses
  /// could not run. Power-tier diagnostics are ranked by this field,
  /// largest first.
  double waste = 0.0;
};

/// Result of one lint run.
struct Report {
  std::vector<Diagnostic> diags;

  bool clean() const { return diags.empty(); }
  bool has_errors() const {
    for (const Diagnostic& d : diags)
      if (d.severity == Severity::Error) return true;
    return false;
  }
  std::size_t count(std::string_view rule_id) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diags)
      if (d.rule_id == rule_id) ++n;
    return n;
  }
  bool has(std::string_view rule_id) const { return count(rule_id) > 0; }
  /// First diagnostic for `rule_id`, or nullptr.
  const Diagnostic* find(std::string_view rule_id) const {
    for (const Diagnostic& d : diags)
      if (d.rule_id == rule_id) return &d;
    return nullptr;
  }
  void merge(Report other) {
    for (Diagnostic& d : other.diags) diags.push_back(std::move(d));
  }
  /// One line per diagnostic: "rule severity object: message".
  std::string to_string() const;
};

/// Lint enforcement level for estimator entry points.
enum class LintMode : std::uint8_t {
  Off,     ///< skip linting entirely (zero overhead; the historical behavior)
  Warn,    ///< run rules, report diagnostics, continue
  Strict,  ///< run rules; any Error-severity diagnostic throws LintError
};

/// Knobs threaded through the estimator APIs (see SimOptions::lint).
struct LintOptions {
  LintMode mode = LintMode::Off;
  bool power_rules = true;  ///< include the Power severity tier
  /// NL-FANOUT: flag nets whose fanout exceeds this (the statistical
  /// wire-load model charges wire_cap_per_fanout per sink, so high-fanout
  /// nets are both slow and capacitance hot spots). <= 0 disables.
  int fanout_cap = 64;
  /// PW-GLITCH: flag gates whose fanin arrival depths differ by at least
  /// this many levels (unequal reconverging path delays generate glitches).
  int glitch_depth_spread = 4;
  /// PW-HOTCAP: flag gates carrying at least this fraction of the total
  /// netlist capacitance.
  double hot_load_fraction = 0.05;
  /// PW-BOUND: flag gates whose arrival-window analysis proves they can
  /// transition more than this many times per cycle under unit delay (the
  /// guaranteed glitch ceiling from analysis::run_arrival). <= 0 disables.
  int transition_bound = 8;
  /// Run the activity + arrival dataflow analyses and attach quantitative
  /// estimated-waste figures to the power-tier diagnostics (and enable
  /// PW-BOUND, which is an arrival-analysis product). Off: power rules
  /// still fire structurally but report waste = 0 — the cheap
  /// configuration for hot estimator entry points that only need
  /// pass/fail. NL-CONST only needs const-propagation and stays on either
  /// way.
  bool quantify = true;
  /// Rule ids to skip.
  std::vector<std::string> disabled;
  /// Warn-mode destination; when null, diagnostics go to stderr.
  std::vector<Diagnostic>* sink = nullptr;

  bool enabled(std::string_view rule_id) const {
    for (const std::string& d : disabled)
      if (d == rule_id) return false;
    return true;
  }
};

/// Thrown by strict-mode enforcement; carries the full report.
class LintError : public std::runtime_error {
 public:
  LintError(std::string what, Report report)
      : std::runtime_error(std::move(what)), report_(std::move(report)) {}
  const Report& report() const { return report_; }

 private:
  Report report_;
};

}  // namespace hlp::lint
