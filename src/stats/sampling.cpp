#include "stats/sampling.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "stats/descriptive.hpp"

namespace hlp::stats {

std::vector<std::size_t> simple_random_sample(std::size_t n, std::size_t k,
                                              Rng& rng) {
  std::vector<std::size_t> out;
  if (n == 0) return out;
  if (k >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), std::size_t{0});
    return out;
  }
  // Floyd's algorithm: k distinct samples in O(k) expected time.
  std::unordered_set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(j)));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> stratified_sample(std::size_t n, std::size_t strata,
                                           std::size_t per_stratum, Rng& rng) {
  std::vector<std::size_t> out;
  if (n == 0 || strata == 0) return out;
  strata = std::min(strata, n);
  for (std::size_t s = 0; s < strata; ++s) {
    std::size_t lo = n * s / strata;
    std::size_t hi = n * (s + 1) / strata;  // exclusive
    auto local = simple_random_sample(hi - lo, per_stratum, rng);
    for (std::size_t idx : local) out.push_back(lo + idx);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double ratio_estimate_mean(std::span<const double> x_sample,
                           std::span<const double> y_sample,
                           double x_pop_mean) {
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x_sample.size() && i < y_sample.size(); ++i) {
    sx += x_sample[i];
    sy += y_sample[i];
  }
  if (sx == 0.0) return mean(y_sample);
  return (sy / sx) * x_pop_mean;
}

double regression_estimate_mean(std::span<const double> x_sample,
                                std::span<const double> y_sample,
                                double x_pop_mean) {
  std::size_t n = std::min(x_sample.size(), y_sample.size());
  if (n < 2) return mean(y_sample);
  double mx = mean(x_sample.subspan(0, n));
  double my = mean(y_sample.subspan(0, n));
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x_sample[i] - mx) * (y_sample[i] - my);
    sxx += (x_sample[i] - mx) * (x_sample[i] - mx);
  }
  if (sxx <= 0.0) return my;
  double b = sxy / sxx;
  return my + b * (x_pop_mean - mx);
}

}  // namespace hlp::stats
