#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hlp::stats {

/// Binary entropy H(p) = -p log2 p - (1-p) log2 (1-p), in bits.
/// Returns 0 for p outside (0,1).
double binary_entropy(double p);

/// Shannon entropy (bits) of an arbitrary discrete distribution.
/// Probabilities are normalized internally; non-positive entries ignored.
double distribution_entropy(std::span<const double> probs);

/// A stream of fixed-width binary vectors, one word per cycle
/// (bit i of the word = value of line i).
struct VectorStream {
  int width = 0;
  std::vector<std::uint64_t> words;

  std::size_t length() const { return words.size(); }
  bool bit(std::size_t cycle, int line) const {
    return (words[cycle] >> line) & 1u;
  }
};

/// Per-line signal probabilities q_i = P(line i == 1) observed in the stream.
std::vector<double> signal_probabilities(const VectorStream& s);

/// Per-line switching activities E_i = P(line i toggles between consecutive
/// vectors).
std::vector<double> switching_activities(const VectorStream& s);

/// Average bit-level entropy h = (1/n) * sum_i H(q_i).
/// This is the independence upper bound used in Section II-B1 of the paper.
double avg_bit_entropy(const VectorStream& s);

/// Sum of bit-level entropies sum_i H(q_i) (the paper's practical
/// approximation of the sectional/word-level entropy H).
double sum_bit_entropy(const VectorStream& s);

/// Exact word-level entropy of the stream (empirical distribution over the
/// distinct vectors). Feasible because streams are bounded; the paper notes
/// the exact value is upper-bounded by sum_bit_entropy.
double word_entropy(const VectorStream& s);

/// Average Hamming distance between consecutive vectors of the stream.
double avg_hamming_per_cycle(const VectorStream& s);

}  // namespace hlp::stats
