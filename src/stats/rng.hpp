#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace hlp::stats {

/// Deterministic random source used throughout the library.
///
/// Every experiment in the repository takes an explicit seed so results are
/// reproducible run-to-run; no component ever reads a global RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool bit(double p = 0.5) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform unsigned value with `bits` random low-order bits.
  std::uint64_t uniform_bits(int bits) {
    if (bits <= 0) return 0;
    std::uint64_t v = engine_();
    return bits >= 64 ? v : (v & ((std::uint64_t{1} << bits) - 1));
  }

  /// Lane-batched vectors: out[k] equals the k-th of out.size() successive
  /// uniform_bits(width) draws, so packed 64-pattern consumers see exactly
  /// the vector sequence a scalar caller would draw one at a time.
  void fill_packed(std::span<std::uint64_t> out, int width) {
    for (std::uint64_t& w : out) w = uniform_bits(width);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential draw with the given mean (not rate).
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto (heavy-tail) draw with minimum `xm` and shape `alpha`.
  double pareto(double xm, double alpha) {
    double u = uniform_real(1e-12, 1.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Geometric draw (number of failures before first success), p in (0,1].
  std::int64_t geometric(double p) {
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Decorrelated per-shard seed for a parallel campaign: shard k of a run
/// seeded `base` uses Rng(shard_seed(base, k)). The splitmix64 finalizer
/// over a golden-ratio stride gives well-mixed, collision-resistant seeds
/// that depend only on (base, shard) — never on thread count or schedule —
/// so sharded runs are reproducible under any decomposition.
inline std::uint64_t shard_seed(std::uint64_t base, std::uint64_t shard) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace hlp::stats
