#include "stats/descriptive.hpp"

#include <cmath>

namespace hlp::stats {

void RunningStats::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_abs_rel_error(std::span<const double> est,
                          std::span<const double> ref, double eps) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < est.size() && i < ref.size(); ++i) {
    if (std::abs(ref[i]) < eps) continue;
    sum += std::abs(est[i] - ref[i]) / std::abs(ref[i]);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double normal_quantile_two_sided(double confidence) {
  // Normal-approximation quantiles for the confidence levels we use.
  if (confidence >= 0.995) return 2.807;
  if (confidence >= 0.99) return 2.576;
  if (confidence >= 0.95) return 1.96;
  if (confidence >= 0.90) return 1.645;
  return 1.282;
}

double ci_halfwidth(const RunningStats& s, double confidence) {
  return normal_quantile_two_sided(confidence) * s.stderr_mean();
}

}  // namespace hlp::stats
