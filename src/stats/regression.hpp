#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hlp::stats {

/// Result of an ordinary-least-squares fit  y ~ X * beta (+ intercept).
struct OlsFit {
  std::vector<double> beta;  ///< coefficient per column of X
  double intercept = 0.0;
  double r2 = 0.0;          ///< coefficient of determination
  double rss = 0.0;         ///< residual sum of squares
  bool ok = false;          ///< false if the normal equations were singular

  /// Evaluate the fitted model on one row of predictors.
  double predict(std::span<const double> x) const;
};

/// Row-major design matrix: rows.size() observations, each of equal width.
using Matrix = std::vector<std::vector<double>>;

/// Ordinary least squares with intercept, solved via normal equations with
/// partial-pivot Gaussian elimination and a small ridge fallback when the
/// system is near-singular (collinear macro-model variables are common).
OlsFit ols(const Matrix& x, std::span<const double> y,
           bool with_intercept = true);

/// Stepwise variable selection driven by the partial F statistic, as used by
/// Wu et al. [44] to pick power-critical macro-model variables.
struct StepwiseResult {
  std::vector<std::size_t> selected;  ///< column indices, in selection order
  OlsFit fit;                         ///< OLS on the selected columns
};

/// Forward selection: greedily add the column with the largest partial
/// F statistic until none exceeds `f_enter` or `max_vars` is reached.
StepwiseResult forward_select(const Matrix& x, std::span<const double> y,
                              double f_enter = 4.0,
                              std::size_t max_vars = 8);

/// Project a design matrix onto the given columns.
Matrix select_columns(const Matrix& x, std::span<const std::size_t> cols);

}  // namespace hlp::stats
