#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hlp::stats {

/// Result of an ordinary-least-squares fit  y ~ X * beta (+ intercept).
struct OlsFit {
  std::vector<double> beta;  ///< coefficient per column of X
  double intercept = 0.0;
  double r2 = 0.0;          ///< coefficient of determination
  double rss = 0.0;         ///< residual sum of squares
  bool ok = false;          ///< false if the normal equations were singular
                            ///< or the inputs contained non-finite values
  /// True when the plain normal equations were singular and the solution
  /// came from the ridge fallback: the coefficients are usable for
  /// prediction but individually meaningless (collinear predictors), so
  /// downstream consumers that attach inference to them should refuse —
  /// ols_strict turns this into a typed error.
  bool rank_deficient = false;
  /// Condition estimate of the (possibly ridge-stabilized) normal
  /// equations: max|pivot| / min|pivot| from the elimination that produced
  /// the solution. Large values (> ~1e8) mean the coefficients are
  /// numerically fragile even when full-rank; fit reports surface this as
  /// a warning rather than silently shipping a brittle model.
  double condition = 0.0;

  /// Evaluate the fitted model on one row of predictors.
  double predict(std::span<const double> x) const;
};

/// Row-major design matrix: rows.size() observations, each of equal width.
using Matrix = std::vector<std::vector<double>>;

/// Ordinary least squares with intercept, solved via normal equations with
/// partial-pivot Gaussian elimination and a small ridge fallback when the
/// system is near-singular (collinear macro-model variables are common).
/// Never throws: a singular-even-with-ridge system or any non-finite input
/// (NaN/Inf in X or y) returns fit.ok == false instead of NaN coefficients.
OlsFit ols(const Matrix& x, std::span<const double> y,
           bool with_intercept = true);

/// Typed rejection for callers that must not receive a rank-deficient fit.
class RankDeficientError : public std::runtime_error {
 public:
  explicit RankDeficientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// ols() that refuses degenerate systems instead of falling back: throws
/// RankDeficientError when the design matrix is rank-deficient (ridge
/// engaged or outright singular) or the inputs are non-finite. The fit it
/// returns is always a genuine full-rank least-squares solution.
OlsFit ols_strict(const Matrix& x, std::span<const double> y,
                  bool with_intercept = true);

/// ols_strict plus the inference by-products a prediction interval needs:
/// the inverse of the intercept-augmented normal matrix (X'X)^-1, row-major
/// p x p with p = k + 1, ordered [intercept, columns...]. Throws
/// RankDeficientError under the same conditions as ols_strict.
struct OlsInference {
  OlsFit fit;
  std::size_t p = 0;            ///< augmented parameter count (k + 1)
  std::vector<double> xtx_inv;  ///< (p x p) row-major
};
OlsInference ols_inference(const Matrix& x, std::span<const double> y);

/// Stepwise variable selection driven by the partial F statistic, as used by
/// Wu et al. [44] to pick power-critical macro-model variables.
struct StepwiseResult {
  std::vector<std::size_t> selected;  ///< column indices, in selection order
  OlsFit fit;                         ///< OLS on the selected columns
};

/// Forward selection: greedily add the column with the largest partial
/// F statistic until none exceeds `f_enter` or `max_vars` is reached.
StepwiseResult forward_select(const Matrix& x, std::span<const double> y,
                              double f_enter = 4.0,
                              std::size_t max_vars = 8);

/// Project a design matrix onto the given columns.
Matrix select_columns(const Matrix& x, std::span<const std::size_t> cols);

}  // namespace hlp::stats
