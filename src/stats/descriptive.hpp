#pragma once

#include <cstddef>
#include <span>

namespace hlp::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the sampling-based power estimators (Section II-C2 of the paper)
/// where per-cycle power values arrive one at a time and both the census and
/// sampler macro-models need running moments.
class RunningStats {
 public:
  void add(double x);

  /// Fold another accumulator into this one (Chan et al. pairwise
  /// combination of Welford states). Each worker of a parallel campaign
  /// keeps a private accumulator and the supervisor merges them in a fixed
  /// (job-id) order afterwards, so the merged moments are deterministic —
  /// independent of thread schedule — and exact: merging partitions of a
  /// stream yields the same count/mean/M2 as accumulating the stream in
  /// one piece, up to floating-point association of the partition points.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;

  /// Second central moment sum (Welford's M2). Together with count()/mean()
  /// this is the accumulator's full state, so an estimation run can be
  /// checkpointed and resumed (exec-budgeted Monte Carlo power).
  double m2() const { return m2_; }
  /// Rebuild an accumulator from checkpointed state; continuing add() calls
  /// behave exactly as if the original had never stopped.
  static RunningStats restore(std::size_t n, double mean, double m2) {
    RunningStats rs;
    rs.n_ = n;
    rs.mean_ = mean;
    rs.m2_ = m2;
    return rs;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // unbiased, n-1
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute relative error of `est` against reference `ref`,
/// skipping reference values with magnitude below `eps`.
double mean_abs_rel_error(std::span<const double> est,
                          std::span<const double> ref, double eps = 1e-12);

/// Two-sided normal quantile for the confidence levels the estimators use
/// (0.95 -> 1.96). Shared by the Monte Carlo CI stopping rule and the
/// macromodel prediction intervals so "confidence" means the same thing on
/// both tiers.
double normal_quantile_two_sided(double confidence);

/// Half-width of the two-sided normal-approximation confidence interval
/// for the mean at the given confidence level (e.g. 0.95 -> 1.96 * SE).
double ci_halfwidth(const RunningStats& s, double confidence = 0.95);

}  // namespace hlp::stats
