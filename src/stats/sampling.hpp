#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace hlp::stats {

/// Draw a simple random sample of `k` distinct indices from [0, n).
/// If k >= n, returns all indices. Result is sorted ascending.
std::vector<std::size_t> simple_random_sample(std::size_t n, std::size_t k,
                                              Rng& rng);

/// Split [0, n) into `strata` contiguous strata and draw `per_stratum`
/// indices from each (stratified sampling, as in Ding et al. [33]).
std::vector<std::size_t> stratified_sample(std::size_t n, std::size_t strata,
                                           std::size_t per_stratum, Rng& rng);

/// Ratio estimator: estimate mean(Y) over a population where X is known for
/// every unit but Y only on a sample, exploiting Y ~ r * X.
/// `x_sample`/`y_sample` are paired observations; `x_pop_mean` is the known
/// population mean of X. This is the "adaptive macro-modeling" estimator of
/// Hsieh et al. [46]: X = macro-model power, Y = gate-level power.
double ratio_estimate_mean(std::span<const double> x_sample,
                           std::span<const double> y_sample,
                           double x_pop_mean);

/// Linear-regression estimator for the same setting: fits y = a + b x on the
/// sample and evaluates at the population mean of x.
double regression_estimate_mean(std::span<const double> x_sample,
                                std::span<const double> y_sample,
                                double x_pop_mean);

}  // namespace hlp::stats
