#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace hlp::stats {
namespace {

struct SolveReport {
  bool ok = false;
  bool used_ridge = false;
  double condition = 0.0;  ///< max|pivot| / min|pivot| of the solved system
};

/// Solve A * x = b; reports whether the ridge fallback was needed and the
/// pivot-ratio condition estimate of the system actually solved. When
/// `inverse` is non-null it is filled with A^-1 (row-major) from the same
/// Gauss-Jordan sweep, so solution and inverse always agree on which
/// (plain or ridged) system they describe.
SolveReport solve_linear(const std::vector<std::vector<double>>& a,
                         const std::vector<double>& b,
                         std::vector<double>& out,
                         std::vector<double>* inverse = nullptr) {
  SolveReport rep;
  const std::size_t n = a.size();
  for (std::size_t attempt = 0; attempt < 2; ++attempt) {
    auto aa = a;
    auto bb = b;
    std::vector<double> inv;
    if (inverse) {
      inv.assign(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1.0;
    }
    if (attempt == 1) {
      // Ridge fallback for collinear predictors.
      for (std::size_t i = 0; i < n; ++i) aa[i][i] += 1e-8 * (aa[i][i] + 1.0);
    }
    bool singular = false;
    double piv_max = 0.0, piv_min = 0.0;
    for (std::size_t col = 0; col < n && !singular; ++col) {
      std::size_t piv = col;
      for (std::size_t r = col + 1; r < n; ++r)
        if (std::abs(aa[r][col]) > std::abs(aa[piv][col])) piv = r;
      const double pv = std::abs(aa[piv][col]);
      if (pv < 1e-12) {
        singular = true;
        break;
      }
      if (col == 0 || pv > piv_max) piv_max = pv;
      if (col == 0 || pv < piv_min) piv_min = pv;
      std::swap(aa[piv], aa[col]);
      std::swap(bb[piv], bb[col]);
      if (inverse)
        for (std::size_t c = 0; c < n; ++c)
          std::swap(inv[piv * n + c], inv[col * n + c]);
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        double f = aa[r][col] / aa[col][col];
        if (f == 0.0) continue;
        for (std::size_t c = col; c < n; ++c) aa[r][c] -= f * aa[col][c];
        bb[r] -= f * bb[col];
        if (inverse)
          for (std::size_t c = 0; c < n; ++c)
            inv[r * n + c] -= f * inv[col * n + c];
      }
    }
    if (singular) continue;
    out.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) out[i] = bb[i] / aa[i][i];
    if (inverse) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < n; ++c) inv[i * n + c] /= aa[i][i];
      *inverse = std::move(inv);
    }
    rep.ok = true;
    rep.used_ridge = attempt == 1;
    rep.condition = piv_min > 0.0 ? piv_max / piv_min : 0.0;
    return rep;
  }
  return rep;
}

/// Shared core of ols / ols_inference: build the augmented normal equations
/// and solve them. Returns ok=false (never NaN) on non-finite inputs or a
/// system singular even with ridge.
OlsFit ols_impl(const Matrix& x, std::span<const double> y,
                bool with_intercept, std::vector<double>* inverse,
                std::size_t* p_out) {
  OlsFit fit;
  const std::size_t n = y.size();
  if (n == 0 || x.size() != n) return fit;
  const std::size_t k = x.empty() ? 0 : x[0].size();
  const std::size_t p = k + (with_intercept ? 1 : 0);
  if (p_out) *p_out = p;
  if (p == 0 || n < p) return fit;

  // Build augmented design with optional leading constant column.
  auto cell = [&](std::size_t row, std::size_t col) -> double {
    if (with_intercept) return col == 0 ? 1.0 : x[row][col - 1];
    return x[row][col];
  };
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      double xi = cell(r, i);
      xty[i] += xi * y[r];
      for (std::size_t j = i; j < p; ++j) xtx[i][j] += xi * cell(r, j);
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];

  // A single NaN or Inf in X or y poisons the normal equations and would
  // flow through pivoting into NaN coefficients with ok == true; catch it
  // here where the contamination is cheap to detect.
  for (std::size_t i = 0; i < p; ++i) {
    if (!std::isfinite(xty[i])) return fit;
    for (std::size_t j = 0; j < p; ++j)
      if (!std::isfinite(xtx[i][j])) return fit;
  }

  std::vector<double> coef;
  const SolveReport rep = solve_linear(xtx, xty, coef, inverse);
  if (!rep.ok) return fit;
  fit.rank_deficient = rep.used_ridge;
  fit.condition = rep.condition;

  if (with_intercept) {
    fit.intercept = coef[0];
    fit.beta.assign(coef.begin() + 1, coef.end());
  } else {
    fit.beta = coef;
  }

  double ybar = mean(y);
  double tss = 0.0, rss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = fit.intercept;
    for (std::size_t j = 0; j < k; ++j) pred += fit.beta[j] * x[r][j];
    rss += (y[r] - pred) * (y[r] - pred);
    tss += (y[r] - ybar) * (y[r] - ybar);
  }
  fit.rss = rss;
  fit.r2 = tss > 0.0 ? 1.0 - rss / tss : (rss < 1e-12 ? 1.0 : 0.0);
  fit.ok = true;
  return fit;
}

}  // namespace

double OlsFit::predict(std::span<const double> x) const {
  double y = intercept;
  for (std::size_t i = 0; i < beta.size() && i < x.size(); ++i)
    y += beta[i] * x[i];
  return y;
}

OlsFit ols(const Matrix& x, std::span<const double> y, bool with_intercept) {
  return ols_impl(x, y, with_intercept, nullptr, nullptr);
}

OlsFit ols_strict(const Matrix& x, std::span<const double> y,
                  bool with_intercept) {
  OlsFit fit = ols_impl(x, y, with_intercept, nullptr, nullptr);
  if (!fit.ok)
    throw RankDeficientError(
        "ols_strict: normal equations unsolvable (singular system, "
        "non-finite inputs, or fewer rows than parameters)");
  if (fit.rank_deficient)
    throw RankDeficientError(
        "ols_strict: design matrix is rank-deficient (collinear columns; "
        "solution exists only under ridge regularization)");
  return fit;
}

OlsInference ols_inference(const Matrix& x, std::span<const double> y) {
  OlsInference inf;
  inf.fit = ols_impl(x, y, /*with_intercept=*/true, &inf.xtx_inv, &inf.p);
  if (!inf.fit.ok)
    throw RankDeficientError(
        "ols_inference: normal equations unsolvable (singular system, "
        "non-finite inputs, or fewer rows than parameters)");
  if (inf.fit.rank_deficient)
    throw RankDeficientError(
        "ols_inference: design matrix is rank-deficient; prediction "
        "intervals from a ridged inverse would understate uncertainty");
  return inf;
}

Matrix select_columns(const Matrix& x, std::span<const std::size_t> cols) {
  Matrix out(x.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    out[r].reserve(cols.size());
    for (std::size_t c : cols) out[r].push_back(x[r][c]);
  }
  return out;
}

StepwiseResult forward_select(const Matrix& x, std::span<const double> y,
                              double f_enter, std::size_t max_vars) {
  StepwiseResult res;
  const std::size_t n = y.size();
  if (n == 0 || x.empty()) return res;
  const std::size_t k = x[0].size();

  // RSS of the intercept-only model.
  double ybar = mean(y);
  double rss_cur = 0.0;
  for (double v : y) rss_cur += (v - ybar) * (v - ybar);

  std::vector<bool> in(k, false);
  while (res.selected.size() < std::min(max_vars, k)) {
    double best_f = 0.0;
    std::size_t best_col = k;
    OlsFit best_fit;
    for (std::size_t c = 0; c < k; ++c) {
      if (in[c]) continue;
      auto cols = res.selected;
      cols.push_back(c);
      auto xs = select_columns(x, cols);
      OlsFit f = ols(xs, y);
      if (!f.ok) continue;
      std::size_t p_new = cols.size() + 1;  // + intercept
      if (n <= p_new) continue;
      double denom = f.rss / static_cast<double>(n - p_new);
      if (denom < 1e-15) denom = 1e-15;
      double fstat = (rss_cur - f.rss) / denom;
      if (fstat > best_f) {
        best_f = fstat;
        best_col = c;
        best_fit = f;
      }
    }
    if (best_col == k || best_f < f_enter) break;
    in[best_col] = true;
    res.selected.push_back(best_col);
    res.fit = best_fit;
    rss_cur = best_fit.rss;
  }
  if (res.selected.empty()) {
    res.fit = OlsFit{};
    res.fit.intercept = ybar;
    res.fit.ok = true;
  }
  return res;
}

}  // namespace hlp::stats
