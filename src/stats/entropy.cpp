#include "stats/entropy.hpp"

#include <bit>
#include <cmath>
#include <unordered_map>

namespace hlp::stats {

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double distribution_entropy(std::span<const double> probs) {
  double total = 0.0;
  for (double p : probs)
    if (p > 0.0) total += p;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    double q = p / total;
    h -= q * std::log2(q);
  }
  return h;
}

std::vector<double> signal_probabilities(const VectorStream& s) {
  std::vector<double> q(static_cast<std::size_t>(s.width), 0.0);
  if (s.words.empty()) return q;
  for (std::uint64_t w : s.words)
    for (int i = 0; i < s.width; ++i)
      if ((w >> i) & 1u) q[static_cast<std::size_t>(i)] += 1.0;
  for (double& v : q) v /= static_cast<double>(s.words.size());
  return q;
}

std::vector<double> switching_activities(const VectorStream& s) {
  std::vector<double> e(static_cast<std::size_t>(s.width), 0.0);
  if (s.words.size() < 2) return e;
  for (std::size_t c = 1; c < s.words.size(); ++c) {
    std::uint64_t diff = s.words[c] ^ s.words[c - 1];
    for (int i = 0; i < s.width; ++i)
      if ((diff >> i) & 1u) e[static_cast<std::size_t>(i)] += 1.0;
  }
  for (double& v : e) v /= static_cast<double>(s.words.size() - 1);
  return e;
}

double avg_bit_entropy(const VectorStream& s) {
  if (s.width == 0) return 0.0;
  auto q = signal_probabilities(s);
  double h = 0.0;
  for (double qi : q) h += binary_entropy(qi);
  return h / static_cast<double>(s.width);
}

double sum_bit_entropy(const VectorStream& s) {
  auto q = signal_probabilities(s);
  double h = 0.0;
  for (double qi : q) h += binary_entropy(qi);
  return h;
}

double word_entropy(const VectorStream& s) {
  if (s.words.empty()) return 0.0;
  std::unordered_map<std::uint64_t, double> counts;
  for (std::uint64_t w : s.words) counts[w] += 1.0;
  double n = static_cast<double>(s.words.size());
  double h = 0.0;
  for (const auto& [w, c] : counts) {
    double p = c / n;
    h -= p * std::log2(p);
  }
  return h;
}

double avg_hamming_per_cycle(const VectorStream& s) {
  if (s.words.size() < 2) return 0.0;
  std::uint64_t total = 0;
  for (std::size_t c = 1; c < s.words.size(); ++c)
    total += static_cast<std::uint64_t>(
        std::popcount(s.words[c] ^ s.words[c - 1]));
  return static_cast<double>(total) / static_cast<double>(s.words.size() - 1);
}

}  // namespace hlp::stats
