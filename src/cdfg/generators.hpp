#pragma once

#include <cstdint>

#include "cdfg/cdfg.hpp"

namespace hlp::cdfg {

/// Direct (power-form) evaluation of an order-n polynomial
/// a_n x^n + ... + a_1 x + a_0 — the left-hand structures of Figs. 4 and 5.
Cdfg polynomial_direct(int order, int width = 8);

/// Horner-form evaluation (((a_n x + a_{n-1}) x + ...) x + a_0) — the
/// right-hand structures of Figs. 4 and 5.
Cdfg polynomial_horner(int order, int width = 8);

/// N-tap FIR filter y[n] = sum_i c_i * x[n-i]; delayed samples modeled as
/// inputs (the register file is handled by the datapath builder in core).
Cdfg fir_cdfg(int taps, int width = 8);

/// Random binary expression tree of `n_leaves` leaves over +/* (mul_frac of
/// internal nodes are multiplies). Used by the multiple-voltage scheduling
/// experiments, which operate on tree CDFGs.
Cdfg random_expr_tree(int n_leaves, double mul_frac, std::uint64_t seed,
                      int width = 8);

/// Control-flow-intensive CDFG: `n_branches` two-sided conditional chains
/// whose sides are add/mul cones merged by muxes — the structure the
/// Monteiro power-management scheduling (Section III-D) exploits.
Cdfg branching_cdfg(int n_branches, int cone_ops, std::uint64_t seed,
                    int width = 8);

/// Operand-sharing CDFG: `n_vars` inputs, each multiplied by `n_coefs`
/// distinct constants (all products independent). Created in interleaved
/// order, so an id-ordered schedule alternates the shared operand on a
/// single multiplier while an operand-affinity schedule (Musoll–Cortadella,
/// Section III-D) can group same-input products together.
Cdfg operand_sharing_cdfg(int n_vars, int n_coefs, int width = 8);

}  // namespace hlp::cdfg
