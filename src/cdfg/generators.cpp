#include "cdfg/generators.hpp"

#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace hlp::cdfg {

Cdfg polynomial_direct(int order, int width) {
  Cdfg g;
  OpId x = g.add_input("x", width);
  std::vector<OpId> coef;
  for (int i = 0; i <= order; ++i)
    coef.push_back(g.add_const("a" + std::to_string(i), width));
  // Powers x^2..x^order.
  std::vector<OpId> pow{kNullOp, x};
  for (int i = 2; i <= order; ++i)
    pow.push_back(g.add_binary(OpKind::Mul, pow.back(), x,
                               "x^" + std::to_string(i), width));
  // Terms and sum.
  OpId acc = coef[0];
  for (int i = 1; i <= order; ++i) {
    OpId term = g.add_binary(OpKind::Mul, coef[static_cast<std::size_t>(i)],
                             pow[static_cast<std::size_t>(i)],
                             "t" + std::to_string(i), width);
    acc = g.add_binary(OpKind::Add, acc, term, "s" + std::to_string(i), width);
  }
  g.mark_output(acc, "y");
  return g;
}

Cdfg polynomial_horner(int order, int width) {
  Cdfg g;
  OpId x = g.add_input("x", width);
  std::vector<OpId> coef;
  for (int i = 0; i <= order; ++i)
    coef.push_back(g.add_const("a" + std::to_string(i), width));
  OpId acc = coef[static_cast<std::size_t>(order)];
  for (int i = order - 1; i >= 0; --i) {
    OpId m = g.add_binary(OpKind::Mul, acc, x, "m" + std::to_string(i), width);
    acc = g.add_binary(OpKind::Add, m, coef[static_cast<std::size_t>(i)],
                       "h" + std::to_string(i), width);
  }
  g.mark_output(acc, "y");
  return g;
}

Cdfg fir_cdfg(int taps, int width) {
  Cdfg g;
  std::vector<OpId> xs, cs;
  for (int i = 0; i < taps; ++i)
    xs.push_back(g.add_input("x[n-" + std::to_string(i) + "]", width));
  for (int i = 0; i < taps; ++i)
    cs.push_back(g.add_const("c" + std::to_string(i), width));
  OpId acc = kNullOp;
  for (int i = 0; i < taps; ++i) {
    OpId m = g.add_binary(OpKind::Mul, cs[static_cast<std::size_t>(i)],
                          xs[static_cast<std::size_t>(i)],
                          "p" + std::to_string(i), width);
    acc = (acc == kNullOp)
              ? m
              : g.add_binary(OpKind::Add, acc, m, "a" + std::to_string(i),
                             width);
  }
  g.mark_output(acc, "y");
  return g;
}

Cdfg random_expr_tree(int n_leaves, double mul_frac, std::uint64_t seed,
                      int width) {
  stats::Rng rng(seed);
  Cdfg g;
  std::vector<OpId> frontier;
  for (int i = 0; i < n_leaves; ++i)
    frontier.push_back(g.add_input("x" + std::to_string(i), width));
  while (frontier.size() > 1) {
    // Combine two random frontier nodes.
    auto pick = [&]() {
      auto i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(frontier.size()) - 1));
      OpId v = frontier[i];
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(i));
      return v;
    };
    OpId a = pick(), b = pick();
    OpKind k = rng.uniform_real() < mul_frac ? OpKind::Mul : OpKind::Add;
    frontier.push_back(g.add_binary(k, a, b, {}, width));
  }
  g.mark_output(frontier[0], "y");
  return g;
}

Cdfg operand_sharing_cdfg(int n_vars, int n_coefs, int width) {
  Cdfg g;
  std::vector<OpId> xs, cs;
  for (int i = 0; i < n_vars; ++i)
    xs.push_back(g.add_input("x" + std::to_string(i), width));
  for (int k = 0; k < n_vars * n_coefs; ++k)
    cs.push_back(g.add_const("c" + std::to_string(k), width));
  // Interleaved creation: products of different inputs alternate in id
  // order (the worst case for a slack-ordered single-multiplier schedule).
  for (int k = 0; k < n_coefs; ++k)
    for (int i = 0; i < n_vars; ++i) {
      OpId m = g.add_binary(OpKind::Mul, xs[static_cast<std::size_t>(i)],
                            cs[static_cast<std::size_t>(k * n_vars + i)],
                            "p" + std::to_string(k) + "_" + std::to_string(i),
                            width);
      g.mark_output(m);
    }
  return g;
}

Cdfg branching_cdfg(int n_branches, int cone_ops, std::uint64_t seed,
                    int width) {
  stats::Rng rng(seed);
  Cdfg g;
  OpId carry = g.add_input("x0", width);
  for (int b = 0; b < n_branches; ++b) {
    OpId in = g.add_input("x" + std::to_string(b + 1), width);
    OpId cond_in = g.add_input("c" + std::to_string(b), 1);
    OpId cond = g.add_binary(OpKind::Cmp, cond_in, carry,
                             "cmp" + std::to_string(b), 1);
    auto build_cone = [&](OpId seed_op, const char* tag) {
      OpId acc = seed_op;
      for (int i = 0; i < cone_ops; ++i) {
        OpKind k = rng.bit(0.5) ? OpKind::Mul : OpKind::Add;
        acc = g.add_binary(k, acc, in,
                           std::string(tag) + std::to_string(b) + "_" +
                               std::to_string(i),
                           width);
      }
      return acc;
    };
    OpId then_v = build_cone(carry, "t");
    OpId else_v = build_cone(in, "e");
    carry = g.add_mux(cond, else_v, then_v, "m" + std::to_string(b), width);
  }
  g.mark_output(carry, "y");
  return g;
}

}  // namespace hlp::cdfg
