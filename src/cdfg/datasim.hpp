#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace hlp::cdfg {

/// Word-level data simulation of a CDFG: evaluates every op over a number of
/// iterations given per-input value streams. Used by the low-power
/// allocation algorithms (Section III-E), which need the actual bit
/// switching between values that share a resource.
///
/// `input_values[i]` is the value stream for input op `inputs[i]` (in the
/// order input ops were created); `const_values` maps Const ops to fixed
/// values. Values wrap at each op's width.
struct DataTrace {
  /// value[t][op] = value of op at iteration t.
  std::vector<std::vector<std::int64_t>> value;
  std::size_t iterations() const { return value.size(); }
};

DataTrace simulate_cdfg(const Cdfg& g,
                        const std::vector<std::vector<std::int64_t>>& input_values,
                        const std::map<OpId, std::int64_t>& const_values = {});

/// Mean normalized Hamming distance between the value streams of two ops
/// (fraction of differing bits per iteration), over the narrower width.
double value_stream_switching(const Cdfg& g, const DataTrace& tr, OpId a,
                              OpId b);

}  // namespace hlp::cdfg
