#include "cdfg/cdfg.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/hash.hpp"

namespace hlp::cdfg {

OpId Cdfg::add_op(OpKind kind, std::span<const OpId> preds,
                  std::string_view name, int width) {
  OpId id = static_cast<OpId>(ops_.size());
  Op op;
  op.kind = kind;
  op.preds.assign(preds.begin(), preds.end());
  for ([[maybe_unused]] OpId p : op.preds)
    assert(p < id && "CDFG must be built in topo order");
  op.name = std::string(name);
  op.width = width;
  ops_.push_back(std::move(op));
  return id;
}

OpId Cdfg::add_input(std::string_view name, int width) {
  return add_op(OpKind::Input, {}, name, width);
}

OpId Cdfg::add_const(std::string_view name, int width) {
  return add_op(OpKind::Const, {}, name, width);
}

OpId Cdfg::add_binary(OpKind kind, OpId a, OpId b, std::string_view name,
                      int width) {
  OpId p[2] = {a, b};
  return add_op(kind, p, name, width);
}

OpId Cdfg::add_mux(OpId ctrl, OpId d0, OpId d1, std::string_view name,
                   int width) {
  OpId p[3] = {ctrl, d0, d1};
  return add_op(OpKind::Mux, p, name, width);
}

OpId Cdfg::mark_output(OpId v, std::string_view name) {
  OpId p[1] = {v};
  OpId id = add_op(OpKind::Output, p, name, ops_[v].width);
  outputs_.push_back(id);
  return id;
}

std::vector<std::vector<OpId>> Cdfg::succs() const {
  std::vector<std::vector<OpId>> s(ops_.size());
  for (OpId id = 0; id < ops_.size(); ++id)
    for (OpId p : ops_[id].preds) s[p].push_back(id);
  return s;
}

std::vector<OpId> Cdfg::topo_order() const {
  std::vector<OpId> order(ops_.size());
  std::iota(order.begin(), order.end(), OpId{0});
  return order;
}

std::vector<OpId> Cdfg::transitive_fanin(OpId root) const {
  std::vector<bool> seen(ops_.size(), false);
  std::vector<OpId> stack{root}, out;
  while (!stack.empty()) {
    OpId id = stack.back();
    stack.pop_back();
    for (OpId p : ops_[id].preds) {
      if (!seen[p]) {
        seen[p] = true;
        out.push_back(p);
        stack.push_back(p);
      }
    }
  }
  return out;
}

int OpDelays::of(OpKind k) const {
  switch (k) {
    case OpKind::Add: return add;
    case OpKind::Sub: return sub;
    case OpKind::Mul: return mul;
    case OpKind::Shift: return shift;
    case OpKind::Cmp: return cmp;
    case OpKind::Mux: return mux;
    default: return 0;
  }
}

int Schedule::finish(const Cdfg& g, const OpDelays& d, OpId id) const {
  return start[id] + d.of(g.op(id).kind);
}

Schedule asap(const Cdfg& g, const OpDelays& d) {
  Schedule s;
  s.start.assign(g.size(), 0);
  for (OpId id = 0; id < g.size(); ++id) {
    int t = 0;
    for (OpId p : g.op(id).preds)
      t = std::max(t, s.start[p] + d.of(g.op(p).kind));
    s.start[id] = t;
    s.length = std::max(s.length, t + d.of(g.op(id).kind));
  }
  return s;
}

Schedule alap(const Cdfg& g, int latency, const OpDelays& d) {
  Schedule s;
  s.start.assign(g.size(), 0);
  std::vector<int> latest(g.size(), latency);
  auto su = g.succs();
  for (OpId rid = 0; rid < g.size(); ++rid) {
    OpId id = static_cast<OpId>(g.size() - 1 - rid);
    int t = latency;
    for (OpId c : su[id]) t = std::min(t, s.start[c]);
    s.start[id] = t - d.of(g.op(id).kind);
    if (s.start[id] < 0)
      throw std::invalid_argument("alap: latency below critical path");
  }
  s.length = latency;
  return s;
}

Schedule list_schedule(const Cdfg& g, const std::map<OpKind, int>& limits,
                       const OpDelays& d, std::span<const double> priority) {
  // Default priority: negated ALAP slack (critical ops first).
  std::vector<double> prio(g.size(), 0.0);
  if (!priority.empty()) {
    for (OpId i = 0; i < g.size() && i < priority.size(); ++i)
      prio[i] = priority[i];
  } else {
    Schedule a = asap(g, d);
    Schedule l = alap(g, a.length, d);
    for (OpId i = 0; i < g.size(); ++i)
      prio[i] = -static_cast<double>(l.start[i] - a.start[i]);
  }

  Schedule s;
  s.start.assign(g.size(), -1);
  std::vector<int> pending(g.size(), 0);
  for (OpId id = 0; id < g.size(); ++id)
    pending[id] = static_cast<int>(g.op(id).preds.size());

  auto su = g.succs();
  std::vector<OpId> ready;
  for (OpId id = 0; id < g.size(); ++id)
    if (pending[id] == 0) ready.push_back(id);

  std::size_t scheduled = 0;
  std::vector<std::pair<int, OpId>> running;  // (finish step, op)
  int step = 0;
  const int guard = static_cast<int>(g.size()) * 8 + 64;
  while (scheduled < g.size() && step < guard) {
    // Retire ops finishing at `step` and release their successors.
    for (auto it = running.begin(); it != running.end();) {
      if (it->first <= step) {
        for (OpId c : su[it->second])
          if (--pending[c] == 0) ready.push_back(c);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
    // Count resources in use this step.
    std::map<OpKind, int> busy;
    for (auto& [fin, id] : running) ++busy[g.op(id).kind];
    // Greedy issue by priority. Zero-delay ops (inputs/outputs) release
    // their successors within the same step, so iterate to a fixed point.
    std::vector<OpId> deferred;
    bool progress = true;
    while (progress) {
      progress = false;
      std::sort(ready.begin(), ready.end(), [&](OpId a, OpId b) {
        if (prio[a] != prio[b]) return prio[a] > prio[b];
        return a < b;
      });
      std::vector<OpId> next_round;
      for (OpId id : ready) {
        OpKind k = g.op(id).kind;
        auto lim = limits.find(k);
        bool fits = lim == limits.end() || busy[k] < lim->second;
        if (!fits) {
          deferred.push_back(id);
          continue;
        }
        s.start[id] = step;
        ++scheduled;
        progress = true;
        int dur = d.of(k);
        if (dur == 0) {
          for (OpId c : su[id])
            if (--pending[c] == 0) next_round.push_back(c);
        } else {
          ++busy[k];
          running.emplace_back(step + dur, id);
        }
        s.length = std::max(s.length, step + dur);
      }
      ready = std::move(next_round);
    }
    for (OpId id : ready) deferred.push_back(id);
    ready = std::move(deferred);
    ++step;
  }
  if (scheduled < g.size())
    throw std::logic_error("list_schedule: failed to converge");
  return s;
}

Lifetimes lifetimes(const Cdfg& g, const Schedule& s, const OpDelays& d) {
  Lifetimes lt;
  lt.def.assign(g.size(), 0);
  lt.last_use.assign(g.size(), 0);
  for (OpId id = 0; id < g.size(); ++id) {
    lt.def[id] = s.start[id] + d.of(g.op(id).kind);
    lt.last_use[id] = lt.def[id];
  }
  for (OpId id = 0; id < g.size(); ++id)
    for (OpId p : g.op(id).preds)
      lt.last_use[p] = std::max(lt.last_use[p], s.start[id]);
  return lt;
}

std::uint64_t structural_hash(const Cdfg& g) {
  util::Fnv1a64 h;
  h.u64(g.size());
  for (OpId id = 0; id < g.size(); ++id) {
    const Op& op = g.op(id);
    h.u32(static_cast<std::uint32_t>(op.kind));
    h.u64(op.preds.size());
    for (OpId p : op.preds) h.u32(p);
    h.u32(static_cast<std::uint32_t>(op.width));
  }
  h.u64(g.outputs().size());
  for (OpId o : g.outputs()) h.u32(o);
  return h.digest();
}

}  // namespace hlp::cdfg
