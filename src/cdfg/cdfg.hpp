#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hlp::cdfg {

using OpId = std::uint32_t;
inline constexpr OpId kNullOp = static_cast<OpId>(-1);

/// Operation kinds in the control-data-flow graph (Section III-C..III-F).
enum class OpKind : std::uint8_t {
  Input,   ///< primary input / constant source (zero delay, no resource)
  Const,   ///< constant source
  Add,
  Sub,
  Mul,
  Shift,   ///< constant shift (cheap)
  Cmp,     ///< comparison
  Mux,     ///< select: preds = {ctrl, d0, d1}
  Output,  ///< sink marking a primary output (zero delay, no resource)
};

struct Op {
  OpKind kind = OpKind::Input;
  std::vector<OpId> preds;
  std::string name;
  int width = 8;  ///< operand bit width (drives energy models)
};

/// Dataflow graph with explicit select (Mux) nodes; acyclic.
class Cdfg {
 public:
  OpId add_op(OpKind kind, std::span<const OpId> preds,
              std::string_view name = {}, int width = 8);
  OpId add_input(std::string_view name = {}, int width = 8);
  OpId add_const(std::string_view name = {}, int width = 8);
  OpId add_binary(OpKind kind, OpId a, OpId b, std::string_view name = {},
                  int width = 8);
  OpId add_mux(OpId ctrl, OpId d0, OpId d1, std::string_view name = {},
               int width = 8);
  OpId mark_output(OpId v, std::string_view name = {});

  std::size_t size() const { return ops_.size(); }
  const Op& op(OpId id) const { return ops_[id]; }
  std::span<const OpId> outputs() const { return outputs_; }

  /// Successor adjacency (computed on demand).
  std::vector<std::vector<OpId>> succs() const;
  /// Topological order (ops are created in topological order by
  /// construction, so this is just 0..n-1; kept for clarity).
  std::vector<OpId> topo_order() const;

  /// Transitive fanin cone of `root` (excluding root itself).
  std::vector<OpId> transitive_fanin(OpId root) const;

  /// True if the op consumes a functional-unit resource.
  static bool is_compute(OpKind k) {
    return k == OpKind::Add || k == OpKind::Sub || k == OpKind::Mul ||
           k == OpKind::Shift || k == OpKind::Cmp;
  }

 private:
  std::vector<Op> ops_;
  std::vector<OpId> outputs_;
};

/// Canonical structural fingerprint: FNV-1a (splitmix-finalized) over op
/// kinds, predecessor edges, widths, and the output interface, in op-id
/// order. Diagnostic names are excluded, so the fingerprint identifies
/// content — the key basis for the serve layer's result cache (DESIGN.md
/// §9).
std::uint64_t structural_hash(const Cdfg& g);

/// Per-kind execution delays in control steps.
struct OpDelays {
  int of(OpKind k) const;
  int add = 1, sub = 1, mul = 2, shift = 1, cmp = 1, mux = 1;
};

/// A schedule assigns each op a start control step.
struct Schedule {
  std::vector<int> start;  ///< per op; inputs/consts start at 0
  int length = 0;          ///< total control steps (makespan)

  int finish(const Cdfg& g, const OpDelays& d, OpId id) const;
};

/// Unconstrained as-soon-as-possible schedule.
Schedule asap(const Cdfg& g, const OpDelays& d = {});
/// As-late-as-possible schedule for a given latency bound (>= ASAP length).
Schedule alap(const Cdfg& g, int latency, const OpDelays& d = {});

/// Resource-constrained list scheduling. `limits` caps the number of ops of
/// each kind that may execute concurrently (kinds absent = unlimited).
/// `priority` orders ready ops (higher first); by default, ALAP slack.
Schedule list_schedule(const Cdfg& g, const std::map<OpKind, int>& limits,
                       const OpDelays& d = {},
                       std::span<const double> priority = {});

/// Lifetime [def_step, last_use_step] per op value under a schedule.
struct Lifetimes {
  std::vector<int> def;       ///< finish step of producing op
  std::vector<int> last_use;  ///< latest start step among consumers
};
Lifetimes lifetimes(const Cdfg& g, const Schedule& s, const OpDelays& d = {});

}  // namespace hlp::cdfg
