#include "cdfg/datasim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace hlp::cdfg {

namespace {
std::int64_t wrap(std::int64_t v, int width) {
  if (width >= 63) return v;
  std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) & mask);
}
}  // namespace

DataTrace simulate_cdfg(
    const Cdfg& g, const std::vector<std::vector<std::int64_t>>& input_values,
    const std::map<OpId, std::int64_t>& const_values) {
  // Collect input ops in creation order.
  std::vector<OpId> inputs;
  for (OpId id = 0; id < g.size(); ++id)
    if (g.op(id).kind == OpKind::Input) inputs.push_back(id);
  if (inputs.size() != input_values.size())
    throw std::invalid_argument("simulate_cdfg: input stream count mismatch");
  std::size_t iters = input_values.empty() ? 0 : input_values[0].size();

  DataTrace tr;
  tr.value.assign(iters, std::vector<std::int64_t>(g.size(), 0));
  for (std::size_t t = 0; t < iters; ++t) {
    auto& v = tr.value[t];
    for (std::size_t i = 0; i < inputs.size(); ++i)
      v[inputs[i]] = wrap(input_values[i][t], g.op(inputs[i]).width);
    for (OpId id = 0; id < g.size(); ++id) {
      const Op& op = g.op(id);
      switch (op.kind) {
        case OpKind::Input: break;
        case OpKind::Const: {
          auto it = const_values.find(id);
          v[id] = it == const_values.end() ? 3 : it->second;
          v[id] = wrap(v[id], op.width);
          break;
        }
        case OpKind::Add:
          v[id] = wrap(v[op.preds[0]] + v[op.preds[1]], op.width);
          break;
        case OpKind::Sub:
          v[id] = wrap(v[op.preds[0]] - v[op.preds[1]], op.width);
          break;
        case OpKind::Mul:
          v[id] = wrap(v[op.preds[0]] * v[op.preds[1]], op.width);
          break;
        case OpKind::Shift:
          v[id] = wrap(v[op.preds[0]] << 1, op.width);
          break;
        case OpKind::Cmp:
          v[id] = v[op.preds[0]] < v[op.preds[1]] ? 1 : 0;
          break;
        case OpKind::Mux:
          v[id] = v[op.preds[0]] ? v[op.preds[2]] : v[op.preds[1]];
          break;
        case OpKind::Output:
          v[id] = v[op.preds[0]];
          break;
      }
    }
  }
  return tr;
}

double value_stream_switching(const Cdfg& g, const DataTrace& tr, OpId a,
                              OpId b) {
  if (tr.value.empty()) return 0.0;
  int w = std::min(g.op(a).width, g.op(b).width);
  std::uint64_t mask =
      w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
  double total = 0.0;
  for (const auto& v : tr.value) {
    std::uint64_t x = static_cast<std::uint64_t>(v[a]) & mask;
    std::uint64_t y = static_cast<std::uint64_t>(v[b]) & mask;
    total += static_cast<double>(std::popcount(x ^ y));
  }
  return total / (static_cast<double>(tr.value.size()) *
                  static_cast<double>(w));
}

}  // namespace hlp::cdfg
