// Compiled with -mavx2 (see src/sim/CMakeLists.txt); only the runtime
// dispatcher in block_simulator.cpp may call into this TU, and only after
// __builtin_cpu_supports("avx2") succeeds.
#include "sim/block_kernels_impl.hpp"

#if defined(HLP_SIM_HAVE_AVX2)
#include <immintrin.h>

namespace hlp::sim::detail {
namespace {

struct VAvx2 {
  static constexpr int kWords = 4;
  using Reg = __m256i;
  static Reg load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg ones() { return _mm256_set1_epi64x(-1); }
  static Reg zero() { return _mm256_setzero_si256(); }
  static Reg and_(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static Reg xor_(Reg a, Reg b) { return _mm256_xor_si256(a, b); }
  static Reg not_(Reg a) { return _mm256_xor_si256(a, ones()); }
  static Reg andnot(Reg a, Reg b) { return _mm256_andnot_si256(a, b); }
};

}  // namespace

EvalKernelFn avx2_kernel() { return &eval_ops<VAvx2>; }

}  // namespace hlp::sim::detail
#endif  // HLP_SIM_HAVE_AVX2
