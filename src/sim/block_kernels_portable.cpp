#include "sim/block_kernels_impl.hpp"

namespace hlp::sim::detail {
namespace {

struct VPortable {
  static constexpr int kWords = 1;
  using Reg = std::uint64_t;
  static Reg load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, Reg v) { *p = v; }
  static Reg ones() { return ~std::uint64_t{0}; }
  static Reg zero() { return 0; }
  static Reg and_(Reg a, Reg b) { return a & b; }
  static Reg or_(Reg a, Reg b) { return a | b; }
  static Reg xor_(Reg a, Reg b) { return a ^ b; }
  static Reg not_(Reg a) { return ~a; }
  static Reg andnot(Reg a, Reg b) { return ~a & b; }
};

}  // namespace

EvalKernelFn portable_kernel() { return &eval_ops<VPortable>; }

}  // namespace hlp::sim::detail
