#include "sim/packed_simulator.hpp"

#include <bit>
#include <stdexcept>

namespace hlp::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

EngineKind resolve_engine(const netlist::Netlist& nl, EngineKind requested) {
  const bool packable = nl.dffs().empty() && nl.inputs().size() <= 64 &&
                        nl.outputs().size() <= 64;
  if (requested == EngineKind::Auto)
    return packable ? EngineKind::Packed : EngineKind::Scalar;
  if (requested == EngineKind::Packed && !packable)
    throw std::logic_error(
        "resolve_engine: packed temporal lanes require a combinational "
        "netlist with <= 64 inputs/outputs (sequential state recurrence "
        "serializes consecutive cycles); use the scalar engine or packed "
        "replica lanes via PackedSimulator directly");
  return requested;
}

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Auto: return "auto";
    case EngineKind::Scalar: return "scalar";
    case EngineKind::Packed: return "packed";
  }
  return "?";
}

void transpose64(std::uint64_t m[64]) {
  // Block-swap transpose: exchange the off-diagonal quadrants of
  // progressively smaller 2j x 2j blocks. Convention: element (row r,
  // column c) lives at bit c of m[r], so the swap pairs bit c+j of row r
  // with bit c of row r+j.
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      std::uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
      m[k] ^= t << j;
      m[k | j] ^= t;
    }
  }
}

PackedSimulator::PackedSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  lanes_.assign(nl.gate_count(), 0);
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    Op op;
    op.kind = g.kind;
    op.gate = id;
    op.fanin_begin = static_cast<std::uint32_t>(flat_fanins_.size());
    flat_fanins_.insert(flat_fanins_.end(), g.fanins.begin(), g.fanins.end());
    op.fanin_end = static_cast<std::uint32_t>(flat_fanins_.size());
    ops_.push_back(op);
  }
  reset();
}

void PackedSimulator::reset() {
  lanes_.assign(nl_->gate_count(), 0);
  for (GateId g = 0; g < nl_->gate_count(); ++g)
    if (nl_->gate(g).kind == GateKind::Const1) lanes_[g] = ~std::uint64_t{0};
  for (GateId d : nl_->dffs())
    lanes_[d] = nl_->dff_init(d) ? ~std::uint64_t{0} : 0;
}

void PackedSimulator::set_input_lanes(GateId input, std::uint64_t lanes) {
  lanes_[input] = lanes;
}

void PackedSimulator::set_inputs_from_cycles(
    std::span<const std::uint64_t> words) {
  auto ins = nl_->inputs();
  if (ins.size() > 64)
    throw std::out_of_range(
        "PackedSimulator::set_inputs_from_cycles: more than 64 inputs");
  std::uint64_t m[64] = {};
  const std::size_t count = words.size() < 64 ? words.size() : 64;
  for (std::size_t k = 0; k < count; ++k) m[k] = words[k];
  transpose64(m);
  for (std::size_t i = 0; i < ins.size(); ++i) lanes_[ins[i]] = m[i];
}

void PackedSimulator::eval() {
  const GateId* fan = flat_fanins_.data();
  for (const Op& op : ops_) {
    const GateId* f = fan + op.fanin_begin;
    const std::uint32_t n = op.fanin_end - op.fanin_begin;
    std::uint64_t v = 0;
    switch (op.kind) {
      case GateKind::Buf:
        v = lanes_[f[0]];
        break;
      case GateKind::Not:
        v = ~lanes_[f[0]];
        break;
      case GateKind::And:
      case GateKind::Nand: {
        v = ~std::uint64_t{0};
        for (std::uint32_t i = 0; i < n; ++i) v &= lanes_[f[i]];
        if (op.kind == GateKind::Nand) v = ~v;
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        v = 0;
        for (std::uint32_t i = 0; i < n; ++i) v |= lanes_[f[i]];
        if (op.kind == GateKind::Nor) v = ~v;
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        v = 0;
        for (std::uint32_t i = 0; i < n; ++i) v ^= lanes_[f[i]];
        if (op.kind == GateKind::Xnor) v = ~v;
        break;
      }
      case GateKind::Mux:
        v = (lanes_[f[0]] & lanes_[f[2]]) | (~lanes_[f[0]] & lanes_[f[1]]);
        break;
      default:  // Input/Const/Dff never appear in ops_.
        break;
    }
    lanes_[op.gate] = v;
  }
}

void PackedSimulator::tick() {
  dff_next_.clear();
  for (GateId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    dff_next_.push_back(g.fanins.empty() ? lanes_[d] : lanes_[g.fanins[0]]);
  }
  std::size_t i = 0;
  for (GateId d : nl_->dffs()) lanes_[d] = dff_next_[i++];
}

void PackedSimulator::outputs_to_cycles(std::span<std::uint64_t> out) const {
  auto outs = nl_->outputs();
  if (outs.size() > 64)
    throw std::out_of_range(
        "PackedSimulator::outputs_to_cycles: more than 64 outputs");
  std::uint64_t m[64] = {};
  for (std::size_t i = 0; i < outs.size(); ++i) m[i] = lanes_[outs[i]];
  transpose64(m);
  const std::size_t count = out.size() < 64 ? out.size() : 64;
  for (std::size_t k = 0; k < count; ++k) out[k] = m[k];
}

PackedActivityCollector::PackedActivityCollector(const netlist::Netlist& nl)
    : nl_(&nl) {
  toggles_.assign(nl.gate_count(), 0);
}

void PackedActivityCollector::record(const PackedSimulator& sim,
                                     std::uint64_t lane_mask) {
  const std::size_t n = nl_->gate_count();
  if (cycles_ == 0) {
    prev_.resize(n);
    lanes_per_record_ = std::popcount(lane_mask);
    for (GateId g = 0; g < n; ++g) prev_[g] = sim.lanes(g);
  } else {
    for (GateId g = 0; g < n; ++g) {
      std::uint64_t cur = sim.lanes(g);
      toggles_[g] += static_cast<std::uint64_t>(
          std::popcount((cur ^ prev_[g]) & lane_mask));
      prev_[g] = cur;
    }
  }
  ++cycles_;
}

std::vector<double> PackedActivityCollector::activities() const {
  std::vector<double> e(toggles_.size(), 0.0);
  if (cycles_ < 2 || lanes_per_record_ == 0) return e;
  double denom = static_cast<double>(cycles_ - 1) *
                 static_cast<double>(lanes_per_record_);
  for (std::size_t g = 0; g < toggles_.size(); ++g)
    e[g] = static_cast<double>(toggles_[g]) / denom;
  return e;
}

}  // namespace hlp::sim
