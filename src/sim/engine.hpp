#pragma once

#include <cstdint>

#include "lint/diagnostics.hpp"
#include "netlist/netlist.hpp"

namespace hlp::sim {

/// --- SimEngine -----------------------------------------------------------
///
/// Every gate-level estimator in the library is measured against zero-delay
/// switched-capacitance simulation, so the simulator is the hot path under
/// all of them. Two interchangeable backends implement the same contract:
///
///  * `Simulator` (scalar): one input pattern per eval; the reference
///    semantics.
///  * `BlockSimulator` (packed): N×64 patterns per eval, one per bit lane
///    of an N-word block of `uint64_t`s per gate (PPSFP-style bit
///    parallelism, widened to SIMD registers). Logic gates vectorize into
///    bitwise ops — AVX-512/AVX2 where the CPU has them, a portable
///    `uint64_t` loop otherwise — and toggle counting into popcounts.
///    `PackedSimulator` is the historical single-word (64-lane) form,
///    retained for replica-lane consumers.
///
/// The equivalence contract is exact: for the same seed and input stream,
/// every backend, block width, and dispatch path must produce bit-identical
/// activities, toggle counts, and power reports (tests/test_simengine.cpp
/// and tests/test_blockengine.cpp enforce this differentially).
/// Temporal lane packing — lane k carries cycle base+k — is therefore only
/// legal for combinational netlists: a DFF's next state depends on the
/// previous cycle's settled values, which serializes consecutive cycles.
/// Sequential netlists either run scalar or use the packed backend in
/// *replica* mode (lane k carries an independent pattern stream with its own
/// DFF state). Glitch simulation (`glitch_sim`) always stays scalar: event
/// timing does not vectorize across lanes.
enum class EngineKind : std::uint8_t {
  Auto,    ///< packed where bit-exactly legal, scalar otherwise
  Scalar,  ///< force the scalar `Simulator` backend
  Packed,  ///< force the bit-parallel block backend
};

/// Gate-eval kernel instruction sets, ordered by capability. The dispatch
/// level never changes results — every kernel computes the same bitwise
/// values — only how many lane words one instruction carries.
enum class SimDispatch : std::uint8_t {
  Portable,  ///< plain uint64_t loop (always available)
  Avx2,      ///< 4 words / 256-bit op (block width a multiple of 4)
  Avx512,    ///< 8 words / 512-bit op (block width a multiple of 8)
};

const char* to_string(SimDispatch d);

/// Best dispatch level the running CPU supports, capped by
/// `set_dispatch_cap` or the `HLP_SIM_DISPATCH` environment variable
/// (`portable` | `avx2` | `avx512`, read once at first use; unknown values
/// are ignored). CI pins this to keep the portable kernels tested on
/// AVX-capable runners.
SimDispatch active_dispatch();

/// Programmatic cap (tests/benches): lowers the level reported by
/// `active_dispatch` for the whole process. Passing Avx512 restores the
/// CPU/env default. Not thread-safe against concurrently *running* block
/// evals; call it between simulations.
void set_dispatch_cap(SimDispatch cap);

/// Engine selection threaded through the estimator APIs. Defaults preserve
/// the historical (scalar-era) results exactly while picking the fast
/// backend automatically.
///
/// `block_words` is the number of 64-bit lane words per gate in the packed
/// backend (lane count = 64 × block_words). 0 picks the widest profitable
/// block for the active dispatch level (`default_block_words`). Any value
/// in [1, 64] is legal and bit-identical; widths that are multiples of 8
/// (resp. 4) ride the AVX-512 (resp. AVX2) kernels when available.
///
/// `lint` runs the hlp::lint static pass over the input IR before any
/// simulation cycles are spent (see lint/lint.hpp). Off by default (zero
/// overhead); Strict turns malformed-input crashes into structured
/// LintError diagnostics, Warn reports and continues.
struct SimOptions {
  EngineKind engine = EngineKind::Auto;
  lint::LintOptions lint;
  int block_words = 0;  ///< words per lane block; 0 = auto, 1 = legacy 64-lane
};

/// Widest profitable block for the active dispatch level (16 words under
/// AVX-512, 8 under AVX2, 4 portable — tuned by bench_simengine).
int default_block_words();

/// Map a requested `SimOptions::block_words` to the width actually used:
/// 0 -> default_block_words(), otherwise clamped to [1, 64].
int resolve_block_words(int requested);

/// Resolve `Auto` against the netlist structure: packed iff the netlist is
/// combinational and its primary inputs/outputs fit one 64-bit stream word.
/// Forcing `Packed` where temporal lane packing cannot reproduce scalar
/// results bit-exactly throws `std::logic_error`.
EngineKind resolve_engine(const netlist::Netlist& nl, EngineKind requested);

const char* engine_name(EngineKind k);

/// In-place 64x64 bit-matrix transpose: bit c of m[r] moves to bit r of
/// m[c]. Converts between cycle-major vector-stream words (bit i = line i)
/// and lane-major packed words (bit k = cycle k); it is an involution.
void transpose64(std::uint64_t m[64]);

}  // namespace hlp::sim
