#pragma once

#include <cstdint>

#include "lint/diagnostics.hpp"
#include "netlist/netlist.hpp"

namespace hlp::sim {

/// --- SimEngine -----------------------------------------------------------
///
/// Every gate-level estimator in the library is measured against zero-delay
/// switched-capacitance simulation, so the simulator is the hot path under
/// all of them. Two interchangeable backends implement the same contract:
///
///  * `Simulator` (scalar): one input pattern per eval; the reference
///    semantics.
///  * `PackedSimulator` (packed): 64 patterns per eval, one per bit lane of
///    a `uint64_t` word per gate (PPSFP-style bit parallelism). Logic gates
///    vectorize into bitwise ops and toggle counting into popcounts.
///
/// The equivalence contract is exact: for the same seed and input stream,
/// both backends must produce bit-identical activities, toggle counts, and
/// power reports (tests/test_simengine.cpp enforces this differentially).
/// Temporal lane packing — lane k carries cycle base+k — is therefore only
/// legal for combinational netlists: a DFF's next state depends on the
/// previous cycle's settled values, which serializes consecutive cycles.
/// Sequential netlists either run scalar or use the packed backend in
/// *replica* mode (lane k carries an independent pattern stream with its own
/// DFF state). Glitch simulation (`glitch_sim`) always stays scalar: event
/// timing does not vectorize across lanes.
enum class EngineKind : std::uint8_t {
  Auto,    ///< packed where bit-exactly legal, scalar otherwise
  Scalar,  ///< force the scalar `Simulator` backend
  Packed,  ///< force the 64-lane `PackedSimulator` backend
};

/// Engine selection threaded through the estimator APIs. Defaults preserve
/// the historical (scalar-era) results exactly while picking the fast
/// backend automatically.
///
/// `lint` runs the hlp::lint static pass over the input IR before any
/// simulation cycles are spent (see lint/lint.hpp). Off by default (zero
/// overhead); Strict turns malformed-input crashes into structured
/// LintError diagnostics, Warn reports and continues.
struct SimOptions {
  EngineKind engine = EngineKind::Auto;
  lint::LintOptions lint;
};

/// Resolve `Auto` against the netlist structure: packed iff the netlist is
/// combinational and its primary inputs/outputs fit one 64-bit stream word.
/// Forcing `Packed` where temporal lane packing cannot reproduce scalar
/// results bit-exactly throws `std::logic_error`.
EngineKind resolve_engine(const netlist::Netlist& nl, EngineKind requested);

const char* engine_name(EngineKind k);

/// In-place 64x64 bit-matrix transpose: bit c of m[r] moves to bit r of
/// m[c]. Converts between cycle-major vector-stream words (bit i = line i)
/// and lane-major packed words (bit k = cycle k); it is an involution.
void transpose64(std::uint64_t m[64]);

}  // namespace hlp::sim
