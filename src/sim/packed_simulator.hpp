#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"

namespace hlp::sim {

/// 64-lane bit-parallel zero-delay simulator (the packed `SimEngine`
/// backend). Each gate holds one `uint64_t` whose bit k is the gate's value
/// under pattern k, so one pass over the netlist evaluates 64 patterns:
/// AND/OR/XOR/NOT/MUX become single bitwise ops and a DFF tick samples all
/// 64 lane states at once.
///
/// Lane semantics are chosen by the caller:
///  * temporal packing (combinational netlists only): lane k = cycle
///    base+k of one stream; toggle counts come from `popcount(x ^ (x >> 1))`
///    and are bit-identical to a scalar cycle loop;
///  * replica packing (sequential netlists): lane k = an independent
///    pattern stream with its own DFF state trajectory.
///
/// Usage per step mirrors `Simulator`:
///   ps.set_inputs_from_cycles(words); ps.eval();  // settle
///   ... read lanes / count toggles ...
///   ps.tick();                                    // clock edge, all lanes
class PackedSimulator {
 public:
  static constexpr int kLanes = 64;

  explicit PackedSimulator(const netlist::Netlist& nl);

  /// Reset DFF lanes to their broadcast init values, clear all nets to 0.
  void reset();

  /// Assign one primary input's 64 lanes directly.
  void set_input_lanes(netlist::GateId input, std::uint64_t lanes);

  /// Load up to 64 cycle words (vector-stream convention: bit i of words[k]
  /// drives primary input i in lane k); lanes >= words.size() are cleared.
  /// Requires <= 64 primary inputs.
  void set_inputs_from_cycles(std::span<const std::uint64_t> words);

  /// Propagate all 64 lanes through the combinational logic.
  void eval();

  /// Clock edge: every DFF samples its D input in every lane.
  void tick();

  /// Per-gate lane word (bit k = value under pattern k).
  std::uint64_t lanes(netlist::GateId g) const { return lanes_[g]; }

  /// Transpose primary-output lanes back to cycle words: out[k] bit i =
  /// output i under pattern k. Writes min(out.size(), 64) words; requires
  /// <= 64 primary outputs.
  void outputs_to_cycles(std::span<std::uint64_t> out) const;

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  /// Flattened topo-ordered op list: dispatching on a dense struct keeps the
  /// 64-pattern eval loop free of per-gate vector traffic.
  struct Op {
    netlist::GateKind kind;
    netlist::GateId gate;
    std::uint32_t fanin_begin;
    std::uint32_t fanin_end;
  };

  const netlist::Netlist* nl_;
  std::vector<std::uint64_t> lanes_;
  std::vector<Op> ops_;
  std::vector<netlist::GateId> flat_fanins_;
  std::vector<std::uint64_t> dff_next_;
};

/// Toggle accumulator for packed *replica* lanes: each record() counts, per
/// gate, the lanes that changed since the previous record. With `lane_mask`
/// restricting to L active lanes, activities() normalizes by L independent
/// (cycles-1)-transition streams, matching the mean of L scalar collectors.
class PackedActivityCollector {
 public:
  explicit PackedActivityCollector(const netlist::Netlist& nl);

  void record(const PackedSimulator& sim,
              std::uint64_t lane_mask = ~std::uint64_t{0});

  std::size_t cycles() const { return cycles_; }
  std::span<const std::uint64_t> toggles() const { return toggles_; }
  std::vector<double> activities() const;

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint64_t> prev_;
  std::vector<std::uint64_t> toggles_;
  std::size_t cycles_ = 0;
  int lanes_per_record_ = 0;
};

}  // namespace hlp::sim
