#include "sim/glitch_sim.hpp"

#include <algorithm>
#include <string>

#include "exec/fi.hpp"

namespace hlp::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

namespace {

GlitchResult simulate_glitches_impl(const netlist::Netlist& nl,
                                    const stats::VectorStream& in_stream,
                                    exec::Meter* meter) {
  GlitchResult res;
  const std::size_t n = nl.gate_count();
  fi::alloc_checkpoint();
  res.total_activity.assign(n, 0.0);
  res.functional_activity.assign(n, 0.0);
  if (in_stream.words.size() < 2) return res;

  const auto& topo = nl.topo_order();
  // Level of each gate = unit-delay arrival time of its output.
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (GateId id : topo) {
    const Gate& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    int m = 0;
    for (GateId f : g.fanins) m = std::max(m, level[f]);
    level[id] = m + 1;
    max_level = std::max(max_level, level[id]);
  }

  std::vector<std::uint8_t> value(n, 0);
  for (GateId g = 0; g < n; ++g)
    if (nl.gate(g).kind == GateKind::Const1) value[g] = 1;
  for (GateId d : nl.dffs()) value[d] = nl.dff_init(d) ? 1 : 0;
  std::vector<std::uint64_t> total(n, 0), functional(n, 0);
  std::vector<std::uint8_t> dirty(n, 0);
  std::vector<std::uint8_t> fanin_buf;

  auto settle_initial = [&]() {
    for (GateId id : topo) {
      const Gate& g = nl.gate(id);
      if (!netlist::is_logic(g.kind)) continue;
      fanin_buf.clear();
      for (GateId f : g.fanins) fanin_buf.push_back(value[f]);
      value[id] = netlist::eval_gate(g.kind, fanin_buf) ? 1 : 0;
    }
  };

  // Settle cycle 0 without counting (establishes the reference state).
  auto apply_inputs = [&](std::uint64_t w) {
    auto ins = nl.inputs();
    for (std::size_t i = 0; i < ins.size(); ++i)
      value[ins[i]] = (w >> i) & 1u;
  };
  apply_inputs(in_stream.words[0]);
  settle_initial();

  // Per-cycle unit-delay propagation. Gates are grouped by level; a gate at
  // level L re-evaluates at time L if any fanin changed at an earlier time.
  std::vector<std::vector<GateId>> by_level(
      static_cast<std::size_t>(max_level) + 1);
  for (GateId id : topo)
    if (netlist::is_logic(nl.gate(id).kind))
      by_level[static_cast<std::size_t>(level[id])].push_back(id);

  std::vector<std::uint8_t> settled(n, 0);
  std::size_t cycles_done = 1;  // cycle 0 established the reference state
  for (std::size_t cyc = 1; cyc < in_stream.words.size(); ++cyc) {
    // One step per cycle; activities over the completed prefix stay exact.
    if (meter && meter->over_budget(1)) break;
    cycles_done = cyc + 1;
    settled = value;  // values at the end of the previous cycle

    // Clock edge: DFFs sample D from settled values; then inputs change.
    std::vector<std::uint8_t> next_state;
    next_state.reserve(nl.dffs().size());
    for (GateId d : nl.dffs()) {
      const Gate& g = nl.gate(d);
      next_state.push_back(g.fanins.empty() ? value[d]
                                            : settled[g.fanins[0]]);
    }
    std::fill(dirty.begin(), dirty.end(), 0);
    std::size_t si = 0;
    for (GateId d : nl.dffs()) {
      std::uint8_t nv = next_state[si++];
      if (nv != value[d]) {
        value[d] = nv;
        ++total[d];
        dirty[d] = 1;
      }
    }
    auto ins = nl.inputs();
    for (std::size_t i = 0; i < ins.size(); ++i) {
      std::uint8_t nv = (in_stream.words[cyc] >> i) & 1u;
      if (nv != value[ins[i]]) {
        value[ins[i]] = nv;
        ++total[ins[i]];
        dirty[ins[i]] = 1;
      }
    }

    // Wave propagation level by level. A gate may switch multiple times in a
    // real event-driven simulation; in the levelized unit-delay model each
    // gate's output settles at its level, but transient mismatches between
    // fanin arrival times show up as extra evaluations when we simulate
    // time steps explicitly. To capture glitches we simulate time steps:
    // at time t, a gate at level <= t re-evaluates using current values if
    // any fanin changed at time t-1.
    std::vector<std::uint8_t> changed_prev = dirty;
    for (int t = 1; t <= max_level; ++t) {
      std::vector<std::uint8_t> changed_now(n, 0);
      bool any = false;
      for (GateId id : topo) {
        const Gate& g = nl.gate(id);
        if (!netlist::is_logic(g.kind)) continue;
        bool touch = false;
        for (GateId f : g.fanins)
          if (changed_prev[f]) {
            touch = true;
            break;
          }
        if (!touch) continue;
        fanin_buf.clear();
        for (GateId f : g.fanins) fanin_buf.push_back(value[f]);
        std::uint8_t nv = netlist::eval_gate(g.kind, fanin_buf) ? 1 : 0;
        if (nv != value[id]) {
          value[id] = nv;
          ++total[id];
          changed_now[id] = 1;
          any = true;
        }
      }
      changed_prev.swap(changed_now);
      if (!any) break;
    }

    // Functional (zero-delay) transitions: settled-to-settled differences.
    for (GateId id = 0; id < n; ++id)
      if (value[id] != settled[id]) ++functional[id];
  }

  res.cycles = cycles_done;
  if (cycles_done < 2) return res;  // tripped before any transition cycle
  double denom = static_cast<double>(cycles_done - 1);
  for (std::size_t g = 0; g < n; ++g) {
    res.total_activity[g] = static_cast<double>(total[g]) / denom;
    res.functional_activity[g] = static_cast<double>(functional[g]) / denom;
  }
  return res;
}

}  // namespace

GlitchResult simulate_glitches(const netlist::Netlist& nl,
                               const stats::VectorStream& in_stream) {
  return simulate_glitches_impl(nl, in_stream, nullptr);
}

exec::Outcome<GlitchResult> simulate_glitches_budgeted(
    const netlist::Netlist& nl, const stats::VectorStream& in_stream,
    const exec::Budget& budget) {
  exec::Meter meter(budget);
  exec::Outcome<GlitchResult> out;
  out.value = simulate_glitches_impl(nl, in_stream, &meter);
  out.diag = meter.diag();
  if (out.diag.stop != exec::StopReason::None)
    out.diag.note = "simulated " + std::to_string(out.value.cycles) + " of " +
                    std::to_string(in_stream.words.size()) +
                    " cycles; activities are rates over that prefix";
  return out;
}

}  // namespace hlp::sim
