#include "sim/power.hpp"

namespace hlp::sim {

PowerReport compute_power(const netlist::Netlist& nl,
                          std::span<const double> activities,
                          const PowerParams& p) {
  PowerReport rep;
  auto loads = nl.loads(p.cap);
  rep.gate_energy.assign(nl.gate_count(), 0.0);
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    double e = loads[g] * (g < activities.size() ? activities[g] : 0.0);
    rep.gate_energy[g] = e;
    rep.switched_cap += e;
  }
  rep.total_power = 0.5 * p.vdd * p.vdd * p.freq * rep.switched_cap;
  double c_clk =
      p.cap.dff_clock_cap * static_cast<double>(nl.dffs().size());
  rep.clock_power = p.vdd * p.vdd * p.freq * c_clk;
  return rep;
}

std::map<std::string, double> switched_cap_by_component(
    const netlist::Netlist& nl, std::span<const double> activities,
    std::span<const std::string> labels,
    const netlist::CapacitanceModel& cap) {
  std::map<std::string, double> by;
  auto loads = nl.loads(cap);
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    double e = loads[g] * (g < activities.size() ? activities[g] : 0.0);
    const std::string& label =
        (g < labels.size() && !labels[g].empty()) ? labels[g] : "other";
    by[label] += e;
  }
  return by;
}

}  // namespace hlp::sim
