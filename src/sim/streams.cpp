#include "sim/streams.hpp"

#include <algorithm>
#include <cmath>

namespace hlp::sim {

using stats::Rng;
using stats::VectorStream;

VectorStream random_stream(int width, std::size_t cycles, double p1,
                           Rng& rng) {
  VectorStream s;
  s.width = width;
  s.words.reserve(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::uint64_t w = 0;
    for (int i = 0; i < width; ++i)
      if (rng.bit(p1)) w |= std::uint64_t{1} << i;
    s.words.push_back(w);
  }
  return s;
}

VectorStream correlated_stream(int width, std::size_t cycles, double hold,
                               Rng& rng, double p1) {
  VectorStream s;
  s.width = width;
  s.words.reserve(cycles);
  std::uint64_t prev = 0;
  for (int i = 0; i < width; ++i)
    if (rng.bit(p1)) prev |= std::uint64_t{1} << i;
  s.words.push_back(prev);
  for (std::size_t c = 1; c < cycles; ++c) {
    std::uint64_t w = 0;
    for (int i = 0; i < width; ++i) {
      bool pb = (prev >> i) & 1u;
      bool nb = rng.bit(hold) ? pb : rng.bit(p1);
      if (nb) w |= std::uint64_t{1} << i;
    }
    s.words.push_back(w);
    prev = w;
  }
  return s;
}

VectorStream gaussian_walk_stream(int width, std::size_t cycles, double rho,
                                  double sigma_frac, Rng& rng) {
  VectorStream s;
  s.width = width;
  s.words.reserve(cycles);
  const double full = std::pow(2.0, width - 1) - 1.0;  // max magnitude
  const double sigma = sigma_frac * full;
  double x = 0.0;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  for (std::size_t c = 0; c < cycles; ++c) {
    x = rho * x + std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                      rng.normal(0.0, sigma);
    double clamped = std::clamp(x, -full, full);
    auto v = static_cast<std::int64_t>(clamped);
    s.words.push_back(static_cast<std::uint64_t>(v) & mask);
  }
  return s;
}

VectorStream counter_stream(int width, std::size_t cycles, std::uint64_t start,
                            std::uint64_t stride) {
  VectorStream s;
  s.width = width;
  s.words.reserve(cycles);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  std::uint64_t v = start;
  for (std::size_t c = 0; c < cycles; ++c) {
    s.words.push_back(v & mask);
    v += stride;
  }
  return s;
}

VectorStream concat_streams(const std::vector<VectorStream>& xs) {
  VectorStream s;
  if (xs.empty()) return s;
  s.width = xs[0].width;
  for (const auto& x : xs)
    s.words.insert(s.words.end(), x.words.begin(), x.words.end());
  return s;
}

VectorStream zip_streams(const VectorStream& lo, const VectorStream& hi) {
  VectorStream s;
  s.width = lo.width + hi.width;
  std::size_t n = std::min(lo.words.size(), hi.words.size());
  s.words.reserve(n);
  for (std::size_t c = 0; c < n; ++c)
    s.words.push_back(lo.words[c] | (hi.words[c] << lo.width));
  return s;
}

VectorStream stream_from_words(int width, std::vector<std::uint64_t> words) {
  VectorStream s;
  s.width = width;
  s.words = std::move(words);
  return s;
}

}  // namespace hlp::sim
