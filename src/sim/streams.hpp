#pragma once

#include <cstdint>
#include <vector>

#include "stats/entropy.hpp"
#include "stats/rng.hpp"

namespace hlp::sim {

/// Input-stream generators. All streams are `stats::VectorStream`s: one
/// fixed-width word per cycle, bit i of the word driving line i.

/// Independent-bit stream: every line is 1 with probability `p1` each cycle.
stats::VectorStream random_stream(int width, std::size_t cycles, double p1,
                                  stats::Rng& rng);

/// Temporally correlated stream: each bit holds its previous value with
/// probability `hold` (hold=0.5 is white noise; hold->1 is near-constant).
stats::VectorStream correlated_stream(int width, std::size_t cycles,
                                      double hold, stats::Rng& rng,
                                      double p1 = 0.5);

/// Two's-complement Gaussian random-walk data words (lag-1 correlation
/// `rho`), the signal class behind the dual-bit-type macro-model of Landman
/// and Rabaey [40]: low-order bits behave randomly, sign bits follow the
/// word-level correlation.
stats::VectorStream gaussian_walk_stream(int width, std::size_t cycles,
                                         double rho, double sigma_frac,
                                         stats::Rng& rng);

/// Counter stream: word value increments by `stride` each cycle (mod 2^width).
stats::VectorStream counter_stream(int width, std::size_t cycles,
                                   std::uint64_t start = 0,
                                   std::uint64_t stride = 1);

/// Concatenate streams of equal width.
stats::VectorStream concat_streams(const std::vector<stats::VectorStream>& xs);

/// Zip two streams side by side (widths add; `hi` occupies the upper lines).
stats::VectorStream zip_streams(const stats::VectorStream& lo,
                                const stats::VectorStream& hi);

/// Build a stream directly from explicit word values.
stats::VectorStream stream_from_words(int width,
                                      std::vector<std::uint64_t> words);

}  // namespace hlp::sim
