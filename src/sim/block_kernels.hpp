#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"

namespace hlp::sim::detail {

/// Flattened topo-ordered gate op shared by every block kernel. Identical
/// layout to PackedSimulator::Op, but hoisted so the kernel translation
/// units (compiled with different -m flags) can see it without pulling in
/// the simulator class.
struct BlockOp {
  netlist::GateKind kind;
  netlist::GateId gate;
  std::uint32_t fanin_begin;
  std::uint32_t fanin_end;
};

/// Gate-eval kernel: settle every op over W-word lane blocks. Gate g's lane
/// words live at lanes[g*words .. g*words+words). All kernels compute the
/// same bitwise values; they differ only in how many words one instruction
/// carries, so results are bit-identical across dispatch levels.
using EvalKernelFn = void (*)(std::uint64_t* lanes, int words,
                              const BlockOp* ops, std::size_t n_ops,
                              const netlist::GateId* fanins);

/// Always available; any W >= 1.
EvalKernelFn portable_kernel();
/// Compiled only when the toolchain has -mavx2 (HLP_SIM_HAVE_AVX2);
/// requires W % 4 == 0 and a CPU with AVX2.
EvalKernelFn avx2_kernel();
/// Compiled only when the toolchain has -mavx512f (HLP_SIM_HAVE_AVX512);
/// requires W % 8 == 0 and a CPU with AVX-512F.
EvalKernelFn avx512_kernel();

}  // namespace hlp::sim::detail
