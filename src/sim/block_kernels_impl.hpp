#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/block_kernels.hpp"

// Included by exactly one translation unit per dispatch level, each compiled
// with its own -m flags; the V traits parameter supplies the register type
// and bitwise ops, so the gate semantics below are written once.

namespace hlp::sim::detail {

/// Evaluate all ops over W-word blocks with vector traits V. V::kWords must
/// divide `words`. Word loop inside the fanin reduction keeps the whole
/// reduction in one register per stripe.
template <class V>
void eval_ops(std::uint64_t* lanes, int words, const BlockOp* ops,
              std::size_t n_ops, const netlist::GateId* fanins) {
  using netlist::GateKind;
  const auto W = static_cast<std::size_t>(words);
  for (std::size_t o = 0; o < n_ops; ++o) {
    const BlockOp& op = ops[o];
    const netlist::GateId* f = fanins + op.fanin_begin;
    const std::uint32_t n = op.fanin_end - op.fanin_begin;
    std::uint64_t* dst = lanes + std::size_t{op.gate} * W;
    switch (op.kind) {
      case GateKind::Buf: {
        const std::uint64_t* a = lanes + std::size_t{f[0]} * W;
        for (int w = 0; w < words; w += V::kWords)
          V::store(dst + w, V::load(a + w));
        break;
      }
      case GateKind::Not: {
        const std::uint64_t* a = lanes + std::size_t{f[0]} * W;
        for (int w = 0; w < words; w += V::kWords)
          V::store(dst + w, V::not_(V::load(a + w)));
        break;
      }
      case GateKind::And:
      case GateKind::Nand: {
        for (int w = 0; w < words; w += V::kWords) {
          auto v = V::ones();
          for (std::uint32_t i = 0; i < n; ++i)
            v = V::and_(v, V::load(lanes + std::size_t{f[i]} * W + w));
          if (op.kind == GateKind::Nand) v = V::not_(v);
          V::store(dst + w, v);
        }
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        for (int w = 0; w < words; w += V::kWords) {
          auto v = V::zero();
          for (std::uint32_t i = 0; i < n; ++i)
            v = V::or_(v, V::load(lanes + std::size_t{f[i]} * W + w));
          if (op.kind == GateKind::Nor) v = V::not_(v);
          V::store(dst + w, v);
        }
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        for (int w = 0; w < words; w += V::kWords) {
          auto v = V::zero();
          for (std::uint32_t i = 0; i < n; ++i)
            v = V::xor_(v, V::load(lanes + std::size_t{f[i]} * W + w));
          if (op.kind == GateKind::Xnor) v = V::not_(v);
          V::store(dst + w, v);
        }
        break;
      }
      case GateKind::Mux: {
        // Fanins {sel, d0, d1}: out = (sel & d1) | (~sel & d0).
        const std::uint64_t* s = lanes + std::size_t{f[0]} * W;
        const std::uint64_t* d0 = lanes + std::size_t{f[1]} * W;
        const std::uint64_t* d1 = lanes + std::size_t{f[2]} * W;
        for (int w = 0; w < words; w += V::kWords) {
          auto sv = V::load(s + w);
          V::store(dst + w, V::or_(V::and_(sv, V::load(d1 + w)),
                                   V::andnot(sv, V::load(d0 + w))));
        }
        break;
      }
      default:  // Input/Const/Dff never appear in ops.
        break;
    }
  }
}

}  // namespace hlp::sim::detail
