#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "stats/entropy.hpp"

namespace hlp::sim {

/// Zero-delay functional simulator for `netlist::Netlist`.
///
/// Usage per cycle:
///   sim.set_input(...); sim.eval();   // settle combinational logic
///   ... read values / record activity ...
///   sim.tick();                       // clock edge: DFFs sample D
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  /// Reset DFFs to their init values and clear all nets to 0.
  void reset();

  void set_input(netlist::GateId input, bool value);
  /// Assign an input word from an integer, LSB first.
  void set_word(const netlist::Word& w, std::uint64_t value);
  /// Assign all primary inputs from packed bits (bit i -> inputs()[i]).
  void set_all_inputs(std::uint64_t packed);

  /// Propagate values through the combinational logic (topological order).
  void eval();

  /// Clock edge: every DFF samples its D input.
  void tick();

  bool value(netlist::GateId g) const { return values_[g] != 0; }
  std::uint64_t word_value(const netlist::Word& w) const;
  /// Packed primary-output bits (output i -> bit i), up to 64 outputs.
  std::uint64_t output_bits() const;

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> fanin_buf_;
};

/// Accumulates zero-delay toggle counts per gate between settled snapshots.
class ActivityCollector {
 public:
  explicit ActivityCollector(const netlist::Netlist& nl);

  /// Record the simulator's current settled values; counts toggles against
  /// the previously recorded snapshot.
  void record(const Simulator& sim);

  std::size_t cycles() const { return cycles_; }
  /// Per-gate switching activity E_g = toggles / (cycles - 1).
  std::vector<double> activities() const;
  /// Raw toggle count per gate.
  std::span<const std::uint64_t> toggles() const { return toggles_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint8_t> prev_;
  std::vector<std::uint64_t> toggles_;
  std::size_t cycles_ = 0;
};

/// Run the netlist over an input stream (one word per cycle; stream bit i
/// drives primary input i) and return per-gate zero-delay activities.
/// If `out_stream` is non-null it receives the primary-output stream.
std::vector<double> simulate_activities(
    const netlist::Netlist& nl, const stats::VectorStream& in_stream,
    stats::VectorStream* out_stream = nullptr);

}  // namespace hlp::sim
