#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "stats/entropy.hpp"

namespace hlp::sim {

/// Zero-delay functional simulator for `netlist::Netlist` (the scalar
/// `SimEngine` backend; see engine.hpp for the backend contract).
///
/// Usage per cycle:
///   sim.set_input(...); sim.eval();   // settle combinational logic
///   ... read values / record activity ...
///   sim.tick();                       // clock edge: DFFs sample D
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  /// Reset DFFs to their init values and clear all nets to 0.
  void reset();

  void set_input(netlist::GateId input, bool value);
  /// Assign an input word from an integer, LSB first.
  void set_word(const netlist::Word& w, std::uint64_t value);
  /// Assign all primary inputs from packed bits (bit i -> inputs()[i]).
  /// Throws std::out_of_range on netlists with more than 64 inputs (one
  /// word cannot carry them); use set_inputs() there.
  void set_all_inputs(std::uint64_t packed);
  /// Assign all primary inputs from a bit span (bits[i] -> inputs()[i]);
  /// works for any input count. Throws if the span is shorter than the
  /// input list.
  void set_inputs(std::span<const std::uint8_t> bits);

  /// Propagate values through the combinational logic (topological order).
  void eval();

  /// Clock edge: every DFF samples its D input.
  void tick();

  bool value(netlist::GateId g) const { return values_[g] != 0; }
  std::uint64_t word_value(const netlist::Word& w) const;
  /// Packed primary-output bits (output i -> bit i). Throws
  /// std::out_of_range on netlists with more than 64 outputs; use
  /// read_outputs() there.
  std::uint64_t output_bits() const;
  /// Copy primary-output values into `out` (out[i] = outputs()[i]); works
  /// for any output count. Throws if the span is too short.
  void read_outputs(std::span<std::uint8_t> out) const;

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> fanin_buf_;
};

/// Accumulates zero-delay toggle counts per gate between settled snapshots.
class ActivityCollector {
 public:
  explicit ActivityCollector(const netlist::Netlist& nl);

  /// Record the simulator's current settled values; counts toggles against
  /// the previously recorded snapshot.
  void record(const Simulator& sim);

  std::size_t cycles() const { return cycles_; }
  /// Per-gate switching activity E_g = toggles / (cycles - 1).
  std::vector<double> activities() const;
  /// Raw toggle count per gate.
  std::span<const std::uint64_t> toggles() const { return toggles_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint8_t> prev_;
  std::vector<std::uint64_t> toggles_;
  std::size_t cycles_ = 0;
};

/// Run the netlist over an input stream (one word per cycle; stream bit i
/// drives primary input i) and return per-gate zero-delay activities.
/// If `out_stream` is non-null it receives the primary-output stream.
/// Engine-generic: with the default Auto engine, combinational netlists run
/// on the 64-lane packed backend (bit-identical results, see engine.hpp);
/// sequential netlists run scalar.
std::vector<double> simulate_activities(
    const netlist::Netlist& nl, const stats::VectorStream& in_stream,
    stats::VectorStream* out_stream = nullptr, const SimOptions& opts = {});

/// Run the netlist over an input stream and return only the primary-output
/// stream (engine-generic; packed on combinational netlists under Auto).
stats::VectorStream simulate_outputs(const netlist::Netlist& nl,
                                     const stats::VectorStream& in_stream,
                                     const SimOptions& opts = {});

}  // namespace hlp::sim
