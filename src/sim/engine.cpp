#include "sim/engine.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hlp::sim {

namespace {

SimDispatch cpu_best() {
#if defined(HLP_SIM_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimDispatch::Avx512;
#endif
#if defined(HLP_SIM_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimDispatch::Avx2;
#endif
  return SimDispatch::Portable;
}

SimDispatch env_cap() {
  const char* s = std::getenv("HLP_SIM_DISPATCH");
  if (!s) return SimDispatch::Avx512;
  if (std::strcmp(s, "portable") == 0) return SimDispatch::Portable;
  if (std::strcmp(s, "avx2") == 0) return SimDispatch::Avx2;
  if (std::strcmp(s, "avx512") == 0) return SimDispatch::Avx512;
  return SimDispatch::Avx512;  // unknown values ignored
}

std::atomic<SimDispatch> g_cap{SimDispatch::Avx512};

}  // namespace

const char* to_string(SimDispatch d) {
  switch (d) {
    case SimDispatch::Portable: return "portable";
    case SimDispatch::Avx2: return "avx2";
    case SimDispatch::Avx512: return "avx512";
  }
  return "?";
}

SimDispatch active_dispatch() {
  static const SimDispatch hw = cpu_best();   // CPUID probed once
  static const SimDispatch env = env_cap();   // env read once
  SimDispatch d = hw;
  if (env < d) d = env;
  SimDispatch cap = g_cap.load(std::memory_order_relaxed);
  if (cap < d) d = cap;
  return d;
}

void set_dispatch_cap(SimDispatch cap) {
  g_cap.store(cap, std::memory_order_relaxed);
}

int default_block_words() {
  switch (active_dispatch()) {
    case SimDispatch::Avx512: return 16;
    case SimDispatch::Avx2: return 8;
    case SimDispatch::Portable: return 4;
  }
  return 4;
}

int resolve_block_words(int requested) {
  if (requested <= 0) return default_block_words();
  return requested > 64 ? 64 : requested;
}

}  // namespace hlp::sim
