#include "sim/simulator.hpp"

#include <cassert>

namespace hlp::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

Simulator::Simulator(const netlist::Netlist& nl) : nl_(&nl) {
  values_.assign(nl.gate_count(), 0);
  reset();
}

void Simulator::reset() {
  values_.assign(nl_->gate_count(), 0);
  for (GateId g = 0; g < nl_->gate_count(); ++g)
    if (nl_->gate(g).kind == GateKind::Const1) values_[g] = 1;
  for (GateId d : nl_->dffs()) values_[d] = nl_->dff_init(d) ? 1 : 0;
}

void Simulator::set_input(GateId input, bool value) {
  assert(nl_->gate(input).kind == GateKind::Input);
  values_[input] = value ? 1 : 0;
}

void Simulator::set_word(const netlist::Word& w, std::uint64_t value) {
  for (std::size_t i = 0; i < w.size(); ++i)
    set_input(w[i], (value >> i) & 1u);
}

void Simulator::set_all_inputs(std::uint64_t packed) {
  auto ins = nl_->inputs();
  for (std::size_t i = 0; i < ins.size(); ++i)
    values_[ins[i]] = (packed >> i) & 1u;
}

void Simulator::eval() {
  for (GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    fanin_buf_.clear();
    for (GateId f : g.fanins) fanin_buf_.push_back(values_[f]);
    values_[id] = netlist::eval_gate(g.kind, fanin_buf_) ? 1 : 0;
  }
}

void Simulator::tick() {
  // Sample all D inputs first (old values), then commit.
  std::vector<std::uint8_t> next;
  next.reserve(nl_->dffs().size());
  for (GateId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    next.push_back(g.fanins.empty() ? values_[d] : values_[g.fanins[0]]);
  }
  std::size_t i = 0;
  for (GateId d : nl_->dffs()) values_[d] = next[i++];
}

std::uint64_t Simulator::word_value(const netlist::Word& w) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size() && i < 64; ++i)
    if (values_[w[i]]) v |= std::uint64_t{1} << i;
  return v;
}

std::uint64_t Simulator::output_bits() const {
  std::uint64_t v = 0;
  auto outs = nl_->outputs();
  for (std::size_t i = 0; i < outs.size() && i < 64; ++i)
    if (values_[outs[i]]) v |= std::uint64_t{1} << i;
  return v;
}

ActivityCollector::ActivityCollector(const netlist::Netlist& nl) : nl_(&nl) {
  toggles_.assign(nl.gate_count(), 0);
}

void ActivityCollector::record(const Simulator& sim) {
  const std::size_t n = nl_->gate_count();
  if (cycles_ == 0) {
    prev_.resize(n);
    for (GateId g = 0; g < n; ++g) prev_[g] = sim.value(g) ? 1 : 0;
  } else {
    for (GateId g = 0; g < n; ++g) {
      std::uint8_t v = sim.value(g) ? 1 : 0;
      if (v != prev_[g]) {
        ++toggles_[g];
        prev_[g] = v;
      }
    }
  }
  ++cycles_;
}

std::vector<double> ActivityCollector::activities() const {
  std::vector<double> e(toggles_.size(), 0.0);
  if (cycles_ < 2) return e;
  double denom = static_cast<double>(cycles_ - 1);
  for (std::size_t g = 0; g < toggles_.size(); ++g)
    e[g] = static_cast<double>(toggles_[g]) / denom;
  return e;
}

std::vector<double> simulate_activities(const netlist::Netlist& nl,
                                        const stats::VectorStream& in_stream,
                                        stats::VectorStream* out_stream) {
  Simulator sim(nl);
  ActivityCollector col(nl);
  if (out_stream) {
    out_stream->width = static_cast<int>(nl.outputs().size());
    out_stream->words.clear();
  }
  for (std::uint64_t w : in_stream.words) {
    sim.set_all_inputs(w);
    sim.eval();
    col.record(sim);
    if (out_stream) out_stream->words.push_back(sim.output_bits());
    sim.tick();
    if (!nl.dffs().empty()) {
      // Re-settle after the clock edge so the next snapshot includes the
      // effect of the new state under the same inputs. (For purely
      // combinational netlists this is a no-op.)
    }
  }
  return col.activities();
}

}  // namespace hlp::sim
