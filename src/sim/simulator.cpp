#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "lint/lint.hpp"
#include "sim/block_simulator.hpp"

namespace hlp::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

Simulator::Simulator(const netlist::Netlist& nl) : nl_(&nl) {
  values_.assign(nl.gate_count(), 0);
  reset();
}

void Simulator::reset() {
  values_.assign(nl_->gate_count(), 0);
  for (GateId g = 0; g < nl_->gate_count(); ++g)
    if (nl_->gate(g).kind == GateKind::Const1) values_[g] = 1;
  for (GateId d : nl_->dffs()) values_[d] = nl_->dff_init(d) ? 1 : 0;
}

void Simulator::set_input(GateId input, bool value) {
  assert(nl_->gate(input).kind == GateKind::Input);
  values_[input] = value ? 1 : 0;
}

void Simulator::set_word(const netlist::Word& w, std::uint64_t value) {
  for (std::size_t i = 0; i < w.size(); ++i)
    set_input(w[i], (value >> i) & 1u);
}

void Simulator::set_all_inputs(std::uint64_t packed) {
  auto ins = nl_->inputs();
  if (ins.size() > 64)
    throw std::out_of_range(
        "Simulator::set_all_inputs: netlist has more than 64 inputs; "
        "use set_inputs(span)");
  for (std::size_t i = 0; i < ins.size(); ++i)
    values_[ins[i]] = (packed >> i) & 1u;
}

void Simulator::set_inputs(std::span<const std::uint8_t> bits) {
  auto ins = nl_->inputs();
  if (bits.size() < ins.size())
    throw std::out_of_range("Simulator::set_inputs: span shorter than the "
                            "primary input list");
  for (std::size_t i = 0; i < ins.size(); ++i)
    values_[ins[i]] = bits[i] ? 1 : 0;
}

void Simulator::eval() {
  for (GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    fanin_buf_.clear();
    for (GateId f : g.fanins) fanin_buf_.push_back(values_[f]);
    values_[id] = netlist::eval_gate(g.kind, fanin_buf_) ? 1 : 0;
  }
}

void Simulator::tick() {
  // Sample all D inputs first (old values), then commit.
  std::vector<std::uint8_t> next;
  next.reserve(nl_->dffs().size());
  for (GateId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    next.push_back(g.fanins.empty() ? values_[d] : values_[g.fanins[0]]);
  }
  std::size_t i = 0;
  for (GateId d : nl_->dffs()) values_[d] = next[i++];
}

std::uint64_t Simulator::word_value(const netlist::Word& w) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size() && i < 64; ++i)
    if (values_[w[i]]) v |= std::uint64_t{1} << i;
  return v;
}

std::uint64_t Simulator::output_bits() const {
  auto outs = nl_->outputs();
  if (outs.size() > 64)
    throw std::out_of_range(
        "Simulator::output_bits: netlist has more than 64 outputs; "
        "use read_outputs(span)");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < outs.size(); ++i)
    if (values_[outs[i]]) v |= std::uint64_t{1} << i;
  return v;
}

void Simulator::read_outputs(std::span<std::uint8_t> out) const {
  auto outs = nl_->outputs();
  if (out.size() < outs.size())
    throw std::out_of_range("Simulator::read_outputs: span shorter than the "
                            "primary output list");
  for (std::size_t i = 0; i < outs.size(); ++i)
    out[i] = values_[outs[i]] ? 1 : 0;
}

ActivityCollector::ActivityCollector(const netlist::Netlist& nl) : nl_(&nl) {
  toggles_.assign(nl.gate_count(), 0);
}

void ActivityCollector::record(const Simulator& sim) {
  const std::size_t n = nl_->gate_count();
  if (cycles_ == 0) {
    prev_.resize(n);
    for (GateId g = 0; g < n; ++g) prev_[g] = sim.value(g) ? 1 : 0;
  } else {
    for (GateId g = 0; g < n; ++g) {
      std::uint8_t v = sim.value(g) ? 1 : 0;
      if (v != prev_[g]) {
        ++toggles_[g];
        prev_[g] = v;
      }
    }
  }
  ++cycles_;
}

std::vector<double> ActivityCollector::activities() const {
  std::vector<double> e(toggles_.size(), 0.0);
  if (cycles_ < 2) return e;
  double denom = static_cast<double>(cycles_ - 1);
  for (std::size_t g = 0; g < toggles_.size(); ++g)
    e[g] = static_cast<double>(toggles_[g]) / denom;
  return e;
}

namespace {

/// Temporal-lane packed sweep over a combinational netlist: lane w·64+k of
/// a block carries cycle base+w·64+k. Within each 64-lane sub-word,
/// consecutive-cycle toggles are popcount(x ^ (x >> 1)); sub-word and block
/// boundaries compare lane 0 against the previous sub-word's last lane.
/// Exactly reproduces the scalar record-per-cycle toggle counts for every
/// block width.
std::vector<double> packed_activities(const netlist::Netlist& nl,
                                      const stats::VectorStream& in_stream,
                                      stats::VectorStream* out_stream,
                                      int block_words) {
  BlockSimulator bs(nl, block_words);
  const std::size_t lanes = static_cast<std::size_t>(bs.lane_count());
  const std::size_t n = nl.gate_count();
  const std::size_t total = in_stream.words.size();
  std::vector<std::uint64_t> toggles(n, 0);
  std::vector<std::uint8_t> last(n, 0);
  std::vector<std::uint64_t> ob;
  if (out_stream) {
    out_stream->width = static_cast<int>(nl.outputs().size());
    out_stream->words.clear();
    out_stream->words.reserve(total);
    ob.resize(lanes);
  }
  bool first_subword = true;
  for (std::size_t base = 0; base < total; base += lanes) {
    const std::size_t count = std::min(lanes, total - base);
    bs.set_inputs_from_cycles(std::span(in_stream.words).subspan(base, count));
    bs.eval();
    const int sub_words = static_cast<int>((count + 63) / 64);
    for (GateId g = 0; g < n; ++g) {
      const auto lw = bs.lane_words(g);
      std::uint64_t t = 0;
      std::uint8_t lg = last[g];
      for (int w = 0; w < sub_words; ++w) {
        const int c = static_cast<int>(
            std::min<std::size_t>(64, count - static_cast<std::size_t>(w) * 64));
        const std::uint64_t mask =
            c == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
        const std::uint64_t x = lw[w] & mask;
        t += static_cast<std::uint64_t>(
            std::popcount((x ^ (x >> 1)) & (mask >> 1)));
        if (!(first_subword && w == 0)) t += ((x & 1u) != lg) ? 1u : 0u;
        lg = static_cast<std::uint8_t>((x >> (c - 1)) & 1u);
      }
      toggles[g] += t;
      last[g] = lg;
    }
    if (out_stream) {
      bs.outputs_to_cycles(std::span(ob).first(count));
      for (std::size_t k = 0; k < count; ++k)
        out_stream->words.push_back(ob[k]);
    }
    first_subword = false;
  }
  std::vector<double> e(n, 0.0);
  if (total >= 2) {
    double denom = static_cast<double>(total - 1);
    for (std::size_t g = 0; g < n; ++g)
      e[g] = static_cast<double>(toggles[g]) / denom;
  }
  return e;
}

}  // namespace

std::vector<double> simulate_activities(const netlist::Netlist& nl,
                                        const stats::VectorStream& in_stream,
                                        stats::VectorStream* out_stream,
                                        const SimOptions& opts) {
  lint::enforce_netlist(nl, opts.lint, "simulate_activities");
  if (resolve_engine(nl, opts.engine) == EngineKind::Packed)
    return packed_activities(nl, in_stream, out_stream, opts.block_words);
  Simulator sim(nl);
  ActivityCollector col(nl);
  if (out_stream) {
    out_stream->width = static_cast<int>(nl.outputs().size());
    out_stream->words.clear();
  }
  for (std::uint64_t w : in_stream.words) {
    sim.set_all_inputs(w);
    sim.eval();
    col.record(sim);
    if (out_stream) out_stream->words.push_back(sim.output_bits());
    sim.tick();
  }
  return col.activities();
}

stats::VectorStream simulate_outputs(const netlist::Netlist& nl,
                                     const stats::VectorStream& in_stream,
                                     const SimOptions& opts) {
  lint::enforce_netlist(nl, opts.lint, "simulate_outputs");
  stats::VectorStream out;
  if (resolve_engine(nl, opts.engine) == EngineKind::Packed) {
    BlockSimulator bs(nl, opts.block_words);
    const std::size_t lanes = static_cast<std::size_t>(bs.lane_count());
    const std::size_t total = in_stream.words.size();
    out.width = static_cast<int>(nl.outputs().size());
    out.words.reserve(total);
    std::vector<std::uint64_t> ob(lanes);
    for (std::size_t base = 0; base < total; base += lanes) {
      const std::size_t count = std::min(lanes, total - base);
      bs.set_inputs_from_cycles(std::span(in_stream.words).subspan(base, count));
      bs.eval();
      bs.outputs_to_cycles(std::span(ob).first(count));
      for (std::size_t k = 0; k < count; ++k) out.words.push_back(ob[k]);
    }
    return out;
  }
  Simulator sim(nl);
  out.width = static_cast<int>(nl.outputs().size());
  out.words.reserve(in_stream.words.size());
  for (std::uint64_t w : in_stream.words) {
    sim.set_all_inputs(w);
    sim.eval();
    out.words.push_back(sim.output_bits());
    sim.tick();
  }
  return out;
}

}  // namespace hlp::sim
