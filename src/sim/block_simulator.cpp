#include "sim/block_simulator.hpp"

#include <stdexcept>

namespace hlp::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

namespace {

struct KernelChoice {
  detail::EvalKernelFn fn;
  SimDispatch dispatch;
};

KernelChoice select_kernel(int words) {
  const SimDispatch cap = active_dispatch();
#if defined(HLP_SIM_HAVE_AVX512)
  if (cap >= SimDispatch::Avx512 && words % 8 == 0)
    return {detail::avx512_kernel(), SimDispatch::Avx512};
#endif
#if defined(HLP_SIM_HAVE_AVX2)
  if (cap >= SimDispatch::Avx2 && words % 4 == 0)
    return {detail::avx2_kernel(), SimDispatch::Avx2};
#endif
  (void)cap;
  return {detail::portable_kernel(), SimDispatch::Portable};
}

}  // namespace

BlockSimulator::BlockSimulator(const netlist::Netlist& nl, int words)
    : nl_(&nl), words_(resolve_block_words(words)) {
  const KernelChoice kc = select_kernel(words_);
  kernel_ = kc.fn;
  dispatch_ = kc.dispatch;
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    detail::BlockOp op;
    op.kind = g.kind;
    op.gate = id;
    op.fanin_begin = static_cast<std::uint32_t>(flat_fanins_.size());
    flat_fanins_.insert(flat_fanins_.end(), g.fanins.begin(), g.fanins.end());
    op.fanin_end = static_cast<std::uint32_t>(flat_fanins_.size());
    ops_.push_back(op);
  }
  reset();
}

void BlockSimulator::reset() {
  const auto W = static_cast<std::size_t>(words_);
  lanes_.assign(nl_->gate_count() * W, 0);
  for (GateId g = 0; g < nl_->gate_count(); ++g)
    if (nl_->gate(g).kind == GateKind::Const1)
      for (std::size_t w = 0; w < W; ++w)
        lanes_[std::size_t{g} * W + w] = ~std::uint64_t{0};
  for (GateId d : nl_->dffs()) {
    const std::uint64_t v = nl_->dff_init(d) ? ~std::uint64_t{0} : 0;
    for (std::size_t w = 0; w < W; ++w) lanes_[std::size_t{d} * W + w] = v;
  }
}

void BlockSimulator::set_input_lanes(GateId input,
                                     std::span<const std::uint64_t> w) {
  if (w.size() != static_cast<std::size_t>(words_))
    throw std::invalid_argument(
        "BlockSimulator::set_input_lanes: span size must equal words()");
  const auto W = static_cast<std::size_t>(words_);
  for (std::size_t i = 0; i < W; ++i) lanes_[std::size_t{input} * W + i] = w[i];
}

void BlockSimulator::set_inputs_from_cycles(
    std::span<const std::uint64_t> cycle_words) {
  auto ins = nl_->inputs();
  if (ins.size() > 64)
    throw std::out_of_range(
        "BlockSimulator::set_inputs_from_cycles: more than 64 inputs");
  const auto W = static_cast<std::size_t>(words_);
  for (std::size_t w = 0; w < W; ++w) {
    // Sub-word w carries cycles [w*64, w*64+64) of the block.
    std::uint64_t m[64] = {};
    const std::size_t base = w * 64;
    const std::size_t count =
        cycle_words.size() > base
            ? (cycle_words.size() - base < 64 ? cycle_words.size() - base : 64)
            : 0;
    for (std::size_t k = 0; k < count; ++k) m[k] = cycle_words[base + k];
    transpose64(m);
    for (std::size_t i = 0; i < ins.size(); ++i)
      lanes_[std::size_t{ins[i]} * W + w] = m[i];
  }
}

void BlockSimulator::eval() {
  kernel_(lanes_.data(), words_, ops_.data(), ops_.size(),
          flat_fanins_.data());
}

void BlockSimulator::tick() {
  const auto W = static_cast<std::size_t>(words_);
  dff_next_.clear();
  for (GateId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    const GateId src = g.fanins.empty() ? d : g.fanins[0];
    for (std::size_t w = 0; w < W; ++w)
      dff_next_.push_back(lanes_[std::size_t{src} * W + w]);
  }
  std::size_t i = 0;
  for (GateId d : nl_->dffs())
    for (std::size_t w = 0; w < W; ++w)
      lanes_[std::size_t{d} * W + w] = dff_next_[i++];
}

void BlockSimulator::outputs_to_cycles(std::span<std::uint64_t> out) const {
  auto outs = nl_->outputs();
  if (outs.size() > 64)
    throw std::out_of_range(
        "BlockSimulator::outputs_to_cycles: more than 64 outputs");
  const auto W = static_cast<std::size_t>(words_);
  for (std::size_t w = 0; w < W; ++w) {
    const std::size_t base = w * 64;
    if (out.size() <= base) break;
    std::uint64_t m[64] = {};
    for (std::size_t i = 0; i < outs.size(); ++i)
      m[i] = lanes_[std::size_t{outs[i]} * W + w];
    transpose64(m);
    const std::size_t count =
        out.size() - base < 64 ? out.size() - base : 64;
    for (std::size_t k = 0; k < count; ++k) out[base + k] = m[k];
  }
}

}  // namespace hlp::sim
