#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/block_kernels.hpp"
#include "sim/engine.hpp"

namespace hlp::sim {

/// N×64-lane bit-parallel zero-delay simulator: the block-wide generation of
/// `PackedSimulator`. Each gate holds a contiguous block of W `uint64_t`
/// lane words (lane count L = 64·W); bit k of word w is the gate's value
/// under pattern w·64+k. Gate-major storage keeps one gate's block
/// contiguous, so the eval kernels stream it through SIMD registers: the
/// kernel is chosen once at construction from `active_dispatch()` — AVX-512
/// when W is a multiple of 8, AVX2 when a multiple of 4, else a portable
/// uint64_t loop. Every kernel computes identical bits; dispatch level and
/// width never change results, only throughput.
///
/// Lane semantics are the caller's choice exactly as with PackedSimulator:
/// temporal packing (combinational only, lane k = cycle base+k) or replica
/// packing (sequential, lane k = an independent stream). Cycle-word I/O
/// transposes one 64-cycle sub-word at a time, so stream conventions are
/// unchanged — a W-word block just carries W consecutive 64-cycle groups.
class BlockSimulator {
 public:
  /// `words` in [1, 64]; <= 0 picks `default_block_words()`.
  explicit BlockSimulator(const netlist::Netlist& nl, int words = 0);

  int words() const { return words_; }
  int lane_count() const { return 64 * words_; }
  /// Kernel actually selected (after CPU/env/width constraints).
  SimDispatch dispatch() const { return dispatch_; }

  /// Reset DFF lanes to their broadcast init values, clear all nets to 0.
  void reset();

  /// Assign one primary input's lane block directly; `w.size()` must be
  /// words().
  void set_input_lanes(netlist::GateId input, std::span<const std::uint64_t> w);

  /// Load up to 64·W cycle words (vector-stream convention: bit i of
  /// words[k] drives primary input i in lane k); lanes >= words.size() are
  /// cleared. Requires <= 64 primary inputs.
  void set_inputs_from_cycles(std::span<const std::uint64_t> cycle_words);

  /// Propagate all 64·W lanes through the combinational logic.
  void eval();

  /// Clock edge: every DFF samples its D input in every lane.
  void tick();

  /// Gate g's lane block (words() words; bit k of word w = pattern w·64+k).
  std::span<const std::uint64_t> lane_words(netlist::GateId g) const {
    return {lanes_.data() + std::size_t{g} * words_,
            static_cast<std::size_t>(words_)};
  }

  /// Transpose primary-output lanes back to cycle words: out[k] bit i =
  /// output i under pattern k. Writes min(out.size(), 64·W) words; requires
  /// <= 64 primary outputs.
  void outputs_to_cycles(std::span<std::uint64_t> out) const;

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  const netlist::Netlist* nl_;
  int words_;
  SimDispatch dispatch_;
  detail::EvalKernelFn kernel_;
  std::vector<std::uint64_t> lanes_;  // gate-major: [g*words_, (g+1)*words_)
  std::vector<detail::BlockOp> ops_;
  std::vector<netlist::GateId> flat_fanins_;
  std::vector<std::uint64_t> dff_next_;
};

}  // namespace hlp::sim
