// Compiled with -mavx512f (see src/sim/CMakeLists.txt); only the runtime
// dispatcher in block_simulator.cpp may call into this TU, and only after
// __builtin_cpu_supports("avx512f") succeeds.
#include "sim/block_kernels_impl.hpp"

#if defined(HLP_SIM_HAVE_AVX512)
#include <immintrin.h>

namespace hlp::sim::detail {
namespace {

struct VAvx512 {
  static constexpr int kWords = 8;
  using Reg = __m512i;
  static Reg load(const std::uint64_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::uint64_t* p, Reg v) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
  }
  static Reg ones() { return _mm512_set1_epi64(-1); }
  static Reg zero() { return _mm512_setzero_si512(); }
  static Reg and_(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static Reg xor_(Reg a, Reg b) { return _mm512_xor_si512(a, b); }
  static Reg not_(Reg a) { return _mm512_xor_si512(a, ones()); }
  static Reg andnot(Reg a, Reg b) { return _mm512_andnot_si512(a, b); }
};

}  // namespace

EvalKernelFn avx512_kernel() { return &eval_ops<VAvx512>; }

}  // namespace hlp::sim::detail
#endif  // HLP_SIM_HAVE_AVX512
