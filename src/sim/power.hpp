#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp::sim {

/// Electrical/operating parameters for power calculation.
/// Defaults model a mid-1990s 5 V CMOS process at 20 MHz; the paper's
/// techniques only depend on ratios (see DESIGN.md).
struct PowerParams {
  double vdd = 5.0;          ///< supply voltage [V]
  double freq = 20e6;        ///< clock frequency [Hz]
  netlist::CapacitanceModel cap;
};

/// Power / switched-capacitance report for one simulation run.
struct PowerReport {
  double total_power = 0.0;        ///< watts (arbitrary-unit capacitance)
  double switched_cap = 0.0;       ///< sum of C_g * E_g (per cycle)
  double clock_power = 0.0;        ///< clock network contribution
  std::vector<double> gate_energy; ///< per-gate C_g * E_g

  double power_with_clock() const { return total_power + clock_power; }
};

/// P = 0.5 * V^2 * f * sum_g C_g * E_g, plus clock-tree power
/// P_clk = V^2 * f * C_clk (the clock toggles twice per cycle).
PowerReport compute_power(const netlist::Netlist& nl,
                          std::span<const double> activities,
                          const PowerParams& p = {});

/// Switched capacitance per cycle grouped by a user-provided component label
/// per gate (used for the Table I breakdown). Gates whose label is empty are
/// grouped under "other".
std::map<std::string, double> switched_cap_by_component(
    const netlist::Netlist& nl, std::span<const double> activities,
    std::span<const std::string> labels,
    const netlist::CapacitanceModel& cap = {});

}  // namespace hlp::sim
