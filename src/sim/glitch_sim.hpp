#pragma once

#include <vector>

#include "exec/exec.hpp"
#include "netlist/netlist.hpp"
#include "stats/entropy.hpp"

namespace hlp::sim {

/// Unit-delay, glitch-aware transition counts for a netlist driven by an
/// input stream.
///
/// Each logic gate has delay 1; inputs and DFF outputs change at t=0 of each
/// cycle. Every output change (including spurious transitions that are later
/// undone within the same cycle — glitches) is counted. The zero-delay count
/// is also returned so callers can separate functional from glitch activity,
/// which is what the low-power retiming heuristic of Monteiro et al.
/// (Section III-J) keys on.
struct GlitchResult {
  std::vector<double> total_activity;       ///< transitions/cycle, glitches included
  std::vector<double> functional_activity;  ///< zero-delay transitions/cycle
  /// Cycles the activities are normalized over. Equal to the stream length
  /// for a complete run; smaller when a budget trip cut the run short (the
  /// activities are then per-cycle rates over the prefix simulated).
  std::size_t cycles = 0;

  double glitch_activity(netlist::GateId g) const {
    return total_activity[g] - functional_activity[g];
  }
};

GlitchResult simulate_glitches(const netlist::Netlist& nl,
                               const stats::VectorStream& in_stream);

/// Budgeted glitch simulation: one meter step per stream cycle. On a budget
/// trip the outcome holds per-cycle activities over the prefix of the
/// stream that finished (result.cycles tells how far it got) with the stop
/// reason in the diag — a shorter but unbiased measurement.
exec::Outcome<GlitchResult> simulate_glitches_budgeted(
    const netlist::Netlist& nl, const stats::VectorStream& in_stream,
    const exec::Budget& budget);

}  // namespace hlp::sim
