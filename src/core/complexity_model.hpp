#pragma once

#include <vector>

#include "core/two_level.hpp"
#include "sim/power.hpp"

namespace hlp::core {

/// Complexity-based power models of Section II-B2.

/// Chip Estimation System [14] gate-equivalent model:
/// Power = f * N * (Energy_gate + 0.5 V^2 C_load) * E_gate.
struct CesParams {
  double energy_gate = 2.5e-12;  ///< internal energy per transition [J]
  double c_load = 3.0;           ///< average load per equivalent gate [cap units]
  double e_gate = 0.2;           ///< average output activity per cycle
};
double ces_power(std::size_t gate_equivalents, const CesParams& ces,
                 const sim::PowerParams& p);

/// Nemani–Najm [15] "linear measure" area-complexity of a single-output
/// function: C1(f) = sum_i c_i p_i over distinct essential-prime sizes c_i,
/// where p_i is the probability mass of on-set minterms covered by essential
/// primes of size c_i but no larger; C(f) = (C1(f) + C0(f)) / 2.
struct AreaComplexity {
  double c_on = 0.0;   ///< C1(f)
  double c_off = 0.0;  ///< C0(f)
  double c = 0.0;      ///< C(f)
  double output_prob = 0.0;  ///< P(f = 1) under uniform inputs
};
AreaComplexity area_complexity(const TruthTable& tt, int n);

/// Landman–Rabaey [17] controller power model for standard cells:
/// Power = 0.5 V^2 f (N_I C_I E_I + N_O C_O E_O) N_M.
struct ControllerModelParams {
  double c_in = 1.0;   ///< regression coefficient for input+state lines
  double c_out = 1.0;  ///< regression coefficient for output+state lines
};
double landman_rabaey_power(int n_in_lines, double e_in, int n_out_lines,
                            double e_out, int n_minterms,
                            const ControllerModelParams& cm,
                            const sim::PowerParams& p);

/// Equivalent-gate count of a netlist: 2-input-NAND equivalents by summing
/// fanin/2 per logic gate (the usual gate-equivalent convention).
std::size_t gate_equivalents(const netlist::Netlist& nl);

}  // namespace hlp::core
