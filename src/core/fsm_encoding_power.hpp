#pragma once

#include <string>
#include <vector>

#include "fsm/encoding.hpp"
#include "fsm/synth.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

/// Section III-H: end-to-end comparison harness for low-power state
/// encoding — encode, synthesize to gates, simulate, measure.

struct EncodingReport {
  std::string style;
  int state_bits = 0;
  std::size_t gates = 0;
  /// Analytical expected state-bit switching per cycle (Markov-weighted
  /// Hamming distance).
  double expected_switching = 0.0;
  /// Tyagi lower bound applies to any encoding of this machine.
  double simulated_power = 0.0;
  double simulated_state_switching = 0.0;  ///< measured bits/cycle
};

/// Evaluate one encoding style on an STG. The synthesized FSM's state
/// recurrence is inherently serial: Auto resolves to the scalar engine;
/// forcing Packed throws.
EncodingReport evaluate_encoding(const fsm::Stg& stg,
                                 fsm::EncodingStyle style,
                                 const fsm::MarkovAnalysis& ma,
                                 std::size_t cycles, std::uint64_t seed,
                                 std::span<const double> input_probs = {},
                                 const sim::PowerParams& params = {},
                                 const sim::SimOptions& opts = {});

/// All styles side by side.
std::vector<EncodingReport> compare_encodings(
    const fsm::Stg& stg, std::size_t cycles, std::uint64_t seed,
    std::span<const double> input_probs = {},
    const sim::PowerParams& params = {},
    const sim::SimOptions& opts = {});

const char* encoding_style_name(fsm::EncodingStyle s);

}  // namespace hlp::core
