#include "core/memory_model.hpp"

#include <cmath>
#include <limits>

namespace hlp::core {

MemoryEnergy memory_access_energy(const MemoryParams& p,
                                  const sim::PowerParams& pp) {
  MemoryEnergy e;
  const double rows = std::pow(2.0, p.n - p.k);
  const double cols = std::pow(2.0, p.k);
  // (1) every cell on the selected row drives bit or bit-bar by V_swing:
  //     0.5 * V * V_swing * 2^k * (C_int + 2^(n-k) C_tr).
  e.cells = 0.5 * pp.vdd * p.v_swing * cols * (p.c_int + rows * p.c_tr);
  // (2) row decoder: one output toggles per access, the predecoder tree
  //     switches ~(n-k) node pairs, and the decode/select wiring spans all
  //     2^(n-k) rows — the term that penalizes tall arrays and gives the
  //     aspect-ratio optimization its interior optimum.
  e.decoder = 0.5 * pp.vdd * pp.vdd *
              (2.0 * p.c_decoder +
               static_cast<double>(p.n - p.k) * p.c_decoder +
               rows * p.c_decoder_wire);
  // (3) selected word line spans all columns.
  e.wordline = 0.5 * pp.vdd * pp.vdd * cols * p.c_wordline;
  // (4) column select: word_bits columns steered out of 2^k.
  e.colselect = 0.5 * pp.vdd * pp.vdd *
                static_cast<double>(p.word_bits) * p.c_colmux;
  // (5) sense amplifier + readout inverter per output bit.
  e.sense = 0.5 * pp.vdd * pp.vdd * static_cast<double>(p.word_bits) *
            p.c_sense;
  return e;
}

double memory_power(const MemoryParams& p, double accesses_per_cycle,
                    const sim::PowerParams& pp) {
  return memory_access_energy(p, pp).total() * accesses_per_cycle * pp.freq;
}

std::vector<std::pair<int, double>> sweep_column_split(
    MemoryParams p, const sim::PowerParams& pp) {
  std::vector<std::pair<int, double>> out;
  int kmin = 0;
  while ((1 << kmin) < p.word_bits) ++kmin;  // need at least a word per row
  for (int k = kmin; k < p.n; ++k) {
    p.k = k;
    out.emplace_back(k, memory_access_energy(p, pp).total());
  }
  return out;
}

int optimal_column_split(const MemoryParams& p, const sim::PowerParams& pp) {
  double best = std::numeric_limits<double>::infinity();
  int best_k = p.k;
  for (auto [k, e] : sweep_column_split(p, pp)) {
    if (e < best) {
      best = e;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace hlp::core
