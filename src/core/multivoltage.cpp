#include "core/multivoltage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace hlp::core {

using cdfg::Cdfg;
using cdfg::OpId;
using cdfg::OpKind;

int VoltageLibrary::base_delay(OpKind kind) const {
  switch (kind) {
    case OpKind::Mul: return 2;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Cmp:
    case OpKind::Mux: return 1;
    case OpKind::Shift: return 1;
    default: return 0;
  }
}

double VoltageLibrary::base_energy(OpKind kind, int width) const {
  double w = static_cast<double>(width);
  switch (kind) {
    case OpKind::Mul: return 0.4 * w * w;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Cmp: return 1.0 * w;
    case OpKind::Mux: return 0.3 * w;
    case OpKind::Shift: return 0.15 * w;
    default: return 0.0;
  }
}

std::vector<VoltageOption> VoltageLibrary::options(OpKind kind,
                                                   int width) const {
  std::vector<VoltageOption> out;
  if (voltages.empty()) return out;
  double vmax = voltages.front();
  double dmax_scale = vmax / ((vmax - vt) * (vmax - vt));
  for (double v : voltages) {
    VoltageOption o;
    o.vdd = v;
    double scale = (v / ((v - vt) * (v - vt))) / dmax_scale;
    o.delay = std::max(1, static_cast<int>(
                              std::ceil(base_delay(kind) * scale)));
    o.energy = base_energy(kind, width) * (v * v) / (vmax * vmax);
    out.push_back(o);
  }
  return out;
}

namespace {

struct Point {
  int delay = 0;
  double energy = 0.0;
  /// Per child: (voltage index, point index) chosen.
  std::vector<std::pair<int, int>> child_choice;
};

/// Pareto-prune: keep minimal energy per delay, strictly improving.
void prune(std::vector<Point>& pts) {
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    if (a.delay != b.delay) return a.delay < b.delay;
    return a.energy < b.energy;
  });
  std::vector<Point> keep;
  double best_e = std::numeric_limits<double>::infinity();
  for (auto& p : pts) {
    if (p.energy < best_e - 1e-12) {
      best_e = p.energy;
      keep.push_back(std::move(p));
    }
  }
  pts = std::move(keep);
}

}  // namespace

MvAssignment schedule_multivoltage(const Cdfg& g, const VoltageLibrary& lib,
                                   int latency_bound) {
  const std::size_t nv = lib.voltages.size();
  // curve[node][v] = Pareto points with the node's output at voltage v.
  std::vector<std::vector<std::vector<Point>>> curve(
      g.size(), std::vector<std::vector<Point>>(nv));

  for (OpId id = 0; id < g.size(); ++id) {
    const auto& op = g.op(id);
    if (op.kind == OpKind::Input || op.kind == OpKind::Const) {
      for (std::size_t v = 0; v < nv; ++v)
        curve[id][v].push_back(Point{0, 0.0, {}});
      continue;
    }
    if (op.kind == OpKind::Output) {
      for (std::size_t v = 0; v < nv; ++v) {
        for (int pi = 0;
             pi < static_cast<int>(curve[op.preds[0]][v].size()); ++pi) {
          const auto& cp = curve[op.preds[0]][v][static_cast<std::size_t>(pi)];
          Point p{cp.delay, cp.energy, {{static_cast<int>(v), pi}}};
          curve[id][v].push_back(std::move(p));
        }
        prune(curve[id][v]);
      }
      continue;
    }
    auto opts = lib.options(op.kind, op.width);
    for (std::size_t v = 0; v < nv; ++v) {
      const auto& o = opts[v];
      // Candidate "children ready" times: union of child point delays.
      std::set<int> cand{0};
      for (OpId c : op.preds)
        for (std::size_t cv = 0; cv < nv; ++cv)
          for (const auto& p : curve[c][cv]) cand.insert(p.delay);
      for (int t : cand) {
        // For each child: cheapest point (any voltage) with delay <= t,
        // paying a level shifter when the child voltage differs.
        double total = o.energy;
        std::vector<std::pair<int, int>> choice;
        bool ok = true;
        for (OpId c : op.preds) {
          double best = std::numeric_limits<double>::infinity();
          std::pair<int, int> pick{-1, -1};
          for (std::size_t cv = 0; cv < nv; ++cv) {
            for (int pi = 0; pi < static_cast<int>(curve[c][cv].size());
                 ++pi) {
              const auto& p = curve[c][cv][static_cast<std::size_t>(pi)];
              if (p.delay > t) continue;
              double e = p.energy +
                         (cv != v ? lib.shifter_energy : 0.0);
              if (e < best) {
                best = e;
                pick = {static_cast<int>(cv), pi};
              }
            }
          }
          if (pick.first < 0) {
            ok = false;
            break;
          }
          total += best;
          choice.push_back(pick);
        }
        if (!ok) continue;
        curve[id][v].push_back(Point{t + o.delay, total, std::move(choice)});
      }
      prune(curve[id][v]);
    }
  }

  // Pick the minimum-energy root combination meeting the bound. For
  // multi-output graphs, treat each output independently and sum (exact on
  // trees).
  MvAssignment res;
  res.voltage_index.assign(g.size(), -1);
  res.latency = 0;
  std::vector<std::tuple<OpId, int, int>> stack;  // (node, voltage, point)
  for (OpId out : g.outputs()) {
    double best = std::numeric_limits<double>::infinity();
    int bv = -1, bp = -1;
    for (std::size_t v = 0; v < nv; ++v)
      for (int pi = 0; pi < static_cast<int>(curve[out][v].size()); ++pi) {
        const auto& p = curve[out][v][static_cast<std::size_t>(pi)];
        if (p.delay > latency_bound) continue;
        if (p.energy < best) {
          best = p.energy;
          bv = static_cast<int>(v);
          bp = pi;
        }
      }
    if (bv < 0) return res;  // infeasible
    res.energy += best;
    stack.emplace_back(out, bv, bp);
  }
  // Recover assignments by walking back-pointers.
  while (!stack.empty()) {
    auto [id, v, pi] = stack.back();
    stack.pop_back();
    const Point& p = curve[id][static_cast<std::size_t>(v)]
                          [static_cast<std::size_t>(pi)];
    const auto& op = g.op(id);
    if (Cdfg::is_compute(op.kind) || op.kind == OpKind::Mux)
      res.voltage_index[id] = v;
    res.latency = std::max(res.latency, p.delay);
    for (std::size_t c = 0; c < p.child_choice.size(); ++c) {
      auto [cv, cpi] = p.child_choice[c];
      if (cv != v && Cdfg::is_compute(g.op(op.preds[c]).kind))
        ++res.level_shifters;
      stack.emplace_back(op.preds[c], cv, cpi);
    }
  }
  res.feasible = true;
  return res;
}

MvAssignment single_voltage_baseline(const Cdfg& g,
                                     const VoltageLibrary& lib) {
  MvAssignment res;
  res.voltage_index.assign(g.size(), -1);
  cdfg::OpDelays d;  // base delays match options at vmax
  auto s = cdfg::asap(g, d);
  res.latency = s.length;
  for (OpId id = 0; id < g.size(); ++id) {
    const auto& op = g.op(id);
    if (Cdfg::is_compute(op.kind) || op.kind == OpKind::Mux) {
      res.voltage_index[id] = 0;
      res.energy += lib.base_energy(op.kind, op.width);
    }
  }
  res.feasible = true;
  return res;
}

}  // namespace hlp::core
