#include "core/behavioral_transform.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/words.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/simulator.hpp"

namespace hlp::core {

using cdfg::Cdfg;
using cdfg::OpKind;
using netlist::GateId;
using netlist::GateKind;
using netlist::Word;

CdfgMetrics cdfg_metrics(const cdfg::Cdfg& g) {
  CdfgMetrics m;
  std::vector<int> level(g.size(), 0);
  for (cdfg::OpId id = 0; id < g.size(); ++id) {
    const auto& op = g.op(id);
    switch (op.kind) {
      case OpKind::Add:
      case OpKind::Sub: ++m.adds; break;
      case OpKind::Mul: ++m.muls; break;
      case OpKind::Shift: ++m.shifts; break;
      default: break;
    }
    if (Cdfg::is_compute(op.kind) || op.kind == OpKind::Mux) {
      int lv = 0;
      for (auto p : op.preds) lv = std::max(lv, level[p]);
      level[id] = lv + 1;
      m.critical_path = std::max(m.critical_path, level[id]);
    } else {
      for (auto p : op.preds) level[id] = std::max(level[id], level[p]);
    }
  }
  m.total_compute_ops = m.adds + m.muls + m.shifts;
  return m;
}

cdfg::Cdfg polynomial_completed_square(int width) {
  Cdfg g;
  auto x = g.add_input("x", width);
  auto b1 = g.add_const("b1", width);
  auto b2 = g.add_const("b2", width);
  auto t1 = g.add_binary(OpKind::Add, x, b1, "t1", width);
  auto t2 = g.add_binary(OpKind::Mul, t1, t1, "t2", width);
  auto y = g.add_binary(OpKind::Add, t2, b2, "y", width);
  g.mark_output(y, "y");
  return g;
}

cdfg::Cdfg polynomial_preconditioned_cubic(int width) {
  Cdfg g;
  auto x = g.add_input("x", width);
  auto d0 = g.add_const("d0", width);
  auto d1 = g.add_const("d1", width);
  auto d2 = g.add_const("d2", width);
  auto t1 = g.add_binary(OpKind::Add, x, d0, "t1", width);
  auto t2 = g.add_binary(OpKind::Mul, t1, x, "t2", width);
  auto t3 = g.add_binary(OpKind::Add, t2, d1, "t3", width);
  auto t4 = g.add_binary(OpKind::Mul, t3, t1, "t4", width);
  auto y = g.add_binary(OpKind::Add, t4, d2, "y", width);
  g.mark_output(y, "y");
  return g;
}

std::vector<std::pair<int, int>> csd_digits(int c) {
  std::vector<std::pair<int, int>> digits;
  int shift = 0;
  while (c != 0) {
    if (c & 1) {
      int d = 2 - (c & 3);  // +1 if c mod 4 == 1, else -1
      digits.emplace_back(shift, d);
      c -= d;
    }
    c >>= 1;
    ++shift;
  }
  return digits;
}

namespace {

/// Tracks which component label newly created gates belong to.
class Labeler {
 public:
  Labeler(netlist::Netlist& nl, std::vector<std::string>& labels)
      : nl_(nl), labels_(labels) {}
  /// Label every gate created since the previous call.
  void commit(const std::string& label) {
    labels_.resize(nl_.gate_count(), label);
  }

 private:
  netlist::Netlist& nl_;
  std::vector<std::string>& labels_;
};

int ceil_log2(int v) {
  int b = 0;
  while ((1 << b) < v) ++b;
  return std::max(1, b);
}

}  // namespace

FirDatapath build_fir_datapath(std::span<const int> coefficients, int width,
                               bool constant_mult_as_shift_add) {
  FirDatapath fir;
  fir.coefficients.assign(coefficients.begin(), coefficients.end());
  fir.shift_add = constant_mult_as_shift_add;
  netlist::Netlist& nl = fir.netlist;
  Labeler lab(nl, fir.labels);
  const int taps = static_cast<int>(coefficients.size());
  const int cw = 8;  // coefficient bit width
  const int pw = width + cw;  // product width

  // Input sample.
  fir.input = netlist::make_input_word(nl, width, "x");
  lab.commit("Interconnect");  // input routing

  // Tap delay line (Registers/clock).
  std::vector<Word> tap;
  tap.push_back(fir.input);
  for (int t = 1; t < taps; ++t)
    tap.push_back(netlist::register_word(nl, tap.back(),
                                         "z" + std::to_string(t)));
  lab.commit("Registers/clock");

  // Products per tap (Execution units).
  int exec_ops = 0;
  std::vector<Word> prod;
  for (int t = 0; t < taps; ++t) {
    int c = fir.coefficients[static_cast<std::size_t>(t)];
    Word p;
    if (!constant_mult_as_shift_add) {
      Word cword = netlist::make_const_word(nl, cw,
                                            static_cast<std::uint64_t>(
                                                c < 0 ? -c : c));
      p = netlist::array_multiplier(nl, tap[static_cast<std::size_t>(t)],
                                    cword);
      ++exec_ops;
    } else {
      // Hardwired CSD shift/add network. The accumulator only needs
      // width + ceil(log2(c)) bits — a general multiplier must provision
      // the full coefficient width, a hardwired one does not.
      int cbits_used = ceil_log2((c < 0 ? -c : c) + 1);
      int aw = width + cbits_used;
      Word wide = tap[static_cast<std::size_t>(t)];
      while (static_cast<int>(wide.size()) < aw)
        wide.push_back(nl.add_const(false));
      auto digits = csd_digits(c < 0 ? -c : c);
      Word acc;
      bool first = true;
      for (auto [sh, sign] : digits) {
        Word shifted = netlist::shift_left_const(nl, wide, sh);
        if (first) {
          if (sign > 0) {
            acc = shifted;
          } else {
            Word z = netlist::make_const_word(nl, aw, 0);
            acc = netlist::subtractor(nl, z, shifted);
            ++exec_ops;
          }
          first = false;
        } else if (sign > 0) {
          acc = netlist::ripple_adder(nl, acc, shifted);
          ++exec_ops;
        } else {
          acc = netlist::subtractor(nl, acc, shifted);
          ++exec_ops;
        }
      }
      if (acc.empty()) acc = netlist::make_const_word(nl, pw, 0);
      p = acc;
    }
    while (static_cast<int>(p.size()) < pw) p.push_back(nl.add_const(false));
    p.resize(static_cast<std::size_t>(pw));
    prod.push_back(std::move(p));
  }
  lab.commit("Execution units");

  // Interconnect: the product buses run across the datapath to the
  // accumulator; model each as a buffer driving a long wire.
  for (auto& p : prod) {
    Word routed;
    for (GateId bit : p) {
      GateId buf = nl.add_unary(GateKind::Buf, bit);
      nl.add_extra_cap(buf, 1.5);  // bus wire load
      routed.push_back(buf);
    }
    p = std::move(routed);
  }
  lab.commit("Interconnect");

  // Accumulation tree (Execution units).
  std::vector<Word> level = prod;
  while (level.size() > 1) {
    std::vector<Word> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(netlist::ripple_adder(nl, level[i], level[i + 1]));
      ++exec_ops;
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  Word sum = level[0];
  lab.commit("Execution units");

  // Control logic: a free-running schedule counter sized by the number of
  // datapath operations it sequences, plus a terminal-count decode. The
  // shift/add datapath schedules more (cheaper) operations, so its
  // controller is wider — the effect behind Table I's control-capacitance
  // increase. The strobe is a status output only; the data path does not
  // depend on it, keeping both filter versions cycle-equivalent.
  int cbits = ceil_log2(std::max(2, exec_ops + 1));
  Word cnt;
  for (int b = 0; b < cbits; ++b)
    cnt.push_back(nl.add_dff(netlist::kNullGate, false,
                             "cnt[" + std::to_string(b) + "]"));
  // cnt + 1 via half adders.
  GateId carry = nl.add_const(true);
  Word cnt_next;
  for (int b = 0; b < cbits; ++b) {
    auto q = cnt[static_cast<std::size_t>(b)];
    cnt_next.push_back(nl.add_binary(GateKind::Xor, q, carry));
    carry = nl.add_binary(GateKind::And, q, carry);
  }
  for (int b = 0; b < cbits; ++b)
    nl.set_dff_input(cnt[static_cast<std::size_t>(b)],
                     cnt_next[static_cast<std::size_t>(b)]);
  // Terminal-count decode = AND of all counter bits -> "valid" strobe.
  GateId valid = nl.add_gate(GateKind::And, cnt);
  nl.mark_output(valid, "valid");
  lab.commit("Control logic");

  // Output register (Registers/clock).
  Word yreg = netlist::register_word(nl, sum, "y");
  netlist::mark_output_word(nl, yreg, "y");
  lab.commit("Registers/clock");

  fir.output = yreg;
  return fir;
}

FirMacDatapath build_fir_mac_datapath(std::span<const int> coefficients,
                                      int width) {
  FirMacDatapath fir;
  fir.coefficients.assign(coefficients.begin(), coefficients.end());
  fir.taps = static_cast<int>(coefficients.size());
  netlist::Netlist& nl = fir.netlist;
  Labeler lab(nl, fir.labels);
  const int T = fir.taps;
  const int cw = 8;           // general coefficient path width
  const int pw = width + cw;  // product/accumulator width
  const int pbits = ceil_log2(std::max(2, T));

  // Sample input.
  fir.input = netlist::make_input_word(nl, width, "x");
  lab.commit("Interconnect");

  // Phase counter with wrap at T-1, plus wrap strobe (Control logic).
  Word phase;
  for (int b = 0; b < pbits; ++b)
    phase.push_back(nl.add_dff(netlist::kNullGate, false,
                               "ph[" + std::to_string(b) + "]"));
  Word last = netlist::make_const_word(nl, pbits,
                                       static_cast<std::uint64_t>(T - 1));
  GateId wrap = netlist::equals(nl, phase, last);
  // phase+1 via half adders, then wrap mux to zero.
  GateId carry = nl.add_const(true);
  Word inc;
  for (int b = 0; b < pbits; ++b) {
    inc.push_back(nl.add_binary(GateKind::Xor, phase[static_cast<std::size_t>(b)], carry));
    carry = nl.add_binary(GateKind::And, phase[static_cast<std::size_t>(b)], carry);
  }
  Word zerop = netlist::make_const_word(nl, pbits, 0);
  Word nextp = netlist::mux_word(nl, wrap, inc, zerop);
  for (int b = 0; b < pbits; ++b)
    nl.set_dff_input(phase[static_cast<std::size_t>(b)],
                     nextp[static_cast<std::size_t>(b)]);
  // First-cycle-of-pass strobe: phase == 0.
  GateId phase_is0 = netlist::equals(nl, phase, zerop);
  lab.commit("Control logic");

  // Tap shift registers, advancing on wrap (Registers + load muxes).
  std::vector<Word> tap(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    Word q;
    for (int b = 0; b < width; ++b)
      q.push_back(nl.add_dff(netlist::kNullGate, false,
                             "z" + std::to_string(t) + "[" +
                                 std::to_string(b) + "]"));
    tap[static_cast<std::size_t>(t)] = q;
  }
  lab.commit("Registers/clock");
  for (int t = 0; t < T; ++t) {
    const Word& src = (t == 0) ? fir.input : tap[static_cast<std::size_t>(t - 1)];
    Word d = netlist::mux_word(nl, wrap, tap[static_cast<std::size_t>(t)],
                               src);
    for (int b = 0; b < width; ++b)
      nl.set_dff_input(tap[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(b)],
                       d[static_cast<std::size_t>(b)]);
  }
  lab.commit("Interconnect");

  // Tap and coefficient selection networks (Interconnect / Control).
  auto mux_select = [&](const std::vector<Word>& words) {
    std::vector<Word> level = words;
    // Pad to the next power of two by repeating the last word.
    while ((level.size() & (level.size() - 1)) != 0)
      level.push_back(level.back());
    int bit = 0;
    while (level.size() > 1) {
      std::vector<Word> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(netlist::mux_word(
            nl, phase[static_cast<std::size_t>(bit)], level[i],
            level[i + 1]));
      level = std::move(next);
      ++bit;
    }
    return level[0];
  };
  Word tapval = mux_select(tap);
  lab.commit("Interconnect");
  std::vector<Word> coefs;
  for (int t = 0; t < T; ++t)
    coefs.push_back(netlist::make_const_word(
        nl, cw, static_cast<std::uint64_t>(
                    fir.coefficients[static_cast<std::size_t>(t)] < 0
                        ? -fir.coefficients[static_cast<std::size_t>(t)]
                        : fir.coefficients[static_cast<std::size_t>(t)])));
  Word coefval = mux_select(coefs);
  lab.commit("Control logic");  // coefficient store + decode

  // Shared MAC: general multiplier + accumulator adder (Execution units).
  Word product = netlist::array_multiplier(nl, tapval, coefval);
  product.resize(static_cast<std::size_t>(pw));
  Word acc;
  for (int b = 0; b < pw; ++b)
    acc.push_back(nl.add_dff(netlist::kNullGate, false,
                             "acc[" + std::to_string(b) + "]"));
  Word sum = netlist::ripple_adder(nl, acc, product);
  lab.commit("Execution units");
  // First cycle of a pass restarts the accumulation from the product.
  Word acc_next = netlist::mux_word(nl, phase_is0, sum, product);
  lab.commit("Interconnect");
  for (int b = 0; b < pw; ++b)
    nl.set_dff_input(acc[static_cast<std::size_t>(b)],
                     acc_next[static_cast<std::size_t>(b)]);
  lab.commit("Registers/clock");

  // Output register loads the finished sum at the wrap cycle.
  Word yq;
  for (int b = 0; b < pw; ++b)
    yq.push_back(nl.add_dff(netlist::kNullGate, false,
                            "y[" + std::to_string(b) + "]"));
  lab.commit("Registers/clock");
  Word yd = netlist::mux_word(nl, wrap, yq, acc_next);
  for (int b = 0; b < pw; ++b)
    nl.set_dff_input(yq[static_cast<std::size_t>(b)],
                     yd[static_cast<std::size_t>(b)]);
  lab.commit("Interconnect");
  netlist::mark_output_word(nl, yq, "y");
  lab.commit("Registers/clock");
  fir.output = yq;
  return fir;
}

std::map<std::string, double> fir_mac_capacitance_breakdown(
    const FirMacDatapath& fir, const stats::VectorStream& samples,
    const netlist::CapacitanceModel& cap) {
  // One sample per pass of `taps` cycles: expand the sample stream.
  stats::VectorStream expanded;
  expanded.width = samples.width;
  for (std::uint64_t w : samples.words)
    for (int c = 0; c < fir.taps; ++c) expanded.words.push_back(w);
  auto gl = sim::simulate_glitches(fir.netlist, expanded);
  auto by = sim::switched_cap_by_component(fir.netlist, gl.total_activity,
                                           fir.labels, cap);
  // Clock contribution (2 edges/cycle), then normalize per *sample*.
  by["Registers/clock"] +=
      2.0 * cap.dff_clock_cap * static_cast<double>(fir.netlist.dffs().size());
  for (auto& [k, v] : by) v *= static_cast<double>(fir.taps);
  return by;
}

bool fir_mac_matches_parallel(const FirMacDatapath& mac,
                              const FirDatapath& parallel,
                              const stats::VectorStream& samples) {
  const int T = mac.taps;
  const int pw = static_cast<int>(mac.output.size());
  const std::uint64_t mask =
      pw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << pw) - 1);

  // Golden per-sample outputs: y_k = sum_i c_i x_{k-i} (mod 2^pw).
  std::vector<std::uint64_t> golden;
  for (std::size_t k = 0; k < samples.words.size(); ++k) {
    std::uint64_t y = 0;
    for (int i = 0; i < T; ++i) {
      if (k < static_cast<std::size_t>(i)) break;
      auto c = static_cast<std::uint64_t>(
          mac.coefficients[static_cast<std::size_t>(i)]);
      y += c * samples.words[k - static_cast<std::size_t>(i)];
    }
    golden.push_back(y & mask);
  }

  // MAC: record y at the end of each pass.
  sim::Simulator ms(mac.netlist);
  std::vector<std::uint64_t> mac_out;
  for (std::uint64_t w : samples.words) {
    for (int c = 0; c < T; ++c) {
      ms.set_word(mac.input, w);
      ms.eval();
      ms.tick();
    }
    ms.eval();
    mac_out.push_back(ms.word_value(mac.output));
  }

  // Parallel: one sample per cycle; output register lags one cycle.
  sim::Simulator ps(parallel.netlist);
  std::vector<std::uint64_t> par_out;
  for (std::uint64_t w : samples.words) {
    ps.set_word(parallel.input, w);
    ps.eval();
    ps.tick();
    ps.eval();
    par_out.push_back(ps.word_value(parallel.output) & mask);
  }

  // Align each sequence to the golden one with a small constant lag.
  auto matches_with_lag = [&](const std::vector<std::uint64_t>& out) {
    for (int lag = 0; lag <= 2; ++lag) {
      bool ok = true;
      for (std::size_t k = 8; k + static_cast<std::size_t>(lag) < out.size();
           ++k) {
        if (out[k + static_cast<std::size_t>(lag)] != golden[k]) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  };
  return matches_with_lag(mac_out) && matches_with_lag(par_out);
}

std::map<std::string, double> fir_capacitance_breakdown(
    const FirDatapath& fir, const stats::VectorStream& samples,
    const netlist::CapacitanceModel& cap) {
  // Glitch-aware simulation: Table I comes from switch-level simulation,
  // and the array multipliers' spurious transitions are a large part of
  // what the constant-multiplication transformation eliminates.
  auto gl = sim::simulate_glitches(fir.netlist, samples);
  auto by = sim::switched_cap_by_component(fir.netlist, gl.total_activity,
                                           fir.labels, cap);
  // Clock network load belongs to "Registers/clock" (switching twice/cycle).
  by["Registers/clock"] +=
      2.0 * cap.dff_clock_cap * static_cast<double>(fir.netlist.dffs().size());
  return by;
}

}  // namespace hlp::core
