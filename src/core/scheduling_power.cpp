#include "core/scheduling_power.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <string>

#include "lint/lint.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

using cdfg::Cdfg;
using cdfg::OpDelays;
using cdfg::OpId;
using cdfg::OpKind;
using cdfg::Schedule;

double OpEnergyModel::of(OpKind k, int width) const {
  double w = static_cast<double>(width);
  switch (k) {
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Cmp:
      return add_per_bit * w;
    case OpKind::Mul:
      return mul_per_bit2 * w * w;
    case OpKind::Shift:
      return shift_per_bit * w;
    case OpKind::Mux:
      return mux_per_bit * w;
    default:
      return 0.0;
  }
}

double cdfg_energy(const Cdfg& g, const OpEnergyModel& m,
                   std::span<const double> activation_prob) {
  double e = 0.0;
  for (OpId id = 0; id < g.size(); ++id) {
    double p = id < activation_prob.size() ? activation_prob[id] : 1.0;
    e += p * m.of(g.op(id).kind, g.op(id).width);
  }
  return e;
}

namespace {

/// ASAP with extra precedence edges; returns start times and makespan.
Schedule asap_with_edges(
    const Cdfg& g, const OpDelays& d,
    const std::vector<std::pair<OpId, OpId>>& extra) {
  Schedule s;
  s.start.assign(g.size(), 0);
  std::vector<std::vector<OpId>> extra_preds(g.size());
  for (auto [from, to] : extra) extra_preds[to].push_back(from);
  for (OpId id = 0; id < g.size(); ++id) {
    int t = 0;
    for (OpId p : g.op(id).preds)
      t = std::max(t, s.start[p] + d.of(g.op(p).kind));
    for (OpId p : extra_preds[id])
      t = std::max(t, s.start[p] + d.of(g.op(p).kind));
    s.start[id] = t;
    s.length = std::max(s.length, t + d.of(g.op(id).kind));
  }
  return s;
}

/// Transitive forward-reachable set of `v` (excluding v).
std::vector<bool> forward_reach(const Cdfg& g,
                                const std::vector<std::vector<OpId>>& su,
                                OpId v) {
  std::vector<bool> seen(g.size(), false);
  std::vector<OpId> stack{v};
  while (!stack.empty()) {
    OpId x = stack.back();
    stack.pop_back();
    for (OpId s : su[x])
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
  }
  return seen;
}

}  // namespace

namespace {

PowerManagedSchedule monteiro_schedule_impl(
    const Cdfg& g, int latency_slack, const OpDelays& d,
    const std::map<OpId, double>& branch_prob, const lint::LintOptions& lint,
    exec::Meter* meter, std::size_t* muxes_considered) {
  lint::enforce_cdfg(g, lint, "monteiro_schedule");
  PowerManagedSchedule res;
  res.activation_prob.assign(g.size(), 1.0);
  Schedule base = cdfg::asap(g, d);
  const int latency = base.length + latency_slack;
  auto su = g.succs();

  // Collect muxes bottom-up (closest to the outputs first, per the paper).
  std::vector<OpId> muxes;
  for (OpId id = 0; id < g.size(); ++id)
    if (g.op(id).kind == OpKind::Mux) muxes.push_back(id);
  std::sort(muxes.begin(), muxes.end(), std::greater<>());

  for (OpId m : muxes) {
    // One step per mux candidate: on a trip, muxes already accepted stay
    // managed and the rest run unmanaged — a valid, weaker schedule.
    if (meter && meter->over_budget(1)) break;
    if (muxes_considered) ++*muxes_considered;
    const auto& mp = g.op(m).preds;  // {ctrl, d0, d1}
    auto in_set = [&](const std::vector<OpId>& xs, OpId v) {
      return std::find(xs.begin(), xs.end(), v) != xs.end();
    };
    auto nc = g.transitive_fanin(mp[0]);
    nc.push_back(mp[0]);
    auto n0 = g.transitive_fanin(mp[1]);
    n0.push_back(mp[1]);
    auto n1 = g.transitive_fanin(mp[2]);
    n1.push_back(mp[2]);
    // Nodes in both branch cones (or in the control cone) are needed
    // regardless of the select value: drop them.
    const auto mreach = forward_reach(g, su, m);
    auto exclusive = [&](std::vector<OpId> xs, const std::vector<OpId>& other) {
      std::vector<OpId> out;
      for (OpId v : xs) {
        if (in_set(other, v) || in_set(nc, v)) continue;
        if (!Cdfg::is_compute(g.op(v).kind)) continue;
        // v must influence the rest of the design only through mux m.
        auto reach = forward_reach(g, su, v);
        bool only_through_m = true;
        for (OpId s = 0; s < g.size() && only_through_m; ++s) {
          if (!reach[s] || s == m) continue;
          // Anything v reaches that is neither inside the branch cones nor
          // downstream of m would still need v when the branch is shut
          // down, so v is not eligible.
          if (g.op(s).kind == OpKind::Output) {
            if (!mreach[s]) only_through_m = false;
          } else if (!in_set(n0, s) && !in_set(n1, s) && s != m) {
            if (!mreach[s]) only_through_m = false;
          }
        }
        if (only_through_m) out.push_back(v);
      }
      return out;
    };
    auto ex0 = exclusive(n0, n1);
    auto ex1 = exclusive(n1, n0);
    if (ex0.empty() && ex1.empty()) continue;

    // Tentative precedence edges: the control cone's sink (the ctrl input)
    // must settle before any top node of the managed branch cones starts.
    std::vector<std::pair<OpId, OpId>> tentative = res.added_edges;
    for (OpId v : ex0) tentative.emplace_back(mp[0], v);
    for (OpId v : ex1) tentative.emplace_back(mp[0], v);

    // Feasibility = constrained ASAP still meets the latency bound
    // (equivalently, no node's ASAP exceeds its ALAP for this latency).
    Schedule trial = asap_with_edges(g, d, tentative);
    if (trial.length > latency) continue;

    res.managed_muxes.push_back(m);
    res.added_edges = std::move(tentative);
    double p1 = 0.5;
    if (auto it = branch_prob.find(m); it != branch_prob.end())
      p1 = it->second;
    for (OpId v : ex0) res.activation_prob[v] *= (1.0 - p1);
    for (OpId v : ex1) res.activation_prob[v] *= p1;
  }
  res.schedule = asap_with_edges(g, d, res.added_edges);
  return res;
}

}  // namespace

PowerManagedSchedule monteiro_schedule(
    const Cdfg& g, int latency_slack, const OpDelays& d,
    const std::map<OpId, double>& branch_prob,
    const lint::LintOptions& lint) {
  return monteiro_schedule_impl(g, latency_slack, d, branch_prob, lint,
                                nullptr, nullptr);
}

exec::Outcome<PowerManagedSchedule> monteiro_schedule_budgeted(
    const Cdfg& g, const exec::Budget& budget, int latency_slack,
    const OpDelays& d, const std::map<OpId, double>& branch_prob,
    const lint::LintOptions& lint) {
  exec::Meter meter(budget);
  exec::Outcome<PowerManagedSchedule> out;
  std::size_t considered = 0;
  out.value = monteiro_schedule_impl(g, latency_slack, d, branch_prob, lint,
                                     &meter, &considered);
  out.diag = meter.diag();
  if (out.diag.stop != exec::StopReason::None) {
    out.diag.degraded = true;
    out.diag.degraded_from = "power-managed schedule (all muxes)";
    out.diag.degraded_to = "power-managed schedule (first " +
                           std::to_string(considered) + " mux candidates)";
    out.diag.note = std::to_string(out.value.managed_muxes.size()) +
                    " muxes managed before the budget tripped";
  }
  return out;
}

std::vector<int> bind_round_robin(const Cdfg& g, const Schedule& s,
                                  const std::map<OpKind, int>& limits) {
  std::vector<int> binding(g.size(), -1);
  // Per kind: assign instance = lowest-numbered instance free at this step
  // (instances are "free" if the previous op bound to them finished).
  std::map<OpKind, std::vector<int>> busy_until;
  std::vector<OpId> order(g.size());
  for (OpId id = 0; id < g.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(),
            [&](OpId a, OpId b) { return s.start[a] < s.start[b]; });
  OpDelays d;
  for (OpId id : order) {
    OpKind k = g.op(id).kind;
    if (!Cdfg::is_compute(k)) continue;
    auto& pool = busy_until[k];
    auto limit_it = limits.find(k);
    std::size_t max_inst = limit_it != limits.end()
                               ? static_cast<std::size_t>(limit_it->second)
                               : g.size();
    int chosen = -1;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (pool[i] <= s.start[id]) {
        chosen = static_cast<int>(i);
        break;
      }
    if (chosen < 0 && pool.size() < max_inst) {
      pool.push_back(0);
      chosen = static_cast<int>(pool.size() - 1);
    }
    if (chosen < 0) chosen = 0;  // over-subscribed: share instance 0
    pool[static_cast<std::size_t>(chosen)] = s.start[id] + d.of(k);
    binding[id] = chosen;
  }
  return binding;
}

double fu_input_switching(const Cdfg& g, const Schedule& s,
                          std::span<const int> binding,
                          const cdfg::DataTrace& trace) {
  if (trace.value.empty()) return 0.0;
  // Group ops per (kind, instance), ordered by start step.
  std::map<std::pair<OpKind, int>, std::vector<OpId>> fu;
  for (OpId id = 0; id < g.size(); ++id)
    if (binding[id] >= 0) fu[{g.op(id).kind, binding[id]}].push_back(id);
  double total = 0.0;
  std::size_t pairs = 0;
  for (auto& [key, ops] : fu) {
    std::sort(ops.begin(), ops.end(),
              [&](OpId a, OpId b) { return s.start[a] < s.start[b]; });
    for (std::size_t i = 0; i < ops.size(); ++i) {
      // Consecutive within an iteration; last wraps to first of the next.
      OpId cur = ops[i];
      OpId nxt = ops[(i + 1) % ops.size()];
      if (ops.size() == 1 && trace.value.size() < 2) continue;
      const auto& pc = g.op(cur).preds;
      const auto& pn = g.op(nxt).preds;
      if (pc.size() < 2 || pn.size() < 2) continue;
      int w = std::min(g.op(cur).width, g.op(nxt).width);
      std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      bool wraps = (i + 1 == ops.size());
      for (std::size_t t = 0; t + (wraps ? 1 : 0) < trace.value.size(); ++t) {
        std::size_t tn = wraps ? t + 1 : t;
        for (int port = 0; port < 2; ++port) {
          auto a = static_cast<std::uint64_t>(
                       trace.value[t][pc[static_cast<std::size_t>(port)]]) &
                   mask;
          auto b = static_cast<std::uint64_t>(
                       trace.value[tn][pn[static_cast<std::size_t>(port)]]) &
                   mask;
          total += static_cast<double>(std::popcount(a ^ b)) /
                   static_cast<double>(w);
        }
        ++pairs;
      }
    }
  }
  return pairs ? total / static_cast<double>(trace.value.size()) : 0.0;
}

namespace {

Schedule activity_driven_schedule_impl(const Cdfg& g,
                                       const std::map<OpKind, int>& limits,
                                       const OpDelays& d,
                                       const lint::LintOptions& lint,
                                       exec::Meter* meter, bool* tripped) {
  lint::enforce_cdfg(g, lint, "activity_driven_schedule");
  // List scheduling where, among ready ops, we prefer one sharing an operand
  // with the op most recently issued to the same kind of unit.
  Schedule s;
  s.start.assign(g.size(), -1);
  auto su = g.succs();
  std::vector<int> pending(g.size(), 0);
  for (OpId id = 0; id < g.size(); ++id)
    pending[id] = static_cast<int>(g.op(id).preds.size());
  std::vector<OpId> ready;
  for (OpId id = 0; id < g.size(); ++id)
    if (pending[id] == 0) ready.push_back(id);

  Schedule a = cdfg::asap(g, d);
  Schedule l = cdfg::alap(g, a.length + 2, d);

  std::map<OpKind, std::vector<OpId>> last_issued;  // per-kind recent ops
  std::vector<std::pair<int, OpId>> running;
  std::size_t done = 0;
  int step = 0;
  const int guard = static_cast<int>(g.size()) * 8 + 64;
  while (done < g.size() && step < guard) {
    // One step per scheduler time step. A partial list schedule is not a
    // valid schedule (ops left at start = -1), so the budgeted wrapper
    // discards it and degrades to plain ASAP; we just stop burning time.
    if (meter && meter->over_budget(1)) {
      if (tripped) *tripped = true;
      break;
    }
    for (auto it = running.begin(); it != running.end();) {
      if (it->first <= step) {
        for (OpId c : su[it->second])
          if (--pending[c] == 0) ready.push_back(c);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
    std::map<OpKind, int> busy;
    for (auto& [fin, id] : running) ++busy[g.op(id).kind];

    auto affinity = [&](OpId id) {
      OpKind k = g.op(id).kind;
      auto it = last_issued.find(k);
      if (it == last_issued.end() || it->second.empty()) return 0.0;
      OpId prev = it->second.back();
      double shared = 0.0;
      for (OpId p : g.op(id).preds)
        for (OpId q : g.op(prev).preds)
          if (p == q) shared += 1.0;
      return shared;
    };
    std::sort(ready.begin(), ready.end(), [&](OpId x, OpId y) {
      double ax = affinity(x), ay = affinity(y);
      if (ax != ay) return ax > ay;
      int sx = l.start[x] - a.start[x], sy = l.start[y] - a.start[y];
      if (sx != sy) return sx < sy;  // critical first
      return x < y;
    });
    std::vector<OpId> deferred;
    bool progress = true;
    while (progress) {
      progress = false;
      std::sort(ready.begin(), ready.end(), [&](OpId x, OpId y) {
        double ax = affinity(x), ay = affinity(y);
        if (ax != ay) return ax > ay;
        int sx = l.start[x] - a.start[x], sy = l.start[y] - a.start[y];
        if (sx != sy) return sx < sy;
        return x < y;
      });
      std::vector<OpId> next_round;
      for (OpId id : ready) {
        OpKind k = g.op(id).kind;
        auto lim = limits.find(k);
        bool fits = lim == limits.end() || busy[k] < lim->second;
        if (!fits) {
          deferred.push_back(id);
          continue;
        }
        s.start[id] = step;
        ++done;
        progress = true;
        int dur = d.of(k);
        if (dur == 0) {
          for (OpId c : su[id])
            if (--pending[c] == 0) next_round.push_back(c);
        } else {
          ++busy[k];
          running.emplace_back(step + dur, id);
          if (Cdfg::is_compute(k)) last_issued[k].push_back(id);
        }
        s.length = std::max(s.length, step + dur);
      }
      ready = std::move(next_round);
    }
    for (OpId id : ready) deferred.push_back(id);
    ready = std::move(deferred);
    ++step;
  }
  return s;
}

}  // namespace

Schedule activity_driven_schedule(const Cdfg& g,
                                  const std::map<OpKind, int>& limits,
                                  const OpDelays& d,
                                  const lint::LintOptions& lint) {
  return activity_driven_schedule_impl(g, limits, d, lint, nullptr, nullptr);
}

exec::Outcome<Schedule> activity_driven_schedule_budgeted(
    const Cdfg& g, const exec::Budget& budget,
    const std::map<OpKind, int>& limits, const OpDelays& d,
    const lint::LintOptions& lint) {
  exec::Meter meter(budget);
  exec::Outcome<Schedule> out;
  bool tripped = false;
  out.value =
      activity_driven_schedule_impl(g, limits, d, lint, &meter, &tripped);
  out.diag = meter.diag();
  if (tripped) {
    // A half-filled list schedule is unusable; fall back to the cheap
    // resource-unaware baseline so the caller always gets a full schedule.
    out.value = cdfg::asap(g, d);
    out.diag.degraded = true;
    out.diag.degraded_from = "activity-driven list schedule";
    out.diag.degraded_to = "asap schedule (resource limits ignored)";
    out.diag.note = "list scheduler hit the budget after " +
                    std::to_string(meter.steps()) + " time steps";
  }
  return out;
}

LoopFoldingResult evaluate_loop_folding(int taps, std::size_t iterations,
                                        int width, std::uint64_t seed) {
  stats::Rng rng(seed);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  std::vector<std::uint64_t> coef, sample;
  for (int k = 0; k < taps; ++k) coef.push_back(rng.uniform_bits(width));
  for (std::size_t t = 0; t < iterations + static_cast<std::size_t>(taps);
       ++t)
    sample.push_back(rng.uniform_bits(width));

  auto run = [&](bool folded) {
    // Operand sequence seen by the single multiplier's two ports.
    std::uint64_t prev_a = 0, prev_b = 0;
    bool first = true;
    std::uint64_t toggles = 0;
    std::size_t ops = 0;
    for (std::size_t t = 0; t < iterations; ++t) {
      for (int k = 0; k < taps; ++k) {
        std::uint64_t a, b;
        if (!folded) {
          // Iteration t, tap k: data operand x[t - k + taps] walks away.
          a = coef[static_cast<std::size_t>(k)];
          b = sample[t + static_cast<std::size_t>(taps - k)] & mask;
        } else {
          // Folded: all taps applied to sample j = t back to back.
          a = coef[static_cast<std::size_t>(k)];
          b = sample[t + static_cast<std::size_t>(taps)] & mask;
        }
        if (!first)
          toggles += static_cast<std::uint64_t>(
              std::popcount(a ^ prev_a) + std::popcount(b ^ prev_b));
        prev_a = a;
        prev_b = b;
        first = false;
        ++ops;
      }
    }
    return static_cast<double>(toggles) / static_cast<double>(ops);
  };

  LoopFoldingResult res;
  res.sw_unfolded = run(false);
  res.sw_folded = run(true);
  return res;
}

}  // namespace hlp::core
