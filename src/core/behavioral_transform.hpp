#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "netlist/netlist.hpp"
#include "sim/power.hpp"
#include "stats/entropy.hpp"

namespace hlp::core {

/// Section III-C: behavioral transformations on CDFGs plus the Table I
/// constant-multiplication experiment on a gate-level FIR datapath.

/// Operation counts and unit-delay critical path of a CDFG (the metrics
/// Figs. 4 and 5 compare).
struct CdfgMetrics {
  int adds = 0;
  int muls = 0;
  int shifts = 0;
  int total_compute_ops = 0;
  int critical_path = 0;  ///< all compute ops count one level
};
CdfgMetrics cdfg_metrics(const cdfg::Cdfg& g);

/// Fig. 4 (right): second-order polynomial via completed square
/// (coefficient preconditioning): y = (x + b1)^2 + b2 — 1 mul, 2 adds, CP 3.
cdfg::Cdfg polynomial_completed_square(int width = 8);

/// Fig. 5 (right): third-order polynomial with preconditioned coefficients:
/// t1 = x + d0; t2 = t1 * x; t3 = t2 + d1; y = t3 * t1 + d2 —
/// 2 muls, 3 adds, CP 5 (one longer than the direct form).
cdfg::Cdfg polynomial_preconditioned_cubic(int width = 8);

/// --- Table I: FIR datapath with labeled components ----------------------

/// Gate-level N-tap FIR filter datapath. Component labels follow Table I's
/// rows: "Execution units", "Registers/clock", "Control logic",
/// "Interconnect".
struct FirDatapath {
  netlist::Netlist netlist;
  std::vector<std::string> labels;  ///< per gate
  netlist::Word input;              ///< x[n] sample input
  netlist::Word output;             ///< y[n]
  std::vector<int> coefficients;
  bool shift_add = false;
};

/// Build the datapath. When `constant_mult_as_shift_add` is false each tap
/// uses a full array multiplier fed by a coefficient register (general
/// multiplier datapath); when true, each constant multiplication is expanded
/// into hardwired shifts and adders (CSD-style), the Table I transformation.
FirDatapath build_fir_datapath(std::span<const int> coefficients, int width,
                               bool constant_mult_as_shift_add);

/// Simulate `samples` through the filter and return the switched capacitance
/// per component class — one Table I column.
std::map<std::string, double> fir_capacitance_breakdown(
    const FirDatapath& fir, const stats::VectorStream& samples,
    const netlist::CapacitanceModel& cap = {});

/// --- Time-multiplexed MAC datapath (the paper's "before" design) --------

/// Sequential FIR: one shared general multiplier + accumulator processes one
/// tap per cycle (T cycles per sample). This is the architecture Table I's
/// "before" column measures: the shared multiplier sees a *different*
/// (tap, coefficient) pair every cycle, so its input activity is high even
/// for slowly varying samples — the effect the constant-multiplication
/// transformation eliminates.
struct FirMacDatapath {
  netlist::Netlist netlist;
  std::vector<std::string> labels;
  netlist::Word input;        ///< sample input (captured when phase == 0)
  netlist::Word output;       ///< registered y, valid after each pass
  std::vector<int> coefficients;
  int taps = 0;
};

FirMacDatapath build_fir_mac_datapath(std::span<const int> coefficients,
                                      int width);

/// Drive the MAC datapath with one new sample every `taps` cycles and return
/// the switched capacitance per component class, normalized **per sample**
/// (T internal cycles each) so it is directly comparable to the parallel
/// datapath's per-cycle breakdown.
std::map<std::string, double> fir_mac_capacitance_breakdown(
    const FirMacDatapath& fir, const stats::VectorStream& samples,
    const netlist::CapacitanceModel& cap = {});

/// Functional check: run both implementations on the same sample stream and
/// compare per-sample outputs (the MAC result for sample window k against
/// the parallel filter's registered output). Returns true if they agree.
bool fir_mac_matches_parallel(const FirMacDatapath& mac,
                              const FirDatapath& parallel,
                              const stats::VectorStream& samples);

/// Canonical-signed-digit decomposition of a constant: returns (shift, sign)
/// pairs such that c = sum sign_k * 2^shift_k with minimal nonzero digits.
std::vector<std::pair<int, int>> csd_digits(int c);

}  // namespace hlp::core
