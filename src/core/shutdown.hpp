#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace hlp::core {

/// Section III-B: event-driven device shutdown policies.

/// One busy/quiet episode: the device computes for `active` time units, then
/// sits idle for `idle` time units until the next request.
struct WorkloadEvent {
  double active = 0.0;
  double idle = 0.0;
};

/// Interactive-session workload (models the X-server traces of Srivastava
/// et al. [58]): bursts of short active/short idle events inside a session,
/// heavy-tailed long idle gaps between sessions. Within sessions the active
/// periods are longer; the last active period before a session gap is short
/// — the structural signal their threshold predictor keys on.
std::vector<WorkloadEvent> session_workload(std::size_t n_events,
                                            stats::Rng& rng,
                                            double mean_active = 10.0,
                                            double mean_idle_short = 5.0,
                                            double mean_idle_long = 2000.0,
                                            double session_end_prob = 0.08);

/// Device electrical/timing parameters.
struct DeviceParams {
  double p_active = 1.0;    ///< power while computing
  double p_idle = 0.95;     ///< power while powered but idle
  double p_sleep = 0.01;    ///< power while shut down
  double t_restart = 4.0;   ///< wake-up latency
  double e_restart = 6.0;   ///< extra energy per wake-up
};

/// Decision a policy makes when the device becomes idle.
struct IdleDecision {
  /// Wait this long (in the idle state) before shutting down; 0 = sleep
  /// immediately; infinity = never sleep.
  double sleep_after = std::numeric_limits<double>::infinity();
  /// Predicted idle length; if finite, the simulator performs a prewakeup
  /// so the device is ready at this time (Hwang–Wu [59]).
  double predicted_idle = std::numeric_limits<double>::infinity();
};

/// Policy interface: called at each idle-period start with the length of
/// the just-finished active period; told the true idle length afterwards.
class ShutdownPolicy {
 public:
  virtual ~ShutdownPolicy() = default;
  virtual IdleDecision on_idle(double prev_active) = 0;
  virtual void after_idle(double actual_idle) { (void)actual_idle; }
  virtual std::string name() const = 0;
};

/// Never shuts down.
std::unique_ptr<ShutdownPolicy> always_on_policy();
/// Clairvoyant: sleeps immediately iff the idle period is long enough to
/// amortize the restart cost (upper bound on any causal policy).
std::unique_ptr<ShutdownPolicy> oracle_policy(
    const std::vector<WorkloadEvent>& workload, const DeviceParams& dev);
/// Fig. 3 static policy: sleep after a fixed timeout T.
std::unique_ptr<ShutdownPolicy> static_timeout_policy(double timeout);
/// Srivastava regression predictor [58]: quadratic regression of idle
/// length on the preceding active length, fitted online.
std::unique_ptr<ShutdownPolicy> regression_policy(const DeviceParams& dev,
                                                  std::size_t window = 64);
/// Srivastava threshold predictor [58]: sleep immediately when the
/// preceding active period is shorter than a (running) threshold.
std::unique_ptr<ShutdownPolicy> threshold_policy(const DeviceParams& dev);
/// Hwang–Wu [59]: exponentially weighted idle-length predictor with
/// prewakeup and watchdog-based misprediction correction.
std::unique_ptr<ShutdownPolicy> hwang_wu_policy(const DeviceParams& dev,
                                                double alpha = 0.3);

/// Simulation result over a workload.
struct PolicyResult {
  std::string policy;
  double energy = 0.0;
  double elapsed = 0.0;        ///< total time including wake-up delays
  double delay_penalty = 0.0;  ///< summed wake-up latency seen by requests
  std::size_t shutdowns = 0;
  double avg_power() const { return elapsed > 0.0 ? energy / elapsed : 0.0; }
  /// Fractional slowdown: added latency over the busy time.
  double perf_loss(double busy_time) const {
    return busy_time > 0.0 ? delay_penalty / busy_time : 0.0;
  }
};

PolicyResult simulate_policy(const std::vector<WorkloadEvent>& workload,
                             const DeviceParams& dev, ShutdownPolicy& policy);

/// Break-even idle length: sleeping pays off iff T_I exceeds this.
double breakeven_idle(const DeviceParams& dev);

/// Theoretical maximum power improvement 1 + T_I/T_A from the paper.
double max_power_improvement(const std::vector<WorkloadEvent>& workload);

}  // namespace hlp::core
