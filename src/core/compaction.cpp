#include "core/compaction.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "stats/rng.hpp"

namespace hlp::core {

namespace {

stats::VectorStream compact_markov(const stats::VectorStream& input,
                                   std::size_t target, std::uint64_t seed) {
  // First-order chain over the observed words.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, double>>
      trans;
  for (std::size_t t = 1; t < input.words.size(); ++t)
    trans[input.words[t - 1]][input.words[t]] += 1.0;

  stats::Rng rng(seed);
  stats::VectorStream out;
  out.width = input.width;
  out.words.reserve(target);
  std::uint64_t cur = input.words.front();
  out.words.push_back(cur);
  while (out.words.size() < target) {
    auto it = trans.find(cur);
    if (it == trans.end() || it->second.empty()) {
      // Dead end (last word of the trace): restart from the beginning.
      cur = input.words.front();
      out.words.push_back(cur);
      continue;
    }
    double total = 0.0;
    for (auto& [w, c] : it->second) total += c;
    double u = rng.uniform_real(0.0, total);
    double acc = 0.0;
    std::uint64_t next = it->second.begin()->first;
    for (auto& [w, c] : it->second) {
      acc += c;
      next = w;
      if (u <= acc) break;
    }
    out.words.push_back(next);
    cur = next;
  }
  return out;
}

stats::VectorStream compact_bitwise(const stats::VectorStream& input,
                                    std::size_t target, std::uint64_t seed) {
  // Per-line lag-1 Markov chain matching both the signal probability q and
  // the switching activity e exactly: detailed balance gives
  //   P(1->0) = e / (2q),  P(0->1) = e / (2(1-q)).
  auto q = stats::signal_probabilities(input);
  auto e = stats::switching_activities(input);
  stats::Rng rng(seed);
  stats::VectorStream out;
  out.width = input.width;
  out.words.reserve(target);
  std::uint64_t cur = input.words.front();
  out.words.push_back(cur);
  std::vector<double> p10(static_cast<std::size_t>(input.width));
  std::vector<double> p01(static_cast<std::size_t>(input.width));
  for (int i = 0; i < input.width; ++i) {
    auto ii = static_cast<std::size_t>(i);
    p10[ii] = q[ii] > 1e-9 ? std::min(1.0, e[ii] / (2.0 * q[ii])) : 0.0;
    p01[ii] = q[ii] < 1.0 - 1e-9
                  ? std::min(1.0, e[ii] / (2.0 * (1.0 - q[ii])))
                  : 0.0;
  }
  for (std::size_t t = 1; t < target; ++t) {
    std::uint64_t w = 0;
    for (int i = 0; i < input.width; ++i) {
      auto ii = static_cast<std::size_t>(i);
      bool prev = (cur >> i) & 1u;
      bool bit = prev ? !rng.bit(p10[ii]) : rng.bit(p01[ii]);
      if (bit) w |= std::uint64_t{1} << i;
    }
    out.words.push_back(w);
    cur = w;
  }
  return out;
}

}  // namespace

stats::VectorStream compact_stream(const stats::VectorStream& input,
                                   std::size_t target_length,
                                   std::uint64_t seed,
                                   std::size_t max_alphabet) {
  stats::VectorStream out;
  out.width = input.width;
  if (input.words.empty() || target_length == 0) return out;
  target_length = std::min(target_length, input.words.size());

  std::unordered_map<std::uint64_t, int> alphabet;
  for (std::uint64_t w : input.words) {
    alphabet.emplace(w, 1);
    if (alphabet.size() > max_alphabet) break;
  }
  if (alphabet.size() <= max_alphabet)
    return compact_markov(input, target_length, seed);
  return compact_bitwise(input, target_length, seed);
}

CompactionFidelity compaction_fidelity(const stats::VectorStream& original,
                                       const stats::VectorStream& compacted) {
  CompactionFidelity f;
  auto q0 = stats::signal_probabilities(original);
  auto q1 = stats::signal_probabilities(compacted);
  auto e0 = stats::switching_activities(original);
  auto e1 = stats::switching_activities(compacted);
  int n = std::min(original.width, compacted.width);
  for (int i = 0; i < n; ++i) {
    f.signal_prob_error += std::abs(q0[static_cast<std::size_t>(i)] -
                                    q1[static_cast<std::size_t>(i)]);
    f.activity_error += std::abs(e0[static_cast<std::size_t>(i)] -
                                 e1[static_cast<std::size_t>(i)]);
  }
  if (n) {
    f.signal_prob_error /= n;
    f.activity_error /= n;
  }
  return f;
}

}  // namespace hlp::core
