#pragma once

#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "netlist/generators.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/entropy.hpp"

namespace hlp::core {

/// Section III-I, precomputation (Alidina/Monteiro et al. [99], Fig. 6).
///
/// For a single-output combinational block f, predictor functions over a
/// subset S of the inputs are derived by universal quantification:
///   g1 = forall_{x not in S} f     (g1 = 1 => f = 1)
///   g0 = forall_{x not in S} !f    (g0 = 1 => f = 0)
/// When g1 + g0 = 1 at cycle t, the input register of block A keeps its
/// value at t+1 (no switching inside A) and the output is taken from the
/// registered predictor.

struct PrecomputedCircuit {
  netlist::Netlist netlist;
  netlist::Word inputs;              ///< primary inputs (same order as mod)
  std::vector<std::uint32_t> subset; ///< input indices driving g1/g0
  double coverage = 0.0;             ///< P(g1 + g0 = 1) under uniform inputs
  std::size_t predictor_gates = 0;
};

/// Greedy subset selection maximizing coverage (probability the predictors
/// decide the output), evaluated symbolically.
std::vector<std::uint32_t> select_precompute_inputs(const netlist::Module& mod,
                                                    int subset_size);

/// Budgeted subset selection with graceful degradation. The symbolic greedy
/// search runs with `budget` metered on its BDD manager; if quantification
/// blows the node cap / deadline (or allocation fails), selection degrades
/// to the same greedy loop scored by *sampled* coverage: hold a random
/// assignment of the candidate subset, draw random completions of the other
/// inputs, and count how often the output stays constant. Deterministic in
/// `seed`. The degradation (if any) is recorded in the outcome's diag.
exec::Outcome<std::vector<std::uint32_t>> select_precompute_inputs_budgeted(
    const netlist::Module& mod, int subset_size, const exec::Budget& budget,
    std::uint64_t seed = 0x5eedbeefu);

/// Build the Fig. 6 architecture around output 0 of `mod`.
/// The baseline comparison circuit is the same block behind an input
/// register without gating (build with `precompute = false`).
PrecomputedCircuit build_precomputed(const netlist::Module& mod,
                                     std::span<const std::uint32_t> subset,
                                     bool precompute = true);

/// Power of a (pre)computed circuit on a stream, and functional check: the
/// sequence of sampled outputs must match the plain block's outputs delayed
/// by one cycle.
struct PrecomputationEval {
  double power = 0.0;
  double coverage_observed = 0.0;
  bool functionally_correct = true;
};
/// The combinational reference sweep is engine-generic (packed under Auto);
/// the gated circuit itself holds registers and always simulates scalar.
PrecomputationEval evaluate_precomputed(const PrecomputedCircuit& pc,
                                        const netlist::Module& reference,
                                        const stats::VectorStream& input,
                                        const sim::PowerParams& params = {},
                                        const sim::SimOptions& opts = {});

/// Multi-output generalization ([16],[100]): one g1/g0 predictor pair per
/// output; the input register holds only when *every* output is decided by
/// the subset (coverage = P(AND over outputs of g1_o + g0_o)), which is why
/// multi-output precomputation pays off less often than single-output.
struct MultiPrecomputedCircuit {
  netlist::Netlist netlist;
  netlist::Word inputs;
  std::vector<std::uint32_t> subset;
  double coverage = 0.0;
  std::size_t predictor_gates = 0;
  std::size_t n_outputs = 0;
};

MultiPrecomputedCircuit build_precomputed_multi(
    const netlist::Module& mod, std::span<const std::uint32_t> subset,
    bool precompute = true);

PrecomputationEval evaluate_precomputed_multi(
    const MultiPrecomputedCircuit& pc, const netlist::Module& reference,
    const stats::VectorStream& input, const sim::PowerParams& params = {},
    const sim::SimOptions& opts = {});

}  // namespace hlp::core
