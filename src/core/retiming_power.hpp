#pragma once

#include <vector>

#include "netlist/generators.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/power.hpp"

namespace hlp::core {

/// Section III-J, low-power retiming (Monteiro et al. [111], Fig. 9).
///
/// A one-stage pipeline is built around a combinational module by placing
/// registers on a *cut* of its DAG (every input-to-output path crosses
/// exactly one register). Registers at the primary inputs (cut level 0) are
/// the un-retimed baseline; moving the cut past glitch-producing, heavily
/// loaded gates filters their spurious transitions from the downstream
/// logic, reducing power at identical function and latency.

struct RetimedCircuit {
  netlist::Netlist netlist;
  int cut_level = 0;
  std::size_t registers = 0;
};

/// Place the pipeline registers on the cut at unit-delay level `cut_level`:
/// every net crossing from level <= cut_level to a consumer above it gets a
/// register (level 0 = registers at the primary inputs).
RetimedCircuit place_registers_at_cut(const netlist::Module& mod,
                                      int cut_level);

/// Glitch-aware power of a retimed circuit on a stream; also validates that
/// sampled outputs equal the combinational reference delayed by one cycle.
struct RetimingEval {
  double power_total = 0.0;      ///< glitching included
  double power_functional = 0.0; ///< zero-delay component
  std::size_t registers = 0;
  bool functionally_correct = true;
};
RetimingEval evaluate_retimed(const RetimedCircuit& rc,
                              const netlist::Module& reference,
                              const stats::VectorStream& input,
                              const sim::PowerParams& params = {});

/// Monteiro-style candidate selection: score each cut level by the summed
/// (glitch activity x downstream load) it filters, from one glitch
/// simulation of the unretimed circuit; returns the best level.
int select_cut_monteiro(const netlist::Module& mod,
                        const stats::VectorStream& input,
                        const sim::PowerParams& params = {});

}  // namespace hlp::core
