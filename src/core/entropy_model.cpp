#include "core/entropy_model.hpp"

#include <cmath>

#include "bdd/netlist_bdd.hpp"
#include "sim/simulator.hpp"

namespace hlp::core {

double marculescu_havg(double h_in, double h_out, int n, int m) {
  // Degenerate cases: equal entropies mean no decay; fall back to average.
  if (h_in <= 0.0 || h_out <= 0.0) return 0.5 * (h_in + h_out);
  double ratio = h_in / h_out;
  if (std::abs(ratio - 1.0) < 1e-9) return h_in;
  double ln_r = std::log(ratio);
  double nn = static_cast<double>(n), mm = static_cast<double>(m);
  double lead = 2.0 * nn * h_in / ((nn + mm) * ln_r);
  double inner = 1.0 - (mm / nn) * (h_out / h_in) -
                 ((1.0 - mm / nn) * (1.0 - h_out / h_in)) / ln_r;
  return lead * inner;
}

double nemani_najm_havg(double h_sum_in, double h_sum_out, int n, int m) {
  return 2.0 / (3.0 * static_cast<double>(n + m)) * (h_sum_in + h_sum_out);
}

double cheng_agrawal_ctot(int n, int m, double h_out) {
  return (static_cast<double>(m) / static_cast<double>(n)) *
         std::pow(2.0, n) * h_out;
}

double ferrandi_ctot(std::size_t bdd_nodes, int n, int m, double h_out,
                     double alpha, double beta) {
  return alpha * (static_cast<double>(m) / static_cast<double>(n)) *
             static_cast<double>(bdd_nodes) * h_out +
         beta;
}

double entropy_power(double c_tot, double h_avg, const sim::PowerParams& p) {
  double e_avg = 0.5 * h_avg;  // switching activity <= entropy / 2
  return 0.5 * p.vdd * p.vdd * p.freq * c_tot * e_avg;
}

EntropyEstimates evaluate_entropy_models(const netlist::Module& mod,
                                         const stats::VectorStream& input,
                                         const sim::PowerParams& params,
                                         bool build_bdd, double ferrandi_alpha,
                                         double ferrandi_beta,
                                         const sim::SimOptions& opts) {
  EntropyEstimates est;
  const int n = mod.total_input_bits();
  const int m = mod.total_output_bits();

  stats::VectorStream out_stream;
  auto acts = sim::simulate_activities(mod.netlist, input, &out_stream, opts);
  est.h_in = stats::avg_bit_entropy(input);
  est.h_out = stats::avg_bit_entropy(out_stream);

  est.havg_marculescu = marculescu_havg(est.h_in, est.h_out, n, m);
  est.havg_nemani = nemani_najm_havg(stats::sum_bit_entropy(input),
                                     stats::sum_bit_entropy(out_stream), n, m);

  est.ctot_actual = mod.netlist.total_capacitance(params.cap);
  est.ctot_cheng = cheng_agrawal_ctot(n, m, est.h_out);
  if (build_bdd) {
    bdd::Manager mgr;
    auto bdds = bdd::build_bdds(mgr, mod.netlist);
    std::vector<bdd::NodeRef> roots;
    for (auto g : mod.netlist.outputs()) roots.push_back(bdds.fn[g]);
    est.bdd_nodes = mgr.node_count(roots);
    est.ctot_ferrandi = ferrandi_ctot(est.bdd_nodes, n, m, est.h_out,
                                      ferrandi_alpha, ferrandi_beta);
  }

  est.power_marculescu =
      entropy_power(est.ctot_actual, est.havg_marculescu, params);
  est.power_nemani = entropy_power(est.ctot_actual, est.havg_nemani, params);
  est.power_simulated =
      sim::compute_power(mod.netlist, acts, params).total_power;
  return est;
}

double avg_transition_entropy(const stats::VectorStream& s) {
  if (s.width == 0) return 0.0;
  auto e = stats::switching_activities(s);
  double h = 0.0;
  for (double ei : e) h += stats::binary_entropy(ei);
  return h / static_cast<double>(s.width);
}

double transition_entropy_power(const stats::VectorStream& input,
                                const stats::VectorStream& output,
                                double c_tot, int n, int m,
                                const sim::PowerParams& p) {
  double h_in = avg_transition_entropy(input);
  double h_out = avg_transition_entropy(output);
  return entropy_power(c_tot, marculescu_havg(h_in, h_out, n, m), p);
}

double tyagi_switching_bound(const fsm::MarkovAnalysis& ma,
                             std::size_t n_states) {
  double t = static_cast<double>(n_states);
  double log_t = std::log2(t);
  if (log_t <= 1.0) return 0.0;  // bound is vacuous for tiny machines
  return ma.edge_entropy() - 1.52 * log_t - 2.16 + 0.5 * std::log2(log_t);
}

bool tyagi_sparse(const fsm::MarkovAnalysis& ma, std::size_t n_states) {
  double t_edges = static_cast<double>(ma.nonzero_edges());
  double big_t = static_cast<double>(n_states);
  double log_t = std::log2(big_t);
  if (log_t <= 0.0) return false;
  return t_edges <= 2.23 * std::pow(big_t, 1.72) / std::sqrt(log_t);
}

}  // namespace hlp::core
