#pragma once

#include <map>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/datasim.hpp"

namespace hlp::core {

/// Section III-E: low-power resource allocation and binding on the
/// compatibility graph, following Raghunathan–Jha [65] and the register/
/// module binding work of Chang–Pedram [64], [19].

/// The result of binding CDFG values (or ops) onto shared resources.
struct BindingResult {
  /// resource index per op (-1 if the op owns no resource of this class).
  std::vector<int> assignment;
  int resources = 0;
  /// Mean switched bits per cycle at the inputs of the shared resources.
  double switching = 0.0;
};

/// Register allocation: every op value whose lifetime crosses a step
/// boundary needs a register; values with disjoint lifetimes are
/// compatible. `power_aware` selects merges by W = Wc * (1 - Ws) where Ws
/// is the observed value-stream switching between the two variables;
/// otherwise merges are chosen by lifetime fit only (classic left-edge
/// objective: fewest registers, activity-blind).
BindingResult bind_registers(const cdfg::Cdfg& g, const cdfg::Schedule& s,
                             const cdfg::DataTrace& trace, bool power_aware,
                             const cdfg::OpDelays& d = {});

/// Functional-unit binding: compute ops of the same kind whose execution
/// intervals are disjoint are compatible. Power-aware mode minimizes the
/// operand switching between consecutive ops sharing a unit.
BindingResult bind_functional_units(const cdfg::Cdfg& g,
                                    const cdfg::Schedule& s,
                                    const cdfg::DataTrace& trace,
                                    bool power_aware,
                                    const cdfg::OpDelays& d = {});

/// Total register input switching (bits/iteration) for a register binding:
/// each register sees the sequence of values written to it in step order.
double register_switching(const cdfg::Cdfg& g, const cdfg::Schedule& s,
                          const cdfg::DataTrace& trace,
                          std::span<const int> assignment,
                          const cdfg::OpDelays& d = {});

}  // namespace hlp::core
