#include "core/memory_hierarchy.hpp"

namespace hlp::core {

BufferLevel make_level(int addr_bits, int line_words,
                       const MemoryParams& base,
                       const sim::PowerParams& pp) {
  BufferLevel lv;
  lv.addr_bits = addr_bits;
  lv.line_words = line_words;
  MemoryParams p = base;
  p.n = addr_bits;
  p.k = optimal_column_split(p, pp);
  lv.energy_per_access = memory_access_energy(p, pp).total();
  return lv;
}

HierarchyEval evaluate_hierarchy(std::span<const std::uint32_t> trace,
                                 std::span<const BufferLevel> levels) {
  HierarchyEval ev;
  ev.hits.assign(levels.size(), 0);
  // Direct-mapped tag array per level (last level is the backing store and
  // always hits).
  std::vector<std::vector<std::int64_t>> tags;
  for (const auto& lv : levels) {
    std::size_t lines = (std::size_t{1} << lv.addr_bits) /
                        static_cast<std::size_t>(lv.line_words);
    tags.emplace_back(std::max<std::size_t>(1, lines), -1);
  }
  for (std::uint32_t addr : trace) {
    ++ev.accesses;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      ev.energy += levels[i].energy_per_access;
      if (i + 1 == levels.size()) {
        ++ev.hits[i];  // backing store
        break;
      }
      std::int64_t line = addr / static_cast<std::uint32_t>(
                                     levels[i].line_words);
      auto idx = static_cast<std::size_t>(
          line % static_cast<std::int64_t>(tags[i].size()));
      if (tags[i][idx] == line) {
        ++ev.hits[i];
        break;
      }
      tags[i][idx] = line;  // refill on the way down
    }
  }
  return ev;
}

std::vector<std::pair<int, double>> sweep_first_level(
    std::span<const std::uint32_t> trace, int backing_addr_bits,
    int min_bits, int max_bits) {
  std::vector<std::pair<int, double>> out;
  BufferLevel backing = make_level(backing_addr_bits);
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    std::vector<BufferLevel> levels{make_level(bits), backing};
    auto ev = evaluate_hierarchy(trace, levels);
    out.emplace_back(bits, ev.energy_per_access());
  }
  return out;
}

}  // namespace hlp::core
