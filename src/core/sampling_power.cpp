#include "core/sampling_power.hpp"

#include <algorithm>
#include <bit>

#include "lint/lint.hpp"
#include "sim/packed_simulator.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace hlp::core {

CosimEstimate census_estimate(const ModuleCharacterization& eval_set,
                              const MacroFn& model) {
  CosimEstimate est;
  stats::RunningStats rs;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

CosimEstimate sampler_estimate(const ModuleCharacterization& eval_set,
                               const MacroFn& model, std::size_t sample_size,
                               std::size_t n_samples, stats::Rng& rng) {
  CosimEstimate est;
  stats::RunningStats means;
  for (std::size_t s = 0; s < n_samples; ++s) {
    auto idx =
        stats::simple_random_sample(eval_set.transitions(), sample_size, rng);
    stats::RunningStats rs;
    for (std::size_t t : idx) {
      rs.add(model(eval_set, t));
      ++est.macro_evals;
    }
    means.add(rs.mean());
  }
  est.mean_energy = means.mean();
  return est;
}

CosimEstimate adaptive_estimate(const ModuleCharacterization& eval_set,
                                const MacroFn& model,
                                std::size_t gate_sample_size,
                                stats::Rng& rng) {
  CosimEstimate est;
  // Census of the (cheap) macro-model gives the population mean of X.
  stats::RunningStats xs_pop;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    xs_pop.add(model(eval_set, t));
    ++est.macro_evals;
  }
  // Gate-level Y on a small subsample, paired with X.
  auto idx = stats::simple_random_sample(eval_set.transitions(),
                                         gate_sample_size, rng);
  std::vector<double> xs, ys;
  xs.reserve(idx.size());
  ys.reserve(idx.size());
  for (std::size_t t : idx) {
    xs.push_back(model(eval_set, t));
    ys.push_back(eval_set.energy[t]);
    ++est.gate_cycle_sims;
  }
  est.mean_energy = stats::ratio_estimate_mean(xs, ys, xs_pop.mean());
  return est;
}

CosimEstimate stratified_estimate(const ModuleCharacterization& eval_set,
                                  const MacroFn& model, std::size_t strata,
                                  std::size_t per_stratum, stats::Rng& rng) {
  CosimEstimate est;
  auto idx = stats::stratified_sample(eval_set.transitions(), strata,
                                      per_stratum, rng);
  stats::RunningStats rs;
  for (std::size_t t : idx) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

double gate_level_mean(const ModuleCharacterization& eval_set) {
  return eval_set.mean_energy();
}

namespace {

/// 64 independent vector pairs per step: pair k occupies bit lane k, drawn
/// in the same interleaved order (v1_k, v2_k) the scalar loop uses. Lane
/// energies are drained into the running stats in draw order, so the
/// sequential stop rule fires at exactly the same pair as the scalar path.
MonteCarloResult monte_carlo_power_packed(
    const netlist::Netlist& nl,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap) {
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  sim::PackedSimulator ps(nl);
  const std::size_t n = nl.gate_count();
  std::vector<std::uint64_t> prev(n, 0);
  std::uint64_t w1[64], w2[64];
  double e_lane[64];
  stats::RunningStats rs;

  bool stopped = false;
  for (std::size_t base = 0; base < max_pairs && !stopped; base += 64) {
    const int count =
        static_cast<int>(std::min<std::size_t>(64, max_pairs - base));
    for (int k = 0; k < count; ++k) {
      w1[k] = vector_gen();
      w2[k] = vector_gen();
    }
    ps.set_inputs_from_cycles(std::span(w1, static_cast<std::size_t>(count)));
    ps.eval();
    for (netlist::GateId g = 0; g < n; ++g) prev[g] = ps.lanes(g);
    ps.set_inputs_from_cycles(std::span(w2, static_cast<std::size_t>(count)));
    ps.eval();
    const std::uint64_t mask =
        count == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
    std::fill(e_lane, e_lane + count, 0.0);
    // Ascending gate order per lane keeps the floating-point summation
    // order identical to the scalar per-pair loop.
    for (netlist::GateId g = 0; g < n; ++g) {
      std::uint64_t d = (prev[g] ^ ps.lanes(g)) & mask;
      while (d) {
        e_lane[std::countr_zero(d)] += loads[g];
        d &= d - 1;
      }
    }
    for (int k = 0; k < count; ++k) {
      rs.add(e_lane[k]);
      if (rs.count() >= min_pairs) {
        double hw = stats::ci_halfwidth(rs, confidence);
        if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
          res.converged = true;
          res.ci_halfwidth = hw;
          stopped = true;
          break;
        }
      }
    }
  }
  res.mean_energy = rs.mean();
  res.pairs = rs.count();
  if (!res.converged) res.ci_halfwidth = stats::ci_halfwidth(rs, confidence);
  return res;
}

}  // namespace

MonteCarloResult monte_carlo_power(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts) {
  lint::enforce_module(mod, opts.lint, "monte_carlo_power");
  const auto& nl = mod.netlist;
  if (sim::resolve_engine(nl, opts.engine) == sim::EngineKind::Packed)
    return monte_carlo_power_packed(nl, vector_gen, epsilon, confidence,
                                    min_pairs, max_pairs, cap);
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  sim::Simulator s(nl);
  std::vector<std::uint8_t> prev(nl.gate_count(), 0);
  stats::RunningStats rs;

  for (std::size_t k = 0; k < max_pairs; ++k) {
    // One independent vector pair: apply v1, settle, then v2, count.
    s.set_all_inputs(vector_gen());
    s.eval();
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      prev[g] = s.value(g) ? 1 : 0;
    s.set_all_inputs(vector_gen());
    s.eval();
    double e = 0.0;
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      if ((s.value(g) ? 1 : 0) != prev[g]) e += loads[g];
    rs.add(e);
    if (rs.count() >= min_pairs) {
      double hw = stats::ci_halfwidth(rs, confidence);
      if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
        res.converged = true;
        res.ci_halfwidth = hw;
        break;
      }
    }
  }
  res.mean_energy = rs.mean();
  res.pairs = rs.count();
  if (!res.converged) res.ci_halfwidth = stats::ci_halfwidth(rs, confidence);
  return res;
}

}  // namespace hlp::core
