#include "core/sampling_power.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <string>

#include "exec/fi.hpp"
#include "lint/lint.hpp"
#include "sim/packed_simulator.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace hlp::core {

namespace {

void append_double(std::string& s, double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // shortest round-trip form of a double always fits in 64 chars
  s.append(buf, end);
}

// Consume one token (up to whitespace) with `conv`, advancing `p`; the
// token must parse in full.
template <typename T>
bool parse_field(const char*& p, const char* end, T& out) {
  const char* tok_end = p;
  while (tok_end != end && *tok_end != ' ') ++tok_end;
  if (tok_end == p) return false;
  auto [rest, ec] = std::from_chars(p, tok_end, out);
  if (ec != std::errc{} || rest != tok_end) return false;
  p = tok_end;
  return true;
}

}  // namespace

std::string MonteCarloCheckpoint::serialize() const {
  std::string s = std::to_string(count);
  s.push_back(' ');
  append_double(s, mean);
  s.push_back(' ');
  append_double(s, m2);
  return s;
}

bool MonteCarloCheckpoint::parse(std::string_view text,
                                 MonteCarloCheckpoint& out) {
  const char* p = text.data();
  const char* end = p + text.size();
  MonteCarloCheckpoint c;
  if (!parse_field(p, end, c.count)) return false;
  if (p == end || *p != ' ') return false;
  ++p;
  if (!parse_field(p, end, c.mean)) return false;
  if (p == end || *p != ' ') return false;
  ++p;
  if (!parse_field(p, end, c.m2)) return false;
  if (p != end) return false;
  out = c;
  return true;
}

CosimEstimate census_estimate(const ModuleCharacterization& eval_set,
                              const MacroFn& model) {
  CosimEstimate est;
  stats::RunningStats rs;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

CosimEstimate sampler_estimate(const ModuleCharacterization& eval_set,
                               const MacroFn& model, std::size_t sample_size,
                               std::size_t n_samples, stats::Rng& rng) {
  CosimEstimate est;
  stats::RunningStats means;
  for (std::size_t s = 0; s < n_samples; ++s) {
    auto idx =
        stats::simple_random_sample(eval_set.transitions(), sample_size, rng);
    stats::RunningStats rs;
    for (std::size_t t : idx) {
      rs.add(model(eval_set, t));
      ++est.macro_evals;
    }
    means.add(rs.mean());
  }
  est.mean_energy = means.mean();
  return est;
}

CosimEstimate adaptive_estimate(const ModuleCharacterization& eval_set,
                                const MacroFn& model,
                                std::size_t gate_sample_size,
                                stats::Rng& rng) {
  CosimEstimate est;
  // Census of the (cheap) macro-model gives the population mean of X.
  stats::RunningStats xs_pop;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    xs_pop.add(model(eval_set, t));
    ++est.macro_evals;
  }
  // Gate-level Y on a small subsample, paired with X.
  auto idx = stats::simple_random_sample(eval_set.transitions(),
                                         gate_sample_size, rng);
  std::vector<double> xs, ys;
  xs.reserve(idx.size());
  ys.reserve(idx.size());
  for (std::size_t t : idx) {
    xs.push_back(model(eval_set, t));
    ys.push_back(eval_set.energy[t]);
    ++est.gate_cycle_sims;
  }
  est.mean_energy = stats::ratio_estimate_mean(xs, ys, xs_pop.mean());
  return est;
}

CosimEstimate stratified_estimate(const ModuleCharacterization& eval_set,
                                  const MacroFn& model, std::size_t strata,
                                  std::size_t per_stratum, stats::Rng& rng) {
  CosimEstimate est;
  auto idx = stats::stratified_sample(eval_set.transitions(), strata,
                                      per_stratum, rng);
  stats::RunningStats rs;
  for (std::size_t t : idx) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

double gate_level_mean(const ModuleCharacterization& eval_set) {
  return eval_set.mean_energy();
}

namespace {

/// Close out a run: stop-reason bookkeeping + resume checkpoint. `res`
/// already carries converged/ci from the stop rule when it fired.
void finish_monte_carlo(MonteCarloResult& res, const stats::RunningStats& rs,
                        double confidence, bool budget_stop) {
  res.mean_energy = rs.mean();
  res.pairs = rs.count();
  if (res.converged) {
    res.stop_reason = MonteCarloResult::StopReason::Converged;
  } else {
    res.ci_halfwidth = stats::ci_halfwidth(rs, confidence);
    res.stop_reason = budget_stop
                          ? MonteCarloResult::StopReason::BudgetExhausted
                          : MonteCarloResult::StopReason::MaxPairsExhausted;
  }
  res.checkpoint = {rs.count(), rs.mean(), rs.m2()};
}

/// 64 independent vector pairs per step: pair k occupies bit lane k, drawn
/// in the same interleaved order (v1_k, v2_k) the scalar loop uses. Lane
/// energies are drained into the running stats in draw order, so the
/// sequential stop rule fires at exactly the same pair as the scalar path,
/// and a step-quota/cancellation budget trip also lands on the same pair.
MonteCarloResult monte_carlo_power_packed(
    const netlist::Netlist& nl,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, exec::Meter* meter,
    const MonteCarloCheckpoint& resume) {
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  fi::alloc_checkpoint();
  sim::PackedSimulator ps(nl);
  const std::size_t n = nl.gate_count();
  fi::alloc_checkpoint();
  std::vector<std::uint64_t> prev(n, 0);
  std::uint64_t w1[64], w2[64];
  double e_lane[64];
  stats::RunningStats rs =
      stats::RunningStats::restore(resume.count, resume.mean, resume.m2);

  bool stopped = false, budget_stop = false;
  while (rs.count() < max_pairs && !stopped) {
    // Never draw past a step quota: a quota-stopped run must leave the
    // shared generator at the same position as the scalar engine, or a
    // resumed run would diverge from an uninterrupted one.
    std::size_t batch = std::min<std::size_t>(64, max_pairs - rs.count());
    if (meter) batch = std::min(batch, meter->steps_remaining());
    if (batch == 0) {  // quota exactly spent: the next pair's probe trips
      budget_stop = meter->over_budget(1);
      break;
    }
    const int count = static_cast<int>(batch);
    for (int k = 0; k < count; ++k) {
      w1[k] = vector_gen();
      w2[k] = vector_gen();
    }
    ps.set_inputs_from_cycles(std::span(w1, static_cast<std::size_t>(count)));
    ps.eval();
    for (netlist::GateId g = 0; g < n; ++g) prev[g] = ps.lanes(g);
    ps.set_inputs_from_cycles(std::span(w2, static_cast<std::size_t>(count)));
    ps.eval();
    const std::uint64_t mask =
        count == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
    std::fill(e_lane, e_lane + count, 0.0);
    // Ascending gate order per lane keeps the floating-point summation
    // order identical to the scalar per-pair loop.
    for (netlist::GateId g = 0; g < n; ++g) {
      std::uint64_t d = (prev[g] ^ ps.lanes(g)) & mask;
      while (d) {
        e_lane[std::countr_zero(d)] += loads[g];
        d &= d - 1;
      }
    }
    for (int k = 0; k < count; ++k) {
      // One step per pair; a tripped pair is not counted, so the stats only
      // ever contain fully-paid-for samples (the generator may have been
      // drawn up to one batch ahead — see the header contract).
      if (meter && meter->over_budget(1)) {
        stopped = true;
        budget_stop = true;
        break;
      }
      rs.add(e_lane[k]);
      if (rs.count() >= min_pairs) {
        double hw = stats::ci_halfwidth(rs, confidence);
        if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
          res.converged = true;
          res.ci_halfwidth = hw;
          stopped = true;
          break;
        }
      }
    }
  }
  finish_monte_carlo(res, rs, confidence, budget_stop);
  return res;
}

MonteCarloResult monte_carlo_power_scalar(
    const netlist::Netlist& nl,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, exec::Meter* meter,
    const MonteCarloCheckpoint& resume) {
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  fi::alloc_checkpoint();
  sim::Simulator s(nl);
  fi::alloc_checkpoint();
  std::vector<std::uint8_t> prev(nl.gate_count(), 0);
  stats::RunningStats rs =
      stats::RunningStats::restore(resume.count, resume.mean, resume.m2);

  bool budget_stop = false;
  while (rs.count() < max_pairs) {
    if (meter && meter->over_budget(1)) {
      budget_stop = true;
      break;
    }
    // One independent vector pair: apply v1, settle, then v2, count.
    s.set_all_inputs(vector_gen());
    s.eval();
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      prev[g] = s.value(g) ? 1 : 0;
    s.set_all_inputs(vector_gen());
    s.eval();
    double e = 0.0;
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      if ((s.value(g) ? 1 : 0) != prev[g]) e += loads[g];
    rs.add(e);
    if (rs.count() >= min_pairs) {
      double hw = stats::ci_halfwidth(rs, confidence);
      if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
        res.converged = true;
        res.ci_halfwidth = hw;
        break;
      }
    }
  }
  finish_monte_carlo(res, rs, confidence, budget_stop);
  return res;
}

MonteCarloResult monte_carlo_power_impl(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts,
    exec::Meter* meter, const MonteCarloCheckpoint& resume) {
  lint::enforce_module(mod, opts.lint, "monte_carlo_power");
  const auto& nl = mod.netlist;
  if (sim::resolve_engine(nl, opts.engine) == sim::EngineKind::Packed)
    return monte_carlo_power_packed(nl, vector_gen, epsilon, confidence,
                                    min_pairs, max_pairs, cap, meter, resume);
  return monte_carlo_power_scalar(nl, vector_gen, epsilon, confidence,
                                  min_pairs, max_pairs, cap, meter, resume);
}

}  // namespace

MonteCarloResult monte_carlo_power(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts) {
  return monte_carlo_power_impl(mod, vector_gen, epsilon, confidence,
                                min_pairs, max_pairs, cap, opts, nullptr, {});
}

exec::Outcome<MonteCarloResult> monte_carlo_power_budgeted(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen,
    const exec::Budget& budget, double epsilon, double confidence,
    std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts,
    const MonteCarloCheckpoint& resume) {
  exec::Meter meter(budget);
  exec::Outcome<MonteCarloResult> out;
  out.value = monte_carlo_power_impl(mod, vector_gen, epsilon, confidence,
                                     min_pairs, max_pairs, cap, opts, &meter,
                                     resume);
  out.diag = meter.diag();
  if (out.value.stop_reason == MonteCarloResult::StopReason::BudgetExhausted)
    out.diag.note = "partial estimate over " +
                    std::to_string(out.value.pairs) +
                    " pairs; resume via result.checkpoint";
  return out;
}

}  // namespace hlp::core
