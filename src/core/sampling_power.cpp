#include "core/sampling_power.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/fi.hpp"
#include "lint/lint.hpp"
#include "sim/block_simulator.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace hlp::core {

namespace {

void append_double(std::string& s, double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // shortest round-trip form of a double always fits in 64 chars
  s.append(buf, end);
}

// Consume one token (up to whitespace) with `conv`, advancing `p`; the
// token must parse in full.
template <typename T>
bool parse_field(const char*& p, const char* end, T& out) {
  const char* tok_end = p;
  while (tok_end != end && *tok_end != ' ') ++tok_end;
  if (tok_end == p) return false;
  auto [rest, ec] = std::from_chars(p, tok_end, out);
  if (ec != std::errc{} || rest != tok_end) return false;
  p = tok_end;
  return true;
}

}  // namespace

std::string MonteCarloCheckpoint::serialize() const {
  std::string s = std::to_string(count);
  s.push_back(' ');
  append_double(s, mean);
  s.push_back(' ');
  append_double(s, m2);
  return s;
}

bool MonteCarloCheckpoint::parse(std::string_view text,
                                 MonteCarloCheckpoint& out) {
  const char* p = text.data();
  const char* end = p + text.size();
  MonteCarloCheckpoint c;
  if (!parse_field(p, end, c.count)) return false;
  if (p == end || *p != ' ') return false;
  ++p;
  if (!parse_field(p, end, c.mean)) return false;
  if (p == end || *p != ' ') return false;
  ++p;
  if (!parse_field(p, end, c.m2)) return false;
  if (p != end) return false;
  out = c;
  return true;
}

CosimEstimate census_estimate(const ModuleCharacterization& eval_set,
                              const MacroFn& model) {
  CosimEstimate est;
  stats::RunningStats rs;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

CosimEstimate sampler_estimate(const ModuleCharacterization& eval_set,
                               const MacroFn& model, std::size_t sample_size,
                               std::size_t n_samples, stats::Rng& rng) {
  CosimEstimate est;
  stats::RunningStats means;
  for (std::size_t s = 0; s < n_samples; ++s) {
    auto idx =
        stats::simple_random_sample(eval_set.transitions(), sample_size, rng);
    stats::RunningStats rs;
    for (std::size_t t : idx) {
      rs.add(model(eval_set, t));
      ++est.macro_evals;
    }
    means.add(rs.mean());
  }
  est.mean_energy = means.mean();
  return est;
}

CosimEstimate adaptive_estimate(const ModuleCharacterization& eval_set,
                                const MacroFn& model,
                                std::size_t gate_sample_size,
                                stats::Rng& rng) {
  CosimEstimate est;
  // Census of the (cheap) macro-model gives the population mean of X.
  stats::RunningStats xs_pop;
  for (std::size_t t = 0; t < eval_set.transitions(); ++t) {
    xs_pop.add(model(eval_set, t));
    ++est.macro_evals;
  }
  // Gate-level Y on a small subsample, paired with X.
  auto idx = stats::simple_random_sample(eval_set.transitions(),
                                         gate_sample_size, rng);
  std::vector<double> xs, ys;
  xs.reserve(idx.size());
  ys.reserve(idx.size());
  for (std::size_t t : idx) {
    xs.push_back(model(eval_set, t));
    ys.push_back(eval_set.energy[t]);
    ++est.gate_cycle_sims;
  }
  est.mean_energy = stats::ratio_estimate_mean(xs, ys, xs_pop.mean());
  return est;
}

CosimEstimate stratified_estimate(const ModuleCharacterization& eval_set,
                                  const MacroFn& model, std::size_t strata,
                                  std::size_t per_stratum, stats::Rng& rng) {
  CosimEstimate est;
  auto idx = stats::stratified_sample(eval_set.transitions(), strata,
                                      per_stratum, rng);
  stats::RunningStats rs;
  for (std::size_t t : idx) {
    rs.add(model(eval_set, t));
    ++est.macro_evals;
  }
  est.mean_energy = rs.mean();
  return est;
}

double gate_level_mean(const ModuleCharacterization& eval_set) {
  return eval_set.mean_energy();
}

namespace {

/// Close out a run: stop-reason bookkeeping + resume checkpoint. `res`
/// already carries converged/ci from the stop rule when it fired.
void finish_monte_carlo(MonteCarloResult& res, const stats::RunningStats& rs,
                        double confidence, bool budget_stop) {
  res.mean_energy = rs.mean();
  res.pairs = rs.count();
  if (res.converged) {
    res.stop_reason = MonteCarloResult::StopReason::Converged;
  } else {
    res.ci_halfwidth = stats::ci_halfwidth(rs, confidence);
    res.stop_reason = budget_stop
                          ? MonteCarloResult::StopReason::BudgetExhausted
                          : MonteCarloResult::StopReason::MaxPairsExhausted;
  }
  res.checkpoint = {rs.count(), rs.mean(), rs.m2()};
}

/// Simulate one block of `count` vector pairs (pair k in bit lane k of the
/// block) and scatter per-pair switched-cap energies into e_lane[0..count).
/// Fanout buffers are caller-owned so campaign loops don't reallocate.
/// Ascending gate order per lane keeps the floating-point summation order
/// identical to the scalar per-pair loop, at every width and dispatch.
void simulate_pair_block(sim::BlockSimulator& bs,
                         std::span<const double> loads,
                         std::span<const std::uint64_t> w1,
                         std::span<const std::uint64_t> w2,
                         std::vector<std::uint64_t>& prev, double* e_lane) {
  const std::size_t n = bs.netlist().gate_count();
  const auto W = static_cast<std::size_t>(bs.words());
  const std::size_t count = w1.size();
  bs.set_inputs_from_cycles(w1);
  bs.eval();
  for (netlist::GateId g = 0; g < n; ++g) {
    const auto lw = bs.lane_words(g);
    for (std::size_t w = 0; w < W; ++w) prev[std::size_t{g} * W + w] = lw[w];
  }
  bs.set_inputs_from_cycles(w2);
  bs.eval();
  std::fill(e_lane, e_lane + count, 0.0);
  const std::size_t sub_words = (count + 63) / 64;
  for (netlist::GateId g = 0; g < n; ++g) {
    const auto lw = bs.lane_words(g);
    for (std::size_t w = 0; w < sub_words; ++w) {
      const std::size_t c = std::min<std::size_t>(64, count - w * 64);
      const std::uint64_t mask =
          c == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
      std::uint64_t d = (prev[std::size_t{g} * W + w] ^ lw[w]) & mask;
      while (d) {
        e_lane[w * 64 + static_cast<std::size_t>(std::countr_zero(d))] +=
            loads[g];
        d &= d - 1;
      }
    }
  }
}

/// 64·W independent vector pairs per block step: pair k occupies bit lane
/// k, drawn in the same interleaved order (v1_k, v2_k) the scalar loop
/// uses. Lane energies are drained into the running stats in draw order, so
/// the sequential stop rule fires at exactly the same pair as the scalar
/// path. The meter is charged the whole block's pair count in one probe
/// *before* the block is drawn — budget accounting is O(1) per block, and a
/// quota-stopped run leaves the generator exactly where the scalar engine
/// would (the batch never exceeds the remaining quota).
MonteCarloResult monte_carlo_power_packed(
    const netlist::Netlist& nl,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, exec::Meter* meter,
    const MonteCarloCheckpoint& resume, int block_words) {
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  fi::alloc_checkpoint();
  sim::BlockSimulator bs(nl, block_words);
  const std::size_t n = nl.gate_count();
  const auto lanes = static_cast<std::size_t>(bs.lane_count());
  fi::alloc_checkpoint();
  std::vector<std::uint64_t> prev(n * static_cast<std::size_t>(bs.words()), 0);
  std::vector<std::uint64_t> w1(lanes), w2(lanes);
  std::vector<double> e_lane(lanes);
  stats::RunningStats rs =
      stats::RunningStats::restore(resume.count, resume.mean, resume.m2);

  bool stopped = false, budget_stop = false;
  while (rs.count() < max_pairs && !stopped) {
    // Never draw past a step quota: a quota-stopped run must leave the
    // shared generator at the same position as the scalar engine, or a
    // resumed run would diverge from an uninterrupted one.
    std::size_t batch = std::min(lanes, max_pairs - rs.count());
    if (meter) batch = std::min(batch, meter->steps_remaining());
    if (batch == 0) {  // quota exactly spent: the next pair's probe trips
      budget_stop = meter->over_budget(1);
      break;
    }
    // One probe pays for the whole block up front; a deadline/cancel trip
    // here costs nothing (the generator has not been advanced for this
    // block) and a quota trip is impossible (batch <= steps_remaining).
    if (meter && meter->over_budget(batch)) {
      budget_stop = true;
      break;
    }
    for (std::size_t k = 0; k < batch; ++k) {
      w1[k] = vector_gen();
      w2[k] = vector_gen();
    }
    simulate_pair_block(bs, loads, std::span(w1).first(batch),
                        std::span(w2).first(batch), prev, e_lane.data());
    for (std::size_t k = 0; k < batch; ++k) {
      rs.add(e_lane[k]);
      if (rs.count() >= min_pairs) {
        double hw = stats::ci_halfwidth(rs, confidence);
        if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
          res.converged = true;
          res.ci_halfwidth = hw;
          stopped = true;
          break;
        }
      }
    }
  }
  finish_monte_carlo(res, rs, confidence, budget_stop);
  return res;
}

MonteCarloResult monte_carlo_power_scalar(
    const netlist::Netlist& nl,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, exec::Meter* meter,
    const MonteCarloCheckpoint& resume) {
  MonteCarloResult res;
  auto loads = nl.loads(cap);
  fi::alloc_checkpoint();
  sim::Simulator s(nl);
  fi::alloc_checkpoint();
  std::vector<std::uint8_t> prev(nl.gate_count(), 0);
  stats::RunningStats rs =
      stats::RunningStats::restore(resume.count, resume.mean, resume.m2);

  bool budget_stop = false;
  while (rs.count() < max_pairs) {
    if (meter && meter->over_budget(1)) {
      budget_stop = true;
      break;
    }
    // One independent vector pair: apply v1, settle, then v2, count.
    s.set_all_inputs(vector_gen());
    s.eval();
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      prev[g] = s.value(g) ? 1 : 0;
    s.set_all_inputs(vector_gen());
    s.eval();
    double e = 0.0;
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      if ((s.value(g) ? 1 : 0) != prev[g]) e += loads[g];
    rs.add(e);
    if (rs.count() >= min_pairs) {
      double hw = stats::ci_halfwidth(rs, confidence);
      if (rs.mean() > 0.0 && hw <= epsilon * rs.mean()) {
        res.converged = true;
        res.ci_halfwidth = hw;
        break;
      }
    }
  }
  finish_monte_carlo(res, rs, confidence, budget_stop);
  return res;
}

MonteCarloResult monte_carlo_power_impl(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts,
    exec::Meter* meter, const MonteCarloCheckpoint& resume) {
  lint::enforce_module(mod, opts.lint, "monte_carlo_power");
  const auto& nl = mod.netlist;
  if (sim::resolve_engine(nl, opts.engine) == sim::EngineKind::Packed)
    return monte_carlo_power_packed(nl, vector_gen, epsilon, confidence,
                                    min_pairs, max_pairs, cap, meter, resume,
                                    opts.block_words);
  return monte_carlo_power_scalar(nl, vector_gen, epsilon, confidence,
                                  min_pairs, max_pairs, cap, meter, resume);
}

}  // namespace

MonteCarloResult monte_carlo_power(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence, std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts) {
  return monte_carlo_power_impl(mod, vector_gen, epsilon, confidence,
                                min_pairs, max_pairs, cap, opts, nullptr, {});
}

exec::Outcome<MonteCarloResult> monte_carlo_power_budgeted(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen,
    const exec::Budget& budget, double epsilon, double confidence,
    std::size_t min_pairs, std::size_t max_pairs,
    const netlist::CapacitanceModel& cap, const sim::SimOptions& opts,
    const MonteCarloCheckpoint& resume) {
  exec::Meter meter(budget);
  exec::Outcome<MonteCarloResult> out;
  out.value = monte_carlo_power_impl(mod, vector_gen, epsilon, confidence,
                                     min_pairs, max_pairs, cap, opts, &meter,
                                     resume);
  out.diag = meter.diag();
  if (out.value.stop_reason == MonteCarloResult::StopReason::BudgetExhausted)
    out.diag.note = "partial estimate over " +
                    std::to_string(out.value.pairs) +
                    " pairs; resume via result.checkpoint";
  return out;
}

exec::Outcome<MonteCarloResult> monte_carlo_power_sharded(
    const netlist::Module& mod, std::uint64_t seed,
    const ShardedMcOptions& opts, const exec::Budget& budget,
    const netlist::CapacitanceModel& cap, const MonteCarloCheckpoint& resume) {
  lint::enforce_module(mod, opts.sim.lint, "monte_carlo_power_sharded");
  const auto& nl = mod.netlist;
  const sim::EngineKind engine = sim::resolve_engine(nl, opts.sim.engine);
  const int n_in = mod.total_input_bits();
  const std::size_t chunk = opts.chunk_pairs ? opts.chunk_pairs : 4096;
  const std::size_t total = opts.total_pairs;
  const std::size_t n_chunks = (total + chunk - 1) / chunk;
  fi::alloc_checkpoint();
  auto loads = nl.loads(cap);
  fi::alloc_checkpoint();

  exec::Meter meter(budget);

  // Chunk scheduler state. Chunks are claimed strictly in index order and
  // the meter is charged a chunk's full pair count at claim time, so the
  // set of simulated chunks depends only on (quota, convergence) — never on
  // the thread schedule. Completed chunks merge in chunk order; together
  // with per-chunk seeds this makes every (threads, resume) configuration
  // bit-identical.
  std::mutex mu;
  std::size_t next_chunk = resume.count / chunk;
  std::size_t merged_upto = next_chunk;
  std::vector<std::optional<stats::RunningStats>> done(n_chunks);
  stats::RunningStats rs =
      stats::RunningStats::restore(resume.count, resume.mean, resume.m2);
  bool converged = false, budget_stop = false;
  double conv_hw = 0.0;

  auto claim = [&](std::size_t& c, std::size_t& pairs_c) {
    std::lock_guard<std::mutex> lk(mu);
    if (converged || budget_stop || next_chunk >= n_chunks) return false;
    const std::size_t begin = next_chunk * chunk;
    pairs_c = std::min(chunk, total - begin);
    if (meter.over_budget(pairs_c)) {
      budget_stop = true;  // chunk unpaid: stop before its generator exists
      return false;
    }
    c = next_chunk++;
    return true;
  };

  auto commit = [&](std::size_t c, const stats::RunningStats& rc) {
    std::lock_guard<std::mutex> lk(mu);
    done[c] = rc;
    while (merged_upto < n_chunks && done[merged_upto] && !converged) {
      rs.merge(*done[merged_upto]);
      ++merged_upto;
      if (opts.epsilon > 0.0 && rs.count() >= opts.min_pairs) {
        double hw = stats::ci_halfwidth(rs, opts.confidence);
        if (rs.mean() > 0.0 && hw <= opts.epsilon * rs.mean()) {
          converged = true;  // chunks past this prefix are discarded
          conv_hw = hw;
        }
      }
    }
  };

  auto worker = [&] {
    std::size_t c = 0, pairs_c = 0;
    if (engine == sim::EngineKind::Packed) {
      sim::BlockSimulator bs(nl, opts.sim.block_words);
      const auto lanes = static_cast<std::size_t>(bs.lane_count());
      std::vector<std::uint64_t> prev(
          nl.gate_count() * static_cast<std::size_t>(bs.words()), 0);
      std::vector<std::uint64_t> w1(lanes), w2(lanes);
      std::vector<double> e_lane(lanes);
      while (claim(c, pairs_c)) {
        stats::Rng rng(stats::shard_seed(seed, c));
        stats::RunningStats rc;
        for (std::size_t p = 0; p < pairs_c;) {
          const std::size_t batch = std::min(lanes, pairs_c - p);
          for (std::size_t k = 0; k < batch; ++k) {
            w1[k] = rng.uniform_bits(n_in);
            w2[k] = rng.uniform_bits(n_in);
          }
          simulate_pair_block(bs, loads, std::span(w1).first(batch),
                              std::span(w2).first(batch), prev,
                              e_lane.data());
          for (std::size_t k = 0; k < batch; ++k) rc.add(e_lane[k]);
          p += batch;
        }
        commit(c, rc);
      }
    } else {
      sim::Simulator s(nl);
      std::vector<std::uint8_t> prev(nl.gate_count(), 0);
      while (claim(c, pairs_c)) {
        stats::Rng rng(stats::shard_seed(seed, c));
        stats::RunningStats rc;
        for (std::size_t p = 0; p < pairs_c; ++p) {
          s.set_all_inputs(rng.uniform_bits(n_in));
          s.eval();
          for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
            prev[g] = s.value(g) ? 1 : 0;
          s.set_all_inputs(rng.uniform_bits(n_in));
          s.eval();
          double e = 0.0;
          for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
            if ((s.value(g) ? 1 : 0) != prev[g]) e += loads[g];
          rc.add(e);
        }
        commit(c, rc);
      }
    }
  };

  int threads = opts.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? static_cast<int>(hw) : 1;
  }
  const std::size_t open_chunks = n_chunks - std::min(next_chunk, n_chunks);
  if (open_chunks < static_cast<std::size_t>(threads))
    threads = open_chunks ? static_cast<int>(open_chunks) : 1;
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  MonteCarloResult res;
  res.converged = converged;
  if (converged) res.ci_halfwidth = conv_hw;
  finish_monte_carlo(res, rs, opts.confidence, budget_stop);
  exec::Outcome<MonteCarloResult> out;
  out.value = res;
  out.diag = meter.diag();
  if (res.stop_reason == MonteCarloResult::StopReason::BudgetExhausted)
    out.diag.note = "partial estimate over " + std::to_string(res.pairs) +
                    " pairs; resume via result.checkpoint";
  return out;
}

}  // namespace hlp::core
