#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"
#include "isa/programs.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

/// Tiwari et al. [7] instruction-level energy model:
///   Energy = sum_i BC_i N_i + sum_{i,j} SC_{i,j} N_{i,j} + sum_k OC_k.
/// Base costs are per-instruction; circuit-state costs SC_{i,j} are charged
/// per adjacent pair; "other" costs cover stalls and cache misses.
struct InstructionEnergyModel {
  std::array<double, isa::kNumOpcodes> base{};  ///< BC_i [energy units]
  /// SC_{i,j}: cost of i followed by j. Modeled as class-switch penalties
  /// (ALU <-> MUL <-> MEM <-> BRANCH) plus a small generic term.
  std::array<std::array<double, isa::kNumOpcodes>, isa::kNumOpcodes> state{};
  double stall_cost = 0.6;        ///< per stall cycle
  double cache_miss_cost = 4.0;   ///< per cache miss (I or D)

  /// Default model loosely following published DSP/CPU measurements:
  /// mul > mem > alu > branch > nop base costs; inter-class switches cost
  /// extra.
  static InstructionEnergyModel typical();

  /// Total energy of an execution according to the model.
  double energy(const isa::ExecStats& st) const;
  /// Energy per instruction.
  double epi(const isa::ExecStats& st) const {
    return st.instructions ? energy(st) / static_cast<double>(st.instructions)
                           : 0.0;
  }
};

/// Characteristic profile (Hsieh et al. [8], step 2): the statistics the
/// profile-driven synthesis preserves.
struct CharacteristicProfile {
  std::array<double, isa::kNumOpcodes> mix{};  ///< instruction-mix fractions
  double icache_miss_rate = 0.0;
  double dcache_miss_rate = 0.0;   ///< per memory access
  double branch_taken_rate = 0.0;
  double branch_fraction = 0.0;    ///< branches / instructions
  std::uint64_t instructions = 0;

  static CharacteristicProfile from(const isa::ExecStats& st);
};

/// Profile-driven program synthesis (Hsieh et al. [8], step 3): generate a
/// short program whose execution matches the profile's instruction mix and
/// cache/branch behaviour. `target_instructions` is the synthetic trace
/// length (orders of magnitude below the original).
isa::Program synthesize_program(const CharacteristicProfile& profile,
                                std::uint64_t target_instructions,
                                const isa::MachineConfig& cfg,
                                std::uint64_t seed);

/// Cold scheduling (Su et al. [6]): reorder instructions inside dependence-
/// free windows of a basic block to minimize the summed circuit-state cost
/// sum SC(op_t, op_{t+1}). Returns the rescheduled program. Only straight-
/// line segments between branches are touched; data dependences (RAW/WAR/
/// WAW through registers and any memory op order) are preserved.
isa::Program cold_schedule(const isa::Program& prog,
                           const InstructionEnergyModel& model);

/// Static circuit-state cost of a program's layout (sum over adjacent
/// static instruction pairs, ignoring control flow) — the list scheduler's
/// objective.
double static_state_cost(const isa::Program& prog,
                         const InstructionEnergyModel& model);

}  // namespace hlp::core
