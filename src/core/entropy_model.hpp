#pragma once

#include "bdd/bdd.hpp"
#include "fsm/markov.hpp"
#include "netlist/generators.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/entropy.hpp"

namespace hlp::core {

/// Information-theoretic power models of Section II-B1.

/// Marculescu et al. [9]: closed-form average line entropy for a linear gate
/// distribution between n inputs and m outputs, given average *bit-level*
/// entropies h_in and h_out.
double marculescu_havg(double h_in, double h_out, int n, int m);

/// Nemani–Najm [10]: h_avg = 2/(3(n+m)) * (H_in + H_out), where H are
/// *sectional* (word-level) entropies, approximated in practice by the sum of
/// bit-level entropies.
double nemani_najm_havg(double h_sum_in, double h_sum_out, int n, int m);

/// Cheng–Agrawal [11] total-capacitance estimate C_tot = (m/n) 2^n h_out
/// (pessimistic for large n).
double cheng_agrawal_ctot(int n, int m, double h_out);

/// Ferrandi et al. [12]: C_tot = alpha * (m/n) * N * h_out + beta, with N the
/// number of BDD nodes of the circuit's multi-output BDD.
double ferrandi_ctot(std::size_t bdd_nodes, int n, int m, double h_out,
                     double alpha = 1.0, double beta = 0.0);

/// Power = 0.5 V^2 f C_tot E_avg with E_avg = h_avg / 2 (the temporal-
/// independence switching bound the paper adopts).
double entropy_power(double c_tot, double h_avg, const sim::PowerParams& p);

/// One-stop entropy-model evaluation of a module under an input stream:
/// runs a functional simulation for h_out, computes every II-B1 estimate,
/// and the simulated reference power for comparison.
struct EntropyEstimates {
  double h_in = 0.0;        ///< average input bit entropy
  double h_out = 0.0;       ///< average output bit entropy
  double havg_marculescu = 0.0;
  double havg_nemani = 0.0;
  double ctot_actual = 0.0;     ///< from the netlist capacitance model
  double ctot_cheng = 0.0;      ///< Cheng–Agrawal estimate
  double ctot_ferrandi = 0.0;   ///< Ferrandi estimate (needs BDD build)
  std::size_t bdd_nodes = 0;
  double power_marculescu = 0.0;  ///< entropy power w/ actual C_tot
  double power_nemani = 0.0;
  double power_simulated = 0.0;   ///< gate-level reference
};

EntropyEstimates evaluate_entropy_models(const netlist::Module& mod,
                                         const stats::VectorStream& input,
                                         const sim::PowerParams& params = {},
                                         bool build_bdd = true,
                                         double ferrandi_alpha = 1.0,
                                         double ferrandi_beta = 0.0,
                                         const sim::SimOptions& opts = {});

/// Extension beyond the paper: the surveyed entropy estimators use the
/// entropy of the static signal-probability distribution H(q_i), which is
/// blind to temporal correlation (a slowly-walking bus has q ~ 0.5 but few
/// transitions). Replacing H(q_i) with the entropy of the per-line
/// *transition* process H(E_i) — exactly the quantity later transition-
/// probability work optimizes — restores activity tracking. Returns the
/// average of H(E_i) over the stream's lines.
double avg_transition_entropy(const stats::VectorStream& s);

/// Entropy power estimate with transition entropies substituted into the
/// Marculescu line-decay model.
double transition_entropy_power(const stats::VectorStream& input,
                                const stats::VectorStream& output,
                                double c_tot, int n, int m,
                                const sim::PowerParams& p);

/// Tyagi [13]: entropic lower bound on the expected state-register Hamming
/// switching of an FSM with T states, valid for any encoding:
///   sum p_ij H(s_i,s_j) >= h(p_ij) - 1.52 log2 T - 2.16 + 0.5 log2(log2 T).
double tyagi_switching_bound(const fsm::MarkovAnalysis& ma,
                             std::size_t n_states);

/// True when the FSM satisfies Tyagi's sparseness condition
/// t <= 2.23 * T^1.72 / sqrt(log2 T).
bool tyagi_sparse(const fsm::MarkovAnalysis& ma, std::size_t n_states);

}  // namespace hlp::core
