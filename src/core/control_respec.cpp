#include "core/control_respec.hpp"

#include <stdexcept>
#include <vector>

#include "netlist/generators.hpp"
#include "netlist/words.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

namespace {

struct BusDesign {
  netlist::Netlist nl;
  std::vector<netlist::Word> sources;
  netlist::Word select;
  netlist::Word bus;
};

BusDesign build_bus(int width, int sources) {
  BusDesign d;
  int sel_bits = 1;
  while ((1 << sel_bits) < sources) ++sel_bits;
  for (int s = 0; s < sources; ++s)
    d.sources.push_back(netlist::make_input_word(d.nl, width,
                                                 "s" + std::to_string(s)));
  d.select = netlist::make_input_word(d.nl, sel_bits, "sel");
  // Mux tree over the sources (padding repeats the last source).
  std::vector<netlist::Word> level = d.sources;
  while ((level.size() & (level.size() - 1)) != 0) level.push_back(level.back());
  int bit = 0;
  while (level.size() > 1) {
    std::vector<netlist::Word> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(netlist::mux_word(
          d.nl, d.select[static_cast<std::size_t>(bit)], level[i],
          level[i + 1]));
    level = std::move(next);
    ++bit;
  }
  d.bus = level[0];
  // The bus drives heavy downstream loads.
  for (netlist::GateId g : d.bus) d.nl.add_extra_cap(g, 3.0);
  netlist::mark_output_word(d.nl, d.bus, "bus");
  return d;
}

}  // namespace

RespecResult evaluate_control_respec(int width, int sources,
                                     std::size_t cycles, double idle_prob,
                                     std::uint64_t seed,
                                     const sim::PowerParams& params,
                                     const sim::SimOptions& opts) {
  RespecResult res;
  stats::Rng rng(seed);

  // Shared schedule and source data for both policies.
  std::vector<int> used_source(cycles);   // -1 = idle
  for (auto& u : used_source)
    u = rng.bit(idle_prob)
            ? -1
            : static_cast<int>(rng.uniform_int(0, sources - 1));
  std::vector<std::vector<std::uint64_t>> data(
      static_cast<std::size_t>(sources));
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  for (auto& stream : data) {
    std::uint64_t v = rng.uniform_bits(width);
    for (std::size_t c = 0; c < cycles; ++c) {
      v = (v + static_cast<std::uint64_t>(rng.uniform_int(-3, 3))) & mask;
      stream.push_back(v);
    }
  }

  auto run = [&](bool respecify) {
    BusDesign d = build_bus(width, sources);
    res.mux_gates = d.nl.logic_gate_count();
    // Per-cycle select under this policy (depends only on the schedule).
    std::vector<int> sel_of(cycles);
    int held_sel = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      int src = used_source[c];
      int sel = src >= 0 ? src
                         : (respecify ? held_sel : 0);  // don't-care assignment
      held_sel = sel;
      sel_of[c] = sel;
    }
    const int total_bits = static_cast<int>(d.nl.inputs().size());
    std::vector<double> acts;
    if (total_bits <= 64) {
      // Engine-generic sweep: pack all inputs into one word per cycle using
      // the creation-order layout (source s bit b -> s*width + b, select
      // above the sources), then let resolve_engine pick the backend. The
      // bus word is the whole output word, checked after the sweep.
      stats::VectorStream in_stream;
      in_stream.width = total_bits;
      in_stream.words.reserve(cycles);
      for (std::size_t c = 0; c < cycles; ++c) {
        std::uint64_t w = 0;
        for (int k = 0; k < sources; ++k)
          w |= (data[static_cast<std::size_t>(k)][c] & mask)
               << (static_cast<unsigned>(k * width));
        w |= static_cast<std::uint64_t>(sel_of[c])
             << (static_cast<unsigned>(sources * width));
        in_stream.words.push_back(w);
      }
      stats::VectorStream out_stream;
      acts = sim::simulate_activities(d.nl, in_stream, &out_stream, opts);
      for (std::size_t c = 0; c < cycles; ++c) {
        int src = used_source[c];
        if (src >= 0 &&
            out_stream.words[c] != data[static_cast<std::size_t>(src)][c])
          throw std::logic_error("control_respec: bus steering broken");
      }
    } else {
      // Wider than one packed word: word-sliced scalar sweep (validate any
      // forced engine request first).
      (void)sim::resolve_engine(d.nl, opts.engine);
      sim::Simulator s(d.nl);
      sim::ActivityCollector col(d.nl);
      for (std::size_t c = 0; c < cycles; ++c) {
        for (int k = 0; k < sources; ++k)
          s.set_word(d.sources[static_cast<std::size_t>(k)],
                     data[static_cast<std::size_t>(k)][c]);
        s.set_word(d.select, static_cast<std::uint64_t>(sel_of[c]));
        s.eval();
        col.record(s);
        int src = used_source[c];
        if (src >= 0 &&
            s.word_value(d.bus) != data[static_cast<std::size_t>(src)][c])
          throw std::logic_error("control_respec: bus steering broken");
        s.tick();
      }
      acts = col.activities();
    }
    return sim::compute_power(d.nl, acts, params).total_power;
  };

  res.power_default = run(false);
  res.power_respec = run(true);
  std::size_t idles = 0;
  for (int u : used_source)
    if (u < 0) ++idles;
  res.idle_fraction = static_cast<double>(idles) / static_cast<double>(cycles);
  return res;
}

}  // namespace hlp::core
