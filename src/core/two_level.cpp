#include "core/two_level.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

namespace hlp::core {

int Cube::literals() const { return std::popcount(care); }

std::uint64_t Cube::size(int n) const {
  return std::uint64_t{1} << (n - literals());
}

std::vector<Cube> prime_implicants(const TruthTable& tt, int n) {
  const std::uint32_t full =
      n >= 32 ? ~0u : ((std::uint32_t{1} << n) - 1);
  // Start from on-set minterms as fully bound cubes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;
  for (std::uint32_t m = 0; m < tt.size(); ++m)
    if (tt[m]) current.insert({full, m});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> combined;
    for (const auto& c : current) combined[c] = false;
    // Try to merge cube pairs differing in exactly one bound position.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> list(
        current.begin(), current.end());
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].first != list[j].first) continue;  // same care set
        std::uint32_t diff = list[i].second ^ list[j].second;
        if (std::popcount(diff) != 1) continue;
        std::uint32_t ncare = list[i].first & ~diff;
        std::uint32_t nval = list[i].second & ncare;
        next.insert({ncare, nval});
        combined[list[i]] = true;
        combined[list[j]] = true;
      }
    }
    for (const auto& [cube, was_combined] : combined)
      if (!was_combined) primes.push_back({cube.first, cube.second});
    current = std::move(next);
  }
  return primes;
}

std::vector<Cube> essential_primes(const TruthTable& tt, int n,
                                   const std::vector<Cube>& primes) {
  std::vector<Cube> essentials;
  (void)n;
  for (std::uint32_t m = 0; m < tt.size(); ++m) {
    if (!tt[m]) continue;
    int covering = 0;
    const Cube* only = nullptr;
    for (const Cube& p : primes) {
      if (p.covers(m)) {
        ++covering;
        only = &p;
        if (covering > 1) break;
      }
    }
    if (covering == 1) {
      if (std::find(essentials.begin(), essentials.end(), *only) ==
          essentials.end())
        essentials.push_back(*only);
    }
  }
  return essentials;
}

std::vector<Cube> minimize_cover(const TruthTable& tt, int n) {
  auto primes = prime_implicants(tt, n);
  auto cover = essential_primes(tt, n, primes);
  std::vector<bool> covered(tt.size(), false);
  auto mark = [&](const Cube& c) {
    for (std::uint32_t m = 0; m < tt.size(); ++m)
      if (tt[m] && c.covers(m)) covered[m] = true;
  };
  for (const Cube& c : cover) mark(c);
  // Greedy: repeatedly pick the prime covering the most uncovered minterms.
  for (;;) {
    std::size_t best_gain = 0;
    const Cube* best = nullptr;
    for (const Cube& p : primes) {
      std::size_t gain = 0;
      for (std::uint32_t m = 0; m < tt.size(); ++m)
        if (tt[m] && !covered[m] && p.covers(m)) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = &p;
      }
    }
    if (!best) break;
    cover.push_back(*best);
    mark(*best);
  }
  return cover;
}

int cover_literals(const std::vector<Cube>& cover) {
  int total = 0;
  for (const Cube& c : cover) total += c.literals();
  return total;
}

}  // namespace hlp::core
