#pragma once

#include <vector>

#include "cdfg/cdfg.hpp"

namespace hlp::core {

/// Section III-F: Chang–Pedram [73] multiple supply-voltage scheduling via
/// dynamic programming over tree CDFGs with per-module energy–delay curves.

/// One selectable operating point of a module.
struct VoltageOption {
  double vdd;
  int delay;      ///< execution delay in control steps at this voltage
  double energy;  ///< energy per operation at this voltage
};

/// Library entry: options per op kind, ordered by descending vdd.
struct VoltageLibrary {
  std::vector<double> voltages;   ///< available rails, descending
  double shifter_energy = 0.5;   ///< per level-shifter insertion
  int shifter_delay = 0;         ///< level shifters are fast

  /// Delay scales as Vdd / (Vdd - Vt)^2 (alpha-power law, alpha = 2);
  /// energy scales as Vdd^2.
  std::vector<VoltageOption> options(cdfg::OpKind kind, int width) const;
  double vt = 0.8;
  int base_delay(cdfg::OpKind kind) const;
  double base_energy(cdfg::OpKind kind, int width) const;
};

/// A point on a node's power-delay tradeoff curve.
struct PdPoint {
  int delay;       ///< arrival time at this node's output
  double energy;   ///< subtree energy
  int option;      ///< voltage option chosen at this node
  std::vector<int> child_points;  ///< chosen point index per child
};

/// Result of the DP: per-op voltage assignment meeting the latency bound
/// with minimal energy.
struct MvAssignment {
  std::vector<int> voltage_index;  ///< per op; -1 for non-compute
  double energy = 0.0;
  int latency = 0;
  int level_shifters = 0;
  bool feasible = false;
};

/// Dynamic programming over the (tree-shaped) CDFG: computes the
/// power-delay curve bottom-up, then selects the minimum-energy root point
/// meeting `latency_bound` and recovers assignments by preorder traversal.
/// Non-tree graphs are handled by duplicating shared subtrees' energy
/// conservatively (exact on trees, which is what [73] treats).
MvAssignment schedule_multivoltage(const cdfg::Cdfg& g,
                                   const VoltageLibrary& lib,
                                   int latency_bound);

/// Reference: everything at the maximum voltage.
MvAssignment single_voltage_baseline(const cdfg::Cdfg& g,
                                     const VoltageLibrary& lib);

}  // namespace hlp::core
