#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/generators.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/entropy.hpp"
#include "stats/regression.hpp"

namespace hlp::core {

/// Per-module characterization data: gate-level reference energies plus the
/// per-cycle predictor variables every Section II-C1 macro-model draws from.
/// Energies are in switched-capacitance units (multiply by 0.5 V^2 f for
/// watts); this keeps the regression conditioning independent of electrical
/// constants.
struct ModuleCharacterization {
  int n_in = 0;
  int n_out = 0;
  double total_cap = 0.0;

  /// One entry per *transition* (cycle pairs t-1 -> t).
  std::vector<double> energy;          ///< switched cap this transition
  stats::Matrix pin_toggle;            ///< n_in columns of 0/1 toggles
  std::vector<double> in_activity;     ///< mean input toggle fraction
  std::vector<double> in_prob;         ///< mean input signal value (current)
  std::vector<double> out_activity;    ///< mean zero-delay output toggles
  std::vector<std::uint64_t> cur_word; ///< current input assignment
  std::vector<std::uint64_t> prev_word;

  std::size_t transitions() const { return energy.size(); }
  double mean_energy() const;
};

/// Simulate the module under `input` and collect characterization data.
/// Engine-generic: combinational modules run the 64-cycle-per-step packed
/// backend under Auto (bit-identical energies and predictor variables).
ModuleCharacterization characterize(const netlist::Module& mod,
                                    const stats::VectorStream& input,
                                    const netlist::CapacitanceModel& cap = {},
                                    const sim::SimOptions& opts = {});

/// --- Macro-model forms (in increasing accuracy/cost order) -------------

/// Power factor approximation [39]: a single per-activation constant.
class PfaModel {
 public:
  void fit(const ModuleCharacterization& c);
  /// Predicted switched cap per activation (data independent).
  double predict() const { return c_; }

 private:
  double c_ = 0.0;
};

/// Bitwise data model: energy = sum_i C_i * toggle_i.
class BitwiseModel {
 public:
  void fit(const ModuleCharacterization& c);
  double predict_cycle(std::span<const double> pin_toggles) const;
  /// Average power form: plug per-pin activities E_i.
  double predict_avg(std::span<const double> pin_activities) const;

 private:
  stats::OlsFit fit_;
};

/// Input–output data model: energy = C_I E_I + C_O E_O.
class InputOutputModel {
 public:
  void fit(const ModuleCharacterization& c);
  double predict_cycle(double in_act, double out_act) const;

 private:
  stats::OlsFit fit_;
};

/// Dual-bit-type model (Landman–Rabaey [40]): splits the input word into a
/// white-noise low-order region and a correlated sign region; fits a
/// capacitance coefficient for the noise region and one per sign-transition
/// class (++, +-, -+, --).
class DualBitModel {
 public:
  /// `sign_bits`: how many MSBs per input word form the sign region; if < 0
  /// it is detected from the lag-1 correlation of each bit in `c`.
  void fit(const ModuleCharacterization& c,
           std::span<const int> word_widths, int sign_bits = -1);
  double predict_cycle(std::uint64_t prev, std::uint64_t cur) const;
  int sign_bits() const { return n_sign_; }

 private:
  std::array<double, 4> features_of(std::uint64_t prev,
                                    std::uint64_t cur) const;
  std::vector<int> widths_;
  int n_sign_ = 1;
  stats::OlsFit fit_;  // columns: u_toggles, and one-hot sign class x 4 - 1
};

/// 3-D table model (Gupta–Najm [41]): table over (mean input probability,
/// mean input activity, mean output activity), each axis uniformly binned.
class Table3dModel {
 public:
  explicit Table3dModel(int bins = 5) : bins_(bins) {}
  void fit(const ModuleCharacterization& c);
  double predict_cycle(double p_in, double d_in, double d_out) const;

 private:
  std::size_t index(double p, double d, double o) const;
  int bins_;
  std::vector<double> sum_, count_;
  double fallback_ = 0.0;
};

/// Cluster-based cycle-accurate model (Mehta et al. [43]): input
/// transitions are hashed to a small number of clusters (here: Hamming
/// weight of the toggle vector x current MSB class) and each cluster stores
/// the mean training energy. The paper points out the weakness — "closely
/// related patterns result in similar power" fails around mode-changing
/// bits — which the tests demonstrate against the 3-D table model.
class ClusterModel {
 public:
  explicit ClusterModel(int hamming_buckets = 8)
      : buckets_(hamming_buckets) {}
  void fit(const ModuleCharacterization& c);
  double predict_cycle(std::uint64_t prev, std::uint64_t cur, int n_in) const;
  std::size_t clusters() const { return sum_.size(); }

 private:
  std::size_t index(std::uint64_t prev, std::uint64_t cur, int n_in) const;
  int buckets_;
  std::vector<double> sum_, count_;
  double fallback_ = 0.0;
};

/// Combined dual-bit-type + input-output model (the "more accurate, but
/// more expensive, macro-model form" the paper describes): dual-bit sign/
/// noise features plus the mean output activity.
class DualBitIoModel {
 public:
  void fit(const ModuleCharacterization& c, std::span<const int> word_widths,
           int sign_bits = -1);
  double predict_cycle(const ModuleCharacterization& c, std::size_t t) const;

 private:
  DualBitModel db_;
  stats::OlsFit fit_;  // columns: dual-bit prediction, out_activity
};

/// Characterization-free analytical macro-model (Benini et al. [23]): the
/// per-pin capacitance coefficients are derived from the gate-level
/// structure alone — a toggle on pin i propagates into its transitive
/// fanout with a kind-dependent probability per gate (1.0 for XOR-like
/// gates, 0.5 for AND/OR-like gates), accumulating the loads it can reach.
/// No simulation is needed to build the model (the paper's point for soft
/// macros and early estimation).
class AnalyticBitwiseModel {
 public:
  void build(const netlist::Module& mod,
             const netlist::CapacitanceModel& cap = {});
  double predict_cycle(std::span<const double> pin_toggles) const;
  double coefficient(std::size_t pin) const { return coef_[pin]; }

 private:
  std::vector<double> coef_;
};

/// Cycle-accurate statistically selected model (Wu et al. [44], Qiu et al.
/// [45]): candidate variables are per-pin toggles, aggregate activities, and
/// first-order temporal/spatial cross terms; forward F-test selection picks
/// at most `max_vars` of them.
class SelectedModel {
 public:
  void fit(const ModuleCharacterization& c, std::size_t max_vars = 8,
           double f_enter = 4.0);
  double predict_cycle(const ModuleCharacterization& c, std::size_t t) const;
  std::size_t num_selected() const { return selected_.size(); }

 private:
  static stats::Matrix candidates(const ModuleCharacterization& c);
  static std::vector<double> candidate_row(const ModuleCharacterization& c,
                                           std::size_t t);
  std::vector<std::size_t> selected_;
  stats::OlsFit fit_;
};

/// Evaluation metrics for one model on one characterization set.
struct MacroModelErrors {
  double avg_power_error = 0.0;    ///< |mean(pred) - mean(ref)| / mean(ref)
  double cycle_rms_error = 0.0;    ///< RMS relative per-cycle error
  double cycle_mean_abs_error = 0.0;
};

/// Compare per-cycle predictions against reference energies.
MacroModelErrors evaluate_predictions(std::span<const double> predicted,
                                      std::span<const double> reference);

}  // namespace hlp::core
