#include "core/clock_gating.hpp"

#include <vector>

#include "fsm/markov.hpp"
#include "sim/simulator.hpp"

namespace hlp::core {

using netlist::GateId;
using netlist::GateKind;

ClockGatingResult evaluate_clock_gating(const fsm::Stg& stg,
                                        const fsm::SynthesizedFsm& fsmnl,
                                        std::size_t cycles, stats::Rng& rng,
                                        std::span<const double> input_probs,
                                        const sim::PowerParams& params,
                                        const sim::SimOptions& opts) {
  ClockGatingResult res;
  // Rebuild the machine so the activation logic can be appended.
  fsm::SynthesizedFsm gated =
      fsm::synthesize_fsm(stg, fsmnl.codes, fsmnl.state_bits);
  netlist::Netlist& nl = gated.netlist;
  const std::size_t watermark = nl.gate_count();

  // F_a: two-level cover of self-looping (state, symbol) pairs, reusing the
  // machine's existing AND plane (a synthesis tool would share these terms;
  // standalone re-implementation would overstate the gating overhead).
  std::vector<GateId> terms;
  for (std::size_t s = 0; s < stg.num_states(); ++s)
    for (std::size_t a = 0; a < stg.n_symbols(); ++a)
      if (stg.next(static_cast<fsm::StateId>(s), a) ==
          static_cast<fsm::StateId>(s))
        terms.push_back(gated.terms[s][a]);
  GateId fa;
  if (terms.empty())
    fa = nl.add_const(false);
  else if (terms.size() == 1)
    fa = nl.add_unary(GateKind::Buf, terms[0], "Fa");
  else
    fa = nl.add_gate(GateKind::Or, terms, "Fa");
  // Gating latch L modeled as one extra load on F_a.
  nl.add_extra_cap(fa, params.cap.dff_pin_cap);
  nl.mark_output(fa, "Fa");
  res.fa_gates = nl.gate_count() - watermark;

  // Simulate. The state recurrence is serial: scalar only (throws if Packed
  // is forced; Auto resolves to Scalar).
  (void)sim::resolve_engine(nl, opts.engine);
  sim::Simulator s(nl);
  sim::ActivityCollector col(nl);
  std::size_t idle = 0;
  const std::size_t sym = stg.n_symbols();
  for (std::size_t c = 0; c < cycles; ++c) {
    std::uint64_t a;
    if (input_probs.empty()) {
      a = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sym) - 1));
    } else {
      double u = rng.uniform_real();
      double acc = 0.0;
      a = sym - 1;
      for (std::size_t k = 0; k < sym; ++k) {
        acc += input_probs[k];
        if (u <= acc) {
          a = k;
          break;
        }
      }
    }
    s.set_word(gated.inputs, a);
    s.eval();
    col.record(s);
    if (s.value(fa)) ++idle;
    s.tick();
  }

  auto rep = sim::compute_power(nl, col.activities(), params);
  double logic_sc = 0.0, fa_sc = 0.0;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (g < watermark)
      logic_sc += rep.gate_energy[g];
    else
      fa_sc += rep.gate_energy[g];
  }
  double vv = 0.5 * params.vdd * params.vdd * params.freq;
  res.idle_fraction =
      cycles ? static_cast<double>(idle) / static_cast<double>(cycles) : 0.0;
  res.base_power = vv * logic_sc + rep.clock_power;
  res.gated_power = vv * (logic_sc + fa_sc) +
                    rep.clock_power * (1.0 - res.idle_fraction);
  return res;
}

}  // namespace hlp::core
