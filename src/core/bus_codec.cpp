#include "core/bus_codec.hpp"

#include <bit>
#include <limits>

#include "netlist/words.hpp"
#include "sim/simulator.hpp"

namespace hlp::core {

using netlist::GateId;
using netlist::GateKind;
using netlist::Word;

BusInvertCodec build_bus_invert_codec(int width) {
  BusInvertCodec c;
  c.width = width;
  netlist::Netlist& nl = c.netlist;

  c.data_in = netlist::make_input_word(nl, width, "d");
  // Bus register (previous transmitted state) + INV line.
  for (int i = 0; i < width; ++i)
    c.bus.push_back(nl.add_dff(netlist::kNullGate, false,
                               "bus[" + std::to_string(i) + "]"));
  c.inv = nl.add_dff(netlist::kNullGate, false, "inv");

  // Hamming distance between the incoming word and the current bus data.
  Word diff = netlist::xor_word(nl, c.data_in, c.bus);
  // Popcount adder tree over the diff bits.
  std::vector<Word> sums;
  for (GateId d : diff) sums.push_back(Word{d});
  while (sums.size() > 1) {
    std::vector<Word> next;
    for (std::size_t i = 0; i + 1 < sums.size(); i += 2) {
      Word a = sums[i], b = sums[i + 1];
      while (a.size() < b.size()) a.push_back(nl.add_const(false));
      while (b.size() < a.size()) b.push_back(nl.add_const(false));
      GateId cout = netlist::kNullGate;
      Word s = netlist::ripple_adder(nl, a, b, netlist::kNullGate, &cout);
      s.push_back(cout);
      next.push_back(std::move(s));
    }
    if (sums.size() % 2) next.push_back(sums.back());
    sums = std::move(next);
  }
  Word count = sums[0];
  // invert = count > N/2  <=>  N/2 < count.
  Word half = netlist::make_const_word(nl, static_cast<int>(count.size()),
                                       static_cast<std::uint64_t>(width / 2));
  GateId invert = netlist::less_than(nl, half, count);

  // Transmitted data and next bus state.
  Word tx;
  for (int i = 0; i < width; ++i)
    tx.push_back(nl.add_binary(GateKind::Xor,
                               c.data_in[static_cast<std::size_t>(i)],
                               invert));
  for (int i = 0; i < width; ++i)
    nl.set_dff_input(c.bus[static_cast<std::size_t>(i)],
                     tx[static_cast<std::size_t>(i)]);
  nl.set_dff_input(c.inv, invert);

  // Receiver: XOR bank off the registered bus.
  for (int i = 0; i < width; ++i) {
    GateId y = nl.add_binary(GateKind::Xor,
                             c.bus[static_cast<std::size_t>(i)], c.inv,
                             "y[" + std::to_string(i) + "]");
    nl.mark_output(y, "y[" + std::to_string(i) + "]");
    c.decoded.push_back(y);
  }
  return c;
}

double CodecEval::breakeven_cbus() const {
  double saved = bus_transitions_binary - bus_transitions_bi;
  if (saved <= 0.0) return std::numeric_limits<double>::infinity();
  return codec_cap_per_word / saved;
}

CodecEval evaluate_bus_invert_codec(const BusInvertCodec& codec,
                                    const std::vector<std::uint64_t>& words,
                                    const netlist::CapacitanceModel& cap,
                                    const sim::SimOptions& opts) {
  CodecEval ev;
  const netlist::Netlist& nl = codec.netlist;
  // Registered bus: sequential recurrence, scalar only (throws if Packed is
  // forced; Auto resolves to Scalar).
  (void)sim::resolve_engine(nl, opts.engine);
  sim::Simulator s(nl);
  sim::ActivityCollector col(nl);

  std::uint64_t prev_bus = 0, prev_word = 0, prev_raw = 0;
  bool have_prev = false;
  std::uint64_t bus_trans = 0, raw_trans = 0;
  std::size_t idx = 0;
  const std::uint64_t mask =
      codec.width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << codec.width) - 1);

  for (std::uint64_t w : words) {
    w &= mask;
    s.set_word(codec.data_in, w);
    s.eval();
    col.record(s);
    if (have_prev && (s.word_value(codec.decoded) & mask) != prev_word)
      ev.functionally_correct = false;
    std::uint64_t bus_now = s.word_value(codec.bus) |
                            (static_cast<std::uint64_t>(s.value(codec.inv))
                             << codec.width);
    if (have_prev && idx >= 2) {
      // Skip the reset transient (the bus register powers up cleared).
      bus_trans += static_cast<std::uint64_t>(
          std::popcount(bus_now ^ prev_bus));
      raw_trans += static_cast<std::uint64_t>(std::popcount(w ^ prev_raw));
    }
    prev_bus = bus_now;
    prev_word = w;
    prev_raw = w;
    have_prev = true;
    ++idx;
    s.tick();
  }
  if (words.size() > 2) {
    double n = static_cast<double>(words.size() - 2);
    ev.bus_transitions_bi = static_cast<double>(bus_trans) / n;
    ev.bus_transitions_binary = static_cast<double>(raw_trans) / n;
    auto rep = sim::compute_power(nl, col.activities(),
                                  sim::PowerParams{1.0, 1.0, cap});
    // Switched cap per cycle inside the codec (clock tree of the bus/INV
    // registers included: 2 edges x per-DFF clock cap).
    ev.codec_cap_per_word =
        rep.switched_cap +
        2.0 * cap.dff_clock_cap * static_cast<double>(nl.dffs().size());
  }
  return ev;
}

}  // namespace hlp::core
