#pragma once

#include <cstdint>

#include "stats/entropy.hpp"

namespace hlp::core {

/// Section II-C step 4 lists "automata-based compaction techniques"
/// (Marculescu et al. [36]-[38]) as a way to speed up low-level power
/// simulation: replace a long input sequence by a much shorter one with the
/// same first-order statistics, simulate that, and scale.
///
/// Two models, picked automatically:
///  * dictionary Markov chain over the distinct words (exact first-order
///    word statistics) when the stream's alphabet is small enough;
///  * per-line lag-1 model (signal probability + hold probability per bit)
///    otherwise.
stats::VectorStream compact_stream(const stats::VectorStream& input,
                                   std::size_t target_length,
                                   std::uint64_t seed,
                                   std::size_t max_alphabet = 4096);

/// First-order fidelity metrics between two streams: absolute error of
/// per-line signal probability and switching activity (averaged over
/// lines). Small values mean the compacted stream preserves what the
/// macro-models and gate-level power depend on.
struct CompactionFidelity {
  double signal_prob_error = 0.0;
  double activity_error = 0.0;
};
CompactionFidelity compaction_fidelity(const stats::VectorStream& original,
                                       const stats::VectorStream& compacted);

}  // namespace hlp::core
