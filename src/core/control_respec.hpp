#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/power.hpp"

namespace hlp::core {

/// Section III-I, "other approaches": controller respecification
/// (Raghunathan et al. [107],[108]). In control-flow-intensive designs the
/// steering network dominates power, and in cycles where a shared bus's
/// value is unused the controller's select lines are don't-cares. A naive
/// controller drives a fixed default select in those cycles (reconfiguring
/// the mux tree for nothing); respecifying the don't-cares to *hold* the
/// previous selection keeps the mux network and bus quiet.

struct RespecResult {
  double power_default = 0.0;  ///< idle cycles select source 0
  double power_respec = 0.0;   ///< idle cycles hold the previous select
  double idle_fraction = 0.0;
  std::size_t mux_gates = 0;
  double saving() const {
    return power_default > 0.0 ? 1.0 - power_respec / power_default : 0.0;
  }
};

/// Build a `sources`-way shared bus of `width` bits (mux tree), drive it
/// with random-walk source data and a random schedule in which each cycle
/// is idle with probability `idle_prob`, and compare the two controller
/// policies. Functional equality on non-idle cycles is asserted internally.
/// The mux tree is combinational, so both policy sweeps run engine-generic
/// (64 cycles per step packed under Auto when the bus fits in 64 input
/// bits; wider buses fall back to the scalar word-sliced sweep).
RespecResult evaluate_control_respec(int width, int sources,
                                     std::size_t cycles, double idle_prob,
                                     std::uint64_t seed,
                                     const sim::PowerParams& params = {},
                                     const sim::SimOptions& opts = {});

}  // namespace hlp::core
