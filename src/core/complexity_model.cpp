#include "core/complexity_model.hpp"

#include <algorithm>
#include <map>

namespace hlp::core {

double ces_power(std::size_t gate_equivalents, const CesParams& ces,
                 const sim::PowerParams& p) {
  return p.freq * static_cast<double>(gate_equivalents) *
         (ces.energy_gate + 0.5 * p.vdd * p.vdd * ces.c_load) * ces.e_gate;
}

namespace {

/// C1 of the given on-set table: group minterms by the size (in literals,
/// larger cube = smaller literal count) of the *largest* essential prime
/// covering them; weight = minterm probability mass.
double linear_measure(const TruthTable& tt, int n) {
  auto primes = prime_implicants(tt, n);
  auto essentials = essential_primes(tt, n, primes);
  if (essentials.empty()) {
    // Degenerate (e.g. every minterm multiply covered): fall back to the
    // full prime set so the measure stays defined.
    essentials = primes;
  }
  const double total = static_cast<double>(tt.size());
  // For each on-set minterm, find the largest essential prime covering it
  // (largest cube = fewest literals); c_i = literal count of that prime.
  std::map<int, double> mass_by_size;  // literals -> probability
  double onset_mass = 0.0;
  for (std::uint32_t m = 0; m < tt.size(); ++m) {
    if (!tt[m]) continue;
    onset_mass += 1.0 / total;
    int best_lits = -1;
    for (const Cube& e : essentials) {
      if (!e.covers(m)) continue;
      if (best_lits < 0 || e.literals() < best_lits) best_lits = e.literals();
    }
    if (best_lits >= 0) mass_by_size[best_lits] += 1.0 / total;
  }
  double c1 = 0.0;
  for (auto& [lits, p] : mass_by_size)
    c1 += static_cast<double>(lits) * p;
  (void)onset_mass;
  return c1;
}

}  // namespace

AreaComplexity area_complexity(const TruthTable& tt, int n) {
  AreaComplexity ac;
  TruthTable off(tt.size());
  double ones = 0.0;
  for (std::size_t m = 0; m < tt.size(); ++m) {
    off[m] = tt[m] ? 0 : 1;
    if (tt[m]) ones += 1.0;
  }
  ac.output_prob = ones / static_cast<double>(tt.size());
  ac.c_on = linear_measure(tt, n);
  ac.c_off = linear_measure(off, n);
  ac.c = 0.5 * (ac.c_on + ac.c_off);
  return ac;
}

double landman_rabaey_power(int n_in_lines, double e_in, int n_out_lines,
                            double e_out, int n_minterms,
                            const ControllerModelParams& cm,
                            const sim::PowerParams& p) {
  return 0.5 * p.vdd * p.vdd * p.freq *
         (static_cast<double>(n_in_lines) * cm.c_in * e_in +
          static_cast<double>(n_out_lines) * cm.c_out * e_out) *
         static_cast<double>(n_minterms);
}

std::size_t gate_equivalents(const netlist::Netlist& nl) {
  std::size_t ge2 = 0;  // in half-gates to avoid fractions
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    const auto& gate = nl.gate(g);
    if (!netlist::is_logic(gate.kind)) continue;
    ge2 += std::max<std::size_t>(1, gate.fanins.size());
  }
  return (ge2 + 1) / 2;
}

}  // namespace hlp::core
