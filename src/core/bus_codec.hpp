#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"

namespace hlp::core {

/// Section III-G closes with the caveat that "the savings achieved through
/// a bus switching activity reduction must not be offset by the power
/// dissipated by the encoding and decoding circuitry at the bus terminals."
/// This module synthesizes the Bus-Invert codec as an actual gate-level
/// netlist so that tradeoff can be measured: encoder = XOR bank + popcount
/// tree + majority comparator + output register; decoder = XOR bank.

struct BusInvertCodec {
  netlist::Netlist netlist;
  netlist::Word data_in;    ///< word to transmit (primary inputs)
  netlist::Word bus;        ///< registered bus lines (DFF outputs)
  netlist::GateId inv;      ///< registered INV line
  netlist::Word decoded;    ///< receiver-side reconstruction (outputs)
  int width = 0;
};

/// Build the full codec (encoder + bus register + decoder) for an N-bit bus.
BusInvertCodec build_bus_invert_codec(int width);

/// System-power comparison at a given per-line bus capacitance.
struct CodecEval {
  double bus_transitions_binary = 0.0;  ///< per word, unencoded
  double bus_transitions_bi = 0.0;      ///< per word, encoded (incl. INV)
  double codec_cap_per_word = 0.0;      ///< switched cap inside the codec
  bool functionally_correct = true;

  /// Total switched cap per word for each option at bus cap `c_bus`/line.
  double total_binary(double c_bus) const {
    return bus_transitions_binary * c_bus;
  }
  double total_bi(double c_bus) const {
    return bus_transitions_bi * c_bus + codec_cap_per_word;
  }
  /// Bus capacitance above which Bus-Invert wins despite codec overhead.
  double breakeven_cbus() const;
};

/// Simulate the codec netlist on a word stream; verifies decoded == input
/// (one cycle late) and accounts bus vs codec switching separately.
/// The codec registers its bus, so the cycle recurrence is inherently
/// serial: Auto resolves to the scalar engine; forcing Packed throws.
CodecEval evaluate_bus_invert_codec(const BusInvertCodec& codec,
                                    const std::vector<std::uint64_t>& words,
                                    const netlist::CapacitanceModel& cap = {},
                                    const sim::SimOptions& opts = {});

}  // namespace hlp::core
