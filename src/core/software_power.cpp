#include "core/software_power.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hlp::core {

using isa::Instr;
using isa::Opcode;
using isa::Program;

namespace {

/// Functional class of an opcode, for circuit-state modeling.
enum class OpClass { Nop, Alu, Mul, Mem, Branch };

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::Mul: return OpClass::Mul;
    case Opcode::Ld:
    case Opcode::St: return OpClass::Mem;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Jmp: return OpClass::Branch;
    case Opcode::Nop:
    case Opcode::Halt: return OpClass::Nop;
    default: return OpClass::Alu;
  }
}

}  // namespace

InstructionEnergyModel InstructionEnergyModel::typical() {
  InstructionEnergyModel m;
  auto set_base = [&](Opcode op, double v) {
    m.base[static_cast<std::size_t>(op)] = v;
  };
  set_base(Opcode::Nop, 0.35);
  set_base(Opcode::Add, 1.00);
  set_base(Opcode::Sub, 1.00);
  set_base(Opcode::Mul, 2.20);
  set_base(Opcode::And, 0.95);
  set_base(Opcode::Or, 0.95);
  set_base(Opcode::Xor, 0.95);
  set_base(Opcode::Shl, 1.05);
  set_base(Opcode::Shr, 1.05);
  set_base(Opcode::Li, 0.80);
  set_base(Opcode::Addi, 1.00);
  set_base(Opcode::Ld, 1.70);
  set_base(Opcode::St, 1.60);
  set_base(Opcode::Beq, 1.10);
  set_base(Opcode::Bne, 1.10);
  set_base(Opcode::Jmp, 0.90);
  set_base(Opcode::Halt, 0.35);
  // Circuit-state cost: switching functional-unit class costs extra, as the
  // measurements behind [7] and [51] show.
  for (int i = 0; i < isa::kNumOpcodes; ++i) {
    for (int j = 0; j < isa::kNumOpcodes; ++j) {
      OpClass a = op_class(static_cast<Opcode>(i));
      OpClass b = op_class(static_cast<Opcode>(j));
      double c = 0.05;  // generic inter-instruction overhead
      if (a != b) c += 0.25;
      if ((a == OpClass::Mul) != (b == OpClass::Mul)) c += 0.20;
      if ((a == OpClass::Mem) != (b == OpClass::Mem)) c += 0.10;
      m.state[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = c;
    }
  }
  return m;
}

double InstructionEnergyModel::energy(const isa::ExecStats& st) const {
  double e = 0.0;
  for (int i = 0; i < isa::kNumOpcodes; ++i)
    e += base[static_cast<std::size_t>(i)] *
         static_cast<double>(st.per_opcode[static_cast<std::size_t>(i)]);
  for (int i = 0; i < isa::kNumOpcodes; ++i)
    for (int j = 0; j < isa::kNumOpcodes; ++j)
      e += state[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
           static_cast<double>(
               st.pair[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
  std::uint64_t stall_cycles = st.cycles - st.instructions;
  e += stall_cost * static_cast<double>(stall_cycles);
  e += cache_miss_cost *
       static_cast<double>(st.icache_misses + st.dcache_misses);
  return e;
}

CharacteristicProfile CharacteristicProfile::from(const isa::ExecStats& st) {
  CharacteristicProfile p;
  p.instructions = st.instructions;
  if (st.instructions == 0) return p;
  for (int i = 0; i < isa::kNumOpcodes; ++i)
    p.mix[static_cast<std::size_t>(i)] =
        static_cast<double>(st.per_opcode[static_cast<std::size_t>(i)]) /
        static_cast<double>(st.instructions);
  p.icache_miss_rate = st.icache_miss_rate();
  std::uint64_t accesses = st.mem_reads + st.mem_writes;
  p.dcache_miss_rate = accesses ? static_cast<double>(st.dcache_misses) /
                                      static_cast<double>(accesses)
                                : 0.0;
  p.branch_taken_rate = st.branch_taken_rate();
  p.branch_fraction = static_cast<double>(st.branch_instructions) /
                      static_cast<double>(st.instructions);
  return p;
}

isa::Program synthesize_program(const CharacteristicProfile& profile,
                                std::uint64_t target_instructions,
                                const isa::MachineConfig& cfg,
                                std::uint64_t seed) {
  // Build one loop whose body reproduces the instruction mix; the loop runs
  // enough iterations to reach target_instructions. Loads stride through an
  // address range sized to reproduce the D-cache miss rate.
  stats::Rng rng(seed);
  const int body_units = 64;  // instruction slots per loop body

  // Per-body instruction counts proportional to the mix (branches and halt
  // are reintroduced structurally by the loop itself).
  std::vector<int> count(isa::kNumOpcodes, 0);
  double nonstructural = 0.0;
  for (int i = 0; i < isa::kNumOpcodes; ++i) {
    auto op = static_cast<Opcode>(i);
    if (op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Jmp ||
        op == Opcode::Halt)
      continue;
    nonstructural += profile.mix[static_cast<std::size_t>(i)];
  }
  int placed = 0;
  for (int i = 0; i < isa::kNumOpcodes && nonstructural > 0.0; ++i) {
    auto op = static_cast<Opcode>(i);
    if (op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Jmp ||
        op == Opcode::Halt)
      continue;
    int c = static_cast<int>(std::round(
        profile.mix[static_cast<std::size_t>(i)] / nonstructural *
        body_units));
    count[static_cast<std::size_t>(i)] = c;
    placed += c;
  }
  // Each "missy" load needs one helper Add to advance its stride pointer;
  // charge those against the Add budget so the emitted mix stays faithful.
  {
    double missy_loads = std::clamp(profile.dcache_miss_rate, 0.0, 1.0) *
                         count[static_cast<std::size_t>(Opcode::Ld)];
    auto& adds = count[static_cast<std::size_t>(Opcode::Add)];
    adds = std::max(0, adds - static_cast<int>(std::round(missy_loads)));
  }
  // D-cache miss rate control: "missy" loads stride past a cache line every
  // access (miss rate ~1); "hot" loads walk a small resident buffer (miss
  // rate ~0 after warmup). Their mix reproduces the profile's miss rate.
  double frac_missy = std::clamp(profile.dcache_miss_rate, 0.0, 1.0);

  Program p;
  auto& c = p.code;
  const int rIdx = 1, rLim = 2, rAddrA = 6, rAddrB = 7, rStride = 9;
  std::uint64_t iterations =
      std::max<std::uint64_t>(1, target_instructions / (body_units + 2));
  c.push_back(isa::make_i(Opcode::Li, rIdx, 0, 0));
  c.push_back(isa::make_i(Opcode::Li, rLim, 0,
                          static_cast<std::int32_t>(std::min<std::uint64_t>(
                              iterations, 1u << 30))));
  c.push_back(isa::make_i(Opcode::Li, rAddrA, 0, 0));
  c.push_back(isa::make_i(Opcode::Li, rAddrB, 0, 0));
  c.push_back(isa::make_i(
      Opcode::Li, rStride, 0,
      static_cast<std::int32_t>(cfg.dcache_line_words *
                                (cfg.dcache_lines + 1))));
  std::int32_t loop = static_cast<std::int32_t>(c.size());

  // Emit the body in randomized order (the mix, not the order, is the
  // specification; cold scheduling is a separate optimization).
  std::vector<Opcode> body;
  for (int i = 0; i < isa::kNumOpcodes; ++i)
    for (int k = 0; k < count[static_cast<std::size_t>(i)]; ++k)
      body.push_back(static_cast<Opcode>(i));
  std::shuffle(body.begin(), body.end(), rng.engine());

  int hot_slot = 0;
  for (Opcode op : body) {
    int rd = 3 + static_cast<int>(rng.uniform_int(0, 2));
    int rs1 = 3 + static_cast<int>(rng.uniform_int(0, 2));
    int rs2 = 3 + static_cast<int>(rng.uniform_int(0, 2));
    switch (op) {
      case Opcode::Ld:
        if (rng.uniform_real() < frac_missy) {
          // Strided load guaranteed to leave the cache line.
          c.push_back(isa::make_r(Opcode::Add, rAddrB, rAddrB, rStride));
          c.push_back(isa::make_i(Opcode::Ld, rd, rAddrB, 0));
        } else {
          // Rotate through a 32-word resident buffer via the immediate:
          // no helper instructions, miss rate ~0 after warmup.
          c.push_back(isa::make_i(Opcode::Ld, rd, rAddrA,
                                  static_cast<std::int32_t>(hot_slot)));
          hot_slot = (hot_slot + 1) % 32;
        }
        break;
      case Opcode::St:
        c.push_back(isa::make_r(Opcode::St, 0, rAddrA, rs2));
        break;
      case Opcode::Li:
        c.push_back(isa::make_i(Opcode::Li, rd, 0,
                                static_cast<std::int32_t>(
                                    rng.uniform_int(0, 255))));
        break;
      case Opcode::Addi:
        c.push_back(isa::make_i(Opcode::Addi, rd, rs1, 1));
        break;
      case Opcode::Shl:
      case Opcode::Shr:
        c.push_back(isa::make_i(op, rd, rs1, 1));
        break;
      case Opcode::Nop:
        c.push_back(isa::make_r(Opcode::Nop, 0, 0, 0));
        break;
      default:
        c.push_back(isa::make_r(op, rd, rs1, rs2));
        break;
    }
  }
  // Branch behaviour: the profile's branch fraction and taken rate are
  // reproduced with neutral branches — Jmp +1 is a taken branch with no
  // control effect, Bne r0,r0 is a never-taken one. The loop-back branch
  // below accounts for one taken branch per iteration.
  double nonbranch = static_cast<double>(body.size()) + 2.0;
  int branch_slots = static_cast<int>(std::round(
      profile.branch_fraction / std::max(1e-9, 1.0 - profile.branch_fraction) *
      nonbranch));
  int taken_slots = static_cast<int>(
      std::round(profile.branch_taken_rate * branch_slots));
  for (int bsl = 0; bsl < branch_slots - 1; ++bsl) {
    if (bsl < taken_slots - 1)
      c.push_back(isa::make_b(Opcode::Jmp, 0, 0, 1));  // taken, falls through
    else
      c.push_back(isa::make_b(Opcode::Bne, 0, 0, 1));  // never taken
  }

  c.push_back(isa::make_i(Opcode::Addi, rIdx, rIdx, 1));
  c.push_back(isa::make_b(Opcode::Bne, rIdx, rLim,
                          loop - static_cast<std::int32_t>(c.size())));
  c.push_back(isa::make_r(Opcode::Halt, 0, 0, 0));
  return p;
}

double static_state_cost(const isa::Program& prog,
                         const InstructionEnergyModel& model) {
  double cost = 0.0;
  for (std::size_t i = 1; i < prog.code.size(); ++i)
    cost += model.state[static_cast<std::size_t>(prog.code[i - 1].op)]
                       [static_cast<std::size_t>(prog.code[i].op)];
  return cost;
}

namespace {

bool is_branch_or_halt(Opcode op) {
  return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Jmp ||
         op == Opcode::Halt;
}

bool writes_rd(Opcode op) {
  switch (op) {
    case Opcode::St:
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Jmp:
    case Opcode::Nop:
    case Opcode::Halt:
      return false;
    default:
      return true;
  }
}

bool reads_rs1(Opcode op) {
  return op != Opcode::Li && op != Opcode::Nop && op != Opcode::Halt &&
         op != Opcode::Jmp;
}

bool reads_rs2(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::St:
    case Opcode::Beq:
    case Opcode::Bne:
      return true;
    default:
      return false;
  }
}

bool is_mem(Opcode op) { return op == Opcode::Ld || op == Opcode::St; }

/// True if instruction b depends on a (a must stay before b).
bool depends(const Instr& a, const Instr& b) {
  if (is_mem(a.op) && is_mem(b.op)) return true;  // conservative mem order
  if (writes_rd(a.op)) {
    if (reads_rs1(b.op) && b.rs1 == a.rd) return true;  // RAW
    if (reads_rs2(b.op) && b.rs2 == a.rd) return true;
    if (writes_rd(b.op) && b.rd == a.rd) return true;   // WAW
  }
  if (writes_rd(b.op)) {
    if (reads_rs1(a.op) && a.rs1 == b.rd) return true;  // WAR
    if (reads_rs2(a.op) && a.rs2 == b.rd) return true;
  }
  return false;
}

}  // namespace

isa::Program cold_schedule(const isa::Program& prog,
                           const InstructionEnergyModel& model) {
  Program out;
  auto& code = prog.code;
  std::size_t i = 0;
  while (i < code.size()) {
    // Collect a straight-line segment [i, j).
    std::size_t j = i;
    while (j < code.size() && !is_branch_or_halt(code[j].op)) ++j;
    std::size_t seg_len = j - i;
    if (seg_len >= 2) {
      // Build the dependence DAG of the segment.
      std::vector<std::vector<std::size_t>> succ(seg_len);
      std::vector<int> pending(seg_len, 0);
      for (std::size_t a = 0; a < seg_len; ++a)
        for (std::size_t b = a + 1; b < seg_len; ++b)
          if (depends(code[i + a], code[i + b])) {
            succ[a].push_back(b);
            ++pending[b];
          }
      // List scheduling: among ready instructions, pick the one with the
      // smallest circuit-state cost from the previously emitted opcode.
      std::vector<std::size_t> ready;
      for (std::size_t a = 0; a < seg_len; ++a)
        if (pending[a] == 0) ready.push_back(a);
      int prev_op = out.code.empty()
                        ? -1
                        : static_cast<int>(out.code.back().op);
      std::size_t emitted = 0;
      while (emitted < seg_len) {
        std::size_t best = ready[0];
        double best_cost = 1e300;
        for (std::size_t r : ready) {
          double cost =
              prev_op < 0
                  ? 0.0
                  : model.state[static_cast<std::size_t>(prev_op)]
                               [static_cast<std::size_t>(code[i + r].op)];
          // Tie-break by original order for determinism.
          if (cost < best_cost - 1e-12 ||
              (std::abs(cost - best_cost) <= 1e-12 && r < best)) {
            best_cost = cost;
            best = r;
          }
        }
        ready.erase(std::find(ready.begin(), ready.end(), best));
        out.code.push_back(code[i + best]);
        prev_op = static_cast<int>(code[i + best].op);
        ++emitted;
        for (std::size_t s : succ[best])
          if (--pending[s] == 0) ready.push_back(s);
      }
    } else if (seg_len == 1) {
      out.code.push_back(code[i]);
    }
    if (j < code.size()) out.code.push_back(code[j]);  // the branch itself
    i = j + 1;
  }
  return out;
}

}  // namespace hlp::core
