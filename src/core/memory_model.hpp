#pragma once

#include <vector>

#include "sim/power.hpp"

namespace hlp::core {

/// Liu–Svensson parametric power model (Section II-C1, [42]): closed-form
/// power for a six-transistor SRAM array of 2^(n-k) rows x 2^k columns,
/// decomposed exactly as the paper lists:
///   1) cell array precharge/evaluation on the selected row,
///   2) row decoder,
///   3) selected row (word line) driver,
///   4) column select,
///   5) sense amplifiers + readout.

struct MemoryParams {
  int n = 12;               ///< total address bits (2^n words)
  int k = 6;                ///< column bits (2^k columns)
  double v_swing = 0.5;     ///< bit-line swing [V] (read)
  double c_int = 0.5;       ///< wiring cap per cell along a row
  double c_tr = 0.25;       ///< drain cap per cell on a bit line
  double c_wordline = 0.6;  ///< word-line cap per cell
  double c_decoder = 2.0;       ///< per decoder output node
  double c_decoder_wire = 0.1;  ///< decode/select wiring, per row spanned
  double c_colmux = 1.5;    ///< per column-select switch
  double c_sense = 8.0;     ///< sense amp + readout inverter, per column read
  int word_bits = 8;        ///< bits read per access
};

/// Per-access energy components (capacitance x voltage terms folded in;
/// same arbitrary capacitance units as the rest of the library).
struct MemoryEnergy {
  double cells = 0.0;      ///< (1) 2^k cells driving bit/bit-bar
  double decoder = 0.0;    ///< (2) row decoder switching
  double wordline = 0.0;   ///< (3) driving the selected row
  double colselect = 0.0;  ///< (4) column select
  double sense = 0.0;      ///< (5) sense amps + readout
  double total() const {
    return cells + decoder + wordline + colselect + sense;
  }
};

/// Energy of one read access (the paper's expression set; the memory-cell
/// term is 0.5 * V * V_swing * 2^k * (C_int + 2^(n-k) * C_tr)).
MemoryEnergy memory_access_energy(const MemoryParams& p,
                                  const sim::PowerParams& pp = {});

/// Power at an access rate of `accesses_per_cycle`.
double memory_power(const MemoryParams& p, double accesses_per_cycle,
                    const sim::PowerParams& pp = {});

/// Sweep the row/column split k for fixed capacity n and return the energy
/// per access for each k — the aspect-ratio optimization the parametric
/// model enables.
std::vector<std::pair<int, double>> sweep_column_split(
    MemoryParams p, const sim::PowerParams& pp = {});

/// Best k for the given parameters.
int optimal_column_split(const MemoryParams& p,
                         const sim::PowerParams& pp = {});

}  // namespace hlp::core
