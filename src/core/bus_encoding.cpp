#include "core/bus_encoding.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace hlp::core {

namespace {

std::uint64_t mask_of(int width) {
  return width >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << width) - 1);
}

class Binary final : public BusEncoder {
 public:
  explicit Binary(int w) : w_(w) {}
  std::string name() const override { return "binary"; }
  int phys_width(int) const override { return w_; }
  std::uint64_t encode(std::uint64_t word) override {
    return word & mask_of(w_);
  }
  std::uint64_t decode(std::uint64_t phys) override { return phys; }
  void reset() override {}

 private:
  int w_;
};

class GrayCode final : public BusEncoder {
 public:
  explicit GrayCode(int w) : w_(w) {}
  std::string name() const override { return "gray"; }
  int phys_width(int) const override { return w_; }
  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    return word ^ (word >> 1);
  }
  std::uint64_t decode(std::uint64_t phys) override {
    std::uint64_t b = phys;
    for (int s = 1; s < w_; s <<= 1) b ^= b >> s;
    return b & mask_of(w_);
  }
  void reset() override {}

 private:
  int w_;
};

class BusInvert final : public BusEncoder {
 public:
  explicit BusInvert(int w) : w_(w) {}
  std::string name() const override { return "bus-invert"; }
  int phys_width(int) const override { return w_ + 1; }
  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    int dist = std::popcount((prev_data_ ^ word) & mask_of(w_));
    std::uint64_t phys;
    if (2 * dist > w_) {
      phys = (~word & mask_of(w_)) | (std::uint64_t{1} << w_);
    } else {
      phys = word;
    }
    prev_data_ = phys & mask_of(w_);
    return phys;
  }
  std::uint64_t decode(std::uint64_t phys) override {
    bool inv = (phys >> w_) & 1u;
    std::uint64_t data = phys & mask_of(w_);
    return inv ? (~data & mask_of(w_)) : data;
  }
  void reset() override { prev_data_ = 0; }

 private:
  int w_;
  std::uint64_t prev_data_ = 0;
};

class T0 final : public BusEncoder {
 public:
  explicit T0(int w) : w_(w) {}
  std::string name() const override { return "t0"; }
  int phys_width(int) const override { return w_ + 1; }
  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    std::uint64_t phys;
    if (have_prev_ && word == ((prev_addr_ + 1) & mask_of(w_))) {
      // Freeze the bus; raise INC.
      phys = bus_data_ | (std::uint64_t{1} << w_);
    } else {
      phys = word;
      bus_data_ = word;
    }
    prev_addr_ = word;
    have_prev_ = true;
    return phys;
  }
  std::uint64_t decode(std::uint64_t phys) override {
    bool inc = (phys >> w_) & 1u;
    std::uint64_t addr =
        inc ? ((rx_prev_ + 1) & mask_of(w_)) : (phys & mask_of(w_));
    rx_prev_ = addr;
    return addr;
  }
  void reset() override {
    have_prev_ = false;
    prev_addr_ = bus_data_ = rx_prev_ = 0;
  }

 private:
  int w_;
  bool have_prev_ = false;
  std::uint64_t prev_addr_ = 0, bus_data_ = 0, rx_prev_ = 0;
};

class T0Bi final : public BusEncoder {
 public:
  explicit T0Bi(int w) : w_(w) {}
  std::string name() const override { return "t0+bi"; }
  int phys_width(int) const override { return w_ + 2; }
  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    std::uint64_t phys;
    if (have_prev_ && word == ((prev_addr_ + 1) & mask_of(w_))) {
      phys = bus_state_ | (std::uint64_t{1} << w_);  // INC, freeze
    } else {
      int dist = std::popcount((bus_state_ ^ word) & mask_of(w_));
      std::uint64_t data = word;
      std::uint64_t inv = 0;
      if (2 * dist > w_) {
        data = ~word & mask_of(w_);
        inv = std::uint64_t{1} << (w_ + 1);
      }
      phys = data | inv;
      bus_state_ = data | inv;
    }
    prev_addr_ = word;
    have_prev_ = true;
    return phys;
  }
  std::uint64_t decode(std::uint64_t phys) override {
    bool inc = (phys >> w_) & 1u;
    bool inv = (phys >> (w_ + 1)) & 1u;
    std::uint64_t addr;
    if (inc) {
      addr = (rx_prev_ + 1) & mask_of(w_);
    } else {
      std::uint64_t data = phys & mask_of(w_);
      addr = inv ? (~data & mask_of(w_)) : data;
    }
    rx_prev_ = addr;
    return addr;
  }
  void reset() override {
    have_prev_ = false;
    prev_addr_ = bus_state_ = rx_prev_ = 0;
  }

 private:
  int w_;
  bool have_prev_ = false;
  std::uint64_t prev_addr_ = 0, bus_state_ = 0, rx_prev_ = 0;
};

class WorkingZone final : public BusEncoder {
 public:
  WorkingZone(int w, int zones, int offset_bits)
      : w_(w), zones_(zones), obits_(offset_bits) {
    zbits_ = 1;
    while ((1 << zbits_) < zones_) ++zbits_;
    reset();
  }
  std::string name() const override { return "working-zone"; }
  int phys_width(int) const override { return w_ + 1; }

  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    int hit = -1;
    for (int z = 0; z < zones_; ++z) {
      std::uint64_t off = (word - ref_[static_cast<std::size_t>(z)]) &
                          mask_of(w_);
      if (off < (std::uint64_t{1} << obits_)) {
        hit = z;
        break;
      }
    }
    std::uint64_t phys;
    if (hit >= 0) {
      std::uint64_t off =
          (word - ref_[static_cast<std::size_t>(hit)]) & mask_of(w_);
      // Gray-coded offset + zone id, hit line raised; unused lines freeze.
      std::uint64_t gray = off ^ (off >> 1);
      std::uint64_t payload =
          gray | (static_cast<std::uint64_t>(hit) << obits_);
      std::uint64_t used = mask_of(obits_ + zbits_);
      phys = (bus_data_ & ~used) | (payload & used) |
             (std::uint64_t{1} << w_);
      bus_data_ = phys & mask_of(w_);
      ref_[static_cast<std::size_t>(hit)] = word;  // zone tracks the walk
    } else {
      phys = word;  // full address, hit line low
      bus_data_ = word;
      // Replace round-robin.
      ref_[static_cast<std::size_t>(victim_)] = word;
      victim_ = (victim_ + 1) % zones_;
    }
    return phys;
  }

  std::uint64_t decode(std::uint64_t phys) override {
    bool hit = (phys >> w_) & 1u;
    std::uint64_t addr;
    if (hit) {
      std::uint64_t payload = phys & mask_of(obits_ + zbits_);
      std::uint64_t gray = payload & mask_of(obits_);
      std::uint64_t off = gray;
      for (int s = 1; s < obits_; s <<= 1) off ^= off >> s;
      off &= mask_of(obits_);
      int z = static_cast<int>(payload >> obits_);
      addr = (rx_ref_[static_cast<std::size_t>(z)] + off) & mask_of(w_);
      rx_ref_[static_cast<std::size_t>(z)] = addr;
    } else {
      addr = phys & mask_of(w_);
      rx_ref_[static_cast<std::size_t>(rx_victim_)] = addr;
      rx_victim_ = (rx_victim_ + 1) % zones_;
    }
    return addr;
  }

  void reset() override {
    ref_.assign(static_cast<std::size_t>(zones_), 0);
    rx_ref_.assign(static_cast<std::size_t>(zones_), 0);
    bus_data_ = 0;
    victim_ = rx_victim_ = 0;
  }

 private:
  int w_, zones_, obits_, zbits_;
  std::vector<std::uint64_t> ref_, rx_ref_;
  std::uint64_t bus_data_ = 0;
  int victim_ = 0, rx_victim_ = 0;
};

/// Beach: cluster correlated lines, re-encode each cluster with an annealed
/// minimum-transition bijection learned from the training trace.
class Beach final : public BusEncoder {
 public:
  Beach(int w, const std::vector<std::uint64_t>& training, int max_bits)
      : w_(w) {
    build(training, max_bits);
  }
  std::string name() const override { return "beach"; }
  int phys_width(int) const override { return w_; }

  std::uint64_t encode(std::uint64_t word) override {
    word &= mask_of(w_);
    std::uint64_t out = 0;
    for (const auto& cl : clusters_) {
      std::uint64_t v = extract(word, cl.lines);
      std::uint64_t code = cl.enc[static_cast<std::size_t>(v)];
      out |= deposit(code, cl.lines);
    }
    return out;
  }
  std::uint64_t decode(std::uint64_t phys) override {
    std::uint64_t out = 0;
    for (const auto& cl : clusters_) {
      std::uint64_t code = extract(phys, cl.lines);
      std::uint64_t v = cl.dec[static_cast<std::size_t>(code)];
      out |= deposit(v, cl.lines);
    }
    return out;
  }
  void reset() override {}

 private:
  struct Cluster {
    std::vector<int> lines;
    std::vector<std::uint64_t> enc, dec;
  };

  static std::uint64_t extract(std::uint64_t word,
                               const std::vector<int>& lines) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < lines.size(); ++i)
      v |= ((word >> lines[i]) & 1u) << i;
    return v;
  }
  static std::uint64_t deposit(std::uint64_t v,
                               const std::vector<int>& lines) {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < lines.size(); ++i)
      w |= ((v >> i) & 1u) << lines[i];
    return w;
  }

  void build(const std::vector<std::uint64_t>& training, int max_bits) {
    // Pairwise line correlation over the training trace.
    std::vector<std::vector<double>> corr(
        static_cast<std::size_t>(w_),
        std::vector<double>(static_cast<std::size_t>(w_), 0.0));
    if (training.size() > 1) {
      std::vector<double> mean(static_cast<std::size_t>(w_), 0.0);
      for (auto word : training)
        for (int i = 0; i < w_; ++i)
          mean[static_cast<std::size_t>(i)] +=
              static_cast<double>((word >> i) & 1u);
      for (auto& m : mean) m /= static_cast<double>(training.size());
      for (int i = 0; i < w_; ++i)
        for (int j = 0; j < w_; ++j) {
          double sij = 0.0;
          for (auto word : training)
            sij += (static_cast<double>((word >> i) & 1u) -
                    mean[static_cast<std::size_t>(i)]) *
                   (static_cast<double>((word >> j) & 1u) -
                    mean[static_cast<std::size_t>(j)]);
          corr[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              std::abs(sij);
        }
    }
    // Greedy clustering: grow each cluster from the strongest unused pair.
    std::vector<bool> used(static_cast<std::size_t>(w_), false);
    for (;;) {
      int seed = -1;
      for (int i = 0; i < w_; ++i)
        if (!used[static_cast<std::size_t>(i)]) {
          seed = i;
          break;
        }
      if (seed < 0) break;
      Cluster cl;
      cl.lines.push_back(seed);
      used[static_cast<std::size_t>(seed)] = true;
      while (static_cast<int>(cl.lines.size()) < max_bits) {
        int best = -1;
        double best_c = -1.0;
        for (int j = 0; j < w_; ++j) {
          if (used[static_cast<std::size_t>(j)]) continue;
          double c = 0.0;
          for (int i : cl.lines)
            c += corr[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)];
          if (c > best_c) {
            best_c = c;
            best = j;
          }
        }
        if (best < 0) break;
        cl.lines.push_back(best);
        used[static_cast<std::size_t>(best)] = true;
      }
      clusters_.push_back(std::move(cl));
    }
    // Per-cluster transition counts and annealed code assignment.
    for (auto& cl : clusters_) {
      const std::size_t space = std::size_t{1} << cl.lines.size();
      std::vector<std::vector<double>> count(
          space, std::vector<double>(space, 0.0));
      for (std::size_t t = 1; t < training.size(); ++t) {
        auto a = extract(training[t - 1], cl.lines);
        auto b = extract(training[t], cl.lines);
        count[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
            1.0;
      }
      // Greedy assignment: order values by total traffic; give the busiest
      // pair adjacent codes, then place each next value at the free code
      // minimizing weighted Hamming to already-placed neighbors.
      cl.enc.assign(space, 0);
      cl.dec.assign(space, 0);
      std::vector<std::size_t> order(space);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::vector<double> traffic(space, 0.0);
      for (std::size_t a = 0; a < space; ++a)
        for (std::size_t b = 0; b < space; ++b)
          traffic[a] += count[a][b] + count[b][a];
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return traffic[a] > traffic[b];
      });
      std::vector<bool> code_used(space, false);
      std::vector<bool> placed(space, false);
      for (std::size_t v : order) {
        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t best_code = 0;
        for (std::size_t c = 0; c < space; ++c) {
          if (code_used[c]) continue;
          double cost = 0.0;
          for (std::size_t u = 0; u < space; ++u) {
            if (!placed[u]) continue;
            double wgt = count[v][u] + count[u][v];
            if (wgt > 0.0)
              cost += wgt * static_cast<double>(std::popcount(
                                c ^ cl.enc[u]));
          }
          if (cost < best_cost) {
            best_cost = cost;
            best_code = c;
          }
        }
        cl.enc[v] = best_code;
        cl.dec[best_code] = v;
        code_used[best_code] = true;
        placed[v] = true;
      }
    }
  }

  int w_;
  std::vector<Cluster> clusters_;
};

}  // namespace

std::unique_ptr<BusEncoder> binary_encoder(int width) {
  return std::make_unique<Binary>(width);
}
std::unique_ptr<BusEncoder> gray_encoder(int width) {
  return std::make_unique<GrayCode>(width);
}
std::unique_ptr<BusEncoder> bus_invert_encoder(int width) {
  return std::make_unique<BusInvert>(width);
}
std::unique_ptr<BusEncoder> t0_encoder(int width) {
  return std::make_unique<T0>(width);
}
std::unique_ptr<BusEncoder> t0_bi_encoder(int width) {
  return std::make_unique<T0Bi>(width);
}
std::unique_ptr<BusEncoder> working_zone_encoder(int width, int zones,
                                                 int offset_bits) {
  return std::make_unique<WorkingZone>(width, zones, offset_bits);
}
std::unique_ptr<BusEncoder> beach_encoder(
    int width, const std::vector<std::uint64_t>& training_trace,
    int max_cluster_bits) {
  return std::make_unique<Beach>(width, training_trace, max_cluster_bits);
}

BusRunResult run_encoder(BusEncoder& enc,
                         const std::vector<std::uint64_t>& stream,
                         int logical_width) {
  BusRunResult r;
  r.phys_width = enc.phys_width(logical_width);
  enc.reset();
  std::uint64_t prev = 0;
  bool first = true;
  std::uint64_t lmask = mask_of(logical_width);
  for (std::uint64_t w : stream) {
    std::uint64_t phys = enc.encode(w & lmask);
    std::uint64_t back = enc.decode(phys);
    if ((back & lmask) != (w & lmask))
      throw std::logic_error("bus encoder " + enc.name() +
                             " failed round-trip");
    if (!first)
      r.transitions +=
          static_cast<std::uint64_t>(std::popcount(phys ^ prev));
    prev = phys;
    first = false;
  }
  if (stream.size() > 1)
    r.per_word = static_cast<double>(r.transitions) /
                 static_cast<double>(stream.size() - 1);
  return r;
}

std::vector<std::uint64_t> address_stream(std::size_t n, double seq,
                                          int width, stats::Rng& rng) {
  std::vector<std::uint64_t> s;
  s.reserve(n);
  std::uint64_t addr = rng.uniform_bits(width);
  std::uint64_t m = mask_of(width);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(addr & m);
    if (rng.uniform_real() < seq)
      addr = (addr + 1) & m;
    else
      addr = rng.uniform_bits(width);
  }
  return s;
}

std::vector<std::uint64_t> interleaved_array_stream(std::size_t n, int arrays,
                                                    int width,
                                                    stats::Rng& rng) {
  std::vector<std::uint64_t> base(static_cast<std::size_t>(arrays));
  std::uint64_t m = mask_of(width);
  for (auto& b : base) b = rng.uniform_bits(width) & m;
  std::vector<std::uint64_t> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto a = static_cast<std::size_t>(
        rng.uniform_int(0, arrays - 1));
    s.push_back(base[a] & m);
    base[a] = (base[a] + 1) & m;
  }
  return s;
}

std::vector<std::uint64_t> random_data_stream(std::size_t n, int width,
                                              stats::Rng& rng) {
  std::vector<std::uint64_t> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.push_back(rng.uniform_bits(width));
  return s;
}

}  // namespace hlp::core
