#include "core/macromodel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "lint/lint.hpp"
#include "sim/block_simulator.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"

namespace hlp::core {

double ModuleCharacterization::mean_energy() const {
  return stats::mean(energy);
}

namespace {

/// Fill the per-transition characterization fields for the transition into
/// cycle `t` from the input words and the settled output words.
void push_transition(ModuleCharacterization& chr,
                     const stats::VectorStream& input, std::size_t t,
                     double energy, std::uint64_t out, std::uint64_t prev_out) {
  std::uint64_t cur = input.words[t];
  std::uint64_t prev = input.words[t - 1];
  std::uint64_t diff = cur ^ prev;
  chr.energy.push_back(energy);
  std::vector<double> toggles(static_cast<std::size_t>(chr.n_in));
  for (int i = 0; i < chr.n_in; ++i)
    toggles[static_cast<std::size_t>(i)] =
        static_cast<double>((diff >> i) & 1u);
  chr.pin_toggle.push_back(std::move(toggles));
  chr.in_activity.push_back(static_cast<double>(std::popcount(diff)) /
                            static_cast<double>(chr.n_in));
  chr.in_prob.push_back(static_cast<double>(std::popcount(cur)) /
                        static_cast<double>(chr.n_in));
  chr.out_activity.push_back(
      static_cast<double>(std::popcount(out ^ prev_out)) /
      static_cast<double>(std::max(1, chr.n_out)));
  chr.cur_word.push_back(cur);
  chr.prev_word.push_back(prev);
}

/// Packed characterization sweep (combinational modules): lane w·64+k of a
/// block carries cycle base+w·64+k; per-gate toggle words are scattered
/// into the per-transition energies in ascending gate order, which
/// reproduces the scalar per-cycle load summation bit-exactly at every
/// block width.
ModuleCharacterization characterize_packed(
    ModuleCharacterization chr, const netlist::Netlist& nl,
    const stats::VectorStream& input, const netlist::CapacitanceModel& cap,
    int block_words) {
  auto loads = nl.loads(cap);
  sim::BlockSimulator bs(nl, block_words);
  const auto lanes = static_cast<std::size_t>(bs.lane_count());
  const std::size_t n = nl.gate_count();
  const std::size_t total = input.words.size();
  std::vector<std::uint8_t> last(n, 0);
  std::uint64_t prev_out = 0;
  std::vector<double> e_buf(lanes);
  std::vector<std::uint64_t> ob(lanes);

  for (std::size_t base = 0; base < total; base += lanes) {
    const std::size_t count = std::min(lanes, total - base);
    bs.set_inputs_from_cycles(std::span(input.words).subspan(base, count));
    bs.eval();
    const std::size_t sub_words = (count + 63) / 64;
    std::fill(e_buf.begin(), e_buf.begin() + static_cast<std::ptrdiff_t>(count),
              0.0);
    for (netlist::GateId g = 0; g < n; ++g) {
      const auto lw = bs.lane_words(g);
      std::uint8_t lg = last[g];
      for (std::size_t w = 0; w < sub_words; ++w) {
        const std::size_t c = std::min<std::size_t>(64, count - w * 64);
        const std::uint64_t mask =
            c == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
        const std::uint64_t x = lw[w] & mask;
        // Bit k of d = toggle on the transition into cycle base+w*64+k.
        std::uint64_t d =
            (x ^ ((x << 1) | static_cast<std::uint64_t>(lg))) & mask;
        if (base == 0 && w == 0)
          d &= ~std::uint64_t{1};  // no transition into cycle 0
        while (d) {
          e_buf[w * 64 + static_cast<std::size_t>(std::countr_zero(d))] +=
              loads[g];
          d &= d - 1;
        }
        lg = static_cast<std::uint8_t>((x >> (c - 1)) & 1u);
      }
      last[g] = lg;
    }
    bs.outputs_to_cycles(std::span(ob).first(count));
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t t = base + k;
      if (t > 0)
        push_transition(chr, input, t, e_buf[k], ob[k],
                        k > 0 ? ob[k - 1] : prev_out);
    }
    prev_out = ob[count - 1];
  }
  return chr;
}

}  // namespace

ModuleCharacterization characterize(const netlist::Module& mod,
                                    const stats::VectorStream& input,
                                    const netlist::CapacitanceModel& cap,
                                    const sim::SimOptions& opts) {
  lint::enforce_module(mod, opts.lint, "characterize");
  ModuleCharacterization chr;
  chr.n_in = mod.total_input_bits();
  chr.n_out = mod.total_output_bits();
  chr.total_cap = mod.netlist.total_capacitance(cap);

  const auto& nl = mod.netlist;
  if (sim::resolve_engine(nl, opts.engine) == sim::EngineKind::Packed)
    return characterize_packed(std::move(chr), nl, input, cap,
                               opts.block_words);
  auto loads = nl.loads(cap);
  sim::Simulator s(nl);
  std::vector<std::uint8_t> prev_vals(nl.gate_count(), 0);
  std::uint64_t prev_out = 0;

  for (std::size_t t = 0; t < input.words.size(); ++t) {
    s.set_all_inputs(input.words[t]);
    s.eval();
    if (t > 0) {
      double e = 0.0;
      for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
        std::uint8_t v = s.value(g) ? 1 : 0;
        if (v != prev_vals[g]) e += loads[g];
      }
      push_transition(chr, input, t, e, s.output_bits(), prev_out);
    }
    prev_out = s.output_bits();
    for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
      prev_vals[g] = s.value(g) ? 1 : 0;
    s.tick();
  }
  return chr;
}

void PfaModel::fit(const ModuleCharacterization& c) { c_ = c.mean_energy(); }

void BitwiseModel::fit(const ModuleCharacterization& c) {
  fit_ = stats::ols(c.pin_toggle, c.energy);
}

double BitwiseModel::predict_cycle(std::span<const double> pin_toggles) const {
  return fit_.predict(pin_toggles);
}

double BitwiseModel::predict_avg(
    std::span<const double> pin_activities) const {
  return fit_.predict(pin_activities);
}

void InputOutputModel::fit(const ModuleCharacterization& c) {
  stats::Matrix x(c.transitions());
  for (std::size_t t = 0; t < c.transitions(); ++t)
    x[t] = {c.in_activity[t], c.out_activity[t]};
  fit_ = stats::ols(x, c.energy);
}

double InputOutputModel::predict_cycle(double in_act, double out_act) const {
  double row[2] = {in_act, out_act};
  return fit_.predict(row);
}

std::array<double, 4> DualBitModel::features_of(std::uint64_t prev,
                                                std::uint64_t cur) const {
  // Feature 0: toggles in the unsigned (noise) region across all words.
  // Features 1..3: sign-transition class counts (+-, -+, --); ++ is the
  // baseline absorbed by the intercept.
  std::array<double, 4> f{0.0, 0.0, 0.0, 0.0};
  int base = 0;
  for (int w : widths_) {
    int ns = std::min(n_sign_, w);
    int nu = w - ns;
    std::uint64_t mask_u =
        nu >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nu) - 1);
    std::uint64_t pw = (prev >> base);
    std::uint64_t cw = (cur >> base);
    f[0] += static_cast<double>(std::popcount((pw ^ cw) & mask_u));
    bool ps = (pw >> (w - 1)) & 1u;  // MSB as the sign proxy
    bool cs = (cw >> (w - 1)) & 1u;
    if (!ps && cs) f[1] += 1.0;        // + -> -
    else if (ps && !cs) f[2] += 1.0;   // - -> +
    else if (ps && cs) f[3] += 1.0;    // - -> -
    base += w;
  }
  return f;
}

void DualBitModel::fit(const ModuleCharacterization& c,
                       std::span<const int> word_widths, int sign_bits) {
  widths_.assign(word_widths.begin(), word_widths.end());
  if (sign_bits >= 0) {
    n_sign_ = sign_bits;
  } else {
    // Detect the sign-region breakpoint from per-bit lag-1 correlation:
    // scan each word from MSB down while the bit is temporally correlated.
    int best = 1;
    int base = 0;
    for (int w : widths_) {
      std::vector<double> cur_bits(c.transitions()), prev_bits(c.transitions());
      int run = 0;
      for (int b = w - 1; b >= 0; --b) {
        for (std::size_t t = 0; t < c.transitions(); ++t) {
          cur_bits[t] =
              static_cast<double>((c.cur_word[t] >> (base + b)) & 1u);
          prev_bits[t] =
              static_cast<double>((c.prev_word[t] >> (base + b)) & 1u);
        }
        double corr = stats::correlation(prev_bits, cur_bits);
        if (std::abs(corr) > 0.3)
          ++run;
        else
          break;
      }
      best = std::max(best, run);
      base += w;
    }
    n_sign_ = std::max(1, best);
  }
  stats::Matrix x(c.transitions());
  for (std::size_t t = 0; t < c.transitions(); ++t) {
    auto f = features_of(c.prev_word[t], c.cur_word[t]);
    x[t].assign(f.begin(), f.end());
  }
  fit_ = stats::ols(x, c.energy);
}

double DualBitModel::predict_cycle(std::uint64_t prev,
                                   std::uint64_t cur) const {
  auto f = features_of(prev, cur);
  return fit_.predict(f);
}

std::size_t Table3dModel::index(double p, double d, double o) const {
  auto bin = [&](double v) {
    int b = static_cast<int>(v * bins_);
    return static_cast<std::size_t>(std::clamp(b, 0, bins_ - 1));
  };
  return (bin(p) * static_cast<std::size_t>(bins_) + bin(d)) *
             static_cast<std::size_t>(bins_) +
         bin(o);
}

void Table3dModel::fit(const ModuleCharacterization& c) {
  std::size_t cells = static_cast<std::size_t>(bins_) * bins_ * bins_;
  sum_.assign(cells, 0.0);
  count_.assign(cells, 0.0);
  for (std::size_t t = 0; t < c.transitions(); ++t) {
    std::size_t i = index(c.in_prob[t], c.in_activity[t], c.out_activity[t]);
    sum_[i] += c.energy[t];
    count_[i] += 1.0;
  }
  fallback_ = c.mean_energy();
}

double Table3dModel::predict_cycle(double p_in, double d_in,
                                   double d_out) const {
  std::size_t i = index(p_in, d_in, d_out);
  if (count_[i] > 0.0) return sum_[i] / count_[i];
  return fallback_;
}

std::size_t ClusterModel::index(std::uint64_t prev, std::uint64_t cur,
                                int n_in) const {
  int dist = std::popcount(prev ^ cur);
  int b = n_in > 0 ? dist * buckets_ / (n_in + 1) : 0;
  b = std::clamp(b, 0, buckets_ - 1);
  // MSB "mode" class: the top input line's transition.
  int msb_class = 0;
  if (n_in > 0) {
    msb_class = static_cast<int>(((prev >> (n_in - 1)) & 1u) << 1 |
                                 ((cur >> (n_in - 1)) & 1u));
  }
  return static_cast<std::size_t>(msb_class * buckets_ + b);
}

void ClusterModel::fit(const ModuleCharacterization& c) {
  sum_.assign(static_cast<std::size_t>(4 * buckets_), 0.0);
  count_.assign(sum_.size(), 0.0);
  for (std::size_t t = 0; t < c.transitions(); ++t) {
    std::size_t i = index(c.prev_word[t], c.cur_word[t], c.n_in);
    sum_[i] += c.energy[t];
    count_[i] += 1.0;
  }
  fallback_ = c.mean_energy();
}

double ClusterModel::predict_cycle(std::uint64_t prev, std::uint64_t cur,
                                   int n_in) const {
  std::size_t i = index(prev, cur, n_in);
  return count_[i] > 0.0 ? sum_[i] / count_[i] : fallback_;
}

void DualBitIoModel::fit(const ModuleCharacterization& c,
                         std::span<const int> word_widths, int sign_bits) {
  db_.fit(c, word_widths, sign_bits);
  stats::Matrix x(c.transitions());
  for (std::size_t t = 0; t < c.transitions(); ++t)
    x[t] = {db_.predict_cycle(c.prev_word[t], c.cur_word[t]),
            c.out_activity[t]};
  fit_ = stats::ols(x, c.energy);
}

double DualBitIoModel::predict_cycle(const ModuleCharacterization& c,
                                     std::size_t t) const {
  double row[2] = {db_.predict_cycle(c.prev_word[t], c.cur_word[t]),
                   c.out_activity[t]};
  return fit_.predict(row);
}

void AnalyticBitwiseModel::build(const netlist::Module& mod,
                                 const netlist::CapacitanceModel& cap) {
  const auto& nl = mod.netlist;
  auto loads = nl.loads(cap);
  auto prop = [](netlist::GateKind k) {
    switch (k) {
      case netlist::GateKind::Xor:
      case netlist::GateKind::Xnor:
      case netlist::GateKind::Not:
      case netlist::GateKind::Buf:
        return 1.0;
      default:
        return 0.5;
    }
  };
  coef_.assign(nl.inputs().size(), 0.0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    std::vector<double> sens(nl.gate_count(), 0.0);
    sens[nl.inputs()[i]] = 1.0;
    double c = loads[nl.inputs()[i]];
    for (netlist::GateId id : nl.topo_order()) {
      const auto& g = nl.gate(id);
      if (!netlist::is_logic(g.kind)) continue;
      double p = 0.0;
      for (netlist::GateId f : g.fanins) p += sens[f];
      p = std::min(1.0, p) * prop(g.kind);
      sens[id] = p;
      c += p * loads[id];
    }
    coef_[i] = c;
  }
}

double AnalyticBitwiseModel::predict_cycle(
    std::span<const double> pin_toggles) const {
  double e = 0.0;
  for (std::size_t i = 0; i < coef_.size() && i < pin_toggles.size(); ++i)
    e += coef_[i] * pin_toggles[i];
  return e;
}

stats::Matrix SelectedModel::candidates(const ModuleCharacterization& c) {
  stats::Matrix x(c.transitions());
  for (std::size_t t = 0; t < c.transitions(); ++t)
    x[t] = candidate_row(c, t);
  return x;
}

std::vector<double> SelectedModel::candidate_row(
    const ModuleCharacterization& c, std::size_t t) {
  // Per-pin toggles, aggregates, plus first-order temporal (pin value and
  // toggle) and low-order spatial cross terms between adjacent pins.
  std::vector<double> row = c.pin_toggle[t];
  row.push_back(c.in_activity[t]);
  row.push_back(c.in_prob[t]);
  row.push_back(c.out_activity[t]);
  row.push_back(c.in_activity[t] * c.in_prob[t]);
  row.push_back(c.in_activity[t] * c.out_activity[t]);
  for (int i = 0; i + 1 < c.n_in; i += 2) {
    auto a = c.pin_toggle[t][static_cast<std::size_t>(i)];
    auto b = c.pin_toggle[t][static_cast<std::size_t>(i + 1)];
    row.push_back(a * b);
  }
  return row;
}

void SelectedModel::fit(const ModuleCharacterization& c, std::size_t max_vars,
                        double f_enter) {
  auto x = candidates(c);
  auto res = stats::forward_select(x, c.energy, f_enter, max_vars);
  selected_ = res.selected;
  fit_ = res.fit;
}

double SelectedModel::predict_cycle(const ModuleCharacterization& c,
                                    std::size_t t) const {
  auto row = candidate_row(c, t);
  std::vector<double> xs;
  xs.reserve(selected_.size());
  for (std::size_t col : selected_) xs.push_back(row[col]);
  return fit_.predict(xs);
}

MacroModelErrors evaluate_predictions(std::span<const double> predicted,
                                      std::span<const double> reference) {
  MacroModelErrors e;
  if (predicted.empty() || reference.empty()) return e;
  double mp = stats::mean(predicted), mr = stats::mean(reference);
  e.avg_power_error = mr != 0.0 ? std::abs(mp - mr) / mr : 0.0;
  double se = 0.0, sa = 0.0;
  std::size_t n = 0;
  for (std::size_t t = 0; t < predicted.size() && t < reference.size(); ++t) {
    if (reference[t] <= 1e-12) continue;
    double rel = (predicted[t] - reference[t]) / reference[t];
    se += rel * rel;
    sa += std::abs(rel);
    ++n;
  }
  if (n) {
    e.cycle_rms_error = std::sqrt(se / static_cast<double>(n));
    e.cycle_mean_abs_error = sa / static_cast<double>(n);
  }
  return e;
}

}  // namespace hlp::core
