#pragma once

#include <cstddef>

#include "fsm/synth.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

/// Section III-I, gated clocks (Benini et al. [101]–[103], Fig. 7).
///
/// The activation function F_a stops the local clock whenever the machine
/// would make no state transition (self-loop). F_a is synthesized as a
/// two-level cover of the self-looping (state, input) pairs and added to
/// the FSM netlist; the gating latch is modeled as one extra load on F_a.

struct ClockGatingResult {
  double base_power = 0.0;      ///< free-running clock
  double gated_power = 0.0;     ///< with clock gating (incl. F_a logic)
  double idle_fraction = 0.0;   ///< cycles with the clock stopped
  std::size_t fa_gates = 0;     ///< size of the activation logic
  double saving() const {
    return base_power > 0.0 ? 1.0 - gated_power / base_power : 0.0;
  }
};

/// Simulate `cycles` random input symbols (distribution `input_probs`,
/// uniform if empty) through the synthesized FSM with and without clock
/// gating and compare powers.
///
/// Power accounting under gating: clock-tree and register-internal power
/// scale by the fraction of enabled cycles; the F_a cover and the gating
/// latch add their own switching. Combinational logic power is unchanged
/// (gating fires only on self-loops, so gate values are identical).
/// The FSM state recurrence is inherently serial: Auto resolves to the
/// scalar engine; forcing Packed throws.
ClockGatingResult evaluate_clock_gating(const fsm::Stg& stg,
                                        const fsm::SynthesizedFsm& fsmnl,
                                        std::size_t cycles, stats::Rng& rng,
                                        std::span<const double> input_probs = {},
                                        const sim::PowerParams& params = {},
                                        const sim::SimOptions& opts = {});

}  // namespace hlp::core
