#include "core/fsm_encoding_power.hpp"

#include <bit>

#include "sim/simulator.hpp"

namespace hlp::core {

const char* encoding_style_name(fsm::EncodingStyle s) {
  switch (s) {
    case fsm::EncodingStyle::Binary: return "binary";
    case fsm::EncodingStyle::Gray: return "gray";
    case fsm::EncodingStyle::OneHot: return "one-hot";
    case fsm::EncodingStyle::Random: return "random";
    case fsm::EncodingStyle::LowPower: return "low-power";
  }
  return "?";
}

EncodingReport evaluate_encoding(const fsm::Stg& stg,
                                 fsm::EncodingStyle style,
                                 const fsm::MarkovAnalysis& ma,
                                 std::size_t cycles, std::uint64_t seed,
                                 std::span<const double> input_probs,
                                 const sim::PowerParams& params,
                                 const sim::SimOptions& opts) {
  EncodingReport rep;
  rep.style = encoding_style_name(style);
  rep.state_bits = fsm::encoding_bits(style, stg.num_states());
  auto codes = fsm::encode_states(stg, style, &ma, seed);
  rep.expected_switching = fsm::expected_code_switching(ma, codes);

  auto sf = fsm::synthesize_fsm(stg, codes, rep.state_bits);
  rep.gates = sf.netlist.logic_gate_count();

  // Drive with random symbols; measure gate-level power and actual
  // state-register switching.
  stats::Rng rng(seed + 17);
  // State recurrence is serial: scalar only (throws if Packed is forced;
  // Auto resolves to Scalar).
  (void)sim::resolve_engine(sf.netlist, opts.engine);
  sim::Simulator s(sf.netlist);
  sim::ActivityCollector col(sf.netlist);
  std::uint64_t prev_state = codes[0];
  std::uint64_t state_toggles = 0;
  const std::size_t sym = stg.n_symbols();
  for (std::size_t c = 0; c < cycles; ++c) {
    std::uint64_t a;
    if (input_probs.empty()) {
      a = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sym) - 1));
    } else {
      double u = rng.uniform_real();
      double acc = 0.0;
      a = sym - 1;
      for (std::size_t k = 0; k < sym; ++k) {
        acc += input_probs[k];
        if (u <= acc) {
          a = k;
          break;
        }
      }
    }
    s.set_word(sf.inputs, a);
    s.eval();
    col.record(s);
    std::uint64_t st = s.word_value(sf.state);
    state_toggles += static_cast<std::uint64_t>(
        std::popcount(st ^ prev_state));
    prev_state = st;
    s.tick();
  }
  rep.simulated_power =
      sim::compute_power(sf.netlist, col.activities(), params)
          .power_with_clock();
  rep.simulated_state_switching =
      cycles > 1 ? static_cast<double>(state_toggles) /
                       static_cast<double>(cycles - 1)
                 : 0.0;
  return rep;
}

std::vector<EncodingReport> compare_encodings(
    const fsm::Stg& stg, std::size_t cycles, std::uint64_t seed,
    std::span<const double> input_probs, const sim::PowerParams& params,
    const sim::SimOptions& opts) {
  auto ma = fsm::analyze_markov(stg, input_probs);
  std::vector<EncodingReport> out;
  for (auto style : {fsm::EncodingStyle::Binary, fsm::EncodingStyle::Gray,
                     fsm::EncodingStyle::OneHot, fsm::EncodingStyle::Random,
                     fsm::EncodingStyle::LowPower})
    out.push_back(evaluate_encoding(stg, style, ma, cycles, seed,
                                    input_probs, params, opts));
  return out;
}

}  // namespace hlp::core
