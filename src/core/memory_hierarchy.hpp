#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/memory_model.hpp"

namespace hlp::core {

/// Section III-A (Catthoor et al. [52],[56],[57]): memory-hierarchy
/// exploration for data-dominated applications. Higher hierarchy levels are
/// cheap per access but small; energy is minimized by sizing them so the
/// application's data reuse is captured.

/// One level of the hierarchy: a direct-mapped buffer of 2^addr_bits words
/// whose per-access energy comes from the Liu–Svensson parametric model at
/// its own capacity (optimal aspect ratio).
struct BufferLevel {
  int addr_bits = 6;          ///< capacity = 2^addr_bits words
  int line_words = 4;         ///< refill granularity
  double energy_per_access = 0.0;  ///< filled by make_level
};

/// Build a level with its energy derived from the parametric memory model.
BufferLevel make_level(int addr_bits, int line_words = 4,
                       const MemoryParams& base = {},
                       const sim::PowerParams& pp = {});

/// Result of running an address trace through a hierarchy (levels ordered
/// small/cheap -> large/expensive; the last level always hits).
struct HierarchyEval {
  std::vector<std::uint64_t> hits;   ///< per level
  std::uint64_t accesses = 0;
  double energy = 0.0;
  double energy_per_access() const {
    return accesses ? energy / static_cast<double>(accesses) : 0.0;
  }
};

/// Simulate the trace: each access probes levels in order; a miss at level
/// i costs that level's access plus a line refill from level i+1 (and so
/// on). Direct-mapped tag arrays per level.
HierarchyEval evaluate_hierarchy(std::span<const std::uint32_t> trace,
                                 std::span<const BufferLevel> levels);

/// Sweep the first-level buffer size for a fixed backing store and return
/// (addr_bits, energy-per-access) pairs — the exploration curve whose knee
/// the methodology selects.
std::vector<std::pair<int, double>> sweep_first_level(
    std::span<const std::uint32_t> trace, int backing_addr_bits,
    int min_bits = 3, int max_bits = 12);

}  // namespace hlp::core
