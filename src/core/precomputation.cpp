#include "core/precomputation.hpp"

#include <algorithm>
#include <new>
#include <string>

#include "bdd/bdd_to_netlist.hpp"
#include "bdd/netlist_bdd.hpp"
#include "netlist/copy.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

using netlist::GateId;
using netlist::GateKind;

namespace {

std::vector<std::uint32_t> select_precompute_inputs_impl(
    const netlist::Module& mod, int subset_size, exec::Meter* meter) {
  bdd::Manager mgr;
  mgr.set_meter(meter);
  auto bdds = bdd::build_bdds(mgr, mod.netlist);
  bdd::NodeRef f = bdds.fn[mod.netlist.outputs()[0]];
  bdd::NodeRef nf = mgr.bdd_not(f);
  const auto& all_vars = bdds.input_vars;

  // Boolean-difference influence of each input: P(f|x=0 != f|x=1). Early
  // greedy rounds often see zero coverage for every candidate (no single
  // input decides f), so influence breaks those ties toward the inputs
  // that matter most (e.g. the MSBs of a comparator).
  std::vector<double> influence(all_vars.size(), 0.0);
  for (std::size_t i = 0; i < all_vars.size(); ++i) {
    bdd::NodeRef diff = mgr.bdd_xor(mgr.restrict_var(f, all_vars[i], false),
                                    mgr.restrict_var(f, all_vars[i], true));
    influence[i] = mgr.sat_fraction(diff);
  }

  std::vector<std::uint32_t> subset;
  std::vector<bool> in_subset(all_vars.size(), false);
  for (int k = 0; k < subset_size; ++k) {
    double best_score = -1.0;
    std::size_t best_i = all_vars.size();
    for (std::size_t i = 0; i < all_vars.size(); ++i) {
      if (in_subset[i]) continue;
      // Quantify out everything except subset + candidate i.
      std::vector<std::uint32_t> others;
      for (std::size_t j = 0; j < all_vars.size(); ++j)
        if (!in_subset[j] && j != i) others.push_back(all_vars[j]);
      double cov = mgr.sat_fraction(mgr.forall_set(f, others)) +
                   mgr.sat_fraction(mgr.forall_set(nf, others));
      double score = cov + 1e-3 * influence[i];
      if (score > best_score) {
        best_score = score;
        best_i = i;
      }
    }
    if (best_i == all_vars.size()) break;
    in_subset[best_i] = true;
    subset.push_back(static_cast<std::uint32_t>(best_i));
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

/// Sampled coverage of a subset: hold a random assignment of the subset
/// bits, draw random completions of the rest, count how often the output is
/// the same across all completions (the predictors would have decided it).
double sampled_coverage(sim::Simulator& s, GateId out, int n_inputs,
                        std::uint64_t subset_mask, stats::Rng& rng,
                        int n_holds, int n_completions) {
  int decided = 0;
  for (int j = 0; j < n_holds; ++j) {
    std::uint64_t held = rng.uniform_bits(n_inputs) & subset_mask;
    bool first = true, ref = false, constant = true;
    for (int k = 0; k < n_completions; ++k) {
      std::uint64_t w = held | (rng.uniform_bits(n_inputs) & ~subset_mask);
      s.set_all_inputs(w);
      s.eval();
      bool v = s.value(out);
      if (first) {
        ref = v;
        first = false;
      } else if (v != ref) {
        constant = false;
        break;
      }
    }
    if (constant) ++decided;
  }
  return static_cast<double>(decided) / static_cast<double>(n_holds);
}

/// Degraded greedy selection: the same loop as the symbolic version, with
/// coverage and influence estimated by simulation instead of quantification.
std::vector<std::uint32_t> select_precompute_inputs_sampled(
    const netlist::Module& mod, int subset_size, std::uint64_t seed) {
  sim::Simulator s(mod.netlist);
  const GateId out = mod.netlist.outputs()[0];
  const int n = mod.total_input_bits();
  stats::Rng rng(seed);

  constexpr int kInfluenceSamples = 64;
  constexpr int kHolds = 48;
  constexpr int kCompletions = 16;

  std::vector<double> influence(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    int flips = 0;
    for (int t = 0; t < kInfluenceSamples; ++t) {
      std::uint64_t w = rng.uniform_bits(n);
      s.set_all_inputs(w);
      s.eval();
      bool a = s.value(out);
      s.set_all_inputs(w ^ (std::uint64_t{1} << i));
      s.eval();
      if (s.value(out) != a) ++flips;
    }
    influence[static_cast<std::size_t>(i)] =
        static_cast<double>(flips) / kInfluenceSamples;
  }

  std::uint64_t subset_mask = 0;
  std::vector<std::uint32_t> subset;
  for (int k = 0; k < subset_size && static_cast<int>(subset.size()) < n;
       ++k) {
    double best_score = -1.0;
    int best_i = -1;
    for (int i = 0; i < n; ++i) {
      if (subset_mask & (std::uint64_t{1} << i)) continue;
      double cov = sampled_coverage(s, out, n,
                                    subset_mask | (std::uint64_t{1} << i),
                                    rng, kHolds, kCompletions);
      double score = cov + 1e-3 * influence[static_cast<std::size_t>(i)];
      if (score > best_score) {
        best_score = score;
        best_i = i;
      }
    }
    if (best_i < 0) break;
    subset_mask |= std::uint64_t{1} << best_i;
    subset.push_back(static_cast<std::uint32_t>(best_i));
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

}  // namespace

std::vector<std::uint32_t> select_precompute_inputs(const netlist::Module& mod,
                                                    int subset_size) {
  return select_precompute_inputs_impl(mod, subset_size, nullptr);
}

exec::Outcome<std::vector<std::uint32_t>> select_precompute_inputs_budgeted(
    const netlist::Module& mod, int subset_size, const exec::Budget& budget,
    std::uint64_t seed) {
  exec::Outcome<std::vector<std::uint32_t>> out;
  exec::Meter meter(budget);
  try {
    out.value = select_precompute_inputs_impl(mod, subset_size, &meter);
    out.diag = meter.diag();
    return out;
  } catch (const exec::BudgetExceeded&) {
    out.diag = meter.diag();
  } catch (const std::bad_alloc&) {
    out.diag = meter.diag();
    out.diag.stop = exec::StopReason::AllocFailure;
  }
  out.value = select_precompute_inputs_sampled(mod, subset_size, seed);
  out.diag.degraded = true;
  out.diag.degraded_from = "BDD quantified coverage";
  out.diag.degraded_to = "sampled coverage";
  out.diag.note = "selected " + std::to_string(out.value.size()) +
                  " inputs by simulation after the symbolic search tripped";
  return out;
}

PrecomputedCircuit build_precomputed(const netlist::Module& mod,
                                     std::span<const std::uint32_t> subset,
                                     bool precompute) {
  PrecomputedCircuit pc;
  netlist::Netlist& nl = pc.netlist;
  pc.subset.assign(subset.begin(), subset.end());
  const int n = mod.total_input_bits();

  // Primary inputs in the same order as the source module.
  for (int i = 0; i < n; ++i)
    pc.inputs.push_back(nl.add_input("x[" + std::to_string(i) + "]"));

  GateId load_enable = netlist::kNullGate;
  GateId g1_reg = netlist::kNullGate, g0_reg = netlist::kNullGate;
  if (precompute) {
    // Predictors from the current inputs, via BDD quantification.
    bdd::Manager mgr;
    auto bdds = bdd::build_bdds(mgr, mod.netlist);
    bdd::NodeRef f = bdds.fn[mod.netlist.outputs()[0]];
    std::vector<std::uint32_t> others;
    for (std::size_t j = 0; j < bdds.input_vars.size(); ++j)
      if (std::find(subset.begin(), subset.end(),
                    static_cast<std::uint32_t>(j)) == subset.end())
        others.push_back(bdds.input_vars[j]);
    bdd::NodeRef g1 = mgr.forall_set(f, others);
    bdd::NodeRef g0 = mgr.forall_set(mgr.bdd_not(f), others);
    pc.coverage = mgr.sat_fraction(mgr.bdd_or(g1, g0));

    std::unordered_map<std::uint32_t, GateId> var_nets;
    for (std::size_t j = 0; j < bdds.input_vars.size(); ++j)
      var_nets[bdds.input_vars[j]] = pc.inputs[j];
    std::size_t before = nl.gate_count();
    GateId g1_net = bdd::materialize(mgr, g1, nl, var_nets);
    GateId g0_net = bdd::materialize(mgr, g0, nl, var_nets);
    pc.predictor_gates = nl.gate_count() - before;

    GateId fired = nl.add_binary(GateKind::Or, g1_net, g0_net, "fired");
    load_enable = nl.add_unary(GateKind::Not, fired, "LE");
    g1_reg = nl.add_dff(g1_net, false, "G1");
    g0_reg = nl.add_dff(g0_net, false, "G0");
    nl.mark_output(fired, "fired");
  }

  // Input register bank, recirculating when LE = 0.
  netlist::Word regs;
  for (int i = 0; i < n; ++i) {
    GateId q = nl.add_dff(netlist::kNullGate, false,
                          "R[" + std::to_string(i) + "]");
    GateId d = precompute
                   ? nl.add_mux(load_enable, q,
                                pc.inputs[static_cast<std::size_t>(i)])
                   : pc.inputs[static_cast<std::size_t>(i)];
    nl.set_dff_input(q, d);
    regs.push_back(q);
  }

  // Block A (a structural copy of the module) on the registered inputs.
  auto xlat = netlist::copy_combinational(mod.netlist, nl, regs);
  GateId f_out = xlat[mod.netlist.outputs()[0]];

  GateId y;
  if (precompute) {
    GateId fired_reg =
        nl.add_binary(GateKind::Or, g1_reg, g0_reg, "fired_q");
    y = nl.add_mux(fired_reg, f_out, g1_reg, "y");
  } else {
    y = nl.add_unary(GateKind::Buf, f_out, "y");
  }
  nl.mark_output(y, "y");
  return pc;
}

MultiPrecomputedCircuit build_precomputed_multi(
    const netlist::Module& mod, std::span<const std::uint32_t> subset,
    bool precompute) {
  MultiPrecomputedCircuit pc;
  netlist::Netlist& nl = pc.netlist;
  pc.subset.assign(subset.begin(), subset.end());
  const int n = mod.total_input_bits();
  pc.n_outputs = mod.netlist.outputs().size();

  for (int i = 0; i < n; ++i)
    pc.inputs.push_back(nl.add_input("x[" + std::to_string(i) + "]"));

  GateId load_enable = netlist::kNullGate;
  GateId all_fired_reg = netlist::kNullGate;
  std::vector<GateId> g1_regs;
  if (precompute) {
    bdd::Manager mgr;
    auto bdds = bdd::build_bdds(mgr, mod.netlist);
    std::vector<std::uint32_t> others;
    for (std::size_t j = 0; j < bdds.input_vars.size(); ++j)
      if (std::find(subset.begin(), subset.end(),
                    static_cast<std::uint32_t>(j)) == subset.end())
        others.push_back(bdds.input_vars[j]);

    std::unordered_map<std::uint32_t, GateId> var_nets;
    for (std::size_t j = 0; j < bdds.input_vars.size(); ++j)
      var_nets[bdds.input_vars[j]] = pc.inputs[j];

    std::size_t before = nl.gate_count();
    bdd::NodeRef all_fired_fn = bdd::kTrue;
    std::vector<GateId> fired_nets;
    for (auto out_gate : mod.netlist.outputs()) {
      bdd::NodeRef f = bdds.fn[out_gate];
      bdd::NodeRef g1 = mgr.forall_set(f, others);
      bdd::NodeRef g0 = mgr.forall_set(mgr.bdd_not(f), others);
      all_fired_fn = mgr.bdd_and(all_fired_fn, mgr.bdd_or(g1, g0));
      GateId g1_net = bdd::materialize(mgr, g1, nl, var_nets);
      GateId g0_net = bdd::materialize(mgr, g0, nl, var_nets);
      fired_nets.push_back(
          nl.add_binary(GateKind::Or, g1_net, g0_net));
      g1_regs.push_back(nl.add_dff(g1_net, false));
    }
    pc.coverage = mgr.sat_fraction(all_fired_fn);
    GateId all_fired = fired_nets.size() == 1
                           ? fired_nets[0]
                           : nl.add_gate(GateKind::And, fired_nets);
    pc.predictor_gates = nl.gate_count() - before;
    load_enable = nl.add_unary(GateKind::Not, all_fired, "LE");
    all_fired_reg = nl.add_dff(all_fired, false, "firedq");
    nl.mark_output(all_fired, "fired");
  }

  netlist::Word regs;
  for (int i = 0; i < n; ++i) {
    GateId q = nl.add_dff(netlist::kNullGate, false);
    GateId d = precompute
                   ? nl.add_mux(load_enable, q,
                                pc.inputs[static_cast<std::size_t>(i)])
                   : pc.inputs[static_cast<std::size_t>(i)];
    nl.set_dff_input(q, d);
    regs.push_back(q);
  }

  auto xlat = netlist::copy_combinational(mod.netlist, nl, regs);
  for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o) {
    GateId f_out = xlat[mod.netlist.outputs()[o]];
    GateId y = precompute
                   ? nl.add_mux(all_fired_reg, f_out, g1_regs[o])
                   : nl.add_unary(GateKind::Buf, f_out);
    nl.mark_output(y, "y[" + std::to_string(o) + "]");
  }
  return pc;
}

PrecomputationEval evaluate_precomputed_multi(
    const MultiPrecomputedCircuit& pc, const netlist::Module& reference,
    const stats::VectorStream& input, const sim::PowerParams& params,
    const sim::SimOptions& opts) {
  PrecomputationEval ev;
  // Combinational reference output sequence: engine-generic sweep.
  const std::vector<std::uint64_t> ref_out =
      sim::simulate_outputs(reference.netlist, input, opts).words;

  sim::Simulator s(pc.netlist);
  sim::ActivityCollector col(pc.netlist);
  bool has_fired = pc.netlist.outputs().size() > pc.n_outputs;
  std::size_t y_base = has_fired ? 1 : 0;
  std::size_t fired_cycles = 0;
  for (std::size_t t = 0; t < input.words.size(); ++t) {
    s.set_all_inputs(input.words[t]);
    s.eval();
    col.record(s);
    if (has_fired && s.value(pc.netlist.outputs()[0])) ++fired_cycles;
    if (t >= 1) {
      std::uint64_t y = 0;
      for (std::size_t o = 0; o < pc.n_outputs; ++o)
        if (s.value(pc.netlist.outputs()[y_base + o]))
          y |= std::uint64_t{1} << o;
      if (y != ref_out[t - 1]) ev.functionally_correct = false;
    }
    s.tick();
  }
  ev.power =
      sim::compute_power(pc.netlist, col.activities(), params).total_power;
  if (!input.words.empty())
    ev.coverage_observed = static_cast<double>(fired_cycles) /
                           static_cast<double>(input.words.size());
  return ev;
}

PrecomputationEval evaluate_precomputed(const PrecomputedCircuit& pc,
                                        const netlist::Module& reference,
                                        const stats::VectorStream& input,
                                        const sim::PowerParams& params,
                                        const sim::SimOptions& opts) {
  PrecomputationEval ev;
  // Reference (combinational) output sequence: engine-generic sweep; the
  // reference value is output 0, i.e. bit 0 of each packed output word.
  const stats::VectorStream ref_stream =
      sim::simulate_outputs(reference.netlist, input, opts);
  std::vector<bool> ref_out;
  ref_out.reserve(input.words.size());
  for (std::uint64_t w : ref_stream.words) ref_out.push_back((w & 1u) != 0);

  sim::Simulator s(pc.netlist);
  sim::ActivityCollector col(pc.netlist);
  GateId y = pc.netlist.outputs().back();  // "y" marked last
  bool has_fired = pc.netlist.outputs().size() > 1;
  GateId fired = has_fired ? pc.netlist.outputs()[0] : netlist::kNullGate;
  std::size_t fired_cycles = 0;
  for (std::size_t t = 0; t < input.words.size(); ++t) {
    s.set_all_inputs(input.words[t]);
    s.eval();
    col.record(s);
    if (has_fired && s.value(fired)) ++fired_cycles;
    if (t >= 1 && s.value(y) != ref_out[t - 1]) ev.functionally_correct = false;
    s.tick();
  }
  ev.power =
      sim::compute_power(pc.netlist, col.activities(), params).total_power;
  if (!input.words.empty())
    ev.coverage_observed = static_cast<double>(fired_cycles) /
                           static_cast<double>(input.words.size());
  return ev;
}

}  // namespace hlp::core
